"""FIG3 — the AppLeS partitioning of Jacobi2D on the SDSC/PCL network.

Regenerates the paper's Figure 3: the non-intuitive strip partition the
AppLeS agent derives for n = 2000 from NWS forecasts (contrast with the
Figure 4 static partition in ``bench_fig4_static_strip``).  The benchmark
measures the full blueprint — resource selection over all 255 subsets,
planning, estimation and choice — i.e. the paper's "consider more options
... at machine speeds".
"""

from __future__ import annotations

from repro.experiments import run_fig34


def bench_fig3_apples_partition(benchmark, report):
    result = benchmark.pedantic(run_fig34, kwargs={"n": 2000}, rounds=1, iterations=1)

    text = (
        result.table().render()
        + "\n\n"
        + result.ascii_partition("apples")
        + "\n\npredicted execution: "
        + f"AppLeS {result.apples_predicted_s:.2f}s vs static {result.static_predicted_s:.2f}s"
    )
    report("fig3_apples_partition", text)

    assert sum(result.apples_rows.values()) == 2000
    # The AppLeS partition concentrates work on deliverable machines
    # instead of spreading it nominally.
    assert len(result.apples_rows) < len(result.static_rows)

"""Simulation-executor throughput vs testbed size.

Every experiment in the reproduction drains through
:func:`repro.sim.execution.simulate_iterations`; its cost is what bounds
testbed scale.  This benchmark sweeps :func:`synthetic_metacomputer`
testbeds of 8/32/64/128 hosts under a border-exchange ring allocation and
times the vectorised executor (:mod:`repro.sim.execution_fast`) against
the reference loop, which remains available under ``REPRO_NO_FASTPATH=1``.

Every timing pair also asserts *bit-identity*: the fast executor must
return the same ``total_time``, ``iteration_times`` and
``host_busy_time`` float-for-float — the speedup is free only because it
changes nothing.

Results go to ``benchmarks/results/sim_scaling.txt`` and are merged into
``benchmarks/results/perf_suite.json`` under ``sim_scaling``.

Set ``SIM_SCALING_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the reduced
CI smoke run; only the full run's speedups are meaningful, and only the
full run asserts the >=3x fast-path target on the 64-host testbed.
"""

from __future__ import annotations

import os
import time

from repro.sim.execution import (
    WorkAssignment,
    simulate_iterations,
    simulate_iterations_reference,
)
from repro.sim.testbeds import synthetic_metacomputer
from repro.util import perf

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("SIM_SCALING_QUICK", "PERF_SUITE_QUICK")
)

SEED = 7

#: (hosts, iterations) sweep points.  Iteration counts shrink as hosts grow
#: so the reference arm stays affordable; the quick mode trims both.
SWEEP = [(8, 400), (32, 400), (64, 300), (128, 200)]
SWEEP_QUICK = [(8, 50), (32, 50), (64, 40)]


def _ring_assignments(testbed) -> list[WorkAssignment]:
    """A border-exchange ring over every host, Jacobi-strip flavoured."""
    names = testbed.host_names
    out = []
    for i, name in enumerate(names):
        peers = {
            names[(i + 1) % len(names)]: 100_000.0,
            names[(i - 1) % len(names)]: 100_000.0,
        }
        out.append(
            WorkAssignment(name, 8.0, peers, footprint_mb=8.0,
                           overhead_s=0.001)
        )
    return out


def _run(n_hosts: int, iterations: int, fast: bool):
    """One timed simulation over a freshly built testbed.

    Rebuilding per run keeps the arms honest: each pays its own load-trace
    materialisation, the same way an experiment run would.
    """
    testbed = synthetic_metacomputer(n_hosts, seed=SEED)
    assignments = _ring_assignments(testbed)
    fn = simulate_iterations if fast else simulate_iterations_reference
    with perf.fastpath(fast):
        t0 = time.perf_counter()
        result = fn(testbed.topology, assignments, iterations)
        elapsed = time.perf_counter() - t0
    return result, elapsed


def bench_sim_scaling(report, merge_json):
    sweep = SWEEP_QUICK if QUICK else SWEEP
    repeats = 1 if QUICK else 2
    rows = []
    for n_hosts, iterations in sweep:
        ref_best = fast_best = float("inf")
        ref_res = fast_res = None
        for _ in range(repeats):
            res, dt = _run(n_hosts, iterations, fast=False)
            ref_best, ref_res = min(ref_best, dt), res
        for _ in range(repeats):
            res, dt = _run(n_hosts, iterations, fast=True)
            fast_best, fast_res = min(fast_best, dt), res

        # Bit-identity: the vectorised executor changes nothing observable.
        assert fast_res.total_time == ref_res.total_time, n_hosts
        assert fast_res.iteration_times == ref_res.iteration_times, n_hosts
        assert fast_res.host_busy_time == ref_res.host_busy_time, n_hosts

        rows.append(
            {
                "hosts": n_hosts,
                "iterations": iterations,
                "reference_s": ref_best,
                "fastpath_s": fast_best,
                "speedup": ref_best / fast_best,
                "sim_total_time_s": ref_res.total_time,
                "iters_per_s_fast": iterations / fast_best,
            }
        )

    lines = [
        "Simulation-executor throughput vs testbed size",
        f"(quick_mode={QUICK}, ring exchange over synthetic_metacomputer,"
        f" min of {repeats} run(s))",
        "",
        f"{'hosts':>6}{'iters':>7}{'ref (s)':>10}{'fast (s)':>10}"
        f"{'speedup':>9}{'fast it/s':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r['hosts']:>6}{r['iterations']:>7}{r['reference_s']:>10.3f}"
            f"{r['fastpath_s']:>10.3f}{r['speedup']:>8.2f}x"
            f"{r['iters_per_s_fast']:>11.0f}"
        )
    data = {
        "quick_mode": QUICK,
        "repeats": repeats,
        "seed": SEED,
        "sweep": rows,
    }
    report("sim_scaling", "\n".join(lines))
    merge_json("perf_suite", {"sim_scaling": data})

    # Smoke assertions hold in any mode.
    for r in rows:
        assert r["fastpath_s"] > 0 and r["reference_s"] > 0
    if not QUICK:
        # The headline acceptance target: >=3x at 64 hosts, measured only
        # at full scale where timing is stable.
        hosts_64 = next(r for r in rows if r["hosts"] == 64)
        assert hosts_64["speedup"] >= 3.0, hosts_64


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["SIM_SCALING_QUICK"] = "1"
        QUICK = True

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_sim_scaling(_report, merge_json_results)

"""Scheduling-daemon sustained load: latency, throughput, shed behaviour.

The always-on :class:`repro.service.SchedulingDaemon` exists to answer a
user population's decision traffic at batch-service throughput without a
caller hand-assembling batches.  This benchmark drives it with the seeded
:mod:`repro.service.loadgen` population on the 12-machine nile pool and
reports what the queueing layer costs and buys:

- **Burst throughput** — the full population multiset pre-queued, then
  drained through micro-batches of 64: daemon decisions/sec vs the
  batch-``SchedulingService`` baseline deciding the same multiset in
  hand-assembled chunks.  The daemon must not lose to the thing it wraps
  (acceptance: >= 1.0x at batch >= 32); its cross-request answer reuse on
  a population with natural duplicates is where it wins.
- **Open-loop sustained load** — Poisson arrivals at ~70% of measured
  capacity against the started (threaded) daemon: p50/p99 ticket latency,
  observed decisions/sec, shed rate and achieved micro-batch sizes.
- **Overload** — arrivals at ~3x capacity into a small queue: admission
  control must shed explicitly (shed rate > 0) and the survivors must
  still be answered.

Every sampled daemon answer (all of the burst arm, every open-loop
answer) is compared bit-for-bit against ``SchedulingService.decide()`` on
the same per-shard multiset, and a reduced burst is repeated under the
``REPRO_NO_FASTPATH`` oracle gate — both modes must agree with their own
service exactly.

Results go to ``benchmarks/results/service_daemon.txt`` and are merged
into ``benchmarks/results/perf_suite.json`` under ``service_daemon``.
Set ``SERVICE_DAEMON_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the CI
smoke run; only the full run asserts the throughput acceptance target.
"""

from __future__ import annotations

import os
import time

from repro.nws import NetworkWeatherService
from repro.service import SchedulingDaemon, SchedulingService, ShardSpec
from repro.service.daemon import ANSWERED, MicroBatcher, SHED
from repro.service.loadgen import (
    SyntheticPopulation,
    open_loop_events,
    run_open_loop,
)
from repro.sim.testbeds import nile_testbed
from repro.sim.warmcache import warmed_state
from repro.util import perf

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("SERVICE_DAEMON_QUICK", "PERF_SUITE_QUICK")
)

SEED = 7
WARMUP_S = 600.0
AT = WARMUP_S
SHARD = "nile"
CHUNK = 8 if QUICK else 64  # baseline batch == daemon max_batch
BURST_N = 16 if QUICK else 128
OPEN_N = 24 if QUICK else 200
REPEATS = 2 if QUICK else 3


def _population() -> SyntheticPopulation:
    """One shard, one instant: the burst and baseline arms must decide the
    identical multiset, and a pinned instant keeps closed-form comparison
    trivial (the instant-advancing path is exercised by the unit tests)."""
    return SyntheticPopulation([SHARD], seed=11, base_at=AT, instant_every=0)


def _spec() -> ShardSpec:
    return ShardSpec(SHARD, nile_testbed, seed=SEED, warmup_s=WARMUP_S)


def _requests(n: int):
    return [r for _, r in _population().requests(n)]


def _signature(answer):
    return (
        answer.best_objective,
        answer.predicted_time,
        tuple((a.machine, a.work_units) for a in answer.best.allocations),
        answer.pruning,
    )


def _baseline_run(requests):
    """The wrapped thing itself: hand-chunked ``SchedulingService.decide``."""
    testbed, nws = warmed_state(nile_testbed, seed=SEED, warmup_s=WARMUP_S)
    with perf.fastpath(True):
        service = SchedulingService(testbed, nws)
        t0 = time.perf_counter()
        answers = []
        for k in range(0, len(requests), CHUNK):
            answers.extend(service.decide(requests[k : k + CHUNK]))
        elapsed = time.perf_counter() - t0
    return answers, elapsed


def _burst_run(requests):
    """Pre-queued multiset drained through the daemon's micro-batcher."""
    daemon = SchedulingDaemon(
        [_spec()],
        queue_capacity=len(requests),
        batcher=MicroBatcher(max_batch=CHUNK, target_batch=min(32, CHUNK)),
    )
    daemon.shards[SHARD].ensure_service()  # world build stays untimed
    t0 = time.perf_counter()
    tickets = daemon.submit_many(SHARD, requests)
    daemon.pump()
    elapsed = time.perf_counter() - t0
    replies = [t.result(0.0) for t in tickets]
    daemon.shutdown()
    assert all(r.status == ANSWERED for r in replies)
    return replies, elapsed


def _percentile(sorted_values, q):
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _open_loop_arm(rate_hz, n, queue_capacity):
    """Poisson arrivals against the started daemon; returns summary + replies."""
    daemon = SchedulingDaemon(
        [_spec()],
        queue_capacity=queue_capacity,
        batcher=MicroBatcher(max_batch=CHUNK, target_batch=min(32, CHUNK)),
    )
    daemon.shards[SHARD].ensure_service()
    daemon.start()
    events = open_loop_events(_population(), rate_hz=rate_hz, n_requests=n)
    t0 = time.perf_counter()
    tickets = run_open_loop(daemon, events)
    daemon.drain(timeout=120.0)
    elapsed = time.perf_counter() - t0
    daemon.shutdown()
    replies = [t.result(0.0) for t in tickets]
    answered = [r for r in replies if r.status == ANSWERED]
    shed = [r for r in replies if r.status == SHED]
    latencies = sorted(r.latency_s for r in answered)
    batch_sizes = [r.batch_size for r in answered]
    summary = {
        "offered_hz": rate_hz,
        "requests": n,
        "answered": len(answered),
        "shed": len(shed),
        "shed_rate": len(shed) / n,
        "dps": len(answered) / elapsed if elapsed > 0 else float("nan"),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "mean_batch": (sum(batch_sizes) / len(batch_sizes)) if batch_sizes else 0.0,
        "max_batch": max(batch_sizes, default=0),
    }
    return summary, replies, [e.request for e in events]


def _assert_identity(replies, requests, fast):
    """Every answered reply must equal the plain service's answer."""
    answered = [
        (req, rep) for req, rep in zip(requests, replies) if rep.status == ANSWERED
    ]
    if not answered:
        return 0
    testbed = nile_testbed(seed=SEED)
    nws = NetworkWeatherService.for_testbed(testbed, seed=SEED + 1)
    nws.warmup(WARMUP_S)
    with perf.fastpath(fast):
        reference = SchedulingService(testbed, nws).decide(
            [req for req, _ in answered]
        )
    for (req, rep), ref in zip(answered, reference):
        assert _signature(rep.answer) == _signature(ref), req
    return len(answered)


def bench_service_daemon(report, merge_json):
    requests = _requests(BURST_N)
    unique = len({r.config_key() for r in requests})

    baseline_best = burst_best = float("inf")
    replies = None
    _baseline_run(requests)  # absorb first-run effects per arm
    for _ in range(REPEATS):
        _, dt = _baseline_run(requests)
        baseline_best = min(baseline_best, dt)
    _burst_run(requests)
    for _ in range(REPEATS):
        replies, dt = _burst_run(requests)
        burst_best = min(burst_best, dt)
    checked = _assert_identity(replies, requests, fast=True)

    # The oracle gate: a reduced burst must also match its own service.
    oracle_n = max(4, BURST_N // 8)
    with perf.fastpath(False):
        oracle_replies, _ = _burst_run(requests[:oracle_n])
    checked += _assert_identity(oracle_replies, requests[:oracle_n], fast=False)

    throughput = {
        "requests": BURST_N,
        "unique_configs": unique,
        "batch": CHUNK,
        "baseline_s": baseline_best,
        "daemon_s": burst_best,
        "baseline_dps": BURST_N / baseline_best,
        "daemon_dps": BURST_N / burst_best,
        "ratio": baseline_best / burst_best,
    }

    rate = max(20.0, 0.7 * throughput["daemon_dps"])
    sustained, open_replies, open_requests = _open_loop_arm(
        rate_hz=rate, n=OPEN_N, queue_capacity=max(64, OPEN_N)
    )
    checked += _assert_identity(open_replies, open_requests, fast=True)

    overload, over_replies, _ = _open_loop_arm(
        rate_hz=3.0 * throughput["daemon_dps"],
        n=OPEN_N,
        queue_capacity=8,
    )

    lines = [
        "Scheduling-daemon sustained load — nile pool (12 hosts), seeded population",
        f"(quick_mode={QUICK}, best of {REPEATS} runs, micro-batch cap {CHUNK})",
        "",
        f"burst throughput over {BURST_N} requests ({unique} unique configs):",
        f"  batch-service baseline {throughput['baseline_dps']:>8.1f} dec/s"
        f"   daemon {throughput['daemon_dps']:>8.1f} dec/s"
        f"   ratio {throughput['ratio']:.2f}x",
        "",
        f"open loop @ {sustained['offered_hz']:.0f} req/s offered"
        f" ({sustained['requests']} requests):",
        f"  answered {sustained['answered']}  shed rate {sustained['shed_rate']:.1%}"
        f"  throughput {sustained['dps']:.1f} dec/s",
        f"  latency p50 {sustained['p50_ms']:.1f} ms   p99 {sustained['p99_ms']:.1f} ms"
        f"   batch mean {sustained['mean_batch']:.1f} / max {sustained['max_batch']}",
        "",
        f"overload @ {overload['offered_hz']:.0f} req/s into a queue of 8:",
        f"  answered {overload['answered']}  shed rate {overload['shed_rate']:.1%}"
        f"  p99 {overload['p99_ms']:.1f} ms",
        "",
        f"bit-identity vs SchedulingService.decide(): {checked} answers checked"
        " (fast path + oracle gate)",
    ]
    data = {
        "quick_mode": QUICK,
        "repeats": REPEATS,
        "throughput": throughput,
        "open_loop": sustained,
        "overload": overload,
        "identity_checked": checked,
    }
    report("service_daemon", "\n".join(lines), data)
    merge_json("perf_suite", {"service_daemon": data})

    assert checked > 0
    assert sustained["answered"] > 0
    assert overload["shed_rate"] > 0.0, overload
    assert all(
        r.status in (ANSWERED, SHED) for r in over_replies
    ), "overload must shed explicitly, never fail"
    if not QUICK:
        # Acceptance: the daemon sustains >= the batch-service baseline's
        # decisions/sec on the same multiset at batch >= 32.
        assert CHUNK >= 32
        assert throughput["ratio"] >= 1.0, throughput


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["SERVICE_DAEMON_QUICK"] = "1"
        QUICK = True
        CHUNK = 8
        BURST_N = 16
        OPEN_N = 24
        REPEATS = 2

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_service_daemon(_report, merge_json_results)

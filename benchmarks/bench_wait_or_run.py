"""WAIT-A9 — the §3.2 wait-or-run decision.

"The user must determine whether to wait until the resources will be
available or to execute the application with lesser performance on the
resources currently available ... by estimating the sum of the wait time
and the dedicated time and comparing it with a prediction of the slowdown
the application will experience on non-dedicated resources."

The benchmark sweeps the queue wait for a dedicated SP-2 reservation
against running immediately on the loaded Figure 2 workstations, and
reports the crossover wait at which the decision flips.
"""

from __future__ import annotations

from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.wait_or_run import Reservation, decide_wait_or_run
from repro.jacobi.apples import JacobiPlanner
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import sdsc_pcl_with_sp2
from repro.util.tables import Table


def bench_wait_or_run(benchmark, report):
    testbed = sdsc_pcl_with_sp2(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.warmup(600.0)
    problem = JacobiProblem(n=3000, iterations=200)
    info = InformationPool(
        pool=ResourcePool(testbed.topology, nws), hat=jacobi_hat(problem)
    )
    planner = JacobiPlanner(problem)
    shared = [m for m in testbed.host_names if not m.startswith("sp2")]
    waits = (0.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0)

    def sweep():
        return [
            (w, decide_wait_or_run(
                info, planner, Reservation(("sp2-1", "sp2-2"), w), shared
            ))
            for w in waits
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        ["queue wait (s)", "run now (s)", "wait total (s)", "decision"],
        title="WAIT-A9 — wait for the dedicated SP-2 pair, or run now on "
              "loaded workstations? (Jacobi2D n=3000, 200 iterations)",
    )
    for w, d in rows:
        table.add(w, d.run_now_s, d.wait_total_s, "WAIT" if d.wait else "run now")
    flips = [w for w, d in rows if not d.wait]
    crossover = min(flips) if flips else float("inf")
    report(
        "wait_or_run",
        table.render() + f"\n\ndecision flips to 'run now' at wait >= {crossover:g} s",
    )

    # The decision must flip exactly once, from WAIT to run-now.
    decisions = [d.wait for _, d in rows]
    assert decisions[0] is True
    assert decisions[-1] is False
    assert decisions == sorted(decisions, reverse=True)

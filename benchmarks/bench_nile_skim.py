"""NILE-T1 — the Site Manager's skim-vs-remote decision (§2.1).

"The cost of skimming is compared with a prediction of the reduction in
cost of event analysis when the data is local."  The benchmark sweeps
skim fractions and expected repeat counts over a tape-resident pass2
dataset and checks the decision structure: local runs are cheaper than
remote runs, decisions are monotone in the repeat count, and the
crossover the manager predicts separates the decisions.
"""

from __future__ import annotations

from repro.experiments import run_nile_skim


def bench_nile_skim(benchmark, report):
    result = benchmark.pedantic(
        run_nile_skim,
        kwargs={"nevents": 500_000, "runs": (1, 2, 5, 10, 50)},
        rounds=1,
        iterations=1,
    )
    report("nile_skim", result.table().render())

    assert result.decisions_monotone_in_runs
    for _, _, decision in result.decisions:
        assert decision.local_run_s < decision.remote_run_s
    # At 50 repeats skimming a 20% working set must pay.
    assert result.decision_for(0.2, 50).skim

"""Regret-vs-exhaustive for the selector portfolio, on frozen arena instances.

The arena (:mod:`repro.arena`) freezes seeded scheduling instances, runs
every baseline policy over them, and scores the emitted allocations with
the standalone verifier — the exhaustive AppLeS decision is the oracle.
This benchmark records the resulting regret table:

- ``static``      compile-time strip partition over the whole pool
- ``greedy``      the greedy candidate ladder (what big pools used to get)
- ``exhaustive``  every non-empty subset — regret 0.0 by construction
- ``seeded``      PruningStats-adapted previous-winner neighbourhoods
- ``locality``    site-local prefixes plus cross-site unions

The headline check: on the >12-machine pool (``synth14``), where the
exhaustive oracle is still affordable but the production selector would
fall back to the greedy ladder, at least one PruningStats-seeded
generator must achieve *strictly lower* mean regret than greedy.

Results go to ``benchmarks/results/arena_regret.txt`` and merge into
``benchmarks/results/perf_suite.json`` under ``arena``.

Set ``ARENA_REGRET_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the reduced
CI smoke run; the strict seeded-beats-greedy assertion only runs at full
scale, where per-class sample counts make the means meaningful.
"""

from __future__ import annotations

import os

from repro.arena import run_regret_bench

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("ARENA_REGRET_QUICK", "PERF_SUITE_QUICK")
)

SEED = 2024
CLASSES = ("sdsc8", "synth14", "contended14")


def bench_arena_regret(report, merge_json):
    if QUICK:
        instances, allocations, result = run_regret_bench(
            classes=CLASSES, per_class=3, seed=SEED, sizes=(400, 700), iterations=20
        )
    else:
        instances, allocations, result = run_regret_bench(
            classes=CLASSES, per_class=6, seed=SEED, iterations=40
        )

    lines = [
        "Arena regret vs exhaustive oracle",
        f"(quick_mode={QUICK}, {len(instances)} instances,"
        f" {len(allocations)} allocations, seed={SEED})",
        "",
        result.table(),
    ]
    data = {
        "quick_mode": QUICK,
        "seed": SEED,
        "classes": list(CLASSES),
        "instances": len(instances),
        "allocations": len(allocations),
        **result.as_json(),
    }
    report("arena_regret", "\n".join(lines))
    merge_json("perf_suite", {"arena": data})

    # Smoke assertions hold in any mode: the oracle beats itself exactly,
    # nobody beats it, and every agent policy's allocation was feasible.
    for klass in CLASSES:
        oracle = result.score(klass, "exhaustive")
        assert oracle.mean_regret == 0.0, oracle
        for policy in ("greedy", "seeded", "locality"):
            score = result.score(klass, policy)
            assert score.infeasible == 0, score
            assert all(r >= 0.0 for r in score.regrets), score
    if not QUICK:
        # The headline acceptance target: a PruningStats-seeded candidate
        # generator strictly beats the greedy ladder on the >12-machine
        # pool, measured only at full scale.
        greedy = result.score("synth14", "greedy").mean_regret
        best_seeded = min(
            result.score("synth14", name).mean_regret
            for name in ("seeded", "locality")
        )
        assert best_seeded < greedy, (best_seeded, greedy)


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["ARENA_REGRET_QUICK"] = "1"
        QUICK = True

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_arena_regret(_report, merge_json_results)

"""Scheduling-service throughput: batched decisions/sec vs solo agents.

Many applications sharing one metacomputer ask for decisions at the same
instants (the paper's §3 contention setting).  The
:class:`repro.service.SchedulingService` answers a whole batch through one
vectorised evaluation core; this benchmark measures what that batching
buys over the per-call baseline — a plain loop of
``AppLeSAgent.schedule()`` — on the 12-machine nile pool, where every
request faces 4095 candidate resource sets.

Both arms run with the fast path enabled, so the ratio isolates the
*batching* gain (shared snapshot, shared membership matrices, one kernel
invocation for every candidate of every request), not the fast path
itself (benchmarked in ``bench_scheduling_scaling``).  Every timed batch
is also checked answer-for-answer against the sequential loop — the
throughput is only real because it changes nothing.

Results go to ``benchmarks/results/service_throughput.txt`` and are merged
into ``benchmarks/results/perf_suite.json`` under ``service_throughput``.

Set ``SERVICE_THROUGHPUT_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the
reduced CI smoke run; only the full run asserts the >=3x batched-vs-solo
target at batch >= 32.
"""

from __future__ import annotations

import os
import time

from repro.core.userspec import UserSpecification
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.service import DecisionRequest, SchedulingService
from repro.sim.testbeds import nile_testbed
from repro.sim.warmcache import clear_warm_cache, warmed_state
from repro.util import perf

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("SERVICE_THROUGHPUT_QUICK", "PERF_SUITE_QUICK")
)

SEED = 7
WARMUP_S = 600.0
AT = WARMUP_S  # decision instant == warmed NWS time
BATCHES = (1, 8) if QUICK else (1, 8, 32, 64)
REPEATS = 2 if QUICK else 3


def _requests(batch: int) -> list[DecisionRequest]:
    """``batch`` distinct configurations (no duplicates: the service's
    config dedup must not flatter the measured throughput)."""
    reqs = []
    for k in range(batch):
        userspec = (
            UserSpecification(max_machines=6) if k % 3 == 2 else UserSpecification()
        )
        reqs.append(
            DecisionRequest(
                problem=JacobiProblem(n=600 + 100 * (k % 3), iterations=30 + k),
                userspec=userspec,
                account_memory=(k % 5 != 2),
                at=AT,
            )
        )
    return reqs


def _world():
    return warmed_state(nile_testbed, seed=SEED, warmup_s=WARMUP_S)


def _service_run(requests):
    """One timed service batch: (answers, seconds). Setup untimed."""
    testbed, nws = _world()
    with perf.fastpath(True):
        service = SchedulingService(testbed, nws)
        t0 = time.perf_counter()
        answers = service.decide(requests)
        elapsed = time.perf_counter() - t0
    return answers, elapsed


def _sequential_run(requests):
    """The baseline: a per-call loop of solo ``schedule()`` decisions."""
    testbed, nws = _world()
    with perf.fastpath(True):
        t0 = time.perf_counter()
        decisions = []
        for r in requests:
            agent = make_jacobi_agent(
                testbed, r.problem, nws,
                userspec=r.userspec, account_memory=r.account_memory,
            )
            decisions.append(agent.schedule())
        elapsed = time.perf_counter() - t0
    return decisions, elapsed


def _signature(best, objective):
    return (
        objective,
        best.predicted_time,
        tuple((a.machine, a.work_units) for a in best.allocations),
    )


def bench_service_throughput(report, merge_json):
    clear_warm_cache()
    _world()  # prime the warm cache outside any timing
    rows = []
    for batch in BATCHES:
        requests = _requests(batch)
        service_best = sequential_best = float("inf")
        answers = decisions = None
        _service_run(requests)  # absorb first-run effects per arm
        for _ in range(REPEATS):
            answers, dt = _service_run(requests)
            service_best = min(service_best, dt)
        _sequential_run(requests)
        for _ in range(REPEATS):
            decisions, dt = _sequential_run(requests)
            sequential_best = min(sequential_best, dt)

        # Answer equivalence: batched throughput changes nothing observable.
        assert len(answers) == len(decisions) == batch
        for answer, decision in zip(answers, decisions):
            assert _signature(answer.best, answer.best_objective) == _signature(
                decision.best, decision.best_objective
            ), batch

        rows.append(
            {
                "batch": batch,
                "service_s": service_best,
                "sequential_s": sequential_best,
                "service_dps": batch / service_best,
                "sequential_dps": batch / sequential_best,
                "speedup": sequential_best / service_best,
            }
        )

    lines = [
        "Scheduling-service throughput — nile pool (12 hosts, 4095 candidates/request)",
        f"(quick_mode={QUICK}, best of {REPEATS} runs, both arms on the fast path)",
        "",
        f"{'batch':>6}{'service (s)':>13}{'solo loop (s)':>15}"
        f"{'service dec/s':>15}{'solo dec/s':>12}{'speedup':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['batch']:>6}{r['service_s']:>13.3f}{r['sequential_s']:>15.3f}"
            f"{r['service_dps']:>15.1f}{r['sequential_dps']:>12.1f}"
            f"{r['speedup']:>8.2f}x"
        )
    data = {"quick_mode": QUICK, "repeats": REPEATS, "batches": rows}
    report("service_throughput", "\n".join(lines), data)
    merge_json("perf_suite", {"service_throughput": data})

    for r in rows:
        assert r["service_s"] > 0 and r["sequential_s"] > 0
    if not QUICK:
        # The acceptance target: >=3x decisions/sec at batch >= 32 on the
        # 12-machine pool, vs the per-call sequential loop.
        for r in rows:
            if r["batch"] >= 32:
                assert r["speedup"] >= 3.0, r


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["SERVICE_THROUGHPUT_QUICK"] = "1"
        QUICK = True
        BATCHES = (1, 8)
        REPEATS = 2

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_service_throughput(_report, merge_json_results)

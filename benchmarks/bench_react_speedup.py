"""REACT-T1 — the §2.3 3D-REACT timing claims.

"The execution time for the entire code on either one dedicated CPU of
the C90 or 64 nodes of the Delta or Paragon alone is in excess of 16
hours (wall clock time).  The execution time for the code on the
distributed platform is just under 5 hours."
"""

from __future__ import annotations

from repro.experiments import run_react


def bench_react_speedup(benchmark, report):
    result = benchmark.pedantic(run_react, rounds=1, iterations=1)
    report(
        "react_speedup",
        result.timing_table().render()
        + f"\n\nspeedup over best single site: {result.speedup:.2f}x",
        data={
            "experiment": "react_t1",
            "c90_alone_h": result.c90_alone_s / 3600,
            "paragon_alone_h": result.paragon_alone_s / 3600,
            "distributed_h": result.distributed_s / 3600,
            "pipeline_size": result.chosen_pipeline_size,
            "speedup": result.speedup,
        },
    )

    assert result.c90_alone_s >= 16 * 3600
    assert result.paragon_alone_s >= 16 * 3600
    assert result.distributed_s < 5 * 3600
    assert result.chosen_lhsf_host == "c90"
    assert result.chosen_logd_host == "paragon"

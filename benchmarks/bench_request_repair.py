"""Reservation repair vs from-scratch replan: wall-clock and decisions.

The reservation layer's claim (ISSUE 10): when a booked ledger is
perturbed — urgent requests arrive, forecasts for a few bookings go stale
— *incremental repair* reaches a feasible ledger a from-scratch replan
would accept, at a fraction of the cost, because only the affected
bookings re-enter the expansion engine.

This benchmark builds the seeded rolling-horizon workload on the paper's
8-host SDSC world, books it, then perturbs it with a handful of urgent
arrivals plus stale-forecast invalidations and times both responses:

- **replan** — a fresh :class:`~repro.reserve.repair.ReservationPlanner`
  re-books *every* request (original + urgent) from scratch;
- **repair** — the incumbent planner patches only the affected bookings
  through the strategy ladder.

Self-checks are the subsystem's contract, not extras: both final ledgers
pass :func:`~repro.reserve.ledger.verify_ledger` with the original
request constraints, every untouched booking is the same object after
repair (bit-identity for free), and both arms book the same
``(request, occurrence)`` set.

Results go to ``benchmarks/results/request_repair.txt`` and are merged
into ``benchmarks/results/perf_suite.json`` under ``reserve``.  Set
``RESERVE_REPAIR_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the CI smoke
run; the full run asserts a >= 5x speedup at >= 64 booked occurrences,
the quick run >= 3x at a smaller ledger.
"""

from __future__ import annotations

import os
import time

from repro.jacobi.grid import JacobiProblem
from repro.reserve import (
    ReservationPlanner,
    ReservationRequest,
    seeded_requests,
    verify_ledger,
)

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("RESERVE_REPAIR_QUICK", "PERF_SUITE_QUICK")
)

SEED = 2026
WORLD = {
    "generator": "sdsc",
    "n_hosts": 8,
    "n_segments": None,
    "seed": 1996,
    "nws_seed": 1997,
    "warmup_s": 600.0,
}

N_REQUESTS = 24 if QUICK else 96
N_URGENT = 2 if QUICK else 4
MIN_BOOKED = 18 if QUICK else 64
MIN_SPEEDUP = 3.0 if QUICK else 5.0


def _urgent_requests(ledger, count: int) -> list[ReservationRequest]:
    """Urgent arrivals spread across the booked horizon.

    Urgent means a *tight* window: each request must land inside a
    2400-second slot somewhere over the already-booked span, colliding
    with whatever is there.
    """
    lo = min(b.start for b in ledger.bookings)
    hi = max(b.end for b in ledger.bookings)
    span = max(hi - lo, 1.0)
    return [
        ReservationRequest(
            request_id=f"urgent-{j:03d}",
            problem=JacobiProblem(n=500, iterations=30),
            earliest_start=lo + j * span / count,
            deadline=lo + j * span / count + 2400.0,
            min_machines=2,
            priority=1,
        )
        for j in range(count)
    ]


def bench_request_repair(report, merge_json):
    requests = seeded_requests(N_REQUESTS, seed=SEED)
    planner = ReservationPlanner(world=WORLD, label="bench")
    plan0 = planner.plan(requests)
    ledger = plan0.ledger
    assert len(plan0.booked) >= MIN_BOOKED, (
        f"workload too small: {len(plan0.booked)} booked < {MIN_BOOKED}"
    )

    urgent = _urgent_requests(ledger, N_URGENT)
    invalidate = plan0.booked[::8]  # every 8th booking's forecasts go stale

    # Arm 1: from-scratch replan of everything, urgent included.
    t0 = time.perf_counter()
    replan = ReservationPlanner(world=WORLD, label="bench-replan").plan(
        list(requests) + urgent
    )
    replan_s = time.perf_counter() - t0

    # Arm 2: incremental repair of the incumbent ledger.
    before = {b.booking_id: b for b in ledger.bookings}
    t0 = time.perf_counter()
    outcome = planner.repair(
        ledger, new_requests=urgent, invalidate=invalidate
    )
    repair_s = time.perf_counter() - t0

    # Contract checks: both ledgers acceptable, untouched bookings are the
    # same objects, and both arms book the same occurrence set.
    everyone = list(requests) + urgent
    problems = verify_ledger(ledger, everyone)
    assert not problems, f"repaired ledger rejected: {problems[:5]}"
    problems = verify_ledger(replan.ledger, everyone)
    assert not problems, f"replanned ledger rejected: {problems[:5]}"
    for bid in outcome.untouched:
        assert ledger.get(bid) is before[bid], (
            f"repair rebuilt untouched booking {bid!r}"
        )
    # On a near-saturated horizon the two greedy arms may disagree on a few
    # marginal occurrences (the small-scenario differential tests pin exact
    # equality); here the contract is acceptance plus coverage.
    ours = {(b.request_id, b.occurrence) for b in ledger.bookings}
    theirs = {(b.request_id, b.occurrence) for b in replan.ledger.bookings}
    coverage = len(ours) / max(1, len(theirs))
    assert coverage >= 0.9, (
        f"repair booked {len(ours)} occurrences vs replan's {len(theirs)} "
        f"({coverage:.0%}); divergence only-repair={sorted(ours - theirs)} "
        f"only-replan={sorted(theirs - ours)}"
    )

    speedup = replan_s / repair_s if repair_s > 0 else float("inf")
    decisions_avoided = replan.decisions - outcome.stats.decisions
    assert decisions_avoided > 0, (
        f"repair spent {outcome.stats.decisions} decisions, "
        f"replan {replan.decisions}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"repair speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x floor "
        f"(repair {repair_s:.3f}s vs replan {replan_s:.3f}s)"
    )

    strategies = sorted(outcome.repaired.values())
    lines = [
        "Reservation repair vs from-scratch replan",
        f"(quick_mode={QUICK}, {N_REQUESTS} requests, "
        f"{len(plan0.booked)} booked, {N_URGENT} urgent arrivals, "
        f"{len(invalidate)} invalidations, seed={SEED})",
        "",
        f"{'arm':<10}{'seconds':>10}{'decisions':>11}",
        f"{'replan':<10}{replan_s:>10.3f}{replan.decisions:>11}",
        f"{'repair':<10}{repair_s:>10.3f}{outcome.stats.decisions:>11}",
        "",
        f"speedup {speedup:.1f}x  decisions avoided {decisions_avoided}  "
        f"untouched {len(outcome.untouched)}/{len(before)}  "
        f"coverage {coverage:.0%} of replan's bookings",
        f"strategies used: {', '.join(strategies) or 'none'}",
        "ledgers verified; untouched bookings object-identical",
    ]
    data = {
        "quick_mode": QUICK,
        "seed": SEED,
        "requests": N_REQUESTS,
        "booked": len(plan0.booked),
        "urgent": N_URGENT,
        "invalidations": len(invalidate),
        "repair_s": repair_s,
        "replan_s": replan_s,
        "speedup": speedup,
        "decisions_repair": outcome.stats.decisions,
        "decisions_replan": replan.decisions,
        "decisions_avoided": decisions_avoided,
        "untouched": len(outcome.untouched),
        "coverage": coverage,
    }
    report("request_repair", "\n".join(lines))
    merge_json("perf_suite", {"reserve": data})


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["RESERVE_REPAIR_QUICK"] = "1"
        QUICK = True
        N_REQUESTS = 24
        N_URGENT = 2
        MIN_BOOKED = 18
        MIN_SPEEDUP = 3.0

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_request_repair(_report, merge_json_results)

"""Overhead of the repro.obs instrumentation, on and off.

The observability layer promises two things: with tracing *off* (the
default) the instrumented guards cost a negligible slice of a scheduling
decision (budget: <=3%), and with tracing *on* the recorded run is
bit-identical to an untraced one.  This benchmark measures both on the
scheduling-scaling workload (a full AppLeS decision over an exhaustive
candidate space).

Disabled-mode overhead cannot be measured by diffing two builds — the
guards are always compiled in — so it is bounded from above instead:
microbench the cost of one ``get_tracer()``/``.enabled`` guard, count how
many instrumentation operations one traced decision performs (spans +
events + every counter/histogram update), and charge the decision one
guard per operation.  The count deliberately over-charges (a counter
bumped by ``inc(n)`` counts ``n`` times), so the reported fraction is an
upper bound.

Results go to ``benchmarks/results/obs_overhead.txt`` and are merged into
``benchmarks/results/perf_suite.json`` under ``obs_overhead``.

Set ``OBS_OVERHEAD_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the reduced
CI smoke run.  The <=3% disabled-overhead assertion and the on/off
bit-identity assertion hold in every mode.
"""

from __future__ import annotations

import os
import time

from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.obs.trace import Tracer, get_tracer, tracing
from repro.sim.testbeds import nile_testbed, sdsc_pcl_testbed
from repro.sim.warmcache import clear_warm_cache, warmed_state

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("OBS_OVERHEAD_QUICK", "PERF_SUITE_QUICK")
)

SEED = 7
WARMUP_S = 600.0


def _workload():
    """(pool label, testbed builder, problem) for the current mode."""
    if QUICK:
        return "sdsc_pcl", sdsc_pcl_testbed, JacobiProblem(n=600, iterations=20)
    return "nile", nile_testbed, JacobiProblem(n=1000, iterations=50)


def _decide(builder, problem, tracer=None):
    """One timed decision; ``tracer`` non-None runs it traced."""
    testbed, nws = warmed_state(builder, seed=SEED, warmup_s=WARMUP_S)
    agent = make_jacobi_agent(testbed, problem, nws=nws)
    if tracer is None:
        t0 = time.perf_counter()
        decision = agent.schedule()
        elapsed = time.perf_counter() - t0
    else:
        with tracing(tracer=tracer):
            t0 = time.perf_counter()
            decision = agent.schedule()
            elapsed = time.perf_counter() - t0
    return decision, elapsed


def _signature(decision):
    """The observable outcome: chosen machines, allocations, prediction."""
    return (
        decision.best_objective,
        decision.best.predicted_time,
        tuple((a.machine, a.work_units) for a in decision.best.allocations),
    )


def _guard_cost_s(iterations: int = 200_000) -> float:
    """Seconds per disabled-instrumentation guard (get_tracer + enabled test)."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        tr = get_tracer()
        if tr.enabled:  # pragma: no cover - tracing is off here
            raise AssertionError("benchmark requires tracing off")
    return (time.perf_counter() - t0) / iterations


def _operation_count(tracer: Tracer) -> int:
    """Upper bound on instrumentation operations recorded by one tracer.

    Spans and events are one operation each; counters are charged their
    *value* (over-counting bulk ``inc(n)`` updates on purpose) and
    histograms their observation count.
    """
    ops = 0
    for r in tracer.records():
        kind = r["kind"]
        if kind in ("span", "event"):
            ops += 1
        elif kind == "metric" and r["metric"] == "counter":
            ops += int(r["value"])
        elif kind == "metric" and r["metric"] == "histogram":
            ops += int(r["count"])
    return ops


def bench_obs_overhead(report, merge_json):
    label, builder, problem = _workload()
    repeats = 2 if QUICK else 3
    clear_warm_cache()

    # Untimed first decisions absorb one-off effects per arm.
    _decide(builder, problem)
    off_best = float("inf")
    off_dec = None
    for _ in range(repeats):
        dec, dt = _decide(builder, problem)
        off_best, off_dec = min(off_best, dt), dec

    _decide(builder, problem, tracer=Tracer())
    on_best = float("inf")
    on_dec, on_tracer = None, None
    for _ in range(repeats):
        tracer = Tracer()
        dec, dt = _decide(builder, problem, tracer=tracer)
        if dt < on_best:
            on_best = dt
        on_dec, on_tracer = dec, tracer

    # Tracing must never perturb the decision.
    assert _signature(off_dec) == _signature(on_dec), "tracing changed the decision"

    guard_s = _guard_cost_s()
    ops = _operation_count(on_tracer)
    disabled_overhead = (guard_s * ops) / off_best
    enabled_overhead = on_best / off_best - 1.0

    lines = [
        "repro.obs overhead on one scheduling decision",
        f"(quick_mode={QUICK}, pool={label}, problem n={problem.n} x "
        f"{problem.iterations} iters, min of {repeats} runs)",
        "",
        f"decision, tracing off:   {off_best * 1e3:9.2f} ms",
        f"decision, tracing on:    {on_best * 1e3:9.2f} ms "
        f"({enabled_overhead:+.1%})",
        f"guard cost:              {guard_s * 1e9:9.1f} ns/site",
        f"instrumentation ops:     {ops:9d} per traced decision",
        f"disabled overhead bound: {disabled_overhead:9.3%} of a decision "
        "(budget 3%)",
    ]
    data = {
        "quick_mode": QUICK,
        "pool": label,
        "problem": {"n": problem.n, "iterations": problem.iterations},
        "repeats": repeats,
        "decision_off_s": off_best,
        "decision_on_s": on_best,
        "guard_cost_s": guard_s,
        "instrumentation_ops": ops,
        "disabled_overhead_bound": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "decisions_identical": True,
    }
    report("obs_overhead", "\n".join(lines), data)
    merge_json("perf_suite", {"obs_overhead": data})

    # The acceptance budget: even charging one guard per recorded
    # operation, disabled-mode instrumentation stays within 3% of a
    # scheduling decision.
    assert disabled_overhead <= 0.03, (
        f"disabled-mode overhead bound {disabled_overhead:.3%} exceeds 3%"
    )


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["OBS_OVERHEAD_QUICK"] = "1"
        QUICK = True

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_obs_overhead(_report, merge_json_results)

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts,
prints the rows/series the paper reports, and archives the rendered table
under ``benchmarks/results/`` so the output survives pytest's capture.
When a benchmark also passes structured ``data``, it is archived as JSON
next to the text — machine-readable results for downstream comparison.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Print a rendered table and archive it under benchmarks/results/.

    ``report(name, text, data=None)``: ``text`` goes to stdout and
    ``results/<name>.txt``; ``data`` (any JSON-serialisable object) goes
    to ``results/<name>.json``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str, data=None) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n"
            )

    return _report


def merge_json_results(name: str, updates: dict) -> dict:
    """Merge ``updates`` into ``results/<name>.json`` by top-level key.

    Several benchmarks contribute sections to one archive (e.g.
    ``perf_suite.json`` holds both the runner suite and the scheduling
    scaling section); a wholesale overwrite by one would drop the others'
    keys.  Unreadable or non-object existing content is replaced.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    existing: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except ValueError:
            loaded = None
        if isinstance(loaded, dict):
            existing = loaded
    existing.update(updates)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return existing


@pytest.fixture(scope="session")
def merge_json():
    """Session fixture wrapping :func:`merge_json_results`."""
    return merge_json_results

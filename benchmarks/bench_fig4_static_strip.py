"""FIG4 — the non-uniform compile-time strip partition for n = 2000.

Regenerates the paper's Figure 4: strip heights proportional to nominal
CPU speed, "calculated statically at compile time, and parameterized by
(non-uniform) CPU speeds and bandwidth for the workstation network".  The
benchmark measures the static planning path alone.
"""

from __future__ import annotations

from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.jacobi.apples import StaticStripPlanner
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table


def _plan_static():
    testbed = sdsc_pcl_testbed(seed=1996)
    problem = JacobiProblem(n=2000, iterations=100)
    info = InformationPool(
        pool=ResourcePool(testbed.topology), hat=jacobi_hat(problem)
    )
    schedule = StaticStripPlanner(problem).plan(testbed.host_names, info)
    return testbed, schedule


def bench_fig4_static_strip(benchmark, report):
    testbed, schedule = benchmark(_plan_static)
    partition = schedule.metadata["partition"]

    table = Table(
        ["machine", "nominal MFLOP/s", "rows", "fraction of grid"],
        title="FIG4 — non-uniform static strip partition of Jacobi2D, n=2000",
    )
    for strip in partition.strips:
        speed = testbed.topology.host(strip.machine).speed_mflops
        table.add(strip.machine, speed, strip.row_count, strip.row_count / 2000)
    report("fig4_static_strip", table.render())

    rows = {s.machine: s.row_count for s in partition.strips}
    # Strip heights track nominal speed (45:30:20:8 MFLOP/s ordering).
    assert rows["alpha1"] > rows["rs6000a"] > rows["sparc10"] > rows["sparc2"]
    assert sum(rows.values()) == 2000
    # Every machine participates — the compile-time scheduler has no load
    # information with which to exclude anything.
    assert len(rows) == 8

"""Solo-decision throughput: scalar fast path vs the one-shot tensor sweep.

PR2's scalar fast path (forecast snapshot + memoised models + lower-bound
pruning) still plans every unpruned candidate one ``plan()`` call at a
time — ~2500 scalar plans for one exhaustive 12-machine decision.  The
vectorised solo decision (:mod:`repro.core.sweep` +
``AppLeSAgent._schedule_vectorised``) stacks all candidate sets into one
membership-mask matrix and evaluates them in a single
``evaluate_strip_batch`` call, then replays the canonical incumbent/
pruning order over the precomputed objectives.

Three arms per pool, each a complete ``agent.schedule()``:

- ``reference``  — ``REPRO_NO_FASTPATH`` semantics (no snapshot, no
  pruning, no vectorisation): the ground truth everything must match.
- ``scalar``     — the PR2 fast path with ``REPRO_NO_SOLO_VECTOR``
  semantics: pruned, memoised, but planned candidate-by-candidate.
- ``vector``     — the fast path with the one-shot tensor sweep.

Pools: sdsc_pcl (8 hosts, 255 candidates), nile (12 hosts, 4095) and a
14-host synthetic metacomputer (16383) — all forced exhaustive, so the
sweep width doubles per extra host.  Every arm asserts decision
equivalence against the reference: same resource set, allocations and
objective — the speedup is free only because it changes nothing.

The bench also times a small arena regret run
(:func:`repro.arena.run_regret_bench`), whose per-policy wall-clock
column rides the same vectorised solo path, and records it alongside.

Results go to ``benchmarks/results/solo_decision.txt`` and merge into
``benchmarks/results/perf_suite.json`` under ``solo_decision``.

Set ``SOLO_DECISION_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the reduced
CI smoke run; only the full run asserts the >=3x vector-over-scalar
target on the exhaustive 12-machine decision, where timing is stable.
"""

from __future__ import annotations

import os
import time

from repro.arena import run_regret_bench
from repro.core.selector import ResourceSelector
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.sim.testbeds import (
    nile_testbed,
    sdsc_pcl_testbed,
    synthetic_metacomputer,
)
from repro.sim.warmcache import clear_warm_cache, warmed_state
from repro.util import perf

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("SOLO_DECISION_QUICK", "PERF_SUITE_QUICK")
)

SEED = 7
WARMUP_S = 600.0

# (label, builder, builder_kwargs, hosts) — all swept exhaustively.
POOLS = [
    ("sdsc_pcl", sdsc_pcl_testbed, {}, 8),
    ("nile", nile_testbed, {}, 12),
    ("synth14", synthetic_metacomputer, {"n_hosts": 14}, 14),
]

ARMS = ("reference", "scalar", "vector")


def _problem() -> JacobiProblem:
    if QUICK:
        return JacobiProblem(n=600, iterations=20)
    return JacobiProblem(n=1000, iterations=50)


def _decide(builder, kwargs, hosts, problem, arm):
    """One timed solo decision: (decision, seconds).  Warm-up is setup."""
    testbed, nws = warmed_state(
        builder, seed=SEED, warmup_s=WARMUP_S, builder_kwargs=kwargs
    )
    selector = ResourceSelector(
        exhaustive_limit=max(12, hosts),
        max_sets=2**hosts - 1,
        regime="exhaustive",
    )
    fast = arm != "reference"
    with perf.fastpath(fast), perf.solo_vector(arm == "vector"):
        agent = make_jacobi_agent(testbed, problem, nws=nws, selector=selector)
        t0 = time.perf_counter()
        decision = agent.schedule()
        elapsed = time.perf_counter() - t0
    return decision, elapsed


def _signature(decision):
    """The observable outcome: objective, prediction, allocations."""
    return (
        decision.best_objective,
        decision.best.predicted_time,
        tuple((a.machine, a.work_units) for a in decision.best.allocations),
    )


def bench_solo_decision(report, merge_json):
    problem = _problem()
    repeats = 1 if QUICK else 3
    rows = []
    for label, builder, kwargs, hosts in POOLS:
        clear_warm_cache()
        timings: dict[str, float] = {}
        decisions: dict[str, object] = {}
        for arm in ARMS:
            # One untimed decision absorbs first-run effects (snapshot
            # allocation, import latencies); timed runs follow back-to-back.
            _decide(builder, kwargs, hosts, problem, arm)
            best = float("inf")
            for _ in range(repeats):
                dec, dt = _decide(builder, kwargs, hosts, problem, arm)
                best = min(best, dt)
                decisions[arm] = dec
            timings[arm] = best

        # Decision equivalence: all three arms agree bit-for-bit, and only
        # the vector arm actually took the one-shot tensor sweep.
        ref_sig = _signature(decisions["reference"])
        for arm in ("scalar", "vector"):
            assert _signature(decisions[arm]) == ref_sig, (label, arm)
        assert decisions["vector"].vectorised, label
        assert not decisions["scalar"].vectorised, label
        assert not decisions["reference"].vectorised, label
        # Scalar and vector arms share bounds, so they prune identically.
        assert decisions["vector"].pruning == decisions["scalar"].pruning, label

        rows.append(
            {
                "pool": label,
                "hosts": hosts,
                "candidates": decisions["vector"].candidates_considered,
                "reference_s": timings["reference"],
                "scalar_s": timings["scalar"],
                "vector_s": timings["vector"],
                "reference_dps": 1.0 / timings["reference"],
                "scalar_dps": 1.0 / timings["scalar"],
                "vector_dps": 1.0 / timings["vector"],
                "vector_over_scalar": timings["scalar"] / timings["vector"],
                "pruned": decisions["vector"].pruning.pruned
                if decisions["vector"].pruning
                else 0,
            }
        )

    # Arena regret wall-clock: the per-policy seconds column rides the
    # same vectorised solo path the rows above measure in isolation.
    if QUICK:
        _, _, arena = run_regret_bench(
            classes=("sdsc8",), per_class=2, seed=2024, sizes=(400,),
            iterations=10,
        )
    else:
        _, _, arena = run_regret_bench(
            classes=("sdsc8", "synth14"), per_class=3, seed=2024,
            sizes=(400, 700), iterations=20,
        )
    arena_seconds: dict[str, dict[str, float]] = {}
    for (klass, policy), elapsed in sorted(arena.seconds.items()):
        arena_seconds.setdefault(klass, {})[policy] = elapsed

    lines = [
        "Solo-decision throughput: scalar fast path vs one-shot tensor sweep",
        f"(quick_mode={QUICK}, problem n={problem.n} x {problem.iterations}"
        f" iters, min of {repeats} runs, all pools exhaustive)",
        "",
        f"{'pool':<10}{'hosts':>6}{'cands':>7}{'ref/s':>8}{'scalar/s':>10}"
        f"{'vector/s':>10}{'vec/scalar':>12}{'pruned':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['pool']:<10}{r['hosts']:>6}{r['candidates']:>7}"
            f"{r['reference_dps']:>8.2f}{r['scalar_dps']:>10.2f}"
            f"{r['vector_dps']:>10.2f}{r['vector_over_scalar']:>11.2f}x"
            f"{r['pruned']:>8}"
        )
    lines.append("")
    lines.append("arena regret wall-clock (s per policy over the class):")
    for klass in sorted(arena_seconds):
        for policy in sorted(arena_seconds[klass]):
            lines.append(
                f"  {klass:<8}{policy:<12}{arena_seconds[klass][policy]:.2f}"
            )
    data = {
        "quick_mode": QUICK,
        "problem": {"n": problem.n, "iterations": problem.iterations},
        "repeats": repeats,
        "pools": rows,
        "arena_seconds": arena_seconds,
    }
    report("solo_decision", "\n".join(lines), data)
    merge_json("perf_suite", {"solo_decision": data})

    # Smoke assertions hold in any mode.
    for r in rows:
        assert r["vector_s"] > 0 and r["scalar_s"] > 0 and r["reference_s"] > 0
    exhaustive_12 = next(r for r in rows if r["hosts"] == 12)
    assert exhaustive_12["candidates"] == 4095
    assert arena.seconds, "arena run should have recorded per-policy seconds"
    if not QUICK:
        # The headline acceptance target: the one-shot tensor sweep is
        # >=3x the scalar fast path on exhaustive 12-machine decisions,
        # measured only at full scale where timing is stable.
        assert exhaustive_12["vector_over_scalar"] >= 3.0, exhaustive_12


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["SOLO_DECISION_QUICK"] = "1"
        QUICK = True

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_solo_decision(_report, merge_json_results)

"""FIG5 — Jacobi2D execution-time averages: AppLeS vs Strip vs Blocked.

Regenerates the paper's Figure 5 protocol at full scale: problem sizes
1000–2000, the three schedules executed back-to-back under the same
simulated conditions, repeated and averaged.  The paper reports AppLeS
ahead of both compile-time schedules "by factors of 2-8"; the assertion
checks that band (with slack for the simulated substrate).
"""

from __future__ import annotations

from repro.experiments import run_fig5
from repro.experiments.fig5 import DEFAULT_SIZES
from repro.util.ascii_plot import line_chart


def bench_fig5_exec_time(benchmark, report):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"sizes": DEFAULT_SIZES, "iterations": 60, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    lo, hi = result.ratio_range
    chart = line_chart(
        [r.n for r in result.rows],
        {
            "AppLeS": [r.apples_s for r in result.rows],
            "Strip": [r.strip_s for r in result.rows],
            "Blocked": [r.blocked_s for r in result.rows],
        },
        title="Figure 5 — execution time (s) vs problem size",
    )
    report(
        "fig5_exec_time",
        result.table().render()
        + f"\n\nbaseline/AppLeS ratio range: {lo:.2f}x – {hi:.2f}x "
        "(paper: 2x – 8x)\n\n" + chart,
        data={
            "experiment": "fig5",
            "iterations": result.iterations,
            "repeats": result.repeats,
            "rows": [
                {"n": r.n, "apples_s": r.apples_s, "strip_s": r.strip_s,
                 "blocked_s": r.blocked_s, "strip_ratio": r.strip_ratio,
                 "blocked_ratio": r.blocked_ratio}
                for r in result.rows
            ],
            "ratio_range": [lo, hi],
        },
    )

    for row in result.rows:
        assert row.apples_s < row.strip_s
        assert row.apples_s < row.blocked_s
    assert lo > 1.5
    assert hi < 12.0

"""Scheduling-decision latency vs resource-pool size.

The paper's agent makes its decision by evaluating *every* candidate
resource set — ``2^n - 1`` of them up to the selector's exhaustive limit —
"at machine speeds".  This benchmark measures what one decision costs as
the pool grows, and what the fast path (forecast snapshot + memoised
models + admissible lower-bound pruning, :mod:`repro.util.perf`) buys over
the reference implementation, which remains available under
``REPRO_NO_FASTPATH=1``.

Four pools, two selector regimes:

====================  ======  ===========  ==================
pool                  hosts   candidates   selector regime
====================  ======  ===========  ==================
sdsc_pcl               8       255          exhaustive
sdsc_pcl_sp2           10      1023         exhaustive
nile                   12      4095         exhaustive
nile_4site             16      (ladder)     greedy
====================  ======  ===========  ==================

Every timing pair also asserts decision equivalence: the fast path must
return the same resource set, allocations and predicted time as the
reference loop — the speedup is free only because it changes nothing.

Results go to ``benchmarks/results/scheduling_scaling.txt`` and are merged
into ``benchmarks/results/perf_suite.json`` under ``scheduling_scaling``.

Set ``SCHED_SCALING_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the reduced
CI smoke run; only the full run's speedups are meaningful, and only the
full run asserts the >=3x fast-path target on the 12-machine exhaustive
decision.
"""

from __future__ import annotations

import os
import time

from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.sim.testbeds import nile_testbed, sdsc_pcl_testbed, sdsc_pcl_with_sp2
from repro.sim.warmcache import clear_warm_cache, warmed_state
from repro.util import perf

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("SCHED_SCALING_QUICK", "PERF_SUITE_QUICK")
)

SEED = 7
WARMUP_S = 600.0

# (label, builder, builder_kwargs, expected_regime)
POOLS = [
    ("sdsc_pcl", sdsc_pcl_testbed, {}, "exhaustive"),
    ("sdsc_pcl_sp2", sdsc_pcl_with_sp2, {}, "exhaustive"),
    ("nile", nile_testbed, {}, "exhaustive"),
    ("nile_4site", nile_testbed, {"nsites": 4}, "greedy"),
]


def _problem() -> JacobiProblem:
    if QUICK:
        return JacobiProblem(n=600, iterations=20)
    return JacobiProblem(n=1000, iterations=50)


def _decide(builder, builder_kwargs, problem, fast: bool):
    """One timed decision: (decision, seconds). Warm-up is setup, not timed."""
    testbed, nws = warmed_state(
        builder, seed=SEED, warmup_s=WARMUP_S, builder_kwargs=builder_kwargs
    )
    with perf.fastpath(fast):
        agent = make_jacobi_agent(testbed, problem, nws=nws)
        t0 = time.perf_counter()
        decision = agent.schedule()
        elapsed = time.perf_counter() - t0
    return decision, elapsed


def _signature(decision):
    """The observable outcome: chosen machines, allocations, prediction."""
    return (
        decision.best_objective,
        decision.best.predicted_time,
        tuple((a.machine, a.work_units) for a in decision.best.allocations),
    )


def bench_scheduling_scaling(report, merge_json):
    problem = _problem()
    repeats = 2 if QUICK else 3
    rows = []
    for label, builder, kwargs, regime in POOLS:
        clear_warm_cache()
        # One untimed decision per arm absorbs first-run effects (snapshot
        # allocation, import latencies); the timed runs then execute each
        # arm back-to-back so allocator state is comparable within an arm.
        ref_best = fast_best = float("inf")
        ref_dec = fast_dec = None
        _decide(builder, kwargs, problem, fast=False)
        for _ in range(repeats):
            dec, dt = _decide(builder, kwargs, problem, fast=False)
            ref_best, ref_dec = min(ref_best, dt), dec
        _decide(builder, kwargs, problem, fast=True)
        for _ in range(repeats):
            dec, dt = _decide(builder, kwargs, problem, fast=True)
            fast_best, fast_dec = min(fast_best, dt), dec

        # Decision equivalence: the fast path changes nothing observable.
        assert _signature(ref_dec) == _signature(fast_dec), label

        pool_size = len(
            warmed_state(
                builder, seed=SEED, warmup_s=WARMUP_S, builder_kwargs=kwargs
            )[0].host_names
        )
        pruning = fast_dec.pruning
        rows.append(
            {
                "pool": label,
                "hosts": pool_size,
                "regime": regime,
                "candidates": ref_dec.candidates_considered,
                "reference_s": ref_best,
                "fastpath_s": fast_best,
                "speedup": ref_best / fast_best,
                "pruned": pruning.pruned if pruning else 0,
                "planned": pruning.planned if pruning else None,
            }
        )

    lines = [
        "Scheduling-decision latency vs pool size",
        f"(quick_mode={QUICK}, problem n={problem.n} x {problem.iterations} iters,"
        f" min of {repeats} runs)",
        "",
        f"{'pool':<14}{'hosts':>6}{'regime':>12}{'cands':>7}"
        f"{'ref (s)':>10}{'fast (s)':>10}{'speedup':>9}{'pruned':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['pool']:<14}{r['hosts']:>6}{r['regime']:>12}{r['candidates']:>7}"
            f"{r['reference_s']:>10.3f}{r['fastpath_s']:>10.3f}"
            f"{r['speedup']:>8.2f}x{r['pruned']:>8}"
        )
    data = {
        "quick_mode": QUICK,
        "problem": {"n": problem.n, "iterations": problem.iterations},
        "repeats": repeats,
        "pools": rows,
    }
    report("scheduling_scaling", "\n".join(lines))
    merge_json("perf_suite", {"scheduling_scaling": data})

    # Smoke assertions hold in any mode.
    for r in rows:
        assert r["fastpath_s"] > 0 and r["reference_s"] > 0
    exhaustive_12 = next(r for r in rows if r["pool"] == "nile")
    assert exhaustive_12["candidates"] == 4095
    if not QUICK:
        # The headline acceptance target: >=3x on exhaustive 12-machine
        # decisions, measured only at full scale where timing is stable.
        assert exhaustive_12["speedup"] >= 3.0, exhaustive_12


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["SCHED_SCALING_QUICK"] = "1"
        QUICK = True

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_scheduling_scaling(_report, merge_json_results)

"""Blueprint cost — "consider more options ... at machine speeds" (§5).

The AppLeS pitch is that the agent does what a careful user does, but at
machine speeds over many more candidates.  This benchmark actually times
the blueprint (Resource Selector over all subsets + planning + estimation
+ choice) on the Figure 2 pool, using pytest-benchmark's statistics —
the one benchmark here where wall-clock of *our code* (not simulated
time) is the measurement.
"""

from __future__ import annotations

from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import sdsc_pcl_testbed


def bench_blueprint_scaling(benchmark, report):
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.warmup(600.0)
    problem = JacobiProblem(n=2000, iterations=100)
    agent = make_jacobi_agent(testbed, problem, nws)

    decision = benchmark(agent.schedule)

    report(
        "blueprint_scaling",
        f"blueprint over {decision.candidates_considered} candidate resource "
        f"sets ({decision.candidates_feasible} feasible) on an 8-machine pool\n"
        + decision.explain(top=5),
    )
    assert decision.candidates_considered == 255
    assert decision.best.decomposition == "apples-strip"

"""Ensemble tensor backend throughput vs replica count and testbed size.

Monte-Carlo confidence intervals demand hundreds of replica simulations
per figure; the question is what one *pass* costs.  This benchmark sweeps
16/64/256-replica ensembles of :func:`synthetic_metacomputer` testbeds
(8–64 hosts) under the ring allocation and times
:func:`repro.sim.execution_ensemble.run_ensemble` against the honest
baseline — a Python loop of one
:class:`~repro.sim.execution_fast.CompiledExecution` per replica, compile
included, which is exactly what the figure drivers did before the
ensemble axis existed.

Every timing pair also asserts *per-replica bit-identity*: the ensemble
pass must return every replica's ``total_time``, ``iteration_times`` and
``host_busy_time`` float-for-float equal to the loop's — the batching is
free only because it changes nothing.

Results go to ``benchmarks/results/ensemble_scaling.txt`` and are merged
into ``benchmarks/results/perf_suite.json`` under ``ensemble_scaling``.

Set ``ENSEMBLE_SCALING_QUICK=1`` (or ``PERF_SUITE_QUICK=1``) for the
reduced CI smoke run; only the full run's speedups are meaningful, and
only the full run asserts the >=3x target at 64 replicas.
"""

from __future__ import annotations

import os
import time

from repro.sim.execution_ensemble import (
    EnsembleExecution,
    replicated,
    run_ensemble,
)
from repro.sim.execution_fast import CompiledExecution

QUICK = any(
    os.environ.get(var, "").strip().lower() in ("1", "true", "yes")
    for var in ("ENSEMBLE_SCALING_QUICK", "PERF_SUITE_QUICK")
)

SEED = 7

#: Ring-exchange grain per iteration, matched to the Figure 5 Jacobi
#: strips at N≈1000 (~2 MFLOP per host, ~16 KB border columns): steps of
#: a few hundred milliseconds against 10 s availability epochs, so the
#: benchmark measures stepping throughput rather than shared epoch
#: generation (which both arms pay identically).
GRAIN = {"work_mflop": 2.0, "comm_bytes": 16_000.0}

#: (replicas, hosts, iterations) sweep points.  The replica axis carries
#: the headline (16/64/256 on 8 hosts); the host axis shows the entry
#: dimension scaling (64 replicas on 8/32/64 hosts).
SWEEP = [
    (16, 8, 400),
    (64, 8, 400),
    (256, 8, 200),
    (64, 32, 200),
    (64, 64, 120),
]
SWEEP_QUICK = [(16, 8, 20), (64, 8, 16)]


def _run_loop(n_replicas: int, n_hosts: int, iterations: int):
    """Baseline: one CompiledExecution per replica, compile included."""
    specs = replicated(n_replicas, n_hosts=n_hosts, seed=SEED, **GRAIN)
    t0 = time.perf_counter()
    results = [
        CompiledExecution(spec.topology, spec.assignments).run(
            iterations, spec.t0
        )
        for spec in specs
    ]
    return results, time.perf_counter() - t0


def _run_ensemble(n_replicas: int, n_hosts: int, iterations: int):
    """One batched struct-of-arrays pass, compile included."""
    specs = replicated(n_replicas, n_hosts=n_hosts, seed=SEED, **GRAIN)
    t0 = time.perf_counter()
    results = run_ensemble(specs, iterations)
    return results, time.perf_counter() - t0


def bench_ensemble_scaling(report, merge_json):
    sweep = SWEEP_QUICK if QUICK else SWEEP
    repeats = 1 if QUICK else 3
    rows = []
    for n_replicas, n_hosts, iterations in sweep:
        loop_best = ens_best = float("inf")
        loop_res = ens_res = None
        for _ in range(repeats):
            res, dt = _run_loop(n_replicas, n_hosts, iterations)
            loop_best, loop_res = min(loop_best, dt), res
        for _ in range(repeats):
            res, dt = _run_ensemble(n_replicas, n_hosts, iterations)
            ens_best, ens_res = min(ens_best, dt), res

        # Per-replica bit-identity: batching changes nothing observable.
        key = (n_replicas, n_hosts)
        assert len(ens_res) == len(loop_res), key
        for a, b in zip(ens_res, loop_res):
            assert a.total_time == b.total_time, key
            assert a.iteration_times == b.iteration_times, key
            assert a.host_busy_time == b.host_busy_time, key

        rows.append(
            {
                "replicas": n_replicas,
                "hosts": n_hosts,
                "iterations": iterations,
                "loop_s": loop_best,
                "ensemble_s": ens_best,
                "speedup": loop_best / ens_best,
                "replica_iters_per_s": n_replicas * iterations / ens_best,
            }
        )

    lines = [
        "Ensemble tensor backend vs loop-of-CompiledExecution",
        f"(quick_mode={QUICK}, ring exchange over synthetic_metacomputer,"
        f" min of {repeats} run(s), compile included in both arms)",
        "",
        f"{'replicas':>9}{'hosts':>7}{'iters':>7}{'loop (s)':>10}"
        f"{'ensemble (s)':>13}{'speedup':>9}{'rep-it/s':>10}",
    ]
    for r in rows:
        lines.append(
            f"{r['replicas']:>9}{r['hosts']:>7}{r['iterations']:>7}"
            f"{r['loop_s']:>10.3f}{r['ensemble_s']:>13.3f}"
            f"{r['speedup']:>8.2f}x{r['replica_iters_per_s']:>10.0f}"
        )
    data = {
        "quick_mode": QUICK,
        "repeats": repeats,
        "seed": SEED,
        "grain": GRAIN,
        "sweep": rows,
    }
    report("ensemble_scaling", "\n".join(lines), data)
    merge_json("perf_suite", {"ensemble_scaling": data})

    # Smoke assertions hold in any mode.
    for r in rows:
        assert r["loop_s"] > 0 and r["ensemble_s"] > 0
    if not QUICK:
        # The headline acceptance target: >=3x at 64 replicas, measured
        # only at full scale where timing is stable.
        rep_64 = next(r for r in rows if r["replicas"] == 64 and r["hosts"] == 8)
        assert rep_64["speedup"] >= 3.0, rep_64


def bench_ensemble_compile_overhead(report):
    """Compile wall time stays a small fraction of a pass, and the
    shared-world dedupe collapses the tables of assignment-only sweeps.

    Two arms: the standard sweep (a world per replica — nothing to
    share), and a Monte-Carlo-over-allocations sweep (one world, many
    assignments), run with ``share_tables`` on and off to record the
    dedupe's row/memory/fill delta.  Both modes must return bit-identical
    results — dedupe is a compile-layout change, never arithmetic.
    """
    n_replicas, n_hosts, iterations = (16, 8, 10) if QUICK else (64, 8, 60)
    specs = replicated(n_replicas, n_hosts=n_hosts, seed=SEED, **GRAIN)
    t0 = time.perf_counter()
    ex = EnsembleExecution(specs, iterations)
    compile_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    ex.run()
    run_s = time.perf_counter() - t0

    # Shared-world arm: one testbed, assignment-only replica variants.
    from repro.sim.execution_ensemble import ReplicaSpec, ring_assignments
    from repro.sim.testbeds import synthetic_metacomputer

    testbed = synthetic_metacomputer(n_hosts, seed=SEED)
    shared_specs = [
        ReplicaSpec(
            testbed.topology,
            ring_assignments(
                testbed,
                work_mflop=GRAIN["work_mflop"] * (1.0 + 0.05 * j),
                comm_bytes=GRAIN["comm_bytes"],
            ),
        )
        for j in range(n_replicas)
    ]
    arms = {}
    results = {}
    for label, share in (("shared", True), ("private", False)):
        t0 = time.perf_counter()
        exs = EnsembleExecution(shared_specs, iterations, share_tables=share)
        arm_compile_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        results[label] = exs.run()
        arm_run_s = time.perf_counter() - t0
        arms[label] = {
            "compile_ms": arm_compile_s * 1e3,
            "run_ms": arm_run_s * 1e3,
            "rate_rows": exs.compile_report["rate_rows"],
            "pairs": exs.compile_report["pairs"],
            "entries": exs.compile_report["entries"],
            "table_mb": (exs._rates.nbytes + exs._pair_bw.nbytes) / 2**20,
        }
    # Bit-identity across the dedupe: layout only, never arithmetic.
    for a, b in zip(results["shared"], results["private"]):
        assert a.total_time == b.total_time
        assert a.iteration_times == b.iteration_times
        assert a.host_busy_time == b.host_busy_time
    sh, pr = arms["shared"], arms["private"]
    assert sh["rate_rows"] < pr["rate_rows"]
    assert sh["pairs"] <= pr["pairs"]

    text = (
        "Ensemble compile overhead\n"
        f"(replicas={n_replicas}, hosts={n_hosts}, iterations={iterations})\n\n"
        f"compile: {compile_s * 1e3:.1f} ms   run: {run_s * 1e3:.1f} ms   "
        f"entries: {ex.compile_report['entries']}\n\n"
        f"shared-world dedupe (one world, {n_replicas} assignment variants,"
        " bit-identical results):\n"
        f"  private tables: {pr['rate_rows']} rate rows / {pr['pairs']} pairs"
        f"   compile {pr['compile_ms']:.1f} ms   tables {pr['table_mb']:.2f} MB\n"
        f"  shared  tables: {sh['rate_rows']} rate rows / {sh['pairs']} pairs"
        f"   compile {sh['compile_ms']:.1f} ms   tables {sh['table_mb']:.2f} MB\n"
        f"  delta: {pr['rate_rows'] / sh['rate_rows']:.0f}x fewer rate rows,"
        f" {pr['table_mb'] / max(sh['table_mb'], 1e-9):.0f}x less table memory"
    )
    report("ensemble_compile_overhead", text)
    assert compile_s < 5.0


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv[1:]:
        os.environ["ENSEMBLE_SCALING_QUICK"] = "1"
        QUICK = True

    from conftest import RESULTS_DIR, merge_json_results  # noqa: F401

    def _report(name, text, data=None):
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    bench_ensemble_scaling(_report, merge_json_results)
    bench_ensemble_compile_overhead(_report)

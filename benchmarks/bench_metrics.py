"""METRIC-A6 — distinct users optimise distinct metrics (§3.1).

"Distinct users will attempt to optimize their usage of same metacomputing
resources for different performance criteria at the same time.  For
individual applications, the best scheduling strategy will optimize the
user's own performance metric."

The same Jacobi2D job scheduled by three users (execution time, monetary
cost, fixed-size speedup) must produce metric-appropriate — and for the
cost user, different — schedules from the same framework.
"""

from __future__ import annotations

from repro.experiments import run_metrics_comparison


def bench_metrics(benchmark, report):
    result = benchmark.pedantic(run_metrics_comparison, rounds=1, iterations=1)
    report("metrics", result.table().render())

    assert result.schedules_differ
    # The cost user's schedule must actually be cheapest; the time user's
    # must actually be fastest.
    assert result.costs["cost"] == min(result.costs.values())
    assert result.times["execution_time"] == min(result.times.values())
    # Fixed-size speedup is a monotone transform of time: same schedule.
    assert (
        result.schedules["speedup"].resource_set
        == result.schedules["execution_time"].resource_set
    )

"""FIG6 — Jacobi2D when memory is accounted for.

Regenerates the paper's Figure 6: two unloaded SP-2 nodes join the pool;
AppLeS uses only the SP-2 pair until real memory is exceeded at
3700×3700, then "locates available memory elsewhere in the resource pool
... without disturbing the performance trajectory", while the HPF
Uniform/Blocked partition on the SP-2 spills and collapses.
"""

from __future__ import annotations

from repro.experiments import run_fig6
from repro.experiments.fig6 import DEFAULT_SIZES_FIG6
from repro.util.ascii_plot import line_chart


def bench_fig6_memory(benchmark, report):
    result = benchmark.pedantic(
        run_fig6,
        kwargs={"sizes": DEFAULT_SIZES_FIG6, "iterations": 30},
        rounds=1,
        iterations=1,
    )
    chart = line_chart(
        [r.n for r in result.rows],
        {
            "AppLeS": [r.apples_s for r in result.rows],
            "Blocked(SP2)": [r.blocked_sp2_s for r in result.rows],
        },
        title="Figure 6 — execution time (s, log scale) vs problem size",
        logy=True,
    )
    report(
        "fig6_memory",
        result.table().render() + "\n\n" + chart,
        data={
            "experiment": "fig6",
            "crossover_n": result.crossover_n,
            "iterations": result.iterations,
            "rows": [
                {"n": r.n, "apples_s": r.apples_s,
                 "blocked_sp2_s": r.blocked_sp2_s,
                 "apples_machines": list(r.apples_machines),
                 "blocked_spills": r.blocked_spills}
                for r in result.rows
            ],
        },
    )

    below = [r for r in result.rows if r.n < result.crossover_n]
    above = [r for r in result.rows if r.n > result.crossover_n]
    # Below the crossover: AppLeS == blocked-on-SP2 (it picked the same
    # resources).
    for row in below:
        assert row.apples_uses_only_sp2, f"n={row.n}"
        assert abs(row.apples_s - row.blocked_sp2_s) / row.blocked_sp2_s < 0.15
    # Above: blocked thrashes, AppLeS integrates remote memory smoothly.
    for row in above:
        assert row.blocked_spills
        assert not row.apples_uses_only_sp2
        assert row.blocked_sp2_s > 2.0 * row.apples_s, f"n={row.n}"

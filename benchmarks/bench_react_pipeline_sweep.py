"""REACT-T2 — the pipeline-size tradeoff (§2.3).

"Too small a pipeline size means that Log-D computations will stop while
they wait for more LHSF data.  Too large a pipeline size implies a
buffering performance cost on the Log-D end."  The sweep over the
admissible 5–20 surface-function range must show an interior optimum.
"""

from __future__ import annotations

from repro.experiments import run_react


def bench_react_pipeline_sweep(benchmark, report):
    result = benchmark.pedantic(run_react, rounds=1, iterations=1)
    best_k = min(result.sweep, key=lambda pair: pair[1].makespan_s)[0]
    report(
        "react_pipeline_sweep",
        result.sweep_table().render()
        + f"\n\nbest simulated pipeline size: {best_k} "
        + f"(AppLeS model chose {result.chosen_pipeline_size})",
    )

    assert result.sweep_is_convexish
    # The analytic model's choice lands within a couple of units of the
    # simulated optimum.
    assert abs(best_k - result.chosen_pipeline_size) <= 3
    # Small pipelines stall the consumer more than large ones do.
    stall_small = result.sweep[0][1].consumer_stall_s
    stall_large = result.sweep[-1][1].consumer_stall_s
    assert stall_small >= stall_large

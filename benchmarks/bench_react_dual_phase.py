"""REACT-T3 — the dual Log-D phase (§2.3 extension).

"Another version of the application directs the C90 to calculate a second
set of Log-D iterations instead of stopping ... This second phase ...
would have no interprocessor communication since ... both machines have a
full set of LHSFs stored in their respective memories."

Compares computing two Log-D sets by (a) running the whole pipeline twice
and (b) the dual-phase version: pipeline once, then both machines
propagate concurrently with zero communication.
"""

from __future__ import annotations

from repro.react.dual_phase import compare_versions, simulate_dual_phase
from repro.react.pipeline import simulate_pipeline
from repro.react.tasks import ReactProblem
from repro.sim.testbeds import casa_testbed


def bench_react_dual_phase(benchmark, report):
    testbed = casa_testbed()
    problem = ReactProblem()

    def run():
        table = compare_versions(
            testbed.topology, problem, "c90", "paragon", 10, extra_logd_passes=1
        )
        dual = simulate_dual_phase(
            testbed.topology, problem, "c90", "paragon", 10, 1
        )
        repeated = simulate_pipeline(
            testbed.topology,
            ReactProblem(**{**problem.__dict__, "passes": 2}),
            "c90", "paragon", 10,
        )
        return table, dual, repeated

    table, dual, repeated = benchmark.pedantic(run, rounds=1, iterations=1)
    report("react_dual_phase", table.render())

    assert dual.total_s < repeated.makespan_s
    # Both machines carry Log-D work in the extra phase, Paragon more.
    assert 0.0 < dual.lhsf_share < dual.logd_share

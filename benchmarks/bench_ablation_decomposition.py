"""ABL-A7 — strip vs generalised-block decompositions (§5's deferral).

The paper's Jacobi2D user restricted planning to strip decompositions,
deferring non-strip layouts as too non-linear to predict.  This benchmark
runs the full blueprint with both the strip planner and the
generalised-block planner and executes the winners; the expected result
is that strips are competitive on this testbed — the deferral cost
little — while the block machinery exists for topologies where it would
not.
"""

from __future__ import annotations

from repro.experiments import run_decomposition_ablation


def bench_ablation_decomposition(benchmark, report):
    result = benchmark.pedantic(run_decomposition_ablation, rounds=1, iterations=1)
    report("ablation_decomposition", result.table().render())

    # The generalised-block plan must be a legitimate alternative (finite,
    # grid covered) and strips must hold their own.
    assert result.blocked_s > 0
    assert result.strip_competitive

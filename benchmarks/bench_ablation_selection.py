"""ABL-A3 — the value of resource selection (§5).

"Minimal execution time can often be achieved through maximal resource
utilization" is the *user's* intuition the paper contrasts with AppLeS:
the agent frequently schedules on a strict subset.  This ablation compares
AppLeS's chosen subset against being forced to use every machine and
against the best single machine.
"""

from __future__ import annotations

from repro.experiments import run_selection_ablation


def bench_ablation_selection(benchmark, report):
    result = benchmark.pedantic(
        run_selection_ablation,
        kwargs={"n": 1600, "iterations": 60},
        rounds=1,
        iterations=1,
    )
    report("ablation_selection", result.table().render())

    assert result.apples_s < result.best_single_s
    # Subset selection must not lose to use-everything (small tolerance:
    # both schedules run under live load).
    assert result.apples_s <= result.all_machines_s * 1.05
    assert result.apples_machines < 8

"""Performance suite: the parallel runner + hot-path optimisation budget.

Measures, on this machine, what the optimisation work is actually worth:

- **fig5 driver** — the seed-equivalent implementation (fast paths
  disabled via :mod:`repro.util.perf`) vs the optimised serial driver vs
  the optimised driver at 4 workers.  The recorded
  ``speedup_parallel_vs_baseline`` compares ``--workers 4`` against the
  seed-equivalent serial baseline, i.e. the end-to-end win a user gets.
- **fig6 / selection ablation** — optimised serial vs 2-worker parallel.
- **NWS evaluation loop** — the forecaster-battery scoring loop
  (``run_nws_comparison``) with fast paths off vs on: the pure
  single-process win from the incremental window statistics and ensemble
  memoisation.

All timings are wall-clock of the driver call only (no interpreter
start-up), with the warm-state cache cleared before every run so nothing
is amortised across measurements.  Results are archived machine-readably
in ``benchmarks/results/perf_suite.json``.

Set ``PERF_SUITE_QUICK=1`` (CI smoke) to run reduced problem scales; the
quick mode checks plumbing and archives results, but only the full run's
speedups are meaningful.
"""

from __future__ import annotations

import os
import time

from repro.experiments import (
    run_fig5,
    run_fig6,
    run_nws_comparison,
    run_selection_ablation,
)
from repro.sim.warmcache import clear_warm_cache
from repro.util import perf

QUICK = os.environ.get("PERF_SUITE_QUICK", "").strip().lower() in ("1", "true", "yes")


def _timed(fn, /, **kwargs):
    """(result, seconds) for one cold driver call."""
    clear_warm_cache()
    t0 = time.perf_counter()
    result = fn(**kwargs)
    return result, time.perf_counter() - t0


def bench_perf_suite(report, merge_json):
    data: dict = {"quick_mode": QUICK, "cpu_count": os.cpu_count()}

    # -- fig5: baseline (seed-equivalent) vs optimised serial vs parallel --
    fig5_kwargs = (
        dict(sizes=(1000, 1400), iterations=10, repeats=2)
        if QUICK
        else dict()
    )
    with perf.fastpath(False):
        base_result, base_s = _timed(run_fig5, **fig5_kwargs, workers=1)
    with perf.fastpath(True):
        opt_result, opt_s = _timed(run_fig5, **fig5_kwargs, workers=1)
        par_result, par_s = _timed(run_fig5, **fig5_kwargs, workers=4)
    assert par_result.table().render() == opt_result.table().render()
    data["fig5"] = {
        "baseline_serial_s": base_s,
        "optimized_serial_s": opt_s,
        "optimized_parallel4_s": par_s,
        "speedup_serial_vs_baseline": base_s / opt_s,
        "speedup_parallel_vs_baseline": base_s / par_s,
    }

    # -- fig6 and the selection ablation: serial vs parallel ---------------
    fig6_kwargs = dict(sizes=(1000, 3000, 3900), iterations=10) if QUICK else dict()
    _, fig6_serial_s = _timed(run_fig6, **fig6_kwargs, workers=1)
    _, fig6_par_s = _timed(run_fig6, **fig6_kwargs, workers=2)
    data["fig6"] = {"serial_s": fig6_serial_s, "parallel2_s": fig6_par_s}

    sel_kwargs = dict(n=1000, iterations=10) if QUICK else dict()
    _, sel_serial_s = _timed(run_selection_ablation, **sel_kwargs, workers=1)
    _, sel_par_s = _timed(run_selection_ablation, **sel_kwargs, workers=2)
    data["selection_ablation"] = {"serial_s": sel_serial_s, "parallel2_s": sel_par_s}

    # -- NWS evaluation loop: pure single-process forecaster win -----------
    nws_kwargs = dict(nsamples=200) if QUICK else dict(nsamples=2000)
    with perf.fastpath(False):
        _, nws_base_s = _timed(run_nws_comparison, **nws_kwargs, workers=1)
    with perf.fastpath(True):
        _, nws_opt_s = _timed(run_nws_comparison, **nws_kwargs, workers=1)
    data["nws_eval"] = {
        "nsamples": nws_kwargs["nsamples"],
        "baseline_s": nws_base_s,
        "optimized_s": nws_opt_s,
        "speedup": nws_base_s / nws_opt_s,
    }

    lines = [
        "Performance suite — runner + hot-path optimisations",
        f"(cpu_count={os.cpu_count()}, quick_mode={QUICK})",
        "",
        "fig5 driver:",
        f"  baseline (fast paths off), serial : {base_s:8.3f} s",
        f"  optimised, serial                 : {opt_s:8.3f} s"
        f"   ({base_s / opt_s:.2f}x vs baseline)",
        f"  optimised, 4 workers              : {par_s:8.3f} s"
        f"   ({base_s / par_s:.2f}x vs baseline)",
        "",
        "fig6 driver:",
        f"  serial    : {fig6_serial_s:8.3f} s",
        f"  2 workers : {fig6_par_s:8.3f} s",
        "",
        "selection ablation:",
        f"  serial    : {sel_serial_s:8.3f} s",
        f"  2 workers : {sel_par_s:8.3f} s",
        "",
        f"NWS evaluation loop ({nws_kwargs['nsamples']} samples/family):",
        f"  baseline (fast paths off) : {nws_base_s:8.3f} s",
        f"  optimised                 : {nws_opt_s:8.3f} s"
        f"   ({nws_base_s / nws_opt_s:.2f}x)",
    ]
    report("perf_suite", "\n".join(lines))
    merge_json("perf_suite", data)

    # Smoke assertions hold in any mode; the headline speedup targets are
    # asserted only at full scale where timings are meaningful.
    assert opt_s > 0 and par_s > 0 and nws_opt_s > 0
    if not QUICK:
        assert data["fig5"]["speedup_parallel_vs_baseline"] >= 2.0
        assert data["nws_eval"]["speedup"] >= 1.2

"""MULTI-A5 — two applications sharing the metacomputer (§3 extension).

"Other applications create contention for shared resources, and are
experienced by an individual application in terms of the dynamically
varying performance capability of metacomputing system resources."

Application A starts a long run; application B schedules while A is
executing.  B with a live NWS routes around A's machines; B planning from
a stale (pre-A) snapshot piles onto them.  The gap is the value of the
NWS tracking *other applications* — no inter-agent protocol required.
"""

from __future__ import annotations

from repro.experiments import run_multiapp


def bench_multiapp_contention(benchmark, report):
    result = benchmark.pedantic(run_multiapp, rounds=1, iterations=1)
    report(
        "multiapp_contention",
        result.table().render()
        + f"\n\naware speedup over oblivious: {result.improvement:.2f}x",
    )

    # The aware agent avoids A's machines more than the oblivious one does,
    # and finishes faster.
    assert result.aware_overlap < result.oblivious_overlap
    assert result.aware_time_s < result.oblivious_time_s

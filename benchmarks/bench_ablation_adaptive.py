"""ABL-A4 — redistribution during execution (§3.2 extension).

§3.2 says dynamic information serves "to make decisions about
redistribution of the application during execution"; the HPDC'96
prototype scheduled once.  This benchmark runs the extension: a
deterministic mid-run load-regime flip, one-shot AppLeS vs the adaptive
runner that re-plans every 25 iterations and migrates when the predicted
gain beats the migration cost.
"""

from __future__ import annotations

from repro.experiments import run_adaptive_ablation


def bench_ablation_adaptive(benchmark, report):
    result = benchmark.pedantic(run_adaptive_ablation, rounds=1, iterations=1)
    report(
        "ablation_adaptive",
        result.table().render()
        + f"\n\nadaptive improvement: {result.improvement:.2f}x "
        f"({result.reschedules} redistribution(s), "
        f"{result.migration_s:.1f} s migrating)",
    )

    assert result.reschedules >= 1
    assert result.adaptive_s < result.oneshot_s
    # Migration cost must be a small fraction of what it saves.
    assert result.migration_s < 0.25 * (result.oneshot_s - result.adaptive_s)

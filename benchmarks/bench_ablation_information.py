"""ABL-A2 — the value of dynamic information (§3.2, §3.6).

The same AppLeS planner run with three information sources — nominal
capability, NWS forecasts, and the simulator's ground truth at schedule
time — quantifies how much of AppLeS's advantage comes from *information*
rather than from the planning algorithm.
"""

from __future__ import annotations

from repro.experiments import run_information_ablation


def bench_ablation_information(benchmark, report):
    result = benchmark.pedantic(
        run_information_ablation,
        kwargs={"n": 1600, "iterations": 60},
        rounds=1,
        iterations=1,
    )
    report("ablation_information", result.table().render())

    # Forecasts beat nominal information...
    assert result.nws_s < result.nominal_s
    # ...and recover most of the oracle's advantage.
    assert result.nws_s < 2.0 * result.oracle_s

"""NWS-A1 — forecaster quality across load families (§3.6).

"A schedule is only as good as the accuracy of its underlying
predictions."  Scores every NWS forecaster and the adaptive ensemble on
AR(1), Markov and spiky availability traces.  The expected structure: no
single predictor wins everywhere; the ensemble stays near the per-family
winner.
"""

from __future__ import annotations

from repro.experiments import run_nws_comparison


def bench_nws_forecasters(benchmark, report):
    result = benchmark.pedantic(
        run_nws_comparison, kwargs={"nsamples": 600}, rounds=1, iterations=1
    )
    lines = [result.table().render(), ""]
    for process in sorted(result.mse):
        lines.append(
            f"best for {process}: {result.best_for(process)} "
            f"(ensemble regret {result.ensemble_regret(process):.2f}x)"
        )
    report("nws_forecasters", "\n".join(lines))

    winners = {result.best_for(p) for p in result.mse}
    assert len(winners) >= 2, "one predictor should not win every family"
    for process in result.mse:
        assert result.ensemble_regret(process) < 1.6

"""FIG2 — the SDSC/PCL system configuration (paper Figure 2).

Builds the simulated replica of the testbed, validates its structure, and
prints the resource inventory: hosts with nominal speed / memory / mean
deliverable availability, and links with nominal bandwidth.  The benchmark
measures construction + full-pairs routing, the operation every scheduling
experiment performs first.
"""

from __future__ import annotations

from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table


def _build_and_route():
    testbed = sdsc_pcl_testbed(seed=1996)
    for a in testbed.host_names:
        for b in testbed.host_names:
            testbed.topology.route(a, b)
    return testbed


def bench_fig2_testbed(benchmark, report):
    testbed = benchmark(_build_and_route)

    hosts = Table(
        ["host", "site", "arch", "MFLOP/s", "memory MB", "mean avail (10 min)"],
        title="FIG2 — SDSC/PCL testbed host inventory",
    )
    for host in testbed.hosts():
        hosts.add(
            host.name, host.site, host.arch, host.speed_mflops,
            host.memory.capacity_mb, host.load.mean_availability(0.0, 600.0),
        )
    links = Table(
        ["link", "Mbit/s", "latency (ms)", "shared"],
        title="FIG2 — network inventory",
    )
    for link in testbed.topology.links.values():
        links.add(link.name, link.bandwidth_mbit, link.latency_s * 1e3, link.is_shared)
    report("fig2_testbed", hosts.render() + "\n\n" + links.render())

    # Structural checks (Figure 2 geography).
    assert len(testbed.host_names) == 8
    assert testbed.topology.same_segment("sparc2", "sparc10")
    assert testbed.topology.same_segment("alpha1", "alpha4")
    assert "wan" in [l.name for l in testbed.topology.route("rs6000a", "alpha2")]

"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` requires ``wheel`` for PEP 517
editable builds; this shim lets ``python setup.py develop`` work offline.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

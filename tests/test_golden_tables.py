"""Golden-file regression tests for the experiment tables.

Each test runs one paper experiment in a small, fixed-seed "quick"
configuration and compares its rendered table *character for character*
against a snapshot under ``tests/golden/``.  Because the decision fast
path is bit-identical to the reference path, these snapshots hold
regardless of ``REPRO_NO_FASTPATH`` — a golden diff means the simulated
physics, a scheduling decision, or the table formatting actually changed,
never mere float drift.

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_tables.py

and review the diff like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.arena import run_regret_bench
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.multiapp_exp import run_multiapp

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN", "") not in ("", "0")


def _check(name: str, rendered: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    text = rendered + "\n"
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        return
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing — regenerate with REPRO_UPDATE_GOLDEN=1"
        )
    expected = path.read_text()
    assert text == expected, (
        f"{name} table drifted from its golden snapshot; if the change is "
        f"intended, regenerate with REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


def test_fig5_quick_table_matches_golden():
    result = run_fig5(
        sizes=(1000, 1400), iterations=10, repeats=2,
        seed=1996, warmup_s=300.0, gap_s=200.0,
    )
    _check("fig5_quick", result.table().render())


def test_fig6_quick_table_matches_golden():
    result = run_fig6(sizes=(3000, 4200), iterations=10, seed=1996, warmup_s=300.0)
    _check("fig6_quick", result.table().render())


def test_arena_quick_table_matches_golden():
    _, _, result = run_regret_bench(
        classes=("sdsc8",), per_class=2, seed=1996, sizes=(400,), iterations=10,
    )
    # The seconds column is wall-clock, so the golden pins the table shape
    # with masked placeholders; the values themselves are bench output.
    _check("arena_quick", result.table(mask_seconds=True))
    assert result.seconds, "timed run should have recorded per-policy seconds"
    unmasked = result.table()
    assert unmasked.splitlines()[1].endswith("seconds")
    assert "-" not in {
        line.split()[-1] for line in unmasked.splitlines()[3:8]
    }, "unmasked table should carry real per-policy seconds"


def test_arena_contended_quick_table_matches_golden():
    _, _, result = run_regret_bench(
        classes=("contended14",), per_class=2, seed=1996, sizes=(400,),
        iterations=10,
    )
    _check("arena_contended_quick", result.table(mask_seconds=True))


def test_multiapp_quick_table_matches_golden():
    result = run_multiapp(
        n=1000, iterations_a=600, iterations_b=100, seed=1996, t_a=300.0,
    )
    _check("multiapp_quick", result.table().render())

"""Tests for links, shared segments and topology routing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.host import Host
from repro.sim.link import MBIT, Link, SharedSegment
from repro.sim.load import ConstantLoad
from repro.sim.topology import RouteError, Topology


def _host(name, site=""):
    return Host(name, speed_mflops=10.0, site=site)


class TestLink:
    def test_deliverable_bandwidth(self):
        link = Link("l", bandwidth_mbit=8.0, load=ConstantLoad(0.5))
        assert link.deliverable_bandwidth(0.0) == pytest.approx(8.0 * MBIT * 0.5)

    def test_flows_share(self):
        link = Link("l", bandwidth_mbit=8.0)
        assert link.deliverable_bandwidth(0.0, flows=2) == pytest.approx(
            link.deliverable_bandwidth(0.0) / 2
        )

    def test_transfer_time(self):
        link = Link("l", bandwidth_mbit=8.0, latency_s=0.01)
        # 8 Mbit/s = 1e6 B/s; 1e6 bytes -> 1 s + latency.
        assert link.transfer_time(1_000_000) == pytest.approx(1.01)

    def test_transfer_zero_bytes_costs_latency(self):
        link = Link("l", bandwidth_mbit=8.0, latency_s=0.01)
        assert link.transfer_time(0.0) == pytest.approx(0.01)

    def test_dead_link_infinite(self):
        link = Link("l", bandwidth_mbit=8.0, load=ConstantLoad(0.0))
        assert link.transfer_time(1.0) == float("inf")

    def test_not_shared(self):
        assert not Link("l", bandwidth_mbit=1.0).is_shared

    def test_bad_flows(self):
        with pytest.raises(ValueError):
            Link("l", bandwidth_mbit=1.0).deliverable_bandwidth(0.0, flows=0)


class TestSharedSegment:
    def test_mac_efficiency_applies(self):
        seg = SharedSegment("e", bandwidth_mbit=10.0, mac_efficiency=0.8)
        raw = Link("l", bandwidth_mbit=10.0)
        assert seg.deliverable_bandwidth(0.0) == pytest.approx(
            raw.deliverable_bandwidth(0.0) * 0.8
        )

    def test_is_shared(self):
        assert SharedSegment("e", bandwidth_mbit=10.0).is_shared

    def test_bad_efficiency(self):
        with pytest.raises(ValueError):
            SharedSegment("e", bandwidth_mbit=10.0, mac_efficiency=0.0)


class TestTopology:
    def build(self):
        """a -- l1 -- b -- l2 -- c, plus a segment with a, d."""
        topo = Topology()
        for name in "abcd":
            topo.add_host(_host(name))
        topo.connect("a", "b", Link("l1", bandwidth_mbit=10.0, latency_s=0.001))
        topo.connect("b", "c", Link("l2", bandwidth_mbit=2.0, latency_s=0.005))
        topo.attach_segment(
            SharedSegment("seg1", bandwidth_mbit=10.0, latency_s=0.001), ["a", "d"]
        )
        return topo

    def test_route_direct(self):
        topo = self.build()
        assert [l.name for l in topo.route("a", "b")] == ["l1"]

    def test_route_multi_hop(self):
        topo = self.build()
        assert [l.name for l in topo.route("a", "c")] == ["l1", "l2"]

    def test_route_self_empty(self):
        assert self.build().route("a", "a") == []

    def test_route_symmetric(self):
        topo = self.build()
        fwd = [l.name for l in topo.route("a", "c")]
        rev = [l.name for l in topo.route("c", "a")]
        assert fwd == list(reversed(rev))

    def test_route_through_segment(self):
        topo = self.build()
        names = [l.name for l in topo.route("a", "d")]
        assert names == ["seg1", "seg1"]

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_host(_host("x"))
        topo.add_host(_host("y"))
        with pytest.raises(RouteError):
            topo.route("x", "y")

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            self.build().route("a", "zzz")

    def test_path_bandwidth_is_bottleneck(self):
        topo = self.build()
        bw = topo.path_bandwidth("a", "c")
        assert bw == pytest.approx(2.0 * MBIT)

    def test_path_bandwidth_local_infinite(self):
        assert self.build().path_bandwidth("a", "a") == float("inf")

    def test_path_latency_sums(self):
        topo = self.build()
        assert topo.path_latency("a", "c") == pytest.approx(0.006)

    def test_transfer_time(self):
        topo = self.build()
        t = topo.transfer_time("a", "c", 250_000)
        assert t == pytest.approx(0.006 + 250_000 / (2.0 * MBIT))

    def test_transfer_local_free(self):
        assert self.build().transfer_time("a", "a", 1e9) == 0.0

    def test_same_segment(self):
        topo = self.build()
        assert topo.same_segment("a", "d")
        assert not topo.same_segment("a", "b")

    def test_duplicate_host_rejected(self):
        topo = self.build()
        with pytest.raises(ValueError):
            topo.add_host(_host("a"))

    def test_self_loop_rejected(self):
        topo = self.build()
        with pytest.raises(ValueError):
            topo.connect("a", "a", Link("loop", bandwidth_mbit=1.0))

    def test_segment_needs_two_members(self):
        topo = self.build()
        with pytest.raises(ValueError):
            topo.attach_segment(SharedSegment("s2", bandwidth_mbit=1.0), ["a"])

    def test_route_cache_consistent(self):
        topo = self.build()
        first = topo.route("a", "c")
        second = topo.route("a", "c")
        assert first == second

    @given(nbytes=st.floats(min_value=0.0, max_value=1e9))
    def test_property_transfer_time_monotone_in_bytes(self, nbytes):
        topo = self.build()
        t1 = topo.transfer_time("a", "c", nbytes)
        t2 = topo.transfer_time("a", "c", nbytes + 1000.0)
        assert t2 >= t1

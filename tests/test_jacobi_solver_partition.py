"""Tests for the Jacobi solver and partition geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.partition import (
    apples_strip,
    blocked_partition,
    largest_remainder_rows,
    nonuniform_strip,
    uniform_strip,
)
from repro.jacobi.solver import (
    jacobi_reference,
    jacobi_step,
    make_test_grid,
    residual_norm,
)


class TestSolver:
    def test_step_preserves_boundary(self):
        g = make_test_grid(10, seed=1)
        out = jacobi_step(g)
        assert np.array_equal(out[0], g[0])
        assert np.array_equal(out[-1], g[-1])
        assert np.array_equal(out[:, 0], g[:, 0])
        assert np.array_equal(out[:, -1], g[:, -1])

    def test_step_is_average(self):
        g = np.zeros((3, 3))
        g[0, 1] = 4.0
        out = jacobi_step(g)
        assert out[1, 1] == 1.0

    def test_reference_input_unmodified(self):
        g = make_test_grid(8)
        snapshot = g.copy()
        jacobi_reference(g, 5)
        assert np.array_equal(g, snapshot)

    def test_zero_iterations_identity(self):
        g = make_test_grid(8)
        assert np.array_equal(jacobi_reference(g, 0), g)

    def test_residual_decreases(self):
        g = make_test_grid(20, seed=2)
        r0 = residual_norm(g)
        r1 = residual_norm(jacobi_reference(g, 50))
        assert r1 < r0

    def test_converges_to_laplace_solution(self):
        # With fixed boundaries the iteration approaches the harmonic
        # function; after many sweeps the residual is tiny.
        g = make_test_grid(12, seed=3)
        final = jacobi_reference(g, 3000)
        assert residual_norm(final) < 1e-6

    def test_source_term(self):
        g = np.zeros((5, 5))
        src = np.ones((5, 5)) * 0.1
        out = jacobi_step(g, src)
        assert np.allclose(out[1:-1, 1:-1], 0.1)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            jacobi_step(np.zeros((2, 2)))

    def test_rejects_non2d(self):
        with pytest.raises(ValueError):
            jacobi_step(np.zeros(9))


class TestProblem:
    def test_totals(self):
        p = JacobiProblem(n=100, iterations=10)
        assert p.total_points == 10_000
        assert p.footprint_mb(10_000) == pytest.approx(0.16)
        assert p.work_mflop(1000) == pytest.approx(5e-3)
        assert p.border_exchange_bytes() == pytest.approx(2 * 100 * 8.0)

    def test_hat_structure(self):
        p = JacobiProblem(n=50, iterations=7)
        hat = jacobi_hat(p)
        assert hat.paradigm == "data-parallel"
        assert hat.structure.total_units == 2500.0
        assert hat.structure.iterations == 7
        assert hat.task("sweep").can_run_on("anything")


class TestLargestRemainder:
    def test_exact_split(self):
        assert largest_remainder_rows(10, [1.0, 1.0]) == [5, 5]

    def test_sums_to_n(self):
        rows = largest_remainder_rows(100, [3.0, 1.0, 2.5])
        assert sum(rows) == 100

    def test_zero_weight_gets_zero(self):
        assert largest_remainder_rows(10, [1.0, 0.0]) == [10, 0]

    def test_tiny_weight_still_gets_row(self):
        rows = largest_remainder_rows(100, [1000.0, 0.001])
        assert rows[1] >= 1

    def test_no_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_rows(10, [0.0, 0.0])

    def test_too_many_machines_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder_rows(2, [1.0, 1.0, 1.0])

    @given(
        n=st.integers(min_value=8, max_value=5000),
        weights=st.lists(st.floats(min_value=0.01, max_value=100.0),
                         min_size=1, max_size=8),
    )
    @settings(max_examples=60)
    def test_property_sum_and_floor(self, n, weights):
        rows = largest_remainder_rows(n, weights)
        assert sum(rows) == n
        assert all(r >= 1 for r in rows)

    def test_overshoot_trims_from_largest(self):
        # Floors [3,0,0,0] get one-row floors → [3,1,1,1] = 6 rows for a
        # 4-row grid; the deficit<0 path must trim the big holder back.
        rows = largest_remainder_rows(4, [10.0, 0.001, 0.001, 0.001])
        assert rows == [1, 1, 1, 1]

    def test_overshoot_trims_repeatedly(self):
        # [4,1,1,1] = 7 rows for n=5: the trim pass cycles, skipping
        # one-row machines, until the overshoot is gone.
        rows = largest_remainder_rows(5, [10.0, 0.001, 0.001, 0.001])
        assert rows == [2, 1, 1, 1]
        assert sum(rows) == 5

    def test_overshoot_never_trims_below_one_row(self):
        # Every positive-weight machine keeps its guaranteed row even when
        # the overshoot forces trimming.
        rows = largest_remainder_rows(6, [100.0, 1e-6, 1e-6, 1e-6, 1e-6, 1e-6])
        assert sum(rows) == 6
        assert all(r >= 1 for r in rows)

    @given(
        n=st.integers(min_value=4, max_value=64),
        k=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60)
    def test_property_overshoot_regime(self, n, k):
        # One dominant weight plus k-1 slivers maximises one-row floor
        # bumps — the regime where the overshoot branch runs.
        if k > n:
            k = n
        weights = [1000.0] + [1e-9] * (k - 1)
        rows = largest_remainder_rows(n, weights)
        assert sum(rows) == n
        assert all(r >= 1 for r in rows)


class TestStripPartitions:
    def test_uniform(self):
        p = uniform_strip(10, ["a", "b", "c"])
        assert sum(s.row_count for s in p.strips) == 10
        assert p.machines == ("a", "b", "c")

    def test_areas(self):
        p = uniform_strip(9, ["a", "b", "c"])
        assert p.areas() == {"a": 27, "b": 27, "c": 27}

    def test_neighbors(self):
        p = uniform_strip(9, ["a", "b", "c"])
        assert p.neighbors("a") == ["b"]
        assert p.neighbors("b") == ["a", "c"]
        assert p.border_count("b") == 2

    def test_nonuniform_proportional(self):
        p = nonuniform_strip(100, ["slow", "fast"], [1.0, 3.0])
        assert p.strip_for("fast").row_count == 75
        assert p.strip_for("slow").row_count == 25

    def test_apples_drops_zero_areas(self):
        p = apples_strip(100, ["a", "b", "c"], [50.0, 0.0, 50.0])
        assert p.machines == ("a", "c")

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            apples_strip(10, ["a"], [0.0])

    def test_capacity_overflow_shifts_to_slack_machine(self):
        # Rounding gives a 6 rows but its cap is 5; the extra row must
        # move to b, which has slack.
        p = apples_strip(10, ["a", "b"], [55.0, 45.0], max_rows=[5, 5])
        assert p.strip_for("a").row_count == 5
        assert p.strip_for("b").row_count == 5

    def test_capacity_overflow_prefers_most_slack(self):
        # a overflows by 2; c (uncapped = infinite slack) should absorb it
        # before b (slack 1).
        p = apples_strip(
            12, ["a", "b", "c"], [60.0, 30.0, 30.0], max_rows=[4, 4, None]
        )
        assert p.strip_for("a").row_count == 4
        assert sum(s.row_count for s in p.strips) == 12
        assert p.strip_for("b").row_count <= 4

    def test_capacity_overflow_unabsorbable_raises(self):
        with pytest.raises(ValueError, match="cannot absorb rounding overflow"):
            apples_strip(10, ["a", "b"], [55.0, 45.0], max_rows=[5, 4])

    def test_capacity_respected_when_no_overflow(self):
        p = apples_strip(10, ["a", "b"], [50.0, 50.0], max_rows=[5, 5])
        assert p.strip_for("a").row_count == 5
        assert p.strip_for("b").row_count == 5

    def test_noncontiguous_rejected(self):
        from repro.jacobi.partition import Strip, StripPartition

        with pytest.raises(ValueError):
            StripPartition(10, (Strip("a", 0, 4), Strip("b", 5, 5)))

    def test_duplicate_machine_rejected(self):
        from repro.jacobi.partition import Strip, StripPartition

        with pytest.raises(ValueError):
            StripPartition(10, (Strip("a", 0, 5), Strip("a", 5, 5)))

    @given(
        n=st.integers(min_value=8, max_value=3000),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_property_uniform_covers(self, n, k):
        machines = [f"m{i}" for i in range(k)]
        p = uniform_strip(n, machines)
        assert sum(p.areas().values()) == n * n


class TestBlockedPartition:
    def test_processor_grid_shapes(self):
        assert (blocked_partition(10, ["a"] ).pr, blocked_partition(10, ["a"]).pc) == (1, 1)
        p8 = blocked_partition(16, [f"m{i}" for i in range(8)])
        assert (p8.pr, p8.pc) == (2, 4)
        p4 = blocked_partition(16, [f"m{i}" for i in range(4)])
        assert (p4.pr, p4.pc) == (2, 2)
        p7 = blocked_partition(14, [f"m{i}" for i in range(7)])
        assert (p7.pr, p7.pc) == (1, 7)

    def test_coverage(self):
        p = blocked_partition(10, [f"m{i}" for i in range(6)])
        assert sum(b.area for b in p.blocks) == 100

    def test_block_lookup_and_neighbors(self):
        p = blocked_partition(12, [f"m{i}" for i in range(4)])
        corner = p.block_at(0, 0)
        assert corner.machine == "m0"
        assert len(p.neighbors(0, 0)) == 2
        assert len(p.neighbors(1, 1)) == 2

    def test_border_points(self):
        p = blocked_partition(12, [f"m{i}" for i in range(4)])  # 2x2, 6x6 tiles
        assert p.border_points(0, 0) == 12  # one row + one col of 6

    def test_out_of_range_lookup(self):
        p = blocked_partition(12, ["a"])
        with pytest.raises(IndexError):
            p.block_at(1, 0)

    @given(
        n=st.integers(min_value=12, max_value=500),
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50)
    def test_property_blocked_covers(self, n, k):
        p = blocked_partition(n, [f"m{i}" for i in range(k)])
        assert sum(b.area for b in p.blocks) == n * n
        assert len(p.machines) == k

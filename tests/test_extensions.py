"""Tests for the extensions: adaptive rescheduling, the dual Log-D phase,
and the NILE execution runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.adaptive_exp import regime_change_testbed, run_adaptive_ablation
from repro.jacobi.adaptive import AdaptiveJacobiRunner, migration_cost_s
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import nonuniform_strip, uniform_strip
from repro.core.resources import ResourcePool
from repro.nile.analysis import CullAnalysis, HistogramAnalysis
from repro.nile.apples import make_nile_agent
from repro.nile.events import PASS2, EventBatch
from repro.nile.runtime import execute_analysis
from repro.nile.storage import TAPE, StoredDataset
from repro.nws.service import NetworkWeatherService
from repro.react.dual_phase import compare_versions, simulate_dual_phase
from repro.react.pipeline import simulate_pipeline
from repro.react.tasks import ReactProblem


class TestMigrationCost:
    def test_no_change_no_cost(self, testbed):
        pool = ResourcePool(testbed.topology)
        part = uniform_strip(100, ["alpha1", "alpha2"])
        assert migration_cost_s(pool, part, part, 16.0) == 0.0

    def test_shifted_work_costs(self, testbed):
        pool = ResourcePool(testbed.topology)
        old = nonuniform_strip(100, ["alpha1", "alpha2"], [3.0, 1.0])
        new = nonuniform_strip(100, ["alpha1", "alpha2"], [1.0, 3.0])
        assert migration_cost_s(pool, old, new, 16.0) > 0.0

    def test_cost_scales_with_bytes(self, testbed):
        pool = ResourcePool(testbed.topology)
        old = nonuniform_strip(100, ["alpha1", "alpha2"], [3.0, 1.0])
        new = nonuniform_strip(100, ["alpha1", "alpha2"], [1.0, 3.0])
        small = migration_cost_s(pool, old, new, 8.0)
        big = migration_cost_s(pool, old, new, 16.0)
        assert big > small

    def test_machine_swap_costs(self, testbed):
        pool = ResourcePool(testbed.topology)
        old = uniform_strip(100, ["alpha1", "alpha2"])
        new = uniform_strip(100, ["alpha3", "alpha4"])
        assert migration_cost_s(pool, old, new, 16.0) > 0.0


class TestRegimeChangeTestbed:
    def test_flip_is_deterministic(self):
        tb = regime_change_testbed(flip_at_s=100.0, dt=5.0)
        host = tb.topology.host("groupA0")
        assert host.availability(50.0) == 0.95
        assert host.availability(150.0) == 0.25
        host_b = tb.topology.host("groupB0")
        assert host_b.availability(50.0) == 0.25
        assert host_b.availability(150.0) == 0.95

    def test_flip_outside_trace_rejected(self):
        with pytest.raises(ValueError):
            regime_change_testbed(flip_at_s=0.0)


class TestAdaptiveRunner:
    def test_no_reschedule_under_stable_load(self, testbed):
        # Dedicated-ish window: with no regime change and a modest check
        # interval, migrations should be rare-to-none and never hurt much.
        nws = NetworkWeatherService.for_testbed(testbed, seed=5)
        nws.warmup(300.0)
        problem = JacobiProblem(n=600, iterations=40)
        runner = AdaptiveJacobiRunner(testbed, problem, nws, check_every=20)
        result = runner.run(t0=300.0)
        assert result.iterations == 40
        assert result.chunks == 2
        assert result.total_time > 0

    def test_reschedules_on_regime_change(self):
        result = run_adaptive_ablation(n=1000, iterations=300, flip_at_s=128.0)
        assert result.reschedules >= 1
        assert result.adaptive_s < result.oneshot_s

    def test_validation(self, testbed):
        nws = NetworkWeatherService.for_testbed(testbed)
        with pytest.raises(ValueError):
            AdaptiveJacobiRunner(testbed, JacobiProblem(n=100), nws, check_every=0)
        with pytest.raises(ValueError):
            AdaptiveJacobiRunner(
                testbed, JacobiProblem(n=100), nws, min_gain_fraction=1.0
            )


class TestDualPhase:
    def test_extra_phase_has_no_comm_and_balances(self, casa):
        r = simulate_dual_phase(
            casa.topology, ReactProblem(), "c90", "paragon", 10, 1
        )
        assert r.lhsf_share + r.logd_share == pytest.approx(1.0)
        # The Paragon's Log-D is the faster implementation; it takes more.
        assert r.logd_share > r.lhsf_share
        assert r.total_s == pytest.approx(r.pipeline_s + r.extra_phase_s)

    def test_dual_phase_beats_repeated_pipeline(self, casa):
        problem = ReactProblem()
        repeated = simulate_pipeline(
            casa.topology,
            ReactProblem(**{**problem.__dict__, "passes": 2}),
            "c90", "paragon", 10,
        ).makespan_s
        dual = simulate_dual_phase(
            casa.topology, problem, "c90", "paragon", 10, 1
        ).total_s
        assert dual < repeated

    def test_extra_phase_faster_than_single_machine_logd(self, casa):
        # Concurrent propagation on both machines beats either alone.
        problem = ReactProblem()
        r = simulate_dual_phase(casa.topology, problem, "c90", "paragon", 10, 1)
        paragon_alone = problem.total_logd_mflop / (3200.0 * 0.77)
        assert r.extra_phase_s < paragon_alone

    def test_compare_table(self, casa):
        table = compare_versions(casa.topology, ReactProblem(), "c90", "paragon", 10)
        text = table.render()
        assert "REACT-T3" in text
        assert "no comm" in text

    def test_bad_passes_rejected(self, casa):
        with pytest.raises(ValueError):
            simulate_dual_phase(
                casa.topology, ReactProblem(), "c90", "paragon", 10, 0
            )


class TestNileRuntime:
    @pytest.fixture(scope="class")
    def setup(self, nile_bed):
        events = EventBatch(60_000, PASS2, seed=9)
        dataset = StoredDataset("d", events, TAPE, host="site0-alpha0")
        program = HistogramAnalysis()
        agent = make_nile_agent(nile_bed, dataset, program)
        schedule = agent.schedule().best
        return nile_bed, dataset, program, schedule

    def test_distributed_result_identical(self, setup):
        nile_bed, dataset, program, schedule = setup
        run = execute_analysis(nile_bed.topology, schedule, dataset, program)
        whole = program.run(dataset.events)
        assert np.array_equal(run.result.counts, whole.counts)

    def test_shares_cover_dataset(self, setup):
        nile_bed, dataset, program, schedule = setup
        run = execute_analysis(nile_bed.topology, schedule, dataset, program)
        assert sum(run.shares.values()) == dataset.nevents

    def test_elapsed_includes_tape_access(self, setup):
        nile_bed, dataset, program, schedule = setup
        run = execute_analysis(nile_bed.topology, schedule, dataset, program)
        assert run.elapsed_s > dataset.read_time()
        assert run.elapsed_s == pytest.approx(
            dataset.read_time() + max(run.host_times.values())
        )

    def test_cull_indices_global(self, nile_bed):
        events = EventBatch(30_000, PASS2, seed=10)
        dataset = StoredDataset("d2", events, TAPE, host="site0-alpha0")
        program = CullAnalysis()
        agent = make_nile_agent(nile_bed, dataset, program)
        schedule = agent.schedule().best
        run = execute_analysis(nile_bed.topology, schedule, dataset, program)
        assert np.array_equal(run.result, program.run(events))

    def test_remote_hosts_pay_transfer(self, setup):
        nile_bed, dataset, program, schedule = setup
        run = execute_analysis(nile_bed.topology, schedule, dataset, program)
        # Any host not at the data site must spend longer per event than
        # the data host (it pays shipping).
        data_host_rate = run.host_times[dataset.host] / run.shares[dataset.host]
        remote = [
            h for h in run.shares if not h.startswith("site0-") and h in run.host_times
        ]
        assert remote, "expected remote participation"
        for h in remote:
            assert run.host_times[h] / run.shares[h] > data_host_rate

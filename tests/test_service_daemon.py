"""The scheduling daemon's contracts: admission, batching, isolation,
drain, cross-call reuse staleness, and bit-identity with the service.

The daemon adds queueing and amortisation — never arithmetic.  These
tests pin the edges of that claim:

- admission control answers explicitly (shed on a full queue, reject on
  a stale instant or after shutdown) instead of blocking or dropping;
- micro-batch policy lingers only when arrivals will fill the batch;
- shards are isolated (a backlogged pool does not stall another's
  answers) and drain-on-shutdown answers everything already queued;
- the cross-call reuse layer (`SchedulingService(reuse=True)`,
  `DecisionCache` adoption in `begin_decision`) never serves an answer
  derived from a stale pool state — the regression tests mutate the NWS
  between calls and compare against fresh solo agents;
- a Hypothesis property: however a request multiset is sliced into
  submissions, daemon answers equal one `SchedulingService.decide()`;
- traced and untraced daemon runs are bit-identical, with the queue
  gauge / admission counters / batch spans present when traced.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.infopool import DecisionCache
from repro.core.userspec import UserSpecification
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws import NetworkWeatherService
from repro.obs.trace import tracing
from repro.service import (
    DecisionRequest,
    MicroBatcher,
    SchedulingDaemon,
    SchedulingService,
    ShardSpec,
)
from repro.service.daemon import ANSWERED, FAILED, REJECTED, SHED
from repro.service.loadgen import (
    SyntheticPopulation,
    open_loop_events,
    run_closed_loop,
    run_open_loop,
)
from repro.sim import casa_testbed, nile_testbed, sdsc_pcl_testbed
from repro.util import perf

AT = 420.0


def _request(k: int = 0, at: float = AT) -> DecisionRequest:
    userspec = UserSpecification(max_machines=3) if k % 3 == 1 else UserSpecification()
    return DecisionRequest(
        problem=JacobiProblem(n=600 + 100 * (k % 3), iterations=20 + k),
        userspec=userspec,
        account_memory=(k % 4 != 2),
        at=at,
    )


def _spec(name="sdsc", builder=sdsc_pcl_testbed, seed=1996) -> ShardSpec:
    return ShardSpec(name, builder, seed=seed, nws_seed=7, warmup_s=0.0)


def _service_answers(requests, builder=sdsc_pcl_testbed, seed=1996, fast=None):
    # fast=None follows the ambient gate, so the whole suite also runs
    # under REPRO_NO_FASTPATH=1 comparing daemon and service like-for-like
    # (pruning statistics legitimately differ between gate modes).
    if fast is None:
        fast = perf.fastpath_enabled()
    testbed = builder(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    with perf.fastpath(fast):
        return SchedulingService(testbed, nws).decide(requests)


def _sig(answer):
    return (
        answer.best_objective,
        answer.predicted_time,
        answer.machines,
        answer.pruning,
        tuple(a.work_units for a in answer.best.allocations),
    )


# -- admission control ----------------------------------------------------
class TestAdmission:
    def test_queue_full_sheds_explicitly(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=2)
        tickets = daemon.submit_many("sdsc", [_request(k) for k in range(5)])
        replies = [t._reply for t in tickets]
        assert [r.status if r else "pending" for r in replies] == [
            "pending", "pending", SHED, SHED, SHED,
        ]
        shed = tickets[2].result(0.0)
        assert shed.status == SHED
        assert shed.reason == "queue-full"
        assert shed.answer is None
        daemon.pump()
        assert [t.result(0.0).status for t in tickets[:2]] == [ANSWERED] * 2
        stats = daemon.stats()["sdsc"]
        assert stats["shed"] == 3 and stats["answered"] == 2

    def test_stale_instant_rejected(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        daemon.submit("sdsc", _request(0, at=AT))
        late = daemon.submit("sdsc", _request(1, at=AT - 60.0))
        reply = late.result(0.0)
        assert reply.status == REJECTED
        assert "stale-instant" in reply.reason
        daemon.pump()
        assert daemon.stats()["sdsc"]["rejected"] == 1

    def test_unknown_shard_raises(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        with pytest.raises(KeyError, match="unknown shard"):
            daemon.submit("nope", _request())

    def test_submit_after_shutdown_rejected(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        daemon.shutdown()
        reply = daemon.submit("sdsc", _request()).result(0.0)
        assert reply.status == REJECTED
        assert reply.reason == "shutdown"

    def test_duplicate_shard_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate shard"):
            SchedulingDaemon([_spec(), _spec()])


# -- shutdown and drain ---------------------------------------------------
class TestShutdown:
    def test_drain_on_shutdown_answers_queued(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=16)
        tickets = daemon.submit_many("sdsc", [_request(k) for k in range(4)])
        daemon.shutdown(drain=True)  # never start()ed: drains in this thread
        assert [t.result(0.0).status for t in tickets] == [ANSWERED] * 4

    def test_shutdown_without_drain_rejects_queued(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=16)
        tickets = daemon.submit_many("sdsc", [_request(k) for k in range(3)])
        daemon.shutdown(drain=False)
        replies = [t.result(0.0) for t in tickets]
        assert all(r.status == REJECTED and r.reason == "shutdown" for r in replies)

    def test_threaded_drain_on_shutdown(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=64)
        daemon.start()
        tickets = daemon.submit_many("sdsc", [_request(k) for k in range(6)])
        daemon.shutdown(drain=True)
        assert [t.result(1.0).status for t in tickets] == [ANSWERED] * 6

    def test_shutdown_idempotent_and_context_manager(self):
        with SchedulingDaemon([_spec()], queue_capacity=8) as daemon:
            ticket = daemon.submit("sdsc", _request())
        assert ticket.result(0.0).status == ANSWERED
        daemon.shutdown()  # second call is a no-op

    def test_result_timeout(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        ticket = daemon.submit("sdsc", _request())
        with pytest.raises(TimeoutError):
            ticket.result(0.01)  # nothing pumps this daemon
        daemon.shutdown(drain=False)


# -- batching policy ------------------------------------------------------
class TestMicroBatcher:
    def test_saturated_queue_dispatches_immediately(self):
        mb = MicroBatcher(max_batch=64, target_batch=32, max_linger_s=0.005)
        assert mb.wait_budget(32, 0.0) == 0.0
        assert mb.wait_budget(64, 0.0) == 0.0

    def test_no_rate_estimate_never_lingers(self):
        mb = MicroBatcher()
        assert mb.wait_budget(1, 0.0) == 0.0

    def test_lingers_only_while_arrivals_will_fill(self):
        mb = MicroBatcher(max_batch=64, target_batch=4, max_linger_s=0.010)
        for i in range(8):  # 1 ms gaps -> ewma ~1 ms
            mb.note_arrival(i * 0.001)
        wait = mb.wait_budget(2, oldest_wait_s=0.0)
        assert 0.0 < wait <= 0.010  # 2 more needed at ~1 ms each
        # Trickle traffic (1 s gaps): filling 2 more would blow the
        # linger budget, so dispatch now.
        slow = MicroBatcher(max_batch=64, target_batch=4, max_linger_s=0.010)
        for i in range(4):
            slow.note_arrival(i * 1.0)
        assert slow.wait_budget(2, oldest_wait_s=0.0) == 0.0

    def test_linger_budget_exhausted_dispatches(self):
        mb = MicroBatcher(max_batch=64, target_batch=32, max_linger_s=0.005)
        for i in range(8):
            mb.note_arrival(i * 0.0001)
        assert mb.wait_budget(2, oldest_wait_s=0.005) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=8, target_batch=16)
        with pytest.raises(ValueError):
            MicroBatcher(max_linger_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(ewma_alpha=0.0)

    def test_max_batch_bounds_dispatch(self):
        daemon = SchedulingDaemon(
            [_spec()], queue_capacity=64,
            batcher=MicroBatcher(max_batch=3, target_batch=2),
        )
        tickets = daemon.submit_many("sdsc", [_request(k) for k in range(7)])
        daemon.pump()
        sizes = {t.result(0.0).batch_size for t in tickets}
        assert max(sizes) <= 3
        assert daemon.stats()["sdsc"]["batches"] == 3  # 3 + 3 + 1


# -- shard isolation ------------------------------------------------------
class TestShardIsolation:
    def test_backlogged_shard_does_not_stall_another(self):
        daemon = SchedulingDaemon(
            [_spec("slow", nile_testbed), _spec("fast", sdsc_pcl_testbed)],
            queue_capacity=64,
        )
        daemon.start()
        # Backlog the slow shard (12-machine pool, 4095 candidate sets per
        # request), then ask the fast shard for one answer.
        slow_tickets = daemon.submit_many("slow", [_request(k) for k in range(10)])
        fast_ticket = daemon.submit("fast", _request())
        reply = fast_ticket.result(120.0)  # generous: reference path is slow
        assert reply.status == ANSWERED
        # The point of shard-per-pool workers: the fast answer must not
        # have waited for the slow backlog to clear.
        assert not all(t.done for t in slow_tickets)
        daemon.shutdown(drain=True, timeout=600.0)
        assert all(t.result(0.0).status == ANSWERED for t in slow_tickets)

    def test_pump_processes_all_shards(self):
        daemon = SchedulingDaemon(
            [_spec("a", sdsc_pcl_testbed), _spec("b", casa_testbed)],
            queue_capacity=8,
        )
        ta = daemon.submit_many("a", [_request(k) for k in range(2)])
        tb = daemon.submit_many("b", [_request(k) for k in range(2)])
        assert daemon.pump() == 4
        assert all(t.result(0.0).status == ANSWERED for t in ta + tb)

    def test_shard_failure_resolves_tickets(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        request = DecisionRequest(problem=JacobiProblem(n=600, iterations=10), at=AT)
        ticket = daemon.submit("sdsc", request)
        # Force a failure inside the batch: monkeypatch the shard service.
        shard = daemon.shards["sdsc"]

        class _Boom:
            def decide(self, requests):
                raise RuntimeError("boom")

        shard.service = _Boom()
        daemon.pump()
        reply = ticket.result(0.0)  # resolved, never hung
        assert reply.status == FAILED
        assert "boom" in reply.reason
        assert daemon.stats()["sdsc"]["failed"] == 1
        # The shard keeps serving once the fault clears.
        shard.service = None
        healed = daemon.submit("sdsc", request)
        daemon.pump()
        assert healed.result(0.0).status == ANSWERED


# -- bit-identity with the service ---------------------------------------
class TestBitIdentity:
    def test_pump_equals_service(self):
        requests = [_request(k) for k in range(6)]
        daemon = SchedulingDaemon([_spec()], queue_capacity=16)
        tickets = daemon.submit_many("sdsc", requests)
        daemon.pump()
        reference = _service_answers(requests)
        for ticket, ref in zip(tickets, reference):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)

    def test_threaded_equals_service_across_instants(self):
        requests = [_request(k) for k in range(4)]
        later = [_request(k, at=AT + 120.0) for k in range(4)]
        daemon = SchedulingDaemon([_spec()], queue_capacity=32)
        daemon.start()
        tickets = daemon.submit_many("sdsc", requests)
        for t in tickets:  # force instant separation: first wave answered
            t.result(10.0)
        tickets += daemon.submit_many("sdsc", later)
        daemon.shutdown(drain=True)
        reference = _service_answers(requests + later)
        for ticket, ref in zip(tickets, reference):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)

    def test_oracle_gate_equals_its_service(self):
        requests = [_request(k) for k in range(3)]
        with perf.fastpath(False):
            daemon = SchedulingDaemon([_spec()], queue_capacity=8)
            tickets = daemon.submit_many("sdsc", requests)
            daemon.pump()
        reference = _service_answers(requests, fast=False)
        for ticket, ref in zip(tickets, reference):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)

    @pytest.mark.slow
    def test_process_mode_equals_service(self):
        requests = [_request(k) for k in range(5)]
        daemon = SchedulingDaemon(
            [_spec("sdsc"), _spec("casa", casa_testbed)],
            queue_capacity=16, workers=2,
        )
        daemon.start()
        ta = daemon.submit_many("sdsc", requests)
        tb = daemon.submit_many("casa", requests)
        daemon.shutdown(drain=True)
        for ticket, ref in zip(ta, _service_answers(requests)):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)
        for ticket, ref in zip(tb, _service_answers(requests, builder=casa_testbed)):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)

    def test_process_mode_requires_specs(self):
        testbed = sdsc_pcl_testbed(seed=1996)
        nws = NetworkWeatherService.for_testbed(testbed, seed=7)
        with pytest.raises(ValueError, match="ShardSpec"):
            SchedulingDaemon({"sdsc": (testbed, nws)}, workers=2)

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ks=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
        split=st.integers(min_value=1, max_value=4),
    )
    def test_property_any_multiset_matches_service(self, ks, split):
        """However the multiset is sliced into submissions, daemon
        answers equal one SchedulingService.decide() over the same list."""
        requests = [_request(k) for k in ks]
        daemon = SchedulingDaemon(
            [_spec()], queue_capacity=len(requests),
            batcher=MicroBatcher(max_batch=max(1, split), target_batch=1),
        )
        tickets = []
        for i in range(0, len(requests), split):
            tickets += daemon.submit_many("sdsc", requests[i : i + split])
            daemon.pump()
        reference = _service_answers(requests)
        for ticket, ref in zip(tickets, reference):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)


# -- cross-call reuse staleness (the satellite regression) ----------------
class TestReuseStaleness:
    def test_decision_cache_stale_property(self):
        testbed = sdsc_pcl_testbed(seed=1996)
        nws = NetworkWeatherService.for_testbed(testbed, seed=7)
        agent = make_jacobi_agent(
            testbed, JacobiProblem(n=600, iterations=10), nws
        )
        cache = agent.info.begin_decision()
        assert isinstance(cache, DecisionCache)
        assert not cache.stale
        nws.advance_to(100.0)
        assert cache.stale

    def test_begin_decision_discards_stale_reuse(self):
        testbed = sdsc_pcl_testbed(seed=1996)
        nws = NetworkWeatherService.for_testbed(testbed, seed=7)
        agent = make_jacobi_agent(
            testbed, JacobiProblem(n=600, iterations=10), nws
        )
        first = agent.info.begin_decision()
        first.memo[("probe",)] = "from-stale-state"
        nws.advance_to(60.0)
        second = agent.info.begin_decision(reuse=first)
        assert second is not first
        assert ("probe",) not in second.memo

    def test_begin_decision_discards_mismatched_snapshot(self):
        testbed = sdsc_pcl_testbed(seed=1996)
        nws = NetworkWeatherService.for_testbed(testbed, seed=7)
        agent = make_jacobi_agent(
            testbed, JacobiProblem(n=600, iterations=10), nws
        )
        cache = agent.info.begin_decision()
        other = agent.info.pool.snapshot()
        fresh = agent.info.begin_decision(snapshot=other, reuse=cache)
        assert fresh is not cache
        assert fresh.snapshot is other

    def test_begin_decision_adopts_current_reuse(self):
        testbed = sdsc_pcl_testbed(seed=1996)
        nws = NetworkWeatherService.for_testbed(testbed, seed=7)
        agent = make_jacobi_agent(
            testbed, JacobiProblem(n=600, iterations=10), nws
        )
        cache = agent.info.begin_decision()
        cache.memo[("probe",)] = 42
        again = agent.info.begin_decision(reuse=cache)
        assert again is cache
        assert again.memo[("probe",)] == 42

    def test_reuse_requires_nws(self):
        testbed = sdsc_pcl_testbed(seed=1996)
        with pytest.raises(ValueError, match="reuse"):
            SchedulingService(testbed, None, reuse=True)

    def test_mutated_pool_never_serves_stale_decision(self):
        """The regression the daemon path depends on: advance the NWS
        between decides of one reusing service; every answer must equal a
        fresh solo agent's at that instant, never the cached earlier one."""
        requests = [_request(k) for k in range(3)]
        testbed = sdsc_pcl_testbed(seed=1996)
        nws = NetworkWeatherService.for_testbed(testbed, seed=7)
        service = SchedulingService(testbed, nws, reuse=True)
        first = service.decide(requests)
        again = service.decide(requests)  # same pool state: cached answers
        for a, b in zip(first, again):
            assert _sig(a) == _sig(b)
        # Mutate the pool (the NWS advances; snapshot goes stale).
        later = [_request(k, at=AT + 300.0) for k in range(3)]
        moved = service.decide(later)
        # Fresh world, fresh solo agents, same instants: the oracle.
        oracle = _service_answers(requests + later)
        for answer, ref in zip(first + moved, oracle):
            assert _sig(answer) == _sig(ref)
        # And the moved answers must differ from a stale replay wherever
        # the pool state actually changed the prediction.
        assert [a.at for a in moved] == [AT + 300.0] * 3

    def test_daemon_path_staleness(self):
        """Same regression through the daemon: one shard, two instants."""
        daemon = SchedulingDaemon([_spec()], queue_capacity=16)
        early = [_request(k) for k in range(2)]
        late = [_request(k, at=AT + 240.0) for k in range(2)]
        t_early = daemon.submit_many("sdsc", early)
        daemon.pump()
        t_late = daemon.submit_many("sdsc", late)
        daemon.pump()
        reference = _service_answers(early + late)
        for ticket, ref in zip(t_early + t_late, reference):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)


# -- observability --------------------------------------------------------
class TestObservability:
    def test_traced_untraced_bit_identical_with_instruments(self):
        requests = [_request(k) for k in range(5)]
        daemon = SchedulingDaemon([_spec()], queue_capacity=16)
        tickets = daemon.submit_many("sdsc", requests)
        daemon.pump()
        base = [_sig(t.result(0.0).answer) for t in tickets]

        with tracing() as tr:
            traced_daemon = SchedulingDaemon([_spec()], queue_capacity=16)
            traced_tickets = traced_daemon.submit_many("sdsc", requests)
            traced_daemon.pump()
        assert [_sig(t.result(0.0).answer) for t in traced_tickets] == base

        metrics = tr.metrics.as_dict()
        assert metrics["daemon.submitted"]["value"] == len(requests)
        assert metrics["daemon.answered"]["value"] == len(requests)
        assert metrics["daemon.batches"]["value"] >= 1
        assert "daemon.queue_depth.sdsc" in metrics
        assert metrics["daemon.batch_size"]["count"] >= 1
        assert any(
            r["kind"] == "span" and r["name"] == "daemon.batch"
            for r in tr.records()
        )

    def test_shed_and_reject_counters(self):
        with tracing() as tr:
            daemon = SchedulingDaemon([_spec()], queue_capacity=1)
            daemon.submit_many("sdsc", [_request(k) for k in range(3)])
            daemon.submit("sdsc", _request(0, at=AT - 60.0))
            daemon.pump()
        metrics = tr.metrics.as_dict()
        assert metrics["daemon.shed"]["value"] == 2
        assert metrics["daemon.rejected"]["value"] == 1

    def test_solo_decision_path_counters(self):
        """Every answered request is attributed to exactly one decision
        path: ``service.solo_vectorised`` (the one-shot tensor sweep /
        batched core) or ``service.solo_scalar`` (the per-candidate
        loop).  Which side fires follows the ambient gate the suite runs
        under — the counters are how operators see the split."""
        requests = [_request(k) for k in range(4)]
        with tracing() as tr:
            daemon = SchedulingDaemon([_spec()], queue_capacity=16)
            tickets = daemon.submit_many("sdsc", requests)
            daemon.pump()
        assert all(t.result(0.0).status == ANSWERED for t in tickets)
        metrics = tr.metrics.as_dict()
        vectorised = metrics.get("service.solo_vectorised", {}).get("value", 0)
        scalar = metrics.get("service.solo_scalar", {}).get("value", 0)
        assert vectorised + scalar == len(requests)
        if perf.fastpath_enabled():
            # Strip-only requests all ride the batched/vectorised core.
            assert vectorised == len(requests) and scalar == 0
        else:
            assert scalar == len(requests) and vectorised == 0

    def test_scalar_config_counts_as_scalar_solo(self):
        """A configuration the batched core cannot take (two active
        decomposition families) is answered by a solo scalar decision —
        and counted as one."""
        spec = UserSpecification(decomposition_preference=("strip", "blocked"))
        request = DecisionRequest(
            problem=JacobiProblem(n=600, iterations=10), userspec=spec, at=AT
        )
        with tracing() as tr:
            daemon = SchedulingDaemon([_spec()], queue_capacity=8)
            ticket = daemon.submit("sdsc", request)
            daemon.pump()
        assert ticket.result(0.0).status == ANSWERED
        metrics = tr.metrics.as_dict()
        assert metrics["service.solo_scalar"]["value"] == 1
        assert "service.solo_vectorised" not in metrics
        if perf.fastpath_enabled():
            assert metrics["service.scalar_configs"]["value"] == 1


# -- load generator -------------------------------------------------------
class TestLoadGenerator:
    def test_population_deterministic(self):
        pop = SyntheticPopulation(["a", "b"], seed=5)
        assert pop.requests(6) == SyntheticPopulation(["a", "b"], seed=5).requests(6)
        shards = [s for s, _ in pop.requests(6)]
        assert shards == ["a", "b", "a", "b", "a", "b"]

    def test_population_instants_advance_by_index(self):
        pop = SyntheticPopulation(
            ["a"], seed=5, base_at=100.0, step_s=50.0, instant_every=2
        )
        ats = [r.at for _, r in pop.requests(5)]
        assert ats == [100.0, 100.0, 150.0, 150.0, 200.0]

    def test_open_loop_events_seeded(self):
        pop = SyntheticPopulation(["a"], seed=5)
        one = open_loop_events(pop, rate_hz=100.0, n_requests=10)
        two = open_loop_events(pop, rate_hz=100.0, n_requests=10)
        assert one == two
        offsets = [e.offset_s for e in one]
        assert offsets == sorted(offsets)
        assert all(o > 0 for o in offsets)

    def test_open_loop_run_answers_match_service(self):
        pop = SyntheticPopulation(["sdsc"], seed=5, instant_every=0)
        events = open_loop_events(pop, rate_hz=2000.0, n_requests=6)
        daemon = SchedulingDaemon([_spec()], queue_capacity=16)
        daemon.start()
        tickets = run_open_loop(daemon, events, speed=100.0)
        daemon.shutdown(drain=True)
        reference = _service_answers([e.request for e in events])
        for ticket, ref in zip(tickets, reference):
            assert _sig(ticket.result(0.0).answer) == _sig(ref)

    def test_closed_loop_multiset_matches_population(self):
        pop = SyntheticPopulation(["sdsc"], seed=5, instant_every=0)
        daemon = SchedulingDaemon([_spec()], queue_capacity=32)
        daemon.start()
        tickets = run_closed_loop(daemon, pop, users=3, requests_per_user=2)
        daemon.shutdown(drain=True)
        assert len(tickets) == 6
        assert all(t.result(0.0).status == ANSWERED for t in tickets)
        submitted = sorted(
            (t.request.problem.n, t.request.problem.iterations) for t in tickets
        )
        expected = sorted(
            (r.problem.n, r.problem.iterations) for _, r in pop.requests(6)
        )
        assert submitted == expected


# -- the reservation lane --------------------------------------------------


def _reservation(k: int = 0, priority: int = 2, **overrides):
    from repro.reserve import ReservationRequest

    kwargs = dict(
        request_id=f"res-{k:03d}",
        problem=JacobiProblem(n=300 + 100 * (k % 2), iterations=10),
        earliest_start=60.0 + 30.0 * k,
        deadline=2400.0 + 30.0 * k,
        priority=priority,
    )
    kwargs.update(overrides)
    return ReservationRequest(**kwargs)


class TestReservationLane:
    def test_books_through_the_lane(self):
        from repro.service.daemon import BOOKED

        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        ticket = daemon.submit_reservation("sdsc", _reservation(0))
        assert ticket._reply is None  # queued, not answered synchronously
        daemon.pump()
        reply = ticket.result(0.0)
        assert reply.status == BOOKED
        assert reply.bookings and reply.bookings[0].request_id == "res-000"
        sh = daemon.shards["sdsc"]
        assert len(sh.ledger) == 1
        stats = daemon.stats()["sdsc"]
        assert stats["reservations"] == 1 and stats["booked"] == 1
        assert stats["reservation_depth"] == 0

    def test_lane_ledger_stays_conflict_free(self):
        from repro.reserve import verify_ledger
        from repro.service.daemon import BOOKED

        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        requests = [_reservation(k) for k in range(3)]
        tickets = [
            daemon.submit_reservation("sdsc", r) for r in requests
        ]
        daemon.pump()
        assert all(t.result(0.0).status == BOOKED for t in tickets)
        ledger = daemon.shards["sdsc"].ledger
        assert len(ledger) == 3
        assert verify_ledger(ledger, requests) == []

    def test_priority_classes_plan_first(self):
        from repro.service.daemon import BOOKED

        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        weak = daemon.submit_reservation("sdsc", _reservation(0, priority=3))
        strong = daemon.submit_reservation("sdsc", _reservation(1, priority=1))
        daemon.pump()
        assert weak.result(0.0).status == BOOKED
        assert strong.result(0.0).status == BOOKED
        # The class-1 request was planned first despite arriving second.
        ledger = daemon.shards["sdsc"].ledger
        assert [b.request_id for b in ledger.bookings] == [
            "res-001", "res-000",
        ]

    def test_unplaceable_resolves_rejected(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        ticket = daemon.submit_reservation(
            "sdsc", _reservation(0, min_machines=99)
        )
        daemon.pump()
        reply = ticket.result(0.0)
        assert reply.status == REJECTED
        assert reply.reason == "no-feasible-candidate"
        assert daemon.stats()["sdsc"]["rejected"] == 1

    def test_full_lane_sheds_explicitly(self):
        daemon = SchedulingDaemon(
            [_spec()], queue_capacity=8, reservation_capacity=1
        )
        daemon.submit_reservation("sdsc", _reservation(0))
        shed = daemon.submit_reservation("sdsc", _reservation(1))
        reply = shed.result(0.0)
        assert reply.status == SHED
        assert reply.reason == "reservation-lane-full"
        assert daemon.stats()["sdsc"]["shed"] == 1

    def test_live_world_shard_refused(self):
        testbed = sdsc_pcl_testbed(seed=1996)
        nws = NetworkWeatherService.for_testbed(testbed, seed=7)
        daemon = SchedulingDaemon({"live": (testbed, nws)}, queue_capacity=8)
        with pytest.raises(ValueError, match="live world"):
            daemon.submit_reservation("live", _reservation(0))

    def test_unknown_shard_raises(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        with pytest.raises(KeyError, match="unknown shard"):
            daemon.submit_reservation("nope", _reservation(0))

    def test_shutdown_rejects_queued_reservations(self):
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        queued = daemon.submit_reservation("sdsc", _reservation(0))
        daemon.shutdown(drain=False)
        assert queued.result(0.0).status == REJECTED
        assert queued.result(0.0).reason == "shutdown"
        late = daemon.submit_reservation("sdsc", _reservation(1))
        assert late.result(0.0).status == REJECTED

    def test_threaded_lane_books(self):
        from repro.service.daemon import BOOKED

        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        daemon.start()
        ticket = daemon.submit_reservation("sdsc", _reservation(0))
        reply = ticket.result(30.0)
        assert reply.status == BOOKED
        daemon.shutdown(drain=True)
        assert daemon.stats()["sdsc"]["booked"] == 1

    def test_decision_lane_unaffected_by_reservations(self):
        # The reservation lane plans over a private world: the decision
        # lane's answers are bit-identical with and without lane traffic.
        daemon = SchedulingDaemon([_spec()], queue_capacity=8)
        daemon.submit_reservation("sdsc", _reservation(0))
        mixed = daemon.submit("sdsc", _request(0))
        daemon.pump()
        reference = _service_answers([_request(0)])
        assert _sig(mixed.result(0.0).answer) == _sig(reference[0])

"""Decision-path equivalence: fast scheduler ≡ reference scheduler.

The perf fast path (forecast snapshot + memoised cost models + candidate
pruning + closed-form balance) must leave the Coordinator's decision
**bit-identical** — same winning resource set, same allocations, same
predicted time — on every canned testbed and across seeds.  These tests
build one testbed + NWS and flip only the fast-path flag around agent
construction and ``schedule()``, so both paths read the exact same
forecast values and any divergence is the decision path's fault.
"""

from __future__ import annotations

import pytest

from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws import NetworkWeatherService
from repro.sim import casa_testbed, nile_testbed, sdsc_pcl_testbed, sdsc_pcl_with_sp2
from repro.util import perf

SEEDS = [(1996, 7), (2023, 11), (5, 97)]  # (testbed seed, NWS seed)

TESTBED_BUILDERS = {
    "sdsc_pcl": sdsc_pcl_testbed,
    "sdsc_pcl_sp2": sdsc_pcl_with_sp2,
    "casa": casa_testbed,
    "nile": nile_testbed,
}


def _decide(testbed, nws, problem, fast):
    """One scheduling decision with the fast path forced on or off."""
    with perf.fastpath(fast):
        agent = make_jacobi_agent(testbed, problem, nws=nws)
        return agent.schedule()


def _alloc_rows(schedule):
    return [
        (a.machine, a.work_units, a.footprint_mb) for a in schedule.allocations
    ]


@pytest.mark.parametrize("bed_name", sorted(TESTBED_BUILDERS))
@pytest.mark.parametrize("tb_seed,nws_seed", SEEDS)
def test_decision_bit_identical(bed_name, tb_seed, nws_seed):
    builder = TESTBED_BUILDERS[bed_name]
    testbed = builder(seed=tb_seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=nws_seed)
    nws.warmup(600.0)
    problem = JacobiProblem(n=600, iterations=40)

    ref = _decide(testbed, nws, problem, fast=False)
    fast = _decide(testbed, nws, problem, fast=True)

    assert fast.best.resource_set == ref.best.resource_set
    assert _alloc_rows(fast.best) == _alloc_rows(ref.best)
    assert fast.best.predicted_time == ref.best.predicted_time
    assert fast.best_objective == ref.best_objective
    # Pruned rows still count: the candidate space is identical.
    assert fast.candidates_considered == ref.candidates_considered


def test_pruning_never_claims_the_winner(testbed, warmed_nws):
    """Every pruned candidate's lower bound genuinely exceeds the winner."""
    problem = JacobiProblem(n=600, iterations=40)
    decision = _decide(testbed, warmed_nws, problem, fast=True)
    assert decision.pruning is not None
    assert decision.pruning.bounded
    for ev in decision.evaluations:
        if ev.pruned:
            assert ev.lower_bound is not None
            assert ev.lower_bound > decision.best_objective
            assert ev.schedule is None


def test_pruning_stats_account_for_every_candidate(testbed, warmed_nws):
    problem = JacobiProblem(n=600, iterations=40)
    decision = _decide(testbed, warmed_nws, problem, fast=True)
    stats = decision.pruning
    assert stats.candidates == decision.candidates_considered == 2 ** 8 - 1
    assert stats.planned + stats.pruned == stats.candidates
    assert stats.planned == sum(1 for e in decision.evaluations if not e.pruned)
    assert 0.0 <= stats.pruned_fraction <= 1.0


def test_pruning_actually_prunes_on_sdsc(testbed, warmed_nws):
    """The bound is tight enough to skip a real share of the 255 sets.

    Not a performance assertion — just a guard that the machinery is live
    (a bound that never fires would silently degrade to exhaustive scans).
    """
    problem = JacobiProblem(n=600, iterations=40)
    decision = _decide(testbed, warmed_nws, problem, fast=True)
    assert decision.pruning.pruned > 0


def test_explain_mentions_pruning(testbed, warmed_nws):
    problem = JacobiProblem(n=600, iterations=40)
    decision = _decide(testbed, warmed_nws, problem, fast=True)
    text = decision.explain()
    assert "pruned by lower bound" in text


def test_reference_path_reports_unbounded_stats(testbed, warmed_nws):
    """The reference loop reports stats too, with pruning disabled."""
    problem = JacobiProblem(n=600, iterations=40)
    decision = _decide(testbed, warmed_nws, problem, fast=False)
    assert decision.pruning is not None
    assert not decision.pruning.bounded
    assert decision.pruning.pruned == 0
    assert decision.pruning.planned == decision.candidates_considered


def test_decision_cache_closed_after_schedule(testbed, warmed_nws):
    """begin_decision/end_decision bracket cleanly (no leaked cache)."""
    problem = JacobiProblem(n=600, iterations=40)
    with perf.fastpath(True):
        agent = make_jacobi_agent(testbed, problem, nws=warmed_nws)
        agent.schedule()
        assert agent.info.decision_cache is None


def test_blocked_preference_equivalent(testbed, warmed_nws):
    """Equivalence holds with the generalised-block family in play too."""
    from repro.core.userspec import UserSpecification

    problem = JacobiProblem(n=600, iterations=40)
    spec = UserSpecification(decomposition_preference=("strip", "blocked"))

    def decide(fast):
        with perf.fastpath(fast):
            agent = make_jacobi_agent(
                testbed, problem, nws=warmed_nws, userspec=spec
            )
            return agent.schedule()

    ref = decide(False)
    fast = decide(True)
    assert fast.best.resource_set == ref.best.resource_set
    assert _alloc_rows(fast.best) == _alloc_rows(ref.best)
    assert fast.best.predicted_time == ref.best.predicted_time

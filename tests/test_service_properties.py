"""Property-based invariants of the batched evaluation kernels.

The scheduling service's vectorised core must behave like a bag of
independent scalar evaluations: the batch is an optimisation, never a
semantic.  Hypothesis drives the kernels with synthetic pools and checks:

- **batch-order invariance** — permuting the candidate rows (or the jobs
  of a batch) permutes the results bitwise, nothing else;
- **conservation** — integerised strip rows sum exactly to the grid size
  for every row the kernel certifies as exact, with every positive-area
  member keeping at least one row;
- **monotonicity** — more background load (uniformly slower machines)
  never predicts a *faster* application;
- **degenerate-input rejection** — NaN rates/costs, non-positive totals,
  and non-finite areas raise instead of propagating garbage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import balance_prefix_exact_batched
from repro.jacobi.apples import (
    StripBatchInputs,
    JacobiPlanner,
    batched_locality_orders,
    evaluate_strip_batch,
)
from repro.jacobi.cost import batched_neighbor_comm_costs
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import batched_largest_remainder_rows

# -- synthetic worlds -----------------------------------------------------

finite_rate = st.floats(min_value=1e3, max_value=1e7, allow_nan=False)
transfer_s = st.floats(min_value=1e-6, max_value=5.0, allow_nan=False)


@st.composite
def synthetic_inputs(draw, min_machines: int = 2, max_machines: int = 5):
    """A StripBatchInputs over a made-up pool (no testbed, no NWS)."""
    n = draw(st.integers(min_value=min_machines, max_value=max_machines))
    grid_n = draw(st.integers(min_value=40, max_value=400))
    rates = np.array(draw(st.lists(finite_rate, min_size=n, max_size=n)))
    pair = np.array(
        [draw(st.lists(transfer_s, min_size=n, max_size=n)) for _ in range(n)]
    )
    np.fill_diagonal(pair, 0.0)
    bytes_per_point = 16.0
    avail_mb = np.full(n, 1e6)  # roomy: memory never binds here
    problem = JacobiProblem(n=grid_n, iterations=draw(st.integers(1, 50)))
    return StripBatchInputs(
        planner=JacobiPlanner(problem),
        rank_names=tuple(f"m{j}" for j in range(n)),
        rates=rates,
        caps=avail_mb * 1e6 / bytes_per_point,
        avail_mb=avail_mb,
        pair=pair,
        sync_overhead_s=draw(st.floats(min_value=0.0, max_value=0.1)),
        total_points=float(problem.total_points),
        grid_n=grid_n,
        bytes_per_point=bytes_per_point,
        iterations=problem.iterations,
        risk_aversion=draw(st.floats(min_value=0.0, max_value=3.0)),
        risks=np.array(draw(st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n))),
        account_memory=True,
    )


def _all_masks(n: int) -> np.ndarray:
    """Every non-empty subset of ``n`` machines, as mask rows."""
    subsets = np.arange(1, 2**n)
    return (subsets[:, None] >> np.arange(n)[None, :]) & 1 == 1


# -- batch-order invariance ----------------------------------------------


class TestBatchOrderInvariance:
    @given(inputs=synthetic_inputs(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_row_permutation_is_a_permutation_of_results(self, inputs, seed):
        masks = _all_masks(len(inputs.rank_names))
        perm = np.random.default_rng(seed).permutation(len(masks))
        base = evaluate_strip_batch([(inputs, masks)])[0]
        shuffled = evaluate_strip_batch([(inputs, masks[perm])])[0]
        np.testing.assert_array_equal(shuffled.feasible, base.feasible[perm])
        np.testing.assert_array_equal(shuffled.fallback, base.fallback[perm])
        np.testing.assert_array_equal(shuffled.kept, base.kept[perm])
        both = base.feasible[perm] & ~base.fallback[perm]
        # Bitwise: same candidate set, same floats, any batch order.
        assert np.array_equal(
            shuffled.predicted[both], base.predicted[perm][both]
        )

    @given(
        a=synthetic_inputs(max_machines=4),
        b=synthetic_inputs(max_machines=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_job_order_does_not_couple_jobs(self, a, b):
        # Pad the smaller universe so the jobs can share one batch.
        n = max(len(a.rank_names), len(b.rank_names))
        a, b = _pad(a, n), _pad(b, n)
        ma, mb = _all_masks(n), _all_masks(n)
        ra1, rb1 = evaluate_strip_batch([(a, ma), (b, mb)])
        rb2, ra2 = evaluate_strip_batch([(b, mb), (a, ma)])
        for one, two in ((ra1, ra2), (rb1, rb2)):
            np.testing.assert_array_equal(one.feasible, two.feasible)
            np.testing.assert_array_equal(one.kept, two.kept)
            ok = one.feasible & ~one.fallback
            assert np.array_equal(one.predicted[ok], two.predicted[ok])

    @given(inputs=synthetic_inputs(), chunk=st.integers(1, 7))
    @settings(max_examples=20, deadline=None)
    def test_chunking_is_invisible(self, inputs, chunk):
        masks = _all_masks(len(inputs.rank_names))
        whole = evaluate_strip_batch([(inputs, masks)])[0]
        pieces = evaluate_strip_batch([(inputs, masks)], chunk_rows=chunk)[0]
        np.testing.assert_array_equal(whole.feasible, pieces.feasible)
        np.testing.assert_array_equal(whole.fallback, pieces.fallback)
        ok = whole.feasible & ~whole.fallback
        assert np.array_equal(whole.predicted[ok], pieces.predicted[ok])


def _pad(inputs: StripBatchInputs, n: int) -> StripBatchInputs:
    """Grow a synthetic universe to ``n`` machines with unusable padding."""
    k = len(inputs.rank_names)
    if k == n:
        return inputs
    extra = n - k
    pair = np.full((n, n), np.inf)
    pair[:k, :k] = inputs.pair
    np.fill_diagonal(pair, 0.0)
    return StripBatchInputs(
        planner=inputs.planner,
        rank_names=inputs.rank_names + tuple(f"pad{j}" for j in range(extra)),
        rates=np.concatenate([inputs.rates, np.zeros(extra)]),
        caps=np.concatenate([inputs.caps, np.zeros(extra)]),
        avail_mb=np.concatenate([inputs.avail_mb, np.zeros(extra)]),
        pair=pair,
        sync_overhead_s=inputs.sync_overhead_s,
        total_points=inputs.total_points,
        grid_n=inputs.grid_n,
        bytes_per_point=inputs.bytes_per_point,
        iterations=inputs.iterations,
        risk_aversion=inputs.risk_aversion,
        risks=np.concatenate([inputs.risks, np.zeros(extra)]),
        account_memory=inputs.account_memory,
    )


# -- conservation ---------------------------------------------------------


class TestRowConservation:
    @given(
        grid=st.integers(min_value=10, max_value=2000),
        areas=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8
        ),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_rows_conserve_the_grid(self, grid, areas, seed):
        n = len(areas)
        rng = np.random.default_rng(seed)
        scale = grid / sum(areas)
        padded = np.zeros((1, n + 2))
        padded[0, :n] = np.array(areas) * scale  # realistic magnitudes
        rows, exact = batched_largest_remainder_rows(
            np.array([grid]), padded, np.array([n])
        )
        if exact[0]:
            assert rows[0].sum() == grid
            assert (rows[0, :n] >= 1).all()  # every member keeps a strip
            assert (rows[0, n:] == 0).all()  # padding gets nothing
        del rng  # reserved for future shuffles

    @given(inputs=synthetic_inputs())
    @settings(max_examples=30, deadline=None)
    def test_kept_members_are_members(self, inputs):
        masks = _all_masks(len(inputs.rank_names))
        result = evaluate_strip_batch([(inputs, masks)])[0]
        # The planner may keep a subset, never a superset.
        assert not (result.kept & ~masks).any()
        feasible = result.feasible & ~result.fallback
        assert (result.kept[feasible].sum(axis=1) >= 1).all()
        assert np.isfinite(result.predicted[feasible]).all()


# -- monotonicity in background load -------------------------------------


class TestLoadMonotonicity:
    @given(
        inputs=synthetic_inputs(),
        slowdown=st.floats(min_value=0.1, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniformly_slower_machines_never_predict_faster(
        self, inputs, slowdown
    ):
        """More background load = lower deliverable rates = larger T.

        The theorem holds per *kept member set*: when both worlds converge
        on the same machines, the slow world's continuous balanced time
        dominates the fast world's, and the integerised step time sits
        within one grid row of the continuous optimum.  (Across different
        kept sets the planner is a heuristic and no ordering is promised —
        dropping a chatty member at high rates can legitimately predict
        slower than keeping it at low rates.)
        """
        masks = _all_masks(len(inputs.rank_names))
        fast_world = evaluate_strip_batch([(inputs, masks)])[0]
        loaded = StripBatchInputs(
            planner=inputs.planner,
            rank_names=inputs.rank_names,
            rates=inputs.rates * slowdown,
            caps=inputs.caps,
            avail_mb=inputs.avail_mb,
            pair=inputs.pair,
            sync_overhead_s=inputs.sync_overhead_s,
            total_points=inputs.total_points,
            grid_n=inputs.grid_n,
            bytes_per_point=inputs.bytes_per_point,
            iterations=inputs.iterations,
            risk_aversion=inputs.risk_aversion,
            risks=inputs.risks,
            account_memory=inputs.account_memory,
        )
        slow_world = evaluate_strip_batch([(loaded, masks)])[0]
        comparable = (
            fast_world.feasible
            & ~fast_world.fallback
            & slow_world.feasible
            & ~slow_world.fallback
            & (fast_world.kept == slow_world.kept).all(axis=1)
        )
        for i in np.flatnonzero(comparable):
            kept = fast_world.kept[i]
            # T_fast exceeds its continuous optimum by at most one grid row
            # on the slowest kept machine (largest-remainder apportionment
            # hands out at most one extra row); T_slow is never below its
            # own continuous optimum, which dominates the fast one.
            risk_mult = 1.0 + inputs.risk_aversion * inputs.risks[kept].max()
            slack = (
                inputs.grid_n / inputs.rates[kept].min()
                * inputs.iterations
                * risk_mult
            )
            assert slow_world.predicted[i] >= (
                fast_world.predicted[i] - slack
            ) * (1.0 - 1e-9)

    @given(
        rates=st.lists(finite_rate, min_size=2, max_size=6),
        costs=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=2, max_size=6
        ),
        total=st.floats(min_value=1e2, max_value=1e8),
        slowdown=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_balanced_time_monotone_in_rates(
        self, rates, costs, total, slowdown
    ):
        n = min(len(rates), len(costs))
        r = np.array([rates[:n], [x * slowdown for x in rates[:n]]])
        c = np.array([costs[:n], costs[:n]])
        res = balance_prefix_exact_batched(r, c, np.array([total, total]))
        if not res.needs_reference.any():
            assert res.makespans[1] >= res.makespans[0] * (1.0 - 1e-12)


# -- degenerate inputs ----------------------------------------------------


class TestDegenerateRejection:
    def test_nan_rates_rejected(self):
        with pytest.raises(ValueError):
            balance_prefix_exact_batched(
                np.array([[1.0, np.nan]]),
                np.array([[0.1, 0.2]]),
                np.array([100.0]),
            )

    def test_nan_costs_rejected(self):
        with pytest.raises(ValueError):
            balance_prefix_exact_batched(
                np.array([[1.0, 2.0]]),
                np.array([[0.1, np.nan]]),
                np.array([100.0]),
            )

    def test_zero_rate_member_rejected(self):
        with pytest.raises(ValueError):
            balance_prefix_exact_batched(
                np.array([[1.0, 0.0]]),
                np.array([[0.1, 0.2]]),  # both finite => both members
                np.array([100.0]),
            )

    def test_negative_cost_member_rejected(self):
        with pytest.raises(ValueError):
            balance_prefix_exact_batched(
                np.array([[1.0, 2.0]]),
                np.array([[0.1, -0.2]]),
                np.array([100.0]),
            )

    @given(total=st.floats(max_value=0.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_nonpositive_totals_rejected(self, total):
        with pytest.raises(ValueError):
            balance_prefix_exact_batched(
                np.array([[1.0]]), np.array([[0.1]]), np.array([total])
            )

    def test_nonfinite_areas_rejected(self):
        with pytest.raises(ValueError):
            batched_largest_remainder_rows(
                np.array([100]),
                np.array([[np.inf, 1.0]]),
                np.array([2]),
            )

    def test_dead_links_yield_inf_not_nan(self):
        pair = np.array([[0.0, np.inf], [np.inf, 0.0]])
        order = np.array([[0, 1]])
        costs = batched_neighbor_comm_costs(pair, order, np.array([2]), 0.01)
        assert np.isinf(costs).all() and not np.isnan(costs).any()

    def test_locality_orders_require_2d(self):
        with pytest.raises(ValueError):
            batched_locality_orders(np.array([True, False]))

"""Standalone verifier: feasibility verdicts and the differential contract.

Two layers of guarantee:

1. **Feasibility** — the verifier rejects every malformed allocation with
   a reason string naming the violated constraint (checked here against a
   hand-built instance whose violations are unambiguous).
2. **Differential bit-identity** — for every decision an
   :class:`AppLeSAgent` or the batched :class:`SchedulingService` emits
   over canned testbeds, the verifier re-derives the *same* objective
   from the frozen instance alone, under both decision paths (the fast
   path and ``REPRO_NO_FASTPATH``).  The verifier imports zero scheduler
   code, so agreement means the frozen arrays and the reference estimator
   arithmetic really carry the whole objective.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.arena import (
    ArenaAllocation,
    ArenaInstance,
    MachineState,
    build_world,
    generate_instances,
    make_policy,
    verify_allocation,
)
from repro.service import DecisionRequest, SchedulingService
from repro.util import perf

# -- a hand-built instance whose infeasibilities are unambiguous -----------

_MACHINES = (
    MachineState(
        name="alpha", site="sdsc", arch="alpha", speed_mflops=100.0,
        memory_available_mb=64.0, availability=0.8, availability_error=0.1,
    ),
    MachineState(
        name="beta", site="sdsc", arch="alpha", speed_mflops=50.0,
        memory_available_mb=0.01, availability=0.9, availability_error=0.05,
    ),
    MachineState(
        name="gamma", site="pcl", arch="sparc", speed_mflops=80.0,
        memory_available_mb=64.0, availability=0.0, availability_error=0.2,
    ),
)


def _tiny_instance(bandwidth_to_gamma: float = 1e6) -> ArenaInstance:
    lat = ((0.0, 0.001, 0.05), (0.001, 0.0, 0.05), (0.05, 0.05, 0.0))
    inf = float("inf")
    bw = (
        (inf, 1e7, bandwidth_to_gamma),
        (1e7, inf, bandwidth_to_gamma),
        (bandwidth_to_gamma, bandwidth_to_gamma, inf),
    )
    return ArenaInstance(
        instance_id="tiny-000",
        instance_class="sdsc8",
        world={"generator": "sdsc", "seed": 1, "nws_seed": 1, "warmup_s": 0.0,
               "n_hosts": 8, "n_segments": None},
        machines=_MACHINES,
        latency_s=lat,
        bandwidth_bps=bw,
        problem={"n": 100, "iterations": 10, "flop_per_point": 1e-3,
                 "bytes_per_point": 8.0, "border_bytes_per_point": 8.0,
                 "sync_overhead_s": 0.001},
    )


def _alloc(machines, points):
    return ArenaAllocation(
        instance_id="tiny-000", policy="test",
        machines=tuple(machines), points=tuple(points),
    )


class TestFeasibility:
    def test_feasible_allocation_scores(self):
        inst = _tiny_instance()
        report = verify_allocation(inst, _alloc(("alpha",), (10000.0,)))
        assert report.feasible, report.reasons
        assert math.isfinite(report.objective) and report.objective > 0.0

    def test_unknown_machine(self):
        report = verify_allocation(
            _tiny_instance(), _alloc(("alpha", "nope"), (5000.0, 5000.0))
        )
        assert not report.feasible
        assert "unknown-machine:nope" in report.reasons

    def test_duplicate_machine(self):
        report = verify_allocation(
            _tiny_instance(), _alloc(("alpha", "alpha"), (5000.0, 5000.0))
        )
        assert not report.feasible
        assert "duplicate-machine" in report.reasons

    def test_shape_mismatch_and_empty(self):
        assert not verify_allocation(
            _tiny_instance(), _alloc(("alpha",), (5000.0, 5000.0))
        ).feasible
        assert not verify_allocation(_tiny_instance(), _alloc((), ())).feasible

    def test_non_positive_points(self):
        report = verify_allocation(
            _tiny_instance(), _alloc(("alpha", "beta"), (10000.0, 0.0))
        )
        assert not report.feasible
        assert "non-positive-points:beta" in report.reasons

    def test_work_conservation_exact(self):
        report = verify_allocation(_tiny_instance(), _alloc(("alpha",), (9999.0,)))
        assert not report.feasible
        assert "work-dropped" in report.reasons

    def test_capacity_overflow(self):
        # beta has 0.01 MB: room for 1250 points, not the whole grid.
        report = verify_allocation(
            _tiny_instance(), _alloc(("beta",), (10000.0,))
        )
        assert not report.feasible
        assert "capacity-overflow:beta" in report.reasons

    def test_zero_rate(self):
        # gamma's availability forecast is 0.0: conservative speed is zero.
        report = verify_allocation(
            _tiny_instance(), _alloc(("alpha", "gamma"), (5000.0, 5000.0))
        )
        assert not report.feasible
        assert "zero-rate:gamma" in report.reasons

    def test_unroutable(self):
        inst = _tiny_instance(bandwidth_to_gamma=0.0)
        # Zero out gamma's availability problem but keep the dead link.
        machines = (
            inst.machines[0],
            inst.machines[1],
            dataclasses.replace(inst.machines[2], availability=0.9,
                                memory_available_mb=64.0),
        )
        inst = dataclasses.replace(inst, machines=machines)
        report = verify_allocation(
            inst, _alloc(("alpha", "gamma"), (5000.0, 5000.0))
        )
        assert not report.feasible
        assert any(r.startswith("unroutable:") for r in report.reasons)

    def test_infeasible_objective_is_inf(self):
        report = verify_allocation(_tiny_instance(), _alloc(("alpha",), (1.0,)))
        assert report.objective == float("inf")


# -- differential: verifier == decision objective, both gate modes ---------

_POLICIES = ("greedy", "exhaustive", "seeded", "locality")


@pytest.fixture(scope="module")
def canned_instances():
    return (
        generate_instances("sdsc8", 2, seed=42, sizes=(500,), iterations=10)
        + generate_instances("synth14", 1, seed=42, sizes=(500,), iterations=10)
    )


@pytest.mark.parametrize("fast", [True, False], ids=["fastpath", "no-fastpath"])
class TestDifferential:
    def test_agent_decisions_re_derived_exactly(self, canned_instances, fast):
        """verifier(instance, alloc) == AppLeSAgent.schedule() objective."""
        checked = 0
        with perf.fastpath(fast):
            for name in _POLICIES:
                runner = make_policy(name)
                for inst in canned_instances:
                    if name == "exhaustive" and len(inst.machines) > 12:
                        continue
                    alloc = runner.run(inst)
                    report = verify_allocation(inst, alloc)
                    assert report.feasible, (name, inst.instance_id, report.reasons)
                    assert report.objective == alloc.claimed_objective, (
                        name, inst.instance_id,
                    )
                    checked += 1
        assert checked == len(_POLICIES) * 3 - 1  # exhaustive skips synth14

    def test_service_decisions_re_derived_exactly(self, canned_instances, fast):
        """verifier(instance, alloc) == SchedulingService.decide() objective."""
        with perf.fastpath(fast):
            for inst in canned_instances[:2]:  # the sdsc8 pair
                testbed, nws = build_world(inst.world)
                service = SchedulingService(testbed, nws)
                answers = service.decide([
                    DecisionRequest(
                        problem=inst.jacobi_problem(),
                        account_memory=bool(inst.params["account_memory"]),
                        at=nws.now,
                    )
                ])
                (answer,) = answers
                alloc = ArenaAllocation(
                    instance_id=inst.instance_id,
                    policy="service",
                    machines=tuple(a.machine for a in answer.best.allocations),
                    points=tuple(
                        float(a.work_units) for a in answer.best.allocations
                    ),
                    claimed_objective=answer.best_objective,
                )
                report = verify_allocation(inst, alloc)
                assert report.feasible, report.reasons
                assert report.objective == answer.best_objective

    def test_static_claim_differs_from_verified(self, canned_instances, fast):
        """The compile-time baseline's nominal claim is NOT the verified
        objective — the gap between them is the paper's motivation."""
        with perf.fastpath(fast):
            runner = make_policy("static")
            alloc = runner.run(canned_instances[0])
        report = verify_allocation(canned_instances[0], alloc)
        assert report.feasible, report.reasons
        assert report.objective != alloc.claimed_objective

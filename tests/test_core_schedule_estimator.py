"""Tests for the schedule data model and performance estimators."""

from __future__ import annotations

import pytest

from repro.core.estimator import (
    CostEstimator,
    ExecutionTimeEstimator,
    SpeedupEstimator,
    make_estimator,
)
from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.schedule import Allocation, Schedule
from repro.core.userspec import UserSpecification


def _schedule(predicted=10.0, machines=("a", "b")):
    return Schedule(
        allocations=[Allocation(machine=m, task="t", work_units=1.0) for m in machines],
        predicted_time=predicted,
    )


def _info(testbed, userspec=None):
    hat = HeterogeneousApplicationTemplate(
        name="x", paradigm="data-parallel",
        tasks=(TaskCharacteristics("t", 1.0),),
        communication=CommunicationCharacteristics(),
        structure=StructureInfo(total_units=1.0),
    )
    return InformationPool(
        pool=ResourcePool(testbed.topology), hat=hat,
        userspec=userspec or UserSpecification(),
    )


class TestSchedule:
    def test_resource_set_dedup_ordered(self):
        s = Schedule(
            allocations=[
                Allocation("m1", "a", 1.0),
                Allocation("m2", "a", 1.0),
                Allocation("m1", "b", 1.0),
            ],
            predicted_time=1.0,
        )
        assert s.resource_set == ("m1", "m2")

    def test_duplicate_machine_task_rejected(self):
        with pytest.raises(ValueError):
            Schedule(
                allocations=[Allocation("m", "a", 1.0), Allocation("m", "a", 2.0)],
                predicted_time=1.0,
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schedule(allocations=[], predicted_time=1.0)

    def test_total_work(self):
        s = _schedule()
        assert s.total_work_units == 2.0

    def test_allocation_lookup(self):
        s = _schedule()
        assert s.allocation_for("a").machine == "a"
        with pytest.raises(KeyError):
            s.allocation_for("zzz")

    def test_describe_mentions_machines(self):
        text = _schedule().describe()
        assert "a" in text and "b" in text

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError):
            Allocation("m", "t", -1.0)


class TestEstimators:
    def test_execution_time(self, testbed):
        est = ExecutionTimeEstimator()
        info = _info(testbed)
        assert est.objective(_schedule(12.0), info) == 12.0
        assert est.metric_value(_schedule(12.0), info) == 12.0

    def test_speedup(self, testbed):
        est = SpeedupEstimator(baseline=100.0)
        info = _info(testbed)
        s = _schedule(predicted=25.0)
        assert est.metric_value(s, info) == pytest.approx(4.0)
        # Lower objective = better: faster schedule wins.
        assert est.objective(_schedule(10.0), info) < est.objective(_schedule(20.0), info)

    def test_speedup_callable_baseline(self, testbed):
        est = SpeedupEstimator(baseline=lambda info: 50.0)
        assert est.metric_value(_schedule(25.0), _info(testbed)) == pytest.approx(2.0)

    def test_speedup_bad_baseline(self, testbed):
        est = SpeedupEstimator(baseline=0.0)
        with pytest.raises(ValueError):
            est.objective(_schedule(), _info(testbed))

    def test_cost(self, testbed):
        us = UserSpecification(
            performance_metric="cost",
            cost_per_cpu_second={"a": 2.0, "b": 1.0},
        )
        est = CostEstimator()
        info = _info(testbed, us)
        # 10 s on machines costing 3.0/s total.
        assert est.metric_value(_schedule(10.0), info) == pytest.approx(30.0)

    def test_cost_prefers_cheap_machines(self, testbed):
        us = UserSpecification(
            performance_metric="cost",
            cost_per_cpu_second={"expensive": 10.0, "cheap": 0.1},
        )
        info = _info(testbed, us)
        est = CostEstimator()
        fast_pricey = _schedule(predicted=5.0, machines=("expensive",))
        slow_cheap = _schedule(predicted=20.0, machines=("cheap",))
        assert est.objective(slow_cheap, info) < est.objective(fast_pricey, info)

    def test_factory(self):
        assert isinstance(make_estimator("execution_time"), ExecutionTimeEstimator)
        assert isinstance(make_estimator("speedup", baseline=1.0), SpeedupEstimator)
        assert isinstance(make_estimator("cost"), CostEstimator)

    def test_factory_speedup_needs_baseline(self):
        with pytest.raises(ValueError):
            make_estimator("speedup")

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_estimator("karma")

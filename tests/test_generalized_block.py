"""Tests for the generalised block distribution and its planner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinator import AppLeSAgent
from repro.jacobi.apples import ApplesBlockedPlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import generalized_block_partition
from repro.jacobi.runtime import execute_block_partition, simulated_execution
from repro.jacobi.solver import jacobi_reference, make_test_grid


class TestGeneralizedBlockPartition:
    def test_covers_grid(self):
        part = generalized_block_partition(
            100, [f"m{i}" for i in range(6)], [6, 5, 4, 3, 2, 1]
        )
        assert sum(b.area for b in part.blocks) == 100 * 100

    def test_faster_machines_get_bigger_tiles(self):
        part = generalized_block_partition(
            120, ["fast", "slow"], [10.0, 1.0]
        )
        areas = {b.machine: b.area for b in part.blocks}
        assert areas["fast"] > areas["slow"]

    def test_columns_aligned(self):
        part = generalized_block_partition(
            90, [f"m{i}" for i in range(4)], [4, 3, 2, 1]
        )
        # All rows must share the same column boundaries (2x2 grid).
        starts_by_row = {}
        for i in range(part.pr):
            starts_by_row[i] = [part.block_at(i, j).col_start for j in range(part.pc)]
        assert len({tuple(v) for v in starts_by_row.values()}) == 1

    def test_uniform_rates_give_near_uniform_tiles(self):
        part = generalized_block_partition(
            100, [f"m{i}" for i in range(4)], [1.0] * 4
        )
        areas = [b.area for b in part.blocks]
        assert max(areas) - min(areas) <= 100  # one row/col of slack

    def test_validation(self):
        with pytest.raises(ValueError):
            generalized_block_partition(10, ["a"], [])
        with pytest.raises(ValueError):
            generalized_block_partition(10, ["a"], [0.0])
        with pytest.raises(ValueError):
            generalized_block_partition(10, [], [])

    def test_numeric_equivalence(self):
        g = make_test_grid(36, seed=3)
        part = generalized_block_partition(
            36, [f"m{i}" for i in range(6)], [6, 5, 4, 3, 2, 1]
        )
        out = execute_block_partition(g, part, 8)
        assert np.array_equal(out, jacobi_reference(g, 8))

    @given(
        n=st.integers(min_value=12, max_value=48),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_numeric_equivalence(self, n, k, seed):
        rng = np.random.default_rng(seed)
        rates = list(rng.uniform(0.5, 10.0, size=k))
        part = generalized_block_partition(n, [f"m{i}" for i in range(k)], rates)
        g = make_test_grid(n, seed=seed)
        assert np.array_equal(
            execute_block_partition(g, part, 4), jacobi_reference(g, 4)
        )


class TestApplesBlockedPlanner:
    def test_plans_with_dynamic_rates(self, testbed, warmed_nws):
        problem = JacobiProblem(n=1000, iterations=20)
        agent = make_jacobi_agent(testbed, problem, warmed_nws)
        sched = ApplesBlockedPlanner(problem).plan(
            ["rs6000a", "rs6000b"], agent.info
        )
        assert sched is not None
        assert sched.decomposition == "apples-blocked"
        areas = {a.machine: a.work_units for a in sched.allocations}
        # The heavily loaded rs6000a must get the smaller tile.
        assert areas["rs6000a"] < areas["rs6000b"]

    def test_full_blueprint_executes(self, testbed, warmed_nws):
        problem = JacobiProblem(n=1000, iterations=20)
        strip_agent = make_jacobi_agent(testbed, problem, warmed_nws)
        blocked_agent = AppLeSAgent(
            strip_agent.info, planner=ApplesBlockedPlanner(problem)
        )
        sched = blocked_agent.schedule().best
        run = simulated_execution(testbed.topology, sched, 600.0)
        assert run.total_time > 0
        assert sched.total_work_units == problem.total_points

    def test_validation(self):
        with pytest.raises(ValueError):
            ApplesBlockedPlanner(JacobiProblem(n=100), risk_aversion=-1.0)

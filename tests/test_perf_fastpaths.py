"""Fast-path regressions: every optimisation vs its reference implementation.

The hot-path work (incremental window statistics, ensemble memoisation,
NWS query caches, bulk load generation, the engine's zero-delay ready
queue) keeps the straightforward implementations alive behind
:mod:`repro.util.perf`.  These tests run both paths over identical inputs:

- running-sum statistics must agree to tight relative tolerance (the sums
  are resynchronised periodically, so drift is bounded but not zero);
- everything else (memoisation, caches, bulk RNG, event ordering) must be
  *exactly* equal.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.nws.ensemble import AdaptiveEnsemble
from repro.nws.forecasters import (
    AdaptiveWindowMean,
    MedianWindow,
    SlidingWindowMean,
    TrimmedMeanWindow,
)
from repro.sim.engine import Simulator
from repro.sim.load import AR1Load, ConstantLoad, MarkovLoad, SpikeLoad, TraceLoad
from repro.util import perf
from repro.util.rng import RngStream

#: Enough samples to evict from every window many times and cross the
#: running-sum resynchronisation boundary.
_N_SAMPLES = 1500


def _series(seed: int = 9) -> list[float]:
    gen = np.random.default_rng(seed)
    return [float(v) for v in gen.uniform(0.0, 1.0, _N_SAMPLES)]


def _one_step_forecasts(forecaster, series):
    out = []
    for i, value in enumerate(series):
        if i > 0:
            out.append(forecaster.forecast())
        forecaster.update(value)
    return out


class TestWindowForecasterFastpaths:
    """Fast incremental statistics vs the rescanning reference."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: SlidingWindowMean(8),
            lambda: SlidingWindowMean(32),
            lambda: MedianWindow(8),
            lambda: MedianWindow(32),
            lambda: MedianWindow(7),  # odd window: single-middle branch
            lambda: TrimmedMeanWindow(16, 0.25),
            lambda: TrimmedMeanWindow(8, 0.4),
            lambda: AdaptiveWindowMean(),
        ],
        ids=["sw8", "sw32", "med8", "med32", "med7", "trim16", "trim8", "adapt"],
    )
    def test_matches_reference(self, make):
        series = _series()
        with perf.fastpath(True):
            fast = _one_step_forecasts(make(), series)
        with perf.fastpath(False):
            naive = _one_step_forecasts(make(), series)
        assert len(fast) == len(naive) == _N_SAMPLES - 1
        for f, n in zip(fast, naive):
            assert math.isclose(f, n, rel_tol=1e-9, abs_tol=1e-12)

    def test_median_fastpath_exact(self):
        # Order statistics involve no running sums: exactly equal.
        series = _series(4)
        with perf.fastpath(True):
            fast = _one_step_forecasts(MedianWindow(16), series)
        with perf.fastpath(False):
            naive = _one_step_forecasts(MedianWindow(16), series)
        assert fast == naive


class TestEnsembleMemoisation:
    def test_forecast_pure_between_updates(self):
        with perf.fastpath(True):
            ens = AdaptiveEnsemble()
            for v in _series(2)[:200]:
                ens.update(v)
            first = ens.forecast()
            assert ens.forecast().value == first.value

    def test_memoised_equals_unmemoised(self):
        # fastpath(False) also swaps the *member* forecasters to their
        # rescanning implementations, so tiny running-sum float drift is
        # expected; the memoisation itself adds no error on top.
        series = _series(3)[:400]
        with perf.fastpath(True):
            fast = _one_step_forecasts_ensemble(series)
        with perf.fastpath(False):
            naive = _one_step_forecasts_ensemble(series)
        assert len(fast) == len(naive)
        for f, n in zip(fast, naive):
            assert math.isclose(f, n, rel_tol=1e-9, abs_tol=1e-12)


def _one_step_forecasts_ensemble(series):
    ens = AdaptiveEnsemble()
    out = []
    for i, value in enumerate(series):
        if i > 0:
            out.append(ens.forecast().value)
        ens.update(value)
    return out


class TestBulkLoadGeneration:
    """Batched epoch generation must be bit-identical to scalar chaining."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda rng: AR1Load(mean=0.5, phi=0.9, sigma=0.1, rng=rng),
            lambda rng: MarkovLoad(idle_level=0.9, busy_level=0.2, p_busy=0.15,
                                   p_idle=0.3, rng=rng),
            lambda rng: SpikeLoad(base=0.95, spike_level=0.1, p_spike=0.05,
                                  p_recover=0.5, rng=rng),
            lambda rng: ConstantLoad(level=0.7),
            lambda rng: TraceLoad([0.1, 0.5, 0.9], dt=5.0),
        ],
        ids=["ar1", "markov", "spike", "constant", "trace"],
    )
    def test_bulk_equals_scalar(self, make):
        with perf.fastpath(True):
            bulk = make(RngStream(77, "load").child("x"))
            bulk_vals = [bulk.availability(t * 2.5) for t in range(800)]
        with perf.fastpath(False):
            scalar = make(RngStream(77, "load").child("x"))
            scalar_vals = [scalar.availability(t * 2.5) for t in range(800)]
        assert bulk_vals == scalar_vals

    def test_incremental_then_bulk_fill(self):
        # Mixed access: a few scalar fills first, then a far jump.
        with perf.fastpath(True):
            a = AR1Load(mean=0.5, phi=0.9, sigma=0.1,
                        rng=RngStream(5, "load").child("y"))
            head = [a.availability(t * 3.0) for t in range(10)]
            far = a.availability(5000.0)
        with perf.fastpath(False):
            b = AR1Load(mean=0.5, phi=0.9, sigma=0.1,
                        rng=RngStream(5, "load").child("y"))
            head_ref = [b.availability(t * 3.0) for t in range(10)]
            far_ref = b.availability(5000.0)
        assert head == head_ref
        assert far == far_ref


class TestEngineZeroDelayFastpath:
    def _firing_order(self, fast: bool) -> list[tuple[str, float]]:
        with perf.fastpath(fast):
            sim = Simulator()
            order: list[tuple[str, float]] = []

            def note(tag):
                order.append((tag, sim.now))

            # Interleave zero-delay and timed events, including ties.
            sim.schedule(0.0, note, "z1")
            sim.schedule(1.0, note, "t1")
            sim.schedule(0.0, note, "z2")
            sim.schedule(0.0, lambda: sim.schedule(0.0, note, "nested"))
            sim.schedule(1.0, note, "t2")
            sim.schedule(0.5, lambda: sim.schedule(0.0, note, "mid"))
            sim.run()
            return order

    def test_order_identical_to_pure_heap(self):
        assert self._firing_order(True) == self._firing_order(False)

    def test_processes_identical(self):
        def results(fast):
            with perf.fastpath(fast):
                sim = Simulator()
                log: list[tuple[str, float]] = []

                def worker(tag, delay):
                    yield 0
                    log.append((tag, sim.now))
                    yield delay
                    log.append((tag + "'", sim.now))

                procs = [sim.process(worker(f"p{i}", 0.25 * i)) for i in range(4)]
                sim.run_until_done(procs)
                return log

        assert results(True) == results(False)


class TestServiceCaches:
    def test_cached_queries_equal_uncached(self):
        from repro.nws.service import NetworkWeatherService
        from repro.sim.testbeds import sdsc_pcl_testbed

        def snapshot(fast):
            with perf.fastpath(fast):
                testbed = sdsc_pcl_testbed(seed=21)
                nws = NetworkWeatherService.for_testbed(testbed, seed=22)
                nws.warmup(120.0)
                hosts = list(testbed.host_names)
                out = []
                for t in (120.0, 180.0):
                    nws.advance_to(t)
                    for h in hosts:
                        out.append(nws.cpu_forecast(h).value)
                        out.append(nws.cpu_forecast(h).value)  # repeat: hits cache
                    out.append(nws.path_bandwidth_forecast(hosts[0], hosts[1]))
                    out.append(nws.path_bandwidth_forecast(hosts[0], hosts[1]))
                return out

        fast, naive = snapshot(True), snapshot(False)
        assert len(fast) == len(naive)
        # Every query was issued twice back-to-back: the cached repeat must
        # be *exactly* the first answer...
        assert fast[0::2] == fast[1::2]
        # ...and fast vs naive may differ only by member running-sum drift.
        for f, n in zip(fast, naive):
            assert math.isclose(f, n, rel_tol=1e-9, abs_tol=1e-12)

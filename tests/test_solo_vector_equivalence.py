"""Differential suite: vectorised solo decision ≡ scalar fast path ≡ reference.

The one-shot tensor sweep (``AppLeSAgent._schedule_vectorised``) claims to
change *nothing observable* about a solo decision.  These tests force each
arm explicitly — ``reference`` (``REPRO_NO_FASTPATH`` semantics),
``scalar`` (the PR2 fast path with ``REPRO_NO_SOLO_VECTOR`` semantics) and
``vector`` — around agent construction, so all three read the same
forecasts, and assert bit-identity:

- winner resource set, allocations, predicted time, objective — across
  all three arms (the reference loop is the ground truth);
- evaluation order (the ``core.incumbent`` event sequence), pruned rows
  and :class:`PruningStats` — between the two bounded arms, which share
  the seeded sweep (the reference loop is unbounded by design);
- the vector arm really took the tensor path (``decision.vectorised``)
  and the scalar arm really did not.

A Hypothesis property drives random pools, seeds, problem shapes and user
specifications through the same oracle; CI runs this file in both ambient
gate modes, which must not matter because every arm pins its own gates.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.userspec import UserSpecification
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws import NetworkWeatherService
from repro.obs.trace import tracing
from repro.sim import casa_testbed, nile_testbed, sdsc_pcl_testbed
from repro.util import perf

BUILDERS = {
    "sdsc_pcl": sdsc_pcl_testbed,
    "casa": casa_testbed,
}

ARMS = {
    "reference": (False, False),
    "scalar": (True, False),
    "vector": (True, True),
}


def _decide(testbed, nws, problem, arm, userspec=None, account_memory=True):
    """One decision with the (fastpath, solo_vector) gates pinned."""
    fast, vector = ARMS[arm]
    with perf.fastpath(fast), perf.solo_vector(vector), tracing() as tr:
        agent = make_jacobi_agent(
            testbed, problem, nws=nws, userspec=userspec,
            account_memory=account_memory,
        )
        decision = agent.schedule()
    incumbents = [
        (r["fields"]["idx"], r["fields"]["objective"],
         r["fields"].get("seeded", False))
        for r in tr.records()
        if r["kind"] == "event" and r["name"] == "core.incumbent"
    ]
    return decision, incumbents


def _winner(decision):
    return (
        decision.best.resource_set,
        tuple((a.machine, a.work_units, a.footprint_mb)
              for a in decision.best.allocations),
        decision.best.predicted_time,
        decision.best_objective,
        decision.candidates_considered,
    )


def _pruned_rows(decision):
    return tuple(ev.pruned for ev in decision.evaluations)


def _assert_equivalent(testbed, nws, problem, userspec=None, account_memory=True):
    ref, _ = _decide(testbed, nws, problem, "reference", userspec, account_memory)
    scalar, scalar_inc = _decide(
        testbed, nws, problem, "scalar", userspec, account_memory
    )
    vector, vector_inc = _decide(
        testbed, nws, problem, "vector", userspec, account_memory
    )

    # The reference loop is the oracle for the *decision*.
    assert _winner(scalar) == _winner(ref)
    assert _winner(vector) == _winner(ref)
    assert not ref.vectorised and not scalar.vectorised

    # The two bounded arms replay the identical seeded sweep: same
    # incumbent (evaluation) order, same pruned rows, same statistics.
    assert vector_inc == scalar_inc
    assert _pruned_rows(vector) == _pruned_rows(scalar)
    assert vector.pruning == scalar.pruning
    return ref, scalar, vector


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    bed_name=st.sampled_from(sorted(BUILDERS)),
    tb_seed=st.integers(min_value=1, max_value=2**16),
    nws_seed=st.integers(min_value=1, max_value=2**16),
    n=st.sampled_from([500, 800, 1100]),
    iterations=st.integers(min_value=10, max_value=60),
    max_machines=st.one_of(st.none(), st.integers(min_value=2, max_value=6)),
    account_memory=st.booleans(),
)
def test_property_random_pools_and_specs(
    bed_name, tb_seed, nws_seed, n, iterations, max_machines, account_memory
):
    testbed = BUILDERS[bed_name](seed=tb_seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=nws_seed)
    nws.warmup(600.0)
    problem = JacobiProblem(n=n, iterations=iterations)
    userspec = (
        UserSpecification() if max_machines is None
        else UserSpecification(max_machines=max_machines)
    )
    _, _, vector = _assert_equivalent(
        testbed, nws, problem, userspec, account_memory
    )
    # Strip-only configurations always batch: the vector arm must have
    # actually exercised the tensor path, or this suite tests nothing.
    assert vector.vectorised


def test_exhaustive_twelve_machine_pool():
    """The headline pool: nile's 4095-candidate exhaustive sweep."""
    testbed = nile_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.warmup(600.0)
    _, _, vector = _assert_equivalent(
        testbed, nws, JacobiProblem(n=1000, iterations=40)
    )
    assert vector.vectorised
    assert vector.candidates_considered == 2**12 - 1


def test_incumbent_stream_seeds_exactly_once():
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.warmup(600.0)
    _, incumbents = _decide(
        testbed, nws, JacobiProblem(n=600, iterations=20), "vector"
    )
    assert incumbents, "a feasible decision must announce incumbents"
    assert incumbents[0][2] is True  # the warm start
    assert all(seeded is False for _, _, seeded in incumbents[1:])
    objectives = [obj for _, obj, _ in incumbents]
    assert objectives == sorted(objectives, reverse=True)


def test_multi_family_configuration_declines_to_vectorise():
    """With both decomposition families active the dispatcher cannot name
    a single batch planner, so the vector gate falls back to the scalar
    sweep — and the decision is still bit-identical to the reference."""
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.warmup(600.0)
    problem = JacobiProblem(n=600, iterations=20)
    spec = UserSpecification(decomposition_preference=("strip", "blocked"))

    ref, _ = _decide(testbed, nws, problem, "reference", spec)
    vector, _ = _decide(testbed, nws, problem, "vector", spec)
    assert not vector.vectorised
    assert _winner(vector) == _winner(ref)


def test_vector_rows_expose_winner_schedule():
    """`evaluations` rows from the tensor path keep the explain() contract:
    the winner row holds the materialised schedule, pruned rows hold
    their bound, and certified rows carry a finite objective."""
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.warmup(600.0)
    decision, _ = _decide(
        testbed, nws, JacobiProblem(n=600, iterations=20), "vector"
    )
    assert decision.vectorised
    rows = decision.evaluations
    winners = [ev for ev in rows if ev.schedule is decision.best]
    assert len(winners) == 1
    assert winners[0].objective == decision.best_objective
    for ev in rows:
        if ev.pruned:
            assert ev.lower_bound is not None
            assert ev.schedule is None
        elif ev is not winners[0]:
            assert ev.feasible == (ev.objective < float("inf"))
    assert "pruned by lower bound" in decision.explain()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))

"""Unit tests for the experiment drivers' data types (no full runs)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.fig5 import Fig5Result, Fig5Row
from repro.experiments.fig6 import Fig6Result, Fig6Row
from repro.experiments.nile_exp import NileSkimResult
from repro.experiments.nws_exp import NwsForecastResult, standard_processes
from repro.nile.site_manager import SkimDecision


class TestFig5Row:
    def test_ratios(self):
        row = Fig5Row(n=1000, apples_s=2.0, strip_s=8.0, blocked_s=10.0)
        assert row.strip_ratio == 4.0
        assert row.blocked_ratio == 5.0

    def test_result_ratio_range(self):
        result = Fig5Result(rows=[
            Fig5Row(1000, 2.0, 8.0, 10.0),
            Fig5Row(2000, 4.0, 8.0, 12.0),
        ], iterations=10, repeats=1)
        assert result.ratio_range == (2.0, 5.0)

    def test_table_columns(self):
        result = Fig5Result(rows=[Fig5Row(1000, 2.0, 8.0, 10.0)],
                            iterations=10, repeats=1)
        table = result.table()
        assert table.column("n") == [1000]
        assert "Figure 5" in table.title


class TestFig6Row:
    def test_sp2_only_detection(self):
        row = Fig6Row(n=2000, apples_s=1.0, blocked_sp2_s=1.0,
                      apples_machines=("sp2-1", "sp2-2"), blocked_spills=False)
        assert row.apples_uses_only_sp2
        row2 = Fig6Row(n=4000, apples_s=1.0, blocked_sp2_s=9.0,
                       apples_machines=("sp2-1", "alpha1"), blocked_spills=True)
        assert not row2.apples_uses_only_sp2

    def test_table_render(self):
        result = Fig6Result(rows=[
            Fig6Row(2000, 1.0, 1.0, ("sp2-1", "sp2-2"), False),
        ], crossover_n=3700, iterations=30)
        text = result.table().render()
        assert "sp2 only" in text


class TestNileSkimResult:
    def make(self, rows):
        result = NileSkimResult(nevents=1000)
        for frac, runs, skim, crossover in rows:
            result.decisions.append((frac, runs, SkimDecision(
                skim=skim, skim_cost_s=10.0, remote_run_s=5.0, local_run_s=1.0,
                crossover_runs=crossover, expected_runs=runs,
            )))
        return result

    def test_monotone_true(self):
        result = self.make([(0.2, 1, False, 2.5), (0.2, 5, True, 2.5)])
        assert result.decisions_monotone_in_runs

    def test_monotone_violation_detected(self):
        result = self.make([(0.2, 1, True, 2.5), (0.2, 5, False, 2.5)])
        assert not result.decisions_monotone_in_runs

    def test_decision_lookup(self):
        result = self.make([(0.2, 1, False, 2.5)])
        assert result.decision_for(0.2, 1).crossover_runs == 2.5
        with pytest.raises(KeyError):
            result.decision_for(0.9, 1)


class TestNwsForecastResult:
    def make(self):
        result = NwsForecastResult(nsamples=100)
        result.mse = {
            "ar1": {"last": 0.01, "run_mean": 0.02, "ensemble": 0.011},
            "spike": {"last": 0.05, "run_mean": 0.02, "ensemble": 0.03},
        }
        return result

    def test_best_for_ignores_ensemble(self):
        result = self.make()
        assert result.best_for("ar1") == "last"
        assert result.best_for("spike") == "run_mean"

    def test_regret(self):
        result = self.make()
        assert result.ensemble_regret("ar1") == pytest.approx(1.1)
        assert result.ensemble_regret("spike") == pytest.approx(1.5)

    def test_table_render(self):
        assert "NWS-A1" in self.make().table().render()

    def test_standard_processes_cover_families(self):
        procs = standard_processes(seed=1)
        assert set(procs) == {"ar1", "markov", "spike"}
        for p in procs.values():
            xs = p.sample(50)
            assert all(0.0 <= x <= 1.0 for x in xs)


class TestSkimDecisionShape:
    def test_infinite_crossover_representable(self):
        d = SkimDecision(skim=False, skim_cost_s=10.0, remote_run_s=1.0,
                         local_run_s=2.0, crossover_runs=math.inf,
                         expected_runs=5)
        assert not d.skim
        assert math.isinf(d.crossover_runs)

"""Tests for the background-load (availability) processes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.load import (
    AR1Load,
    CompositeLoad,
    ConstantLoad,
    MarkovLoad,
    SpikeLoad,
    TraceLoad,
)
from repro.util.rng import RngStream


class TestConstantLoad:
    def test_level_everywhere(self):
        load = ConstantLoad(0.7, dt=5.0)
        assert load.availability(0.0) == 0.7
        assert load.availability(123.4) == 0.7

    def test_mean_availability(self):
        load = ConstantLoad(0.5)
        assert load.mean_availability(0.0, 100.0) == pytest.approx(0.5)

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            ConstantLoad(1.5)


class TestAR1Load:
    def make(self, seed=1, **kw):
        return AR1Load(rng=RngStream(seed, "t"), **kw)

    def test_bounded(self):
        load = self.make(mean=0.5, sigma=0.3, floor=0.05)
        for v in load.sample(500):
            assert 0.05 <= v <= 1.0

    def test_deterministic_given_seed(self):
        a = self.make(seed=3).sample(50)
        b = self.make(seed=3).sample(50)
        assert a == b

    def test_query_idempotent(self):
        load = self.make()
        assert load.availability(77.0) == load.availability(77.0)

    def test_mean_tracks_parameter(self):
        load = self.make(mean=0.8, sigma=0.05)
        xs = load.sample(2000)
        assert 0.7 < sum(xs) / len(xs) < 0.9

    def test_autocorrelation_positive(self):
        # AR(1) with phi=0.9 must show strong lag-1 correlation — that is
        # the predictability AppLeS exploits.
        import numpy as np

        xs = np.array(self.make(phi=0.9, sigma=0.1).sample(1000))
        r = np.corrcoef(xs[:-1], xs[1:])[0, 1]
        assert r > 0.5

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            AR1Load(phi=1.0)


class TestMarkovLoad:
    def test_two_levels_only(self):
        load = MarkovLoad(idle_level=0.9, busy_level=0.2, rng=RngStream(4, "m"))
        values = set(load.sample(500))
        assert values <= {0.9, 0.2}
        assert len(values) == 2  # both states visited

    def test_start_busy(self):
        load = MarkovLoad(
            idle_level=0.9, busy_level=0.2, p_idle=0.0, start_busy=True,
            rng=RngStream(1, "m"),
        )
        assert load.availability(0.0) == 0.2


class TestSpikeLoad:
    def test_base_dominates(self):
        load = SpikeLoad(base=0.95, spike_level=0.1, p_spike=0.05,
                         rng=RngStream(5, "s"))
        xs = load.sample(1000)
        assert xs.count(0.95) > xs.count(0.1)

    def test_spikes_occur(self):
        load = SpikeLoad(p_spike=0.3, rng=RngStream(5, "s"))
        assert 0.1 in load.sample(200)


class TestCompositeLoad:
    def test_product(self):
        load = CompositeLoad([ConstantLoad(0.5), ConstantLoad(0.8)])
        assert load.availability(0.0) == pytest.approx(0.4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeLoad([])

    def test_bounded(self):
        load = CompositeLoad([
            AR1Load(rng=RngStream(1, "a")),
            MarkovLoad(rng=RngStream(1, "b")),
        ])
        for v in load.sample(200):
            assert 0.0 <= v <= 1.0


class TestTraceLoad:
    def test_playback(self):
        load = TraceLoad([0.1, 0.5, 0.9], dt=10.0)
        assert load.availability(0.0) == 0.1
        assert load.availability(10.0) == 0.5
        assert load.availability(25.0) == 0.9

    def test_cyclic(self):
        load = TraceLoad([0.1, 0.5], dt=1.0)
        assert load.availability(2.0) == 0.1
        assert load.availability(3.0) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceLoad([])

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            TraceLoad([1.2])


class TestEpochSemantics:
    def test_negative_time_clamps(self):
        load = TraceLoad([0.3, 0.6], dt=1.0)
        assert load.availability(-5.0) == 0.3

    def test_mean_availability_exact_weighting(self):
        load = TraceLoad([0.0, 1.0], dt=10.0)
        # [5, 15] covers half of epoch 0 (0.0) and half of epoch 1 (1.0).
        assert load.mean_availability(5.0, 15.0) == pytest.approx(0.5)

    def test_mean_availability_point(self):
        load = TraceLoad([0.25], dt=10.0)
        assert load.mean_availability(3.0, 3.0) == 0.25

    def test_mean_availability_reversed_raises(self):
        load = ConstantLoad(1.0)
        with pytest.raises(ValueError):
            load.mean_availability(10.0, 5.0)

    @given(
        t=st.floats(min_value=0.0, max_value=1e4),
        dt=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_property_epoch_contains_time(self, t, dt):
        load = ConstantLoad(1.0, dt=dt)
        k = load.epoch_of(t)
        assert k * dt <= t + 1e-9
        assert t < (k + 1) * dt + 1e-6

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20))
    def test_property_mean_within_range(self, trace):
        load = TraceLoad(trace, dt=1.0)
        m = load.mean_availability(0.0, len(trace))
        assert min(trace) - 1e-9 <= m <= max(trace) + 1e-9

"""Tests for injectable loads and the two-application experiment."""

from __future__ import annotations

import pytest

from repro.experiments.multiapp_exp import (
    make_injectable,
    run_multiapp,
    run_service_contention,
)
from repro.nws.service import NetworkWeatherService
from repro.sim.load import DynamicCompositeLoad, IntervalLoad
from repro.sim.testbeds import sdsc_pcl_testbed


class TestIntervalLoad:
    def test_idle_by_default(self):
        load = IntervalLoad()
        assert load.availability(0.0) == 1.0
        assert load.mean_availability(0.0, 100.0) == 1.0

    def test_occupancy_window(self):
        load = IntervalLoad()
        load.occupy(10.0, 20.0, 0.5)
        assert load.availability(5.0) == 1.0
        assert load.availability(15.0) == 0.5
        assert load.availability(20.0) == 1.0  # half-open interval

    def test_overlapping_windows_multiply(self):
        load = IntervalLoad()
        load.occupy(0.0, 10.0, 0.5)
        load.occupy(5.0, 15.0, 0.5)
        assert load.availability(7.0) == 0.25

    def test_mean_availability_exact(self):
        load = IntervalLoad()
        load.occupy(0.0, 10.0, 0.5)
        # [0,20]: half the window at 0.5, half at 1.0.
        assert load.mean_availability(0.0, 20.0) == pytest.approx(0.75)

    def test_clear(self):
        load = IntervalLoad()
        load.occupy(0.0, 10.0, 0.5)
        load.clear()
        assert load.availability(5.0) == 1.0

    def test_validation(self):
        load = IntervalLoad()
        with pytest.raises(ValueError):
            load.occupy(10.0, 10.0, 0.5)
        with pytest.raises(ValueError):
            load.occupy(0.0, 10.0, 1.5)

    def test_mutation_visible_immediately(self):
        # The motivating property: no epoch cache hides new occupancy.
        load = IntervalLoad()
        assert load.availability(15.0) == 1.0
        load.occupy(10.0, 20.0, 0.3)
        assert load.availability(15.0) == 0.3


class TestDynamicComposite:
    def test_product_with_mutable_component(self):
        from repro.sim.load import ConstantLoad

        injector = IntervalLoad()
        combo = DynamicCompositeLoad([ConstantLoad(0.8), injector])
        assert combo.availability(5.0) == pytest.approx(0.8)
        injector.occupy(0.0, 10.0, 0.5)
        assert combo.availability(5.0) == pytest.approx(0.4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DynamicCompositeLoad([])

    def test_mean_availability(self):
        from repro.sim.load import ConstantLoad

        injector = IntervalLoad()
        injector.occupy(0.0, 10.0, 0.5)
        combo = DynamicCompositeLoad([ConstantLoad(1.0), injector], dt=10.0)
        assert combo.mean_availability(0.0, 20.0) == pytest.approx(0.75, abs=0.02)


class TestMakeInjectable:
    def test_injection_reaches_host_and_sensors(self):
        testbed = sdsc_pcl_testbed(seed=4)
        injectors = make_injectable(testbed)
        host = testbed.topology.host("alpha1")
        before = host.availability(1000.0)
        injectors["alpha1"].occupy(900.0, 1100.0, 0.1)
        after = host.availability(1000.0)
        assert after == pytest.approx(before * 0.1)

        nws = NetworkWeatherService.for_testbed(testbed, noise_std=0.0)
        nws.advance_to(1050.0)
        assert nws.cpu_forecast("alpha1").value < 0.2


class TestRunMultiapp:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multiapp(n=1200, iterations_a=2500, iterations_b=250)

    def test_aware_avoids_contention(self, result):
        assert result.aware_overlap < result.oblivious_overlap

    def test_aware_faster(self, result):
        assert result.aware_time_s < result.oblivious_time_s

    def test_oblivious_repeats_a_choice(self, result):
        # With a stale snapshot, B sees the same world A saw and largely
        # picks the same machines.
        assert result.oblivious_overlap >= 2

    def test_table_renders(self, result):
        assert "MULTI-A5" in result.table().render()


class TestServiceContention:
    @pytest.fixture(scope="class")
    def result(self):
        return run_service_contention(napps=4, n=1000, iterations=60)

    def test_differential_check_passed(self, result):
        assert result.service_matches_solo

    def test_contention_experienced(self, result):
        # Every app shares machines with a co-tenant and runs slower than
        # its contention-blind prediction.
        assert all(r.shared >= 1 for r in result.rows)
        assert all(r.actual_s > r.predicted_s for r in result.rows)

    def test_workers_bit_identical(self, result):
        parallel = run_service_contention(
            napps=4, n=1000, iterations=60, workers=-1
        )
        assert [(r.machines, r.predicted_s, r.actual_s) for r in parallel.rows] == [
            (r.machines, r.predicted_s, r.actual_s) for r in result.rows
        ]

    def test_table_renders(self, result):
        assert "CONTEND" in result.table().render()

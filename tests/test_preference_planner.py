"""Tests for the decomposition-preference dispatch (§5's user directive)."""

from __future__ import annotations

import pytest

from repro.core.userspec import UserSpecification
from repro.jacobi.apples import PreferencePlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem


class TestPreferencePlanner:
    def test_empty_planner_map_rejected(self):
        with pytest.raises(ValueError):
            PreferencePlanner({})

    def test_strip_only_default(self, testbed, warmed_nws):
        problem = JacobiProblem(n=800, iterations=10)
        agent = make_jacobi_agent(testbed, problem, warmed_nws)
        best = agent.schedule().best
        assert best.decomposition == "apples-strip"

    def test_blocked_only_preference(self, testbed, warmed_nws):
        problem = JacobiProblem(n=800, iterations=10)
        us = UserSpecification(decomposition_preference=("blocked",))
        agent = make_jacobi_agent(testbed, problem, warmed_nws, userspec=us)
        best = agent.schedule().best
        assert best.decomposition == "apples-blocked"

    def test_both_families_picks_better_prediction(self, testbed, warmed_nws):
        problem = JacobiProblem(n=800, iterations=10)
        us = UserSpecification(decomposition_preference=("strip", "blocked"))
        agent = make_jacobi_agent(testbed, problem, warmed_nws, userspec=us)
        decision = agent.schedule()
        assert decision.best.decomposition in ("apples-strip", "apples-blocked")
        # The winner must not be beaten by the other family on the same
        # resource set.
        from repro.jacobi.apples import ApplesBlockedPlanner, JacobiPlanner

        rset = decision.best.resource_set
        strip = JacobiPlanner(problem).plan(rset, agent.info)
        blocked = ApplesBlockedPlanner(problem).plan(rset, agent.info)
        alternatives = [s.predicted_time for s in (strip, blocked) if s is not None]
        assert decision.best.predicted_time <= min(alternatives) + 1e-9

    def test_unknown_preference_rejected(self, testbed):
        us = UserSpecification(decomposition_preference=("hilbert-curve",))
        with pytest.raises(ValueError, match="hilbert-curve"):
            make_jacobi_agent(testbed, JacobiProblem(n=100), userspec=us)

"""Tests for the 3D-REACT AppLeS agent."""

from __future__ import annotations

import pytest

from repro.core.userspec import UserSpecification
from repro.react.apples import make_react_agent
from repro.react.tasks import ReactProblem


class TestReactAgent:
    def test_chooses_correct_placement(self, casa):
        agent = make_react_agent(casa, ReactProblem())
        decision = agent.schedule()
        best = decision.best
        assert best.decomposition == "pipeline"
        assert best.metadata["lhsf_host"] == "c90"
        assert best.metadata["logd_host"] == "paragon"

    def test_pipeline_size_in_admissible_range(self, casa):
        agent = make_react_agent(casa, ReactProblem())
        k = agent.schedule().best.metadata["pipeline_size"]
        assert 5 <= k <= 20

    def test_predicted_speedup_over_single_site(self, casa):
        agent = make_react_agent(casa, ReactProblem())
        decision = agent.schedule()
        singles = [
            e.schedule.predicted_time
            for e in decision.evaluations
            if e.feasible and e.schedule.decomposition == "single-site"
        ]
        assert singles, "singleton resource sets must be evaluated"
        assert min(singles) / decision.best.predicted_time > 3.0

    def test_single_site_schedules_have_both_tasks(self, casa):
        agent = make_react_agent(casa, ReactProblem())
        decision = agent.schedule()
        single = next(
            e.schedule for e in decision.evaluations
            if e.feasible and e.schedule.decomposition == "single-site"
        )
        tasks = {a.task for a in single.allocations}
        assert tasks == {"LHSF", "LogD-ASY"}

    def test_userspec_can_force_single_site(self, casa):
        us = UserSpecification(
            accessible_machines=frozenset({"paragon"}), max_machines=1
        )
        agent = make_react_agent(casa, ReactProblem(), userspec=us)
        best = agent.schedule().best
        assert best.decomposition == "single-site"
        assert best.resource_set == ("paragon",)

    def test_unusable_testbed_raises(self, testbed):
        # The Figure 2 workstation testbed has no c90/paragon
        # implementations of either task.
        agent = make_react_agent(testbed, ReactProblem())
        with pytest.raises(RuntimeError):
            agent.schedule()

    def test_comm_bytes_reflect_pipeline_unit(self, casa):
        agent = make_react_agent(casa, ReactProblem())
        best = agent.schedule().best
        lhsf_alloc = next(a for a in best.allocations if a.task == "LHSF")
        k = best.metadata["pipeline_size"]
        assert lhsf_alloc.comm_bytes["paragon"] == pytest.approx(
            k * agent.info.hat.communication.pipeline_unit_bytes
        )

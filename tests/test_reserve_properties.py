"""Property-based reservation invariants (Hypothesis).

Three families over randomly generated requests and bookings (hand-built
frozen instances, so the ledger arithmetic is isolated from the decision
machinery):

- **Round-trip** — any structurally valid request or booking survives
  JSONL bit-identically (shortest-repr floats, exact integers);
- **Exclusivity** — ``book()`` without ``force`` never admits a machine
  overlap, and ``conflicts()`` equals a brute-force O(n²) interval check,
  every time;
- **Geometry** — occurrence windows always tile inside the occurrence
  interval, shifted bookings preserve everything but the interval, and
  ``busy_machines`` is exactly the union over overlapping bookings.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arena import ArenaInstance, MachineState
from repro.jacobi.grid import JacobiProblem
from repro.reserve import (
    Booking,
    ReservationLedger,
    ReservationRequest,
    load_bookings,
    load_requests,
    save_bookings,
    save_requests,
)

_INF = float("inf")
_TINY = ArenaInstance(
    instance_id="tiny-000",
    instance_class="reserve:test",
    world={"generator": "sdsc", "seed": 1, "nws_seed": 1, "warmup_s": 0.0,
           "n_hosts": 8, "n_segments": None},
    machines=(
        MachineState(
            name="alpha", site="sdsc", arch="alpha", speed_mflops=100.0,
            memory_available_mb=64.0, availability=0.8,
            availability_error=0.1,
        ),
        MachineState(
            name="beta", site="sdsc", arch="alpha", speed_mflops=50.0,
            memory_available_mb=64.0, availability=0.9,
            availability_error=0.05,
        ),
    ),
    latency_s=((0.0, 0.001), (0.001, 0.0)),
    bandwidth_bps=((_INF, 1e7), (1e7, _INF)),
    problem={"n": 100, "iterations": 10, "flop_per_point": 1e-3,
             "bytes_per_point": 8.0, "border_bytes_per_point": 8.0,
             "sync_overhead_s": 0.001},
)

# -- strategies -------------------------------------------------------------

_time = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_span = st.floats(
    min_value=1e-3, max_value=1e5, allow_nan=False, allow_infinity=False
)


@st.composite
def _requests(draw):
    earliest = draw(_time)
    deadline = earliest + draw(_span)
    windows = ()
    if draw(st.booleans()):
        lo = draw(st.floats(min_value=0.0, max_value=0.49))
        hi = draw(st.floats(min_value=0.51, max_value=1.0))
        span = deadline - earliest
        windows = ((earliest + lo * span, earliest + hi * span),)
    repeat = draw(st.integers(min_value=1, max_value=3))
    min_machines = draw(st.integers(min_value=1, max_value=3))
    max_extra = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=4)))
    return ReservationRequest(
        request_id=draw(st.uuids()).hex,
        problem=JacobiProblem(
            n=draw(st.integers(min_value=10, max_value=2000)),
            iterations=draw(st.integers(min_value=1, max_value=100)),
        ),
        earliest_start=earliest,
        deadline=deadline,
        preferred_windows=windows,
        repeat_count=repeat,
        repeat_period_s=draw(_span) if repeat > 1 else 0.0,
        min_machines=min_machines,
        max_machines=None if max_extra is None else min_machines + max_extra,
        priority=draw(st.integers(min_value=1, max_value=5)),
        account_memory=draw(st.booleans()),
    )


@st.composite
def _bookings(draw, ids=None):
    machines = draw(
        st.lists(
            st.sampled_from(["alpha", "beta"]),
            min_size=1, max_size=2, unique=True,
        )
    )
    start = draw(_time)
    booking_id = (
        draw(st.uuids()).hex if ids is None else draw(st.sampled_from(ids))
    )
    share = 10000.0 / len(machines)
    return Booking(
        booking_id=booking_id,
        request_id=draw(st.sampled_from(["r1", "r2", "r3"])),
        occurrence=draw(st.integers(min_value=0, max_value=3)),
        priority=draw(st.integers(min_value=1, max_value=5)),
        start=start,
        end=start + draw(_span),
        machines=tuple(machines),
        points=tuple(share for _ in machines),
        objective=draw(_span),
        instance=_TINY,
    )


_booking_lists = st.lists(
    _bookings(ids=[f"b{i}" for i in range(8)]),
    min_size=0, max_size=8,
    unique_by=lambda b: b.booking_id,
)


# -- round-trip bit-identity ------------------------------------------------

class TestRoundTrip:
    @given(requests=st.lists(_requests(), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_request_jsonl_bit_identity(self, tmp_path_factory, requests):
        path = tmp_path_factory.mktemp("req") / "requests.jsonl"
        save_requests(path, requests)
        first = path.read_bytes()
        loaded = load_requests(path)
        assert loaded == requests
        save_requests(path, loaded)
        assert path.read_bytes() == first

    @given(bookings=_booking_lists.filter(lambda bs: bs))
    @settings(max_examples=40, deadline=None)
    def test_booking_jsonl_bit_identity(self, tmp_path_factory, bookings):
        path = tmp_path_factory.mktemp("led") / "bookings.jsonl"
        ledger = ReservationLedger(bookings)
        save_bookings(path, ledger)
        first = path.read_bytes()
        loaded = load_bookings(path)
        assert loaded.bookings == ledger.bookings
        save_bookings(path, loaded)
        assert path.read_bytes() == first

    @given(request=_requests())
    @settings(max_examples=40, deadline=None)
    def test_request_json_text_round_trip(self, request):
        back = ReservationRequest.from_json_dict(
            json.loads(json.dumps(request.to_json_dict()))
        )
        assert back == request


# -- exclusivity ------------------------------------------------------------

def _brute_force_overlaps(bookings):
    pairs = set()
    for i, a in enumerate(bookings):
        for b in bookings[i + 1:]:
            if (
                a.start < b.end
                and b.start < a.end
                and set(a.machines) & set(b.machines)
            ):
                pairs.add(frozenset((a.booking_id, b.booking_id)))
    return pairs


class TestExclusivity:
    @given(bookings=_booking_lists)
    @settings(max_examples=60, deadline=None)
    def test_conflicts_equal_brute_force(self, bookings):
        ledger = ReservationLedger(list(bookings))
        found = {
            frozenset(c.booking_ids)
            for c in ledger.conflicts()
            if c.kind == "machine-overlap"
        }
        assert found == _brute_force_overlaps(list(bookings))

    @given(bookings=_booking_lists)
    @settings(max_examples=60, deadline=None)
    def test_unforced_booking_never_overlaps(self, bookings):
        ledger = ReservationLedger()
        for b in bookings:
            try:
                ledger.book(b)
            except ValueError:
                continue
        assert _brute_force_overlaps(list(ledger.bookings)) == set()

    @given(bookings=_booking_lists)
    @settings(max_examples=60, deadline=None)
    def test_busy_machines_is_the_overlap_union(self, bookings):
        ledger = ReservationLedger(list(bookings))
        for probe in bookings:
            want = set()
            for b in bookings:
                if b.start < probe.end and probe.start < b.end:
                    want.update(b.machines)
            assert ledger.busy_machines(probe.start, probe.end) == want


# -- geometry ---------------------------------------------------------------

class TestGeometry:
    @given(request=_requests(), occurrence=st.integers(min_value=0, max_value=2))
    @settings(max_examples=60, deadline=None)
    def test_windows_inside_the_interval(self, request, occurrence):
        occurrence = occurrence % request.repeat_count
        earliest, deadline = request.occurrence_interval(occurrence)
        assert earliest < deadline
        for start, end in request.occurrence_windows(occurrence):
            assert earliest <= start < end <= deadline

    @given(booking=_bookings(), start=_time)
    @settings(max_examples=60, deadline=None)
    def test_shift_preserves_everything_but_the_interval(self, booking, start):
        moved = booking.shifted(start)
        assert moved.start == start
        # end is *defined* as start + duration; the recomputed duration
        # itself may differ in the last ulp at extreme magnitudes.
        assert moved.end == start + booking.duration
        assert (
            moved.machines, moved.points, moved.objective, moved.instance
        ) == (booking.machines, booking.points, booking.objective,
              booking.instance)

    @given(request=_requests())
    @settings(max_examples=40, deadline=None)
    def test_decision_bridge_carries_the_exclusions(self, request):
        dreq = request.decision_request(
            request.earliest_start, exclude={"alpha"}
        )
        assert dreq.at == request.earliest_start
        assert "alpha" in dreq.userspec.excluded_machines
        assert dreq.userspec.max_machines == request.max_machines
        assert dreq.account_memory == request.account_memory

"""Unit tests for the tracing half of repro.obs (spans, events, JSONL)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    TRACE_FORMAT,
    TRACE_VERSION,
    NullTracer,
    Tracer,
    get_tracer,
    load_records,
    save_records,
    set_tracer,
    tracing,
    validate_records,
)


class TestSpans:
    def test_span_records_name_layer_attrs(self):
        tr = Tracer()
        with tr.span("core.decision", layer="core", metric="execution_time"):
            pass
        (rec,) = [r for r in tr.records() if r["kind"] == "span"]
        assert rec["name"] == "core.decision"
        assert rec["layer"] == "core"
        assert rec["attrs"] == {"metric": "execution_time"}
        assert rec["wall_s"] >= 0.0

    def test_nesting_sets_parent(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        spans = {r["name"]: r for r in tr.records() if r["kind"] == "span"}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == outer.id
        assert inner.id != outer.id

    def test_sim_clock_when_t_given(self):
        tr = Tracer()
        with tr.span("sim.execute", t=300.0) as span:
            span.set_end(412.5)
        (rec,) = [r for r in tr.records() if r["kind"] == "span"]
        assert rec["clock"] == "sim"
        assert rec["t0"] == 300.0
        assert rec["t1"] == 412.5

    def test_sim_clock_without_set_end_pins_t1_to_t0(self):
        tr = Tracer()
        with tr.span("nws.advance", t=10.0):
            pass
        (rec,) = [r for r in tr.records() if r["kind"] == "span"]
        assert rec["clock"] == "sim"
        assert rec["t1"] == rec["t0"] == 10.0

    def test_wall_clock_without_t(self):
        tr = Tracer()
        with tr.span("setup"):
            pass
        (rec,) = [r for r in tr.records() if r["kind"] == "span"]
        assert rec["clock"] == "wall"
        assert rec["t1"] >= rec["t0"] >= 0.0

    def test_default_clock_callable(self):
        now = {"t": 42.0}
        tr = Tracer(clock=lambda: now["t"])
        tr.event("tick")
        (rec,) = [r for r in tr.records() if r["kind"] == "event"]
        assert rec["clock"] == "sim"
        assert rec["t"] == 42.0

    def test_attrs_mutable_until_close(self):
        tr = Tracer()
        with tr.span("core.decision") as span:
            span.attrs["best_objective"] = 1.5
        (rec,) = [r for r in tr.records() if r["kind"] == "span"]
        assert rec["attrs"]["best_objective"] == 1.5

    def test_non_jsonable_attrs_coerced(self):
        tr = Tracer()
        with tr.span("s", who=object()):
            pass
        (rec,) = [r for r in tr.records() if r["kind"] == "span"]
        assert isinstance(rec["attrs"]["who"], str)

    def test_threads_get_independent_stacks(self):
        tr = Tracer()
        seen = {}

        def work(name):
            with tr.span(name) as sp:
                seen[name] = sp.record["parent"]

        with tr.span("main-root"):
            t = threading.Thread(target=work, args=("side",))
            t.start()
            t.join()
        # The side thread's span must not be parented under the main
        # thread's open span: stacks are per-thread.
        assert seen["side"] is None


class TestEvents:
    def test_event_attaches_to_innermost_span(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            tr.event("hello", layer="core", x=1)
        (ev,) = [r for r in tr.records() if r["kind"] == "event"]
        assert ev["span"] == outer.id
        assert ev["fields"] == {"x": 1}

    def test_span_event_helper_inherits_layer(self):
        tr = Tracer()
        with tr.span("core.decision", layer="core") as span:
            span.event("core.incumbent", t=5.0, idx=3)
        (ev,) = [r for r in tr.records() if r["kind"] == "event"]
        assert ev["layer"] == "core"
        assert ev["span"] == span.id
        assert ev["t"] == 5.0 and ev["clock"] == "sim"

    def test_event_outside_any_span_has_null_span(self):
        tr = Tracer()
        tr.event("lonely")
        (ev,) = [r for r in tr.records() if r["kind"] == "event"]
        assert ev["span"] is None


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        null = NullTracer()
        assert null.enabled is False
        s1 = null.span("a", layer="x", big=list(range(100)))
        s2 = null.span("b")
        assert s1 is s2  # singleton no-op span, no allocation per call
        with s1:
            s1.set_end(3.0)
            s1.event("e")
        assert null.records() == []

    def test_null_metrics_are_noops(self):
        null = NullTracer()
        null.metrics.counter("x").inc(5)
        null.metrics.gauge("y").set(2.0)
        null.metrics.histogram("z").observe(1.0)
        assert null.metrics.as_records() == []

    def test_export_refuses(self, tmp_path):
        with pytest.raises(RuntimeError, match="null tracer"):
            NullTracer().export(tmp_path / "t.jsonl")

    def test_active_tracer_defaults_to_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_roundtrip(self):
        tr = Tracer()
        try:
            assert set_tracer(tr) is tr
            assert get_tracer() is tr
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestTracingContext:
    def test_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tr:
            assert get_tracer() is tr
            assert tr.enabled
        assert get_tracer() is before

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_exports_on_exit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(path=path) as tr:
            with tr.span("demo", layer="test"):
                pass
        records = load_records(path)
        assert records[0]["format"] == TRACE_FORMAT
        assert any(r["kind"] == "span" and r["name"] == "demo" for r in records)


class TestPersistence:
    def make_records(self):
        tr = Tracer()
        with tr.span("a", layer="core", t=1.0) as sp:
            sp.event("e", t=1.5, k=2)
        tr.metrics.counter("c").inc(3)
        tr.metrics.histogram("h").observe(0.5)
        return tr.records()

    def test_roundtrip(self, tmp_path):
        records = self.make_records()
        path = tmp_path / "t.jsonl"
        save_records(path, records)
        assert load_records(path) == records

    def test_header_first(self):
        records = self.make_records()
        assert records[0] == {
            "kind": "header", "format": TRACE_FORMAT, "version": TRACE_VERSION,
        }

    def test_validate_rejects_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            validate_records([{"kind": "event"}])

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError, match="empty trace"):
            validate_records([])

    def test_validate_rejects_unknown_kind(self):
        head = {"kind": "header", "format": TRACE_FORMAT, "version": 1}
        with pytest.raises(ValueError, match="unknown kind"):
            validate_records([head, {"kind": "mystery"}])

    def test_validate_rejects_duplicate_span_ids(self):
        head = {"kind": "header", "format": TRACE_FORMAT, "version": 1}
        span = {"kind": "span", "id": 1, "parent": None, "name": "s",
                "layer": "", "t0": 0.0, "t1": None, "clock": "wall",
                "wall_s": None, "attrs": {}}
        with pytest.raises(ValueError, match="duplicate span id"):
            validate_records([head, span, dict(span)])

    def test_validate_rejects_bad_clock(self):
        head = {"kind": "header", "format": TRACE_FORMAT, "version": 1}
        ev = {"kind": "event", "span": None, "name": "e", "layer": "",
              "t": 0.0, "clock": "lunar", "fields": {}}
        with pytest.raises(ValueError, match="bad clock"):
            validate_records([head, ev])

    def test_validate_rejects_second_header(self):
        head = {"kind": "header", "format": TRACE_FORMAT, "version": 1}
        with pytest.raises(ValueError, match="duplicate header"):
            validate_records([head, dict(head)])

    def test_load_names_bad_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        head = {"kind": "header", "format": TRACE_FORMAT, "version": 1}
        path.write_text(json.dumps(head) + "\n{not json\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2: not a JSON record"):
            load_records(path)


class TestAbsorb:
    def test_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("w-root", layer="runner") as root:
            with worker.span("w-child", layer="sim"):
                worker.event("w-ev", payload=1)
        worker_records = worker.records()

        parent = Tracer()
        with parent.span("runner.task", layer="runner") as task:
            parent.absorb(worker_records, parent=task.id)
        spans = {r["name"]: r for r in parent.records() if r["kind"] == "span"}
        assert spans["w-root"]["parent"] == task.id
        assert spans["w-child"]["parent"] == spans["w-root"]["id"]
        # Remapped ids must not collide with the parent's own span.
        assert len({s["id"] for s in spans.values()}) == 3
        (ev,) = [r for r in parent.records() if r["kind"] == "event"]
        assert ev["span"] == spans["w-child"]["id"]
        assert root.id != spans["w-root"]["id"] or True  # ids remapped into parent space

    def test_merges_metrics(self):
        worker = Tracer()
        worker.metrics.counter("n").inc(2)
        worker.metrics.histogram("h").observe(1.0)
        parent = Tracer()
        parent.metrics.counter("n").inc(1)
        parent.metrics.histogram("h").observe(3.0)
        parent.absorb(worker.records())
        metrics = {r["name"]: r for r in parent.records() if r["kind"] == "metric"}
        assert metrics["n"]["value"] == 3
        assert metrics["h"]["count"] == 2
        assert metrics["h"]["min"] == 1.0 and metrics["h"]["max"] == 3.0

    def test_absorb_order_is_deterministic(self):
        def make_worker(tag):
            w = Tracer()
            with w.span(f"task-{tag}", layer="runner"):
                pass
            return w.records()

        a, b = make_worker("a"), make_worker("b")
        p1, p2 = Tracer(), Tracer()
        for p in (p1, p2):
            p.absorb(a)
            p.absorb(b)
        strip = lambda recs: [
            {k: v for k, v in r.items() if k != "wall_s"} for r in recs
        ]
        assert strip(p1.records()) == strip(p2.records())

"""Arena instance dataset: generation, validation, JSONL persistence.

The arena's contract starts here: instances are pure functions of their
seeds, their JSON form round-trips bit-for-bit (shortest-repr floats),
and every malformed record is a ``ValueError`` that names the line.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.arena import (
    ALLOCATION_SCHEMA,
    INSTANCE_SCHEMA,
    ArenaAllocation,
    ArenaInstance,
    build_world,
    generate_instances,
    load_allocations,
    load_instances,
    save_allocations,
    save_instances,
)


@pytest.fixture(scope="module")
def instances():
    return generate_instances("sdsc8", 2, seed=11, sizes=(400,), iterations=10)


class TestGeneration:
    def test_deterministic_from_seed(self, instances):
        again = generate_instances("sdsc8", 2, seed=11, sizes=(400,), iterations=10)
        assert again == instances

    def test_stratified_ids_and_worlds(self, instances):
        assert [i.instance_id for i in instances] == [
            "sdsc8-s11-000", "sdsc8-s11-001",
        ]
        # Each instance gets its own world/NWS seeds — distinct load states.
        assert instances[0].world["seed"] != instances[1].world["seed"]
        assert instances[0].world["nws_seed"] != instances[1].world["nws_seed"]

    def test_synthetic_class_size(self):
        inst = generate_instances("synth14", 1, seed=3, sizes=(300,), iterations=5)[0]
        assert len(inst.machines) == 14
        assert len(inst.latency_s) == 14
        assert len(inst.bandwidth_bps) == 14

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown instance class"):
            generate_instances("nope", 1)

    def test_bad_count_and_sizes_rejected(self):
        with pytest.raises(ValueError, match="count"):
            generate_instances("sdsc8", 0)
        with pytest.raises(ValueError, match="sizes"):
            generate_instances("sdsc8", 1, sizes=())

    def test_world_rebuild_matches_frozen_forecasts(self, instances):
        """Worlds are reproducible: a rebuilt pool re-derives the frozen state."""
        from repro.core.resources import ResourcePool

        inst = instances[0]
        testbed, nws = build_world(inst.world)
        pool = ResourcePool(testbed.topology, nws)
        forecasts = pool.snapshot().export_forecasts()
        for m in inst.machines:
            assert forecasts[m.name]["availability"] == m.availability
            assert forecasts[m.name]["availability_error"] == m.availability_error


class TestContendedClass:
    @pytest.fixture(scope="class")
    def contended(self):
        return generate_instances(
            "contended14", 2, seed=11, sizes=(400,), iterations=10
        )

    def test_deterministic_and_rebuildable(self, contended):
        """The contender's schedule-and-occupy steps are seed-pure."""
        again = generate_instances(
            "contended14", 2, seed=11, sizes=(400,), iterations=10
        )
        assert again == contended
        from repro.core.resources import ResourcePool

        inst = contended[0]
        testbed, nws = build_world(inst.world)
        forecasts = ResourcePool(testbed.topology, nws).snapshot().export_forecasts()
        for m in inst.machines:
            assert forecasts[m.name]["availability"] == m.availability

    def test_contender_occupancy_visible(self, contended):
        """Some hosts must look busier than in the uncontended world."""
        from repro.core.resources import ResourcePool

        inst = contended[0]
        plain = {
            key: inst.world[key]
            for key in ("n_hosts", "n_segments", "seed", "nws_seed", "warmup_s")
        }
        testbed, nws = build_world({"generator": "synthetic", **plain})
        forecasts = ResourcePool(testbed.topology, nws).snapshot().export_forecasts()
        lower = [
            m.name
            for m in inst.machines
            if m.availability < forecasts[m.name]["availability"] - 1e-9
        ]
        assert lower, "contender occupancy invisible to the NWS"

    def test_contended_world_keys_required(self, contended):
        world = dict(contended[0].world)
        del world["contender_n"]
        with pytest.raises(KeyError):
            build_world(world)


class TestRoundTrip:
    def test_instances_round_trip_exact(self, tmp_path, instances):
        path = tmp_path / "instances.jsonl"
        save_instances(path, instances)
        loaded = load_instances(path)
        assert loaded == instances

    def test_json_dict_schema_and_infinity(self, instances):
        payload = instances[0].to_json_dict()
        assert payload["schema"] == INSTANCE_SCHEMA
        # Diagonal bandwidth is infinite and survives JSON (allow_nan default).
        text = json.dumps(payload)
        back = ArenaInstance.from_json_dict(json.loads(text))
        assert back == instances[0]
        assert math.isinf(back.bandwidth_bps[0][0])

    def test_allocations_round_trip_exact(self, tmp_path, instances):
        allocations = [
            ArenaAllocation(
                instance_id=instances[0].instance_id,
                policy="greedy",
                machines=("a", "b"),
                points=(100000.0, 60000.0),
                claimed_objective=1.2345678901234567,
            ),
            ArenaAllocation(
                instance_id=instances[1].instance_id,
                policy="static",
                machines=("a",),
                points=(160000.0,),
                claimed_objective=None,
            ),
        ]
        path = tmp_path / "allocs.jsonl"
        save_allocations(path, allocations)
        loaded = load_allocations(path)
        assert loaded == allocations
        assert loaded[0].claimed_objective == 1.2345678901234567

    def test_refuses_empty_writes(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_instances(tmp_path / "x.jsonl", [])
        with pytest.raises(ValueError, match="empty"):
            save_allocations(tmp_path / "x.jsonl", [])


class TestLoaderErrors:
    def test_malformed_json_names_the_line(self, tmp_path, instances):
        path = tmp_path / "bad.jsonl"
        lines = [json.dumps(instances[0].to_json_dict()), "{not json"]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_instances(path)

    def test_wrong_schema_rejected(self, tmp_path, instances):
        payload = instances[0].to_json_dict()
        payload["schema"] = "repro.arena.instance/v0"
        path = tmp_path / "schema.jsonl"
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="unsupported instance schema"):
            load_instances(path)

    def test_allocation_schema_checked(self, tmp_path):
        path = tmp_path / "allocs.jsonl"
        path.write_text(json.dumps({"schema": "nope"}) + "\n")
        with pytest.raises(ValueError, match=ALLOCATION_SCHEMA.replace("/", "/")):
            load_allocations(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no instance records"):
            load_instances(path)


class TestValidation:
    def _mutated(self, instance, **changes):
        return dataclasses.replace(instance, **changes)

    def test_duplicate_machine_names(self, instances):
        inst = instances[0]
        machines = (inst.machines[0],) + inst.machines[:-1]
        with pytest.raises(ValueError, match="duplicate machine names"):
            self._mutated(inst, machines=machines).validate()

    def test_availability_bounds(self, instances):
        inst = instances[0]
        bad = dataclasses.replace(inst.machines[0], availability=1.5)
        with pytest.raises(ValueError, match="availability outside"):
            self._mutated(inst, machines=(bad,) + inst.machines[1:]).validate()

    def test_matrix_shape(self, instances):
        inst = instances[0]
        with pytest.raises(ValueError, match="latency_s must be a"):
            self._mutated(inst, latency_s=inst.latency_s[:-1]).validate()

    def test_problem_keys_required(self, instances):
        inst = instances[0]
        problem = dict(inst.problem)
        del problem["flop_per_point"]
        with pytest.raises(ValueError, match="flop_per_point"):
            self._mutated(inst, problem=problem).validate()

    def test_metric_must_be_execution_time(self, instances):
        inst = instances[0]
        params = dict(inst.params)
        params["metric"] = "cost"
        with pytest.raises(ValueError, match="unsupported metric"):
            self._mutated(inst, params=params).validate()

"""Integration tests: the paper's experiment shapes at reduced scale.

These are the headline checks — each experiment driver is run with small
iteration counts / few sizes and the *qualitative* result the paper
reports is asserted.  The benchmarks run the same drivers at full scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_fig5,
    run_fig6,
    run_fig34,
    run_information_ablation,
    run_nile_skim,
    run_nws_comparison,
    run_react,
    run_selection_ablation,
)
from repro.react.tasks import ReactProblem


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(sizes=(1000, 2000), iterations=30, repeats=2)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(sizes=(2000, 3600, 4200), iterations=10)


@pytest.fixture(scope="module")
def react():
    return run_react(ReactProblem())


class TestFig34Shape:
    def test_apples_differs_from_static(self):
        r = run_fig34(n=1000, iterations=50)
        assert r.apples_rows != r.static_rows
        # The paper's contrast: the static partition loads every machine;
        # AppLeS concentrates on the machines that actually deliver.
        assert len(r.apples_rows) < len(r.static_rows)

    def test_both_partitions_cover_grid(self):
        r = run_fig34(n=1000, iterations=50)
        assert sum(r.apples_rows.values()) == 1000
        assert sum(r.static_rows.values()) == 1000

    def test_static_rows_track_nominal_speed(self):
        r = run_fig34(n=1000, iterations=50)
        # 45-MFLOP/s alphas must get more rows than the 8-MFLOP/s Sparc-2.
        assert r.static_rows["alpha1"] > r.static_rows["sparc2"]

    def test_tables_render(self):
        r = run_fig34(n=1000, iterations=50)
        assert "Fig3" in r.table().render()
        assert "partition" in r.ascii_partition("apples")


class TestFig5Shape:
    def test_apples_wins_everywhere(self, fig5):
        for row in fig5.rows:
            assert row.apples_s < row.strip_s, f"n={row.n}"
            assert row.apples_s < row.blocked_s, f"n={row.n}"

    def test_ratio_band(self, fig5):
        lo, hi = fig5.ratio_range
        # Paper: "factors of 2-8"; allow slack for the simulated testbed.
        assert lo > 1.5
        assert hi < 12.0

    def test_times_grow_with_problem_size(self, fig5):
        times = [r.apples_s for r in fig5.rows]
        assert times == sorted(times)

    def test_table_renders(self, fig5):
        assert "Figure 5" in fig5.table().render()


class TestFig6Shape:
    def test_apples_on_sp2_below_crossover(self, fig6):
        below = [r for r in fig6.rows if r.n < 3700]
        assert below
        for row in below:
            assert row.apples_uses_only_sp2, f"n={row.n}"
            assert row.apples_s == pytest.approx(row.blocked_sp2_s, rel=0.15)

    def test_blocked_collapses_above_crossover(self, fig6):
        above = [r for r in fig6.rows if r.n > 3700]
        assert above
        for row in above:
            assert row.blocked_spills
            assert row.blocked_sp2_s > 2.0 * row.apples_s, f"n={row.n}"

    def test_apples_trajectory_smooth(self, fig6):
        # AppLeS time must grow roughly with area — no order-of-magnitude
        # jump at the memory boundary.
        rows = sorted(fig6.rows, key=lambda r: r.n)
        for a, b in zip(rows, rows[1:]):
            area_ratio = (b.n / a.n) ** 2
            assert b.apples_s / a.apples_s < 3.0 * area_ratio

    def test_apples_expands_pool_above_crossover(self, fig6):
        above = [r for r in fig6.rows if r.n > 3700]
        for row in above:
            assert not row.apples_uses_only_sp2
            assert len(row.apples_machines) > 2


class TestReactShape:
    def test_paper_timings(self, react):
        assert react.c90_alone_s >= 16 * 3600
        assert react.paragon_alone_s >= 16 * 3600
        assert react.distributed_s < 5 * 3600

    def test_speedup_over_three(self, react):
        assert react.speedup > 3.0

    def test_pipeline_size_interior(self, react):
        assert 5 <= react.chosen_pipeline_size <= 20
        assert react.sweep_is_convexish

    def test_placement(self, react):
        assert react.chosen_lhsf_host == "c90"
        assert react.chosen_logd_host == "paragon"

    def test_prediction_close_to_simulation(self, react):
        assert react.predicted_s == pytest.approx(react.distributed_s, rel=0.15)

    def test_tables_render(self, react):
        assert "REACT-T1" in react.timing_table().render()
        assert "REACT-T2" in react.sweep_table().render()


class TestNileShape:
    @pytest.fixture(scope="class")
    def skim(self):
        return run_nile_skim(nevents=200_000, runs=(1, 5, 50))

    def test_decisions_monotone(self, skim):
        assert skim.decisions_monotone_in_runs

    def test_many_runs_favour_skim(self, skim):
        d = skim.decision_for(0.2, 50)
        assert d.skim

    def test_local_cheaper_than_remote(self, skim):
        for _, _, d in skim.decisions:
            assert d.local_run_s < d.remote_run_s

    def test_table_renders(self, skim):
        assert "NILE-T1" in skim.table().render()


class TestNwsAblation:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_nws_comparison(nsamples=400)

    def test_no_universal_winner(self, comparison):
        # The motivation for the ensemble: different processes have
        # different best predictors.
        winners = {comparison.best_for(p) for p in comparison.mse}
        assert len(winners) >= 2

    def test_ensemble_near_best_everywhere(self, comparison):
        for process in comparison.mse:
            assert comparison.ensemble_regret(process) < 1.6, process

    def test_table_renders(self, comparison):
        assert "NWS-A1" in comparison.table().render()


class TestInformationAblation:
    def test_dynamic_information_helps(self):
        r = run_information_ablation(n=1200, iterations=30)
        assert r.nws_s < r.nominal_s
        # NWS should recover most of the oracle's advantage.
        assert r.nws_s < 2.0 * r.oracle_s
        assert "ABL-A2" in r.table().render()


class TestSelectionAblation:
    def test_subset_beats_everything_and_single(self):
        r = run_selection_ablation(n=1200, iterations=30)
        assert r.apples_s <= r.all_machines_s * 1.05
        assert r.apples_s < r.best_single_s
        assert 1 <= r.apples_machines < 8
        assert "ABL-A3" in r.table().render()

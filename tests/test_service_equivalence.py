"""Differential harness: batched service ≡ sequential solo agents.

The :class:`~repro.service.SchedulingService` promises every answer
bit-identical to what the request's own agent would decide alone at the
same instant.  These tests build two value-identical worlds per case —
one answered through the service, one through a plain loop of
``AppLeSAgent.schedule()`` calls — and compare the decisions float for
float: chosen machines, strip row counts, predicted/objective values, and
the candidate-search statistics (evaluation count after pruning).

Both decision paths are covered: the batched fast path, and the
``REPRO_NO_FASTPATH=1`` oracle (where the service degenerates to the
sequential loop by construction — verified, not assumed).  Batch
contents are mixed on purpose: several problem sizes, user specifications
(including a different metric and a machine cap), memory-blind requests,
and duplicated configurations that exercise the service's dedup.
"""

from __future__ import annotations

import pytest

from repro.core.userspec import UserSpecification
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws import NetworkWeatherService
from repro.service import DecisionRequest, SchedulingService, ServiceAnswer
from repro.sim import casa_testbed, nile_testbed, sdsc_pcl_testbed, sdsc_pcl_with_sp2
from repro.util import perf

SEEDS = [(1996, 7), (2023, 11), (5, 97)]  # (testbed seed, NWS seed)

TESTBED_BUILDERS = {
    "sdsc_pcl": sdsc_pcl_testbed,
    "sdsc_pcl_sp2": sdsc_pcl_with_sp2,
    "casa": casa_testbed,
    "nile": nile_testbed,
}

AT = 420.0


def _userspec(k: int) -> UserSpecification:
    """Deterministic userspec variety: default, capped, priced."""
    variant = k % 3
    if variant == 0:
        return UserSpecification()
    if variant == 1:
        return UserSpecification(max_machines=3)
    return UserSpecification(
        performance_metric="cost",
        cost_per_cpu_second={"alpha1": 0.02, "sparc1": 0.01, "c90": 1.5},
    )


def _requests(batch: int) -> list[DecisionRequest]:
    """A mixed batch: sizes, specs, and memory policies all vary; every
    4th request repeats request 0's configuration (dedup coverage)."""
    reqs = []
    for k in range(batch):
        if k % 4 == 3:
            reqs.append(reqs[0])
            continue
        reqs.append(
            DecisionRequest(
                problem=JacobiProblem(n=600 + 100 * (k % 3), iterations=40 + k),
                userspec=_userspec(k),
                account_memory=(k % 5 != 2),
                at=AT,
            )
        )
    return reqs


def _service_answers(name, tb_seed, nws_seed, requests, fast):
    builder = TESTBED_BUILDERS[name]
    testbed = builder(seed=tb_seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=nws_seed)
    with perf.fastpath(fast):
        service = SchedulingService(testbed, nws)
        return service.decide(requests)


def _solo_decisions(name, tb_seed, nws_seed, requests, fast):
    builder = TESTBED_BUILDERS[name]
    testbed = builder(seed=tb_seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=nws_seed)
    decisions = []
    with perf.fastpath(fast):
        for at in sorted({r.at for r in requests}):
            nws.advance_to(at)
            for r in requests:
                if r.at != at:
                    continue
                agent = make_jacobi_agent(
                    testbed, r.problem, nws,
                    userspec=r.userspec, account_memory=r.account_memory,
                )
                decisions.append(agent.schedule())
    return decisions


def _strip_rows(schedule):
    partition = schedule.metadata.get("partition")
    strips = getattr(partition, "strips", None)
    if strips is None:
        return None
    return [(s.machine, s.row_start, s.row_count) for s in strips]


def _assert_identical(answer: ServiceAnswer, decision) -> None:
    assert answer.machines == decision.best.resource_set
    assert answer.predicted_time == decision.best.predicted_time  # bitwise
    assert answer.best_objective == decision.best_objective
    assert answer.metric == decision.metric
    # Evaluation count after pruning, and the full search statistics.
    assert answer.pruning == decision.pruning
    assert answer.evaluations_planned == decision.pruning.planned
    assert _strip_rows(answer.best) == _strip_rows(decision.best)
    assert [a.work_units for a in answer.best.allocations] == [
        a.work_units for a in decision.best.allocations
    ]


def _run_case(name, tb_seed, nws_seed, batch, fast):
    requests = _requests(batch)
    answers = _service_answers(name, tb_seed, nws_seed, requests, fast)
    decisions = _solo_decisions(name, tb_seed, nws_seed, requests, fast)
    assert len(answers) == len(decisions) == batch
    for answer, decision in zip(answers, decisions):
        _assert_identical(answer, decision)


# -- fast path: full testbed × seed matrix, batch sizes per cost ---------
@pytest.mark.parametrize("seeds", SEEDS, ids=lambda s: f"seed{s[0]}")
@pytest.mark.parametrize("batch", [1, 2, 7])
@pytest.mark.parametrize("name", ["sdsc_pcl", "sdsc_pcl_sp2", "casa"])
def test_fast_small_testbeds(name, batch, seeds):
    _run_case(name, seeds[0], seeds[1], batch, fast=True)


@pytest.mark.parametrize("seeds", SEEDS, ids=lambda s: f"seed{s[0]}")
@pytest.mark.parametrize("batch", [1, 2])
def test_fast_nile(batch, seeds):
    _run_case("nile", seeds[0], seeds[1], batch, fast=True)


@pytest.mark.parametrize("name", ["sdsc_pcl", "casa"])
def test_fast_batch64(name):
    _run_case(name, *SEEDS[0], batch=64, fast=True)


def test_fast_nile_batch7():
    _run_case("nile", *SEEDS[1], batch=7, fast=True)


@pytest.mark.slow
def test_fast_nile_batch64():
    """The acceptance-scenario shape: 64 requests on the 12-machine pool."""
    _run_case("nile", *SEEDS[0], batch=64, fast=True)


# -- oracle path: REPRO_NO_FASTPATH answers must match too ---------------
@pytest.mark.parametrize("batch", [1, 2, 7])
@pytest.mark.parametrize("name", ["sdsc_pcl", "casa"])
def test_reference_small_testbeds(name, batch):
    _run_case(name, *SEEDS[0], batch=batch, fast=False)


def test_reference_sp2():
    _run_case("sdsc_pcl_sp2", *SEEDS[2], batch=2, fast=False)


def test_reference_nile():
    _run_case("nile", *SEEDS[0], batch=2, fast=False)


def test_reference_batch64_casa():
    _run_case("casa", *SEEDS[1], batch=64, fast=False)


# -- cross-path: the two service modes agree with each other -------------
@pytest.mark.parametrize("name", ["sdsc_pcl", "casa"])
def test_fast_vs_reference_service(name):
    requests = _requests(5)
    fast = _service_answers(name, *SEEDS[0], requests, fast=True)
    ref = _service_answers(name, *SEEDS[0], requests, fast=False)
    for a, b in zip(fast, ref):
        assert a.machines == b.machines
        assert a.predicted_time == b.predicted_time
        assert a.best_objective == b.best_objective
        assert _strip_rows(a.best) == _strip_rows(b.best)


# -- multiple decision instants in one submission ------------------------
def test_two_instants_one_batch():
    early = [r for r in _requests(3)]
    late = [
        DecisionRequest(
            problem=r.problem, userspec=r.userspec,
            account_memory=r.account_memory, at=AT + 180.0,
        )
        for r in _requests(3)
    ]
    requests = [early[0], late[0], early[1], late[1], early[2], late[2]]
    answers = _service_answers("sdsc_pcl", *SEEDS[0], requests, fast=True)
    decisions = _solo_decisions("sdsc_pcl", *SEEDS[0], requests, fast=True)
    # _solo_decisions orders by instant; realign to request order.
    order = sorted(range(len(requests)), key=lambda i: requests[i].at)
    by_request = dict(zip(order, decisions))
    for i, answer in enumerate(answers):
        _assert_identical(answer, by_request[i])
    assert [a.at for a in answers] == [r.at for r in requests]


def test_past_instant_rejected():
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.advance_to(500.0)
    service = SchedulingService(testbed, nws)
    with pytest.raises(ValueError):
        service.decide([DecisionRequest(problem=JacobiProblem(n=600, iterations=10), at=100.0)])

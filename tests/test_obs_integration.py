"""Integration tests for repro.obs: traced runs, CLI plumbing, metrics.

Covers the subsystem's acceptance contract: a traced experiment emits a
valid JSONL trace spanning the decision, runner, simulation and NWS
layers; the same run with tracing disabled is bit-identical; the ``all``
subcommand forwards every shared flag; and PruningStats flow into the
metrics registry with the counts the 12-machine exhaustive pool demands.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.cli import main
from repro.core.coordinator import AppLeSAgent, PruningStats, record_pruning_stats
from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import InformationPool
from repro.core.planner import TimeBalancedPlanner
from repro.core.resources import ResourcePool
from repro.core.selector import ResourceSelector
from repro.core.userspec import UserSpecification
from repro.experiments import run_fig5
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import read_trace
from repro.obs.trace import Tracer, load_records, tracing

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


def run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=600,
    )


class TestTracedRun:
    @pytest.fixture(scope="class")
    def traced_fig5(self, tmp_path_factory):
        """One traced quick fig5 run in a fresh interpreter (cold caches)."""
        tmp = tmp_path_factory.mktemp("traced")
        trace_path = tmp / "fig5.jsonl"
        proc = run_cli(
            ["fig5", "--quick", "--sizes", "600,800", "--iterations", "5",
             "--repeats", "1", "--trace", str(trace_path)],
            cwd=tmp,
        )
        assert proc.returncode == 0, proc.stderr
        return trace_path, proc.stdout

    def test_trace_validates_and_roundtrips(self, traced_fig5, tmp_path):
        trace_path, _ = traced_fig5
        records = load_records(trace_path)  # load_records validates
        copy = tmp_path / "copy.jsonl"
        from repro.obs.trace import save_records

        save_records(copy, records)
        assert load_records(copy) == records

    def test_trace_covers_four_layers(self, traced_fig5):
        trace_path, _ = traced_fig5
        data = read_trace(trace_path)
        assert {"core", "runner", "sim", "nws"} <= data.layers

    def test_decision_spans_carry_pruning_attrs(self, traced_fig5):
        trace_path, _ = traced_fig5
        data = read_trace(trace_path)
        decisions = [s for s in data.spans if s["name"] == "core.decision"]
        assert decisions
        for span in decisions:
            attrs = span["attrs"]
            assert attrs["candidates"] > 0
            assert attrs["planned"] + attrs["pruned"] == attrs["candidates"]
            assert span["clock"] == "sim"

    def test_metrics_cover_every_layer(self, traced_fig5):
        trace_path, _ = traced_fig5
        metrics = read_trace(trace_path).metrics
        for prefix in ("core.", "runner.", "sim.", "nws."):
            assert any(name.startswith(prefix) for name in metrics), prefix

    def test_tracing_does_not_change_output(self, traced_fig5, tmp_path):
        _, traced_stdout = traced_fig5
        plain = run_cli(
            ["fig5", "--quick", "--sizes", "600,800", "--iterations", "5",
             "--repeats", "1"],
            cwd=tmp_path,
        )
        assert plain.returncode == 0, plain.stderr
        assert plain.stdout == traced_stdout


class TestBitIdentical:
    def test_library_run_identical_with_tracing(self):
        base = run_fig5(sizes=(600,), iterations=5, repeats=1, seed=1996)
        with tracing() as tr:
            traced = run_fig5(sizes=(600,), iterations=5, repeats=1, seed=1996)
        assert traced.table().render() == base.table().render()
        # ... and the run actually recorded something.
        assert any(r["kind"] == "span" for r in tr.records())

    def test_parallel_traced_matches_serial_untraced(self):
        base = run_fig5(sizes=(600,), iterations=5, repeats=2,
                        seed=1996, workers=1)
        with tracing():
            traced = run_fig5(sizes=(600,), iterations=5, repeats=2,
                              seed=1996, workers=2)
        assert traced.table().render() == base.table().render()


class TestObsReportCli:
    def make_trace(self, tmp_path, name="a.jsonl", extra=0):
        tr = Tracer()
        with tr.span("core.decision", layer="core", t=0.0):
            pass
        tr.metrics.counter("core.pruned").inc(10 + extra)
        path = tmp_path / name
        tr.export(path)
        return path

    def test_report(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert main(["obs-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Trace report" in out
        assert "core.decision" in out
        assert "core.pruned" in out

    def test_diff(self, tmp_path, capsys):
        a = self.make_trace(tmp_path, "a.jsonl")
        b = self.make_trace(tmp_path, "b.jsonl", extra=5)
        assert main(["obs-report", str(a), "--diff", str(b)]) == 0
        out = capsys.readouterr().out
        assert "Trace diff" in out
        assert "metric:core.pruned" in out

    def test_report_rejects_malformed_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        with pytest.raises(ValueError):
            main(["obs-report", str(bad)])


class TestAllForwarding:
    """Regression: `all` must forward every shared flag, not just --workers."""

    def run_all(self, monkeypatch, argv):
        import repro.cli as cli

        seen: dict[str, object] = {}

        def make(name):
            def cmd(args):
                seen[name] = args
                return f"<{name}>"

            return cmd

        monkeypatch.setattr(
            cli, "_COMMANDS", {name: make(name) for name in cli._COMMANDS}
        )
        assert cli.main(argv) == 0
        return seen

    def test_forwards_seed_workers_quick(self, monkeypatch, capsys):
        seen = self.run_all(
            monkeypatch, ["all", "--seed", "7", "--workers", "3", "--quick"]
        )
        import repro.cli as cli

        assert set(seen) == set(cli._COMMANDS)
        for name, ns in seen.items():
            assert ns.seed == 7, name
            assert ns.workers == 3, name
        # Quick presets applied per subcommand on top of forwarded flags.
        assert seen["fig5"].sizes == (1000, 1400)
        assert seen["fig5"].iterations == 10
        assert seen["fig5"].repeats == 2
        assert seen["nile"].events == 50_000
        assert seen["contention"].apps == 3

    def test_defaults_without_quick(self, monkeypatch, capsys):
        seen = self.run_all(monkeypatch, ["all"])
        assert seen["fig5"].sizes == (1000, 1200, 1400, 1600, 1800, 2000)
        assert seen["fig5"].repeats == 3
        assert seen["contention"].apps == 5
        for ns in seen.values():
            assert ns.seed == 1996
            assert ns.workers == 1

    def test_all_with_trace_merges_one_file(self, monkeypatch, capsys, tmp_path):
        path = tmp_path / "all.jsonl"
        import repro.cli as cli

        def fake(args):
            from repro.obs.trace import get_tracer

            tracer = get_tracer()
            assert tracer.enabled  # the central tracer is installed
            with tracer.span("fake.cmd", layer="core"):
                pass
            return "<fake>"

        monkeypatch.setattr(cli, "_COMMANDS", {"fig34": fake, "nile": fake})
        assert cli.main(["all", "--trace", str(path)]) == 0
        data = read_trace(path)
        assert len([s for s in data.spans if s["name"] == "fake.cmd"]) == 2

    def test_explicit_flag_beats_quick_preset(self, monkeypatch, capsys):
        import repro.cli as cli

        seen = {}

        def cmd(args):
            seen["fig5"] = args
            return "<fig5>"

        monkeypatch.setattr(cli, "_COMMANDS", dict(cli._COMMANDS, fig5=cmd))
        assert cli.main(["fig5", "--quick", "--repeats", "9"]) == 0
        assert seen["fig5"].repeats == 9          # explicit wins
        assert seen["fig5"].sizes == (1000, 1400)  # preset fills the rest

    def test_forwards_replicates_to_ensemble_subcommands(self, monkeypatch, capsys):
        """--replicates rides the generic forwarding, like --trace/--quick."""
        seen = self.run_all(monkeypatch, ["all", "--replicates", "3"])
        import repro.cli as cli

        assert set(seen) == set(cli._COMMANDS)
        # Only the simulation-backed figure sweeps understand the flag.
        assert seen["fig5"].replicates == 3
        assert seen["fig6"].replicates == 3
        for name in set(seen) - {"fig5", "fig6"}:
            assert not hasattr(seen[name], "replicates"), name

    def test_replicates_default_is_point_estimate(self, monkeypatch, capsys):
        seen = self.run_all(monkeypatch, ["all"])
        assert seen["fig5"].replicates == 1
        assert seen["fig6"].replicates == 1


class TestEnsembleObs:
    """EnsembleExecution instrumentation mirrors CompiledExecution's."""

    def _specs(self, n=3):
        from repro.sim.execution_ensemble import replicated

        return replicated(n, n_hosts=6, seed=5)

    def test_traced_untraced_bit_identical(self):
        from repro.sim.execution_ensemble import run_ensemble

        base = run_ensemble(self._specs(), 8)
        with tracing() as tr:
            traced = run_ensemble(self._specs(), 8)
        for a, b in zip(base, traced):
            assert a.total_time == b.total_time
            assert a.iteration_times == b.iteration_times
            assert a.host_busy_time == b.host_busy_time
        assert any(r["kind"] == "span" and r["name"] == "sim.ensemble.execute"
                   for r in tr.records())

    def test_compile_event_and_counters(self):
        from repro.sim.execution_ensemble import run_ensemble
        from repro.sim.jobs import make_injectable
        from repro.sim.execution_ensemble import ReplicaSpec, ring_assignments
        from repro.sim.testbeds import sdsc_pcl_testbed

        testbed = sdsc_pcl_testbed(seed=9)
        for injector in make_injectable(testbed).values():
            injector.occupy(5.0, 100.0, 0.5)
        specs = self._specs(2) + [
            ReplicaSpec(testbed.topology, ring_assignments(testbed))
        ]
        with tracing() as tr:
            run_ensemble(specs, 5)
        events = [r for r in tr.records()
                  if r["kind"] == "event" and r["name"] == "sim.ensemble.compile"]
        assert len(events) == 1
        fields = events[0]["fields"]
        assert fields["replicas"] == 3
        assert fields["vectorised"] == 2
        assert fields["surrendered"] == 1
        assert fields["entries"] > 0
        metrics = tr.metrics.as_dict()
        assert metrics["sim.ensemble.compiles"]["value"] == 1
        assert metrics["sim.ensemble.replicas_vectorised"]["value"] == 2
        assert metrics["sim.ensemble.replicas_surrendered"]["value"] == 1
        assert metrics["sim.ensemble.runs"]["value"] == 1
        assert metrics["sim.ensemble.replica_iterations"]["value"] == 15
        # The surrendered replica runs through CompiledExecution, whose own
        # instrumentation must fire under the same tracer.
        assert metrics["sim.compiles"]["value"] >= 1

    def test_compile_report_without_tracing(self):
        from repro.sim.execution_ensemble import EnsembleExecution

        ex = EnsembleExecution(self._specs(), 5)
        assert ex.compile_report["replicas"] == 3
        assert ex.compile_report["vectorised"] == 3
        assert ex.compile_report["surrendered"] == 0


class TestPruningMetrics:
    """PruningStats wired into the metrics registry (12-machine pool)."""

    def make_agent(self, nile_bed):
        hat = HeterogeneousApplicationTemplate(
            name="toy", paradigm="data-parallel",
            tasks=(TaskCharacteristics("work", flop_per_unit=1e-3),),
            communication=CommunicationCharacteristics(
                pattern="stencil", bytes_per_border_unit=8.0
            ),
            structure=StructureInfo(total_units=1e6, iterations=1),
        )
        info = InformationPool(
            pool=ResourcePool(nile_bed.topology, None),
            hat=hat,
            userspec=UserSpecification(),
        )
        return AppLeSAgent(info, planner=TimeBalancedPlanner())

    def test_twelve_machine_exhaustive_counts(self, nile_bed):
        agent = self.make_agent(nile_bed)
        with tracing() as tr:
            decision = agent.schedule()
        total = ResourceSelector.exhaustive_count(12)
        assert total == 4095
        stats = decision.pruning
        assert stats is not None
        assert stats.candidates == total
        assert stats.planned + stats.pruned == total
        assert len(decision.evaluations) == total
        metrics = tr.metrics.as_dict()
        assert metrics["core.decisions"]["value"] == 1
        assert metrics["core.candidates"]["value"] == total
        assert metrics["core.planned"]["value"] == stats.planned
        assert metrics["core.pruned"]["value"] == stats.pruned
        assert metrics["core.selector.regime.exhaustive"]["value"] == 1
        assert metrics["core.selector.candidate_sets"]["value"] == total

    def test_record_pruning_stats_direct(self):
        reg = MetricsRegistry()
        stats = PruningStats(candidates=10, planned=4, pruned=6, bounded=True)
        record_pruning_stats(reg, stats)
        record_pruning_stats(reg, stats)
        d = reg.as_dict()
        assert d["core.decisions"]["value"] == 2
        assert d["core.candidates"]["value"] == 20
        assert d["core.pruned"]["value"] == 12
        assert d["core.pruned_fraction"]["count"] == 2

    def test_incumbent_events_lead_to_best(self, nile_bed):
        agent = self.make_agent(nile_bed)
        with tracing() as tr:
            decision = agent.schedule()
        events = [r for r in tr.records()
                  if r["kind"] == "event" and r["name"] == "core.incumbent"]
        assert events
        objectives = [e["fields"]["objective"] for e in events]
        assert objectives == sorted(objectives, reverse=True)
        assert objectives[-1] == pytest.approx(decision.best_objective)

"""3D-REACT on a contended CASA: the §4.2 NWS-driven agent.

The paper's prototype ran on dedicated machines, but §4.2 describes the
3D-REACT AppLeS planning "parameterized by forecasts of network and
machine load from the Network Weather Service".  These tests exercise
that path on a non-dedicated CASA variant.
"""

from __future__ import annotations

import pytest

from repro.nws.service import NetworkWeatherService
from repro.react.apples import make_react_agent
from repro.react.pipeline import simulate_pipeline, simulate_single_site
from repro.react.tasks import ReactProblem
from repro.sim.testbeds import casa_testbed


@pytest.fixture(scope="module")
def contended():
    testbed = casa_testbed(dedicated=False, seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, cpu_period=60.0,
                                            net_period=60.0, seed=2)
    nws.warmup(3600.0)
    return testbed, nws


class TestContendedCasa:
    def test_testbed_contended(self, contended):
        testbed, _ = contended
        paragon = testbed.topology.host("paragon")
        xs = paragon.load.sample(100)
        assert min(xs) < 0.9
        assert not paragon.dedicated

    def test_agent_still_distributes(self, contended):
        testbed, nws = contended
        agent = make_react_agent(testbed, ReactProblem(), nws)
        best = agent.schedule().best
        assert best.decomposition == "pipeline"
        assert best.metadata["lhsf_host"] == "c90"
        assert best.metadata["logd_host"] == "paragon"

    def test_informed_prediction_more_honest(self, contended):
        """§3.6: the schedule is only as good as its predictions — the
        NWS-informed prediction must be closer to the contended actual
        than the nominal (dedicated-world) prediction."""
        testbed, nws = contended
        problem = ReactProblem()

        informed = make_react_agent(testbed, problem, nws).schedule().best
        nominal = make_react_agent(testbed, problem).schedule().best

        def run(schedule):
            return simulate_pipeline(
                testbed.topology, problem,
                schedule.metadata["lhsf_host"], schedule.metadata["logd_host"],
                schedule.metadata["pipeline_size"], t0=3600.0,
            ).makespan_s

        actual_informed = run(informed)
        actual_nominal = run(nominal)
        err_informed = abs(informed.predicted_time - actual_informed) / actual_informed
        err_nominal = abs(nominal.predicted_time - actual_nominal) / actual_nominal
        assert err_informed < err_nominal

    def test_distributed_beats_single_site_even_contended(self, contended):
        testbed, nws = contended
        problem = ReactProblem()
        best = make_react_agent(testbed, problem, nws).schedule().best
        piped = simulate_pipeline(
            testbed.topology, problem,
            best.metadata["lhsf_host"], best.metadata["logd_host"],
            best.metadata["pipeline_size"], t0=3600.0,
        ).makespan_s
        c90_alone = simulate_single_site(testbed.topology, problem, "c90", t0=3600.0)
        assert piped < c90_alone

    def test_contention_slows_the_pipeline(self, contended):
        testbed, _ = contended
        problem = ReactProblem()
        contended_run = simulate_pipeline(
            testbed.topology, problem, "c90", "paragon", 10, t0=3600.0
        ).makespan_s
        clean = casa_testbed(dedicated=True)
        clean_run = simulate_pipeline(
            clean.topology, problem, "c90", "paragon", 10
        ).makespan_s
        assert contended_run > 1.3 * clean_run

"""The parallel runner and the warm-state cache."""

from __future__ import annotations

import pytest

from repro.runner import ParallelRunner, Task, derive_seed, resolve_workers, run_tasks
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.sim.warmcache import clear_warm_cache, warm_cache_stats, warmed_state


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


class TestResolveWorkers:
    def test_none_and_zero_mean_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1

    def test_positive_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_negative_means_all_cpus(self):
        assert resolve_workers(-1) >= 1


class TestTask:
    def test_call_invokes_fn_with_kwargs(self):
        assert Task(_square, {"x": 5})() == 25

    def test_key_is_metadata_only(self):
        assert Task(_square, {"x": 2}, key=("a", 1))() == 4


class TestParallelRunner:
    def test_serial_preserves_order(self):
        tasks = [Task(_square, {"x": k}) for k in range(6)]
        assert ParallelRunner(1).run(tasks) == [0, 1, 4, 9, 16, 25]

    def test_pool_preserves_order(self):
        tasks = [Task(_square, {"x": k}) for k in range(6)]
        assert ParallelRunner(3).run(tasks) == [0, 1, 4, 9, 16, 25]

    def test_serial_and_pool_agree(self):
        tasks = [Task(_square, {"x": k}) for k in range(5)]
        assert ParallelRunner(1).run(tasks) == ParallelRunner(4).run(tasks)

    def test_single_task_skips_pool(self):
        # A one-task list runs in-process even with many workers.
        assert ParallelRunner(8).run([Task(_square, {"x": 3})]) == [9]

    def test_short_lists_run_serial(self):
        # Below min_parallel_tasks the pool is skipped entirely: its spawn
        # cost cannot be amortised over so few tasks (the fig6 quick-mode
        # regression).  Results are identical either way.
        runner = ParallelRunner(4, min_parallel_tasks=4)
        called = []

        def record_prime():
            called.append(True)

        tasks = [Task(_square, {"x": k}) for k in range(3)]
        assert runner.run(tasks, prime=record_prime) == [0, 1, 4]
        assert not called  # serial path never primes

    def test_threshold_boundary_uses_pool(self):
        runner = ParallelRunner(2, min_parallel_tasks=4)
        tasks = [Task(_square, {"x": k}) for k in range(4)]
        assert runner.run(tasks) == [0, 1, 4, 9]

    def test_threshold_configurable(self):
        # min_parallel_tasks=2 restores pooling for two-task lists.
        runner = ParallelRunner(2, min_parallel_tasks=2)
        assert runner.run([Task(_square, {"x": k}) for k in range(2)]) == [0, 1]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(2, min_parallel_tasks=1)

    def test_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(1).run([Task(_boom, {"x": 1})])

    def test_exception_propagates_pool(self):
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(2).run([Task(_boom, {"x": k}) for k in range(3)])

    def test_map_shorthand(self):
        assert ParallelRunner(1).map(_square, [{"x": 2}, {"x": 3}]) == [4, 9]

    def test_run_tasks_wrapper(self):
        assert run_tasks([Task(_square, {"x": k}) for k in range(3)], 2) == [0, 1, 4]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1996, "fig5", 3) == derive_seed(1996, "fig5", 3)

    def test_key_sensitivity(self):
        base = derive_seed(1996, "fig5", 3)
        assert derive_seed(1996, "fig5", 4) != base
        assert derive_seed(1996, "fig6", 3) != base
        assert derive_seed(1997, "fig5", 3) != base

    def test_non_negative_int(self):
        s = derive_seed(0, "x")
        assert isinstance(s, int) and s >= 0


class TestWarmCache:
    def setup_method(self):
        clear_warm_cache()

    def teardown_method(self):
        clear_warm_cache()

    def test_hit_on_same_key(self):
        a = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0)
        b = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0)
        assert a[0] is b[0] and a[1] is b[1]
        stats = warm_cache_stats()
        assert stats["hits"] >= 1

    def test_advances_forward_on_reuse(self):
        _, nws = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=60.0)
        assert nws.now >= 60.0
        _, nws2 = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=90.0)
        assert nws2 is nws and nws2.now >= 90.0

    def test_rebuilds_when_behind(self):
        _, nws = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=200.0)
        _, nws2 = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=60.0)
        assert nws2 is not nws  # cannot rewind; a fresh build was required

    def test_distinct_seeds_distinct_state(self):
        a = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0)
        b = warmed_state(sdsc_pcl_testbed, seed=12, warmup_s=50.0)
        assert a[0] is not b[0]

    def test_rejects_at_before_warmup(self):
        with pytest.raises(ValueError):
            warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=10.0)

    def test_reuse_equals_fresh_build(self):
        """The determinism contract: reuse + advance == fresh build at t."""
        _, nws = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=60.0)
        reused = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=120.0)[1]
        host = sdsc_pcl_testbed(seed=11).host_names[0]
        reused_f = reused.cpu_forecast(host)
        clear_warm_cache()
        fresh = warmed_state(sdsc_pcl_testbed, seed=11, warmup_s=50.0, at=120.0)[1]
        assert fresh.cpu_forecast(host) == reused_f

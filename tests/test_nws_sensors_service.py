"""Tests for NWS sensors and the service facade."""

from __future__ import annotations

import pytest

from repro.nws.sensors import CpuSensor, LinkSensor
from repro.nws.service import NetworkWeatherService
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.load import ConstantLoad, TraceLoad
from repro.util.rng import RngStream


class TestCpuSensor:
    def make_host(self, avail=0.5):
        return Host("h", speed_mflops=10.0, load=ConstantLoad(avail))

    def test_samples_on_period(self):
        s = CpuSensor(self.make_host(), period=10.0, noise_std=0.0)
        taken = s.advance_to(35.0)
        assert taken == 4  # t = 0, 10, 20, 30
        assert len(s.series) == 4

    def test_advance_idempotent(self):
        s = CpuSensor(self.make_host(), period=10.0)
        s.advance_to(25.0)
        assert s.advance_to(25.0) == 0

    def test_noiseless_measures_truth(self):
        s = CpuSensor(self.make_host(0.7), period=5.0, noise_std=0.0)
        s.advance_to(50.0)
        assert set(s.series.values()) == {0.7}

    def test_noise_clipped(self):
        s = CpuSensor(self.make_host(0.99), period=1.0, noise_std=0.5,
                      rng=RngStream(1, "t"))
        s.advance_to(200.0)
        assert all(0.0 <= v <= 1.0 for v in s.series.values())

    def test_forecast_after_warmup(self):
        s = CpuSensor(self.make_host(0.6), period=5.0, noise_std=0.0)
        s.advance_to(100.0)
        assert s.forecast().value == pytest.approx(0.6, abs=1e-6)

    def test_ready_flag(self):
        s = CpuSensor(self.make_host())
        assert not s.ready
        s.advance_to(0.0)
        assert s.ready


class TestLinkSensor:
    def test_measures_fraction(self):
        link = Link("l", bandwidth_mbit=10.0, load=ConstantLoad(0.4))
        s = LinkSensor(link, period=5.0, noise_std=0.0)
        s.advance_to(20.0)
        assert s.series.last_value == pytest.approx(0.4)

    def test_forecast_bandwidth_recombines(self):
        link = Link("l", bandwidth_mbit=8.0, load=ConstantLoad(0.5))
        s = LinkSensor(link, period=5.0, noise_std=0.0)
        s.advance_to(50.0)
        # Nominal 1e6 B/s; forecast fraction 0.5 -> 5e5 B/s.
        assert s.forecast_bandwidth() == pytest.approx(5e5, rel=1e-3)

    def test_forecast_bandwidth_flow_sharing(self):
        link = Link("l", bandwidth_mbit=8.0, load=ConstantLoad(0.5))
        s = LinkSensor(link, period=5.0, noise_std=0.0)
        s.advance_to(50.0)
        assert s.forecast_bandwidth(flows=2) == pytest.approx(
            s.forecast_bandwidth() / 2
        )


class TestNetworkWeatherService:
    def test_monitors_everything(self, testbed):
        nws = NetworkWeatherService.for_testbed(testbed)
        assert set(nws.cpu_sensors) == set(testbed.host_names)
        assert set(nws.link_sensors) == set(testbed.topology.links)

    def test_nominal_fallback_before_warmup(self, testbed):
        nws = NetworkWeatherService.for_testbed(testbed)
        f = nws.cpu_forecast("alpha1")
        assert f.method == "nominal"
        assert f.value == 1.0

    def test_forecast_tracks_truth(self, testbed, warmed_nws):
        for name in testbed.host_names:
            truth = testbed.topology.host(name).load.mean_availability(550.0, 650.0)
            pred = warmed_nws.cpu_forecast(name).value
            assert pred == pytest.approx(truth, abs=0.35), name

    def test_effective_speed_forecast(self, testbed, warmed_nws):
        speed = warmed_nws.effective_speed_forecast("alpha1")
        nominal = testbed.topology.host("alpha1").speed_mflops
        assert 0.0 < speed <= nominal

    def test_path_bandwidth_near_truth(self, testbed, warmed_nws):
        pred = warmed_nws.path_bandwidth_forecast("sparc2", "alpha1")
        actual = testbed.topology.path_bandwidth("sparc2", "alpha1", 600.0)
        assert pred == pytest.approx(actual, rel=1.0)  # same order of magnitude

    def test_transfer_forecast_local_zero(self, warmed_nws):
        assert warmed_nws.transfer_time_forecast("alpha1", "alpha1", 1e9) == 0.0

    def test_advance_backwards_rejected(self, testbed):
        nws = NetworkWeatherService.for_testbed(testbed)
        nws.advance_to(100.0)
        with pytest.raises(ValueError):
            nws.advance_to(50.0)

    def test_unknown_resource_raises(self, warmed_nws):
        with pytest.raises(KeyError):
            warmed_nws.cpu_forecast("nonesuch")
        with pytest.raises(KeyError):
            warmed_nws.link_forecast("nonesuch")

    def test_forecast_follows_regime_change(self):
        # A host whose availability drops sharply: after enough new samples
        # the forecast must follow it down.
        from repro.sim.testbeds import Testbed
        from repro.sim.topology import Topology

        topo = Topology()
        topo.add_host(Host(
            "h", speed_mflops=10.0,
            load=TraceLoad([0.9] * 60 + [0.2] * 60, dt=10.0),
        ))
        nws = NetworkWeatherService(topo, cpu_period=10.0, noise_std=0.0)
        nws.advance_to(590.0)
        assert nws.cpu_forecast("h").value == pytest.approx(0.9, abs=0.1)
        nws.advance_to(1150.0)
        assert nws.cpu_forecast("h").value == pytest.approx(0.2, abs=0.1)

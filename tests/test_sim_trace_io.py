"""Tests for availability-trace persistence (:mod:`repro.sim.trace_io`)."""

from __future__ import annotations

import json

import pytest

from repro.sim.execution import WorkAssignment, simulate_iterations
from repro.sim.load import AR1Load, TraceLoad
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.sim.trace_io import load_trace, record_trace, save_trace
from repro.util.rng import RngStream


def _ar1(seed: int = 3, dt: float = 5.0) -> AR1Load:
    return AR1Load(mean=0.6, phi=0.9, sigma=0.08, dt=dt,
                   rng=RngStream(seed, "trace").generator)


class TestRecordTrace:
    def test_epoch_count_rounds_up(self):
        load = _ar1(dt=5.0)
        assert len(record_trace(load, 50.0)) == 10
        assert len(record_trace(load, 51.0)) == 11
        assert len(record_trace(load, 1.0)) == 1

    def test_samples_epoch_values(self):
        load = _ar1(dt=5.0)
        values = record_trace(load, 50.0)
        assert values == [load.availability((k + 0.5) * 5.0) for k in range(10)]

    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError):
            record_trace(_ar1(), 0.0)


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        load = _ar1(dt=5.0)
        values = record_trace(load, 200.0)
        path = tmp_path / "alpha1.json"
        save_trace(path, values, dt=5.0, name="alpha1")
        replay = load_trace(path)
        assert isinstance(replay, TraceLoad)
        assert replay.dt == 5.0
        # Bit-exact: JSON float repr round-trips IEEE doubles.
        assert replay.trace == values
        for t in (0.0, 2.5, 7.0, 199.9):
            assert replay.availability(t) == load.availability(t)

    def test_saved_payload_is_plain_json(self, tmp_path):
        path = tmp_path / "t.json"
        save_trace(path, [0.5, 0.75], dt=10.0, name="host")
        payload = json.loads(path.read_text())
        assert payload == {"dt": 10.0, "name": "host", "values": [0.5, 0.75]}


class TestValidation:
    def test_save_rejects_empty_trace(self, tmp_path):
        with pytest.raises(ValueError, match="non-empty"):
            save_trace(tmp_path / "t.json", [], dt=5.0)

    def test_save_rejects_out_of_range_values(self, tmp_path):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            save_trace(tmp_path / "t.json", [0.5, 1.2], dt=5.0)

    def test_save_rejects_nonpositive_dt(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "t.json", [0.5], dt=0.0)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not a JSON trace file"):
            load_trace(path)

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"dt": 5.0}))
        with pytest.raises(ValueError, match="missing dt/values"):
            load_trace(path)

    def test_load_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="missing dt/values"):
            load_trace(path)

    def test_load_rejects_out_of_range_values(self, tmp_path):
        path = tmp_path / "range.json"
        path.write_text(json.dumps({"dt": 5.0, "values": [0.5, 1.5]}))
        with pytest.raises(ValueError):
            load_trace(path)


class TestTraceDrivenExecution:
    def test_trace_replay_matches_live_run(self, tmp_path):
        """A run over recorded traces reproduces the live run exactly.

        Records every host and link load of a live testbed, swaps in
        :class:`TraceLoad` replays, and checks ``simulate_iterations``
        returns the identical result — the scripted-experiment workflow
        the module exists for.
        """
        iterations = 25
        horizon = 100_000.0  # comfortably covers the run

        live = sdsc_pcl_testbed(seed=11)
        replay = sdsc_pcl_testbed(seed=2024)  # loads will all be replaced

        for name, host in live.topology.hosts.items():
            values = record_trace(host.load, horizon)
            path = tmp_path / f"host-{name}.json"
            save_trace(path, values, dt=host.load.dt, name=name)
            replay.topology.hosts[name].load = load_trace(path)
        for name, link in live.topology.links.items():
            values = record_trace(link.load, horizon)
            path = tmp_path / f"link-{name}.json"
            save_trace(path, values, dt=link.load.dt, name=name)
            replay.topology.links[name].load = load_trace(path)

        hosts = sorted(live.topology.hosts)

        def assigns():
            return [
                WorkAssignment(
                    h, 60.0, {hosts[(i + 1) % len(hosts)]: 200_000.0},
                    footprint_mb=4.0,
                )
                for i, h in enumerate(hosts)
            ]

        live_result = simulate_iterations(live.topology, assigns(), iterations)
        replay_result = simulate_iterations(replay.topology, assigns(), iterations)
        assert live_result.total_time <= horizon  # trace never wrapped
        assert replay_result == live_result

"""Tests for the NILE Site Manager and its data-parallel agent."""

from __future__ import annotations

import math

import pytest

from repro.core.resources import ResourcePool
from repro.core.userspec import UserSpecification
from repro.nile.analysis import HistogramAnalysis
from repro.nile.apples import make_nile_agent
from repro.nile.events import PASS2, ROAR, EventBatch
from repro.nile.site_manager import SiteManager
from repro.nile.storage import DISK, TAPE, StoredDataset


@pytest.fixture()
def manager(nile_bed):
    return SiteManager(site="site1", pool=ResourcePool(nile_bed.topology))


@pytest.fixture()
def tape_dataset():
    return StoredDataset(
        "run4", EventBatch(500_000, PASS2, seed=3), TAPE, host="site0-alpha0"
    )


@pytest.fixture()
def local_dataset():
    return StoredDataset(
        "mini", EventBatch(50_000, ROAR, seed=4), DISK, host="site1-alpha0"
    )


class TestAllocation:
    def test_covers_all_events(self, manager, local_dataset):
        shares = manager.allocate(local_dataset, HistogramAnalysis())
        assert sum(shares.values()) == local_dataset.nevents

    def test_prefers_data_host_over_equal_remote(self, manager, tape_dataset):
        prog = HistogramAnalysis()
        shares = manager.allocate(
            tape_dataset, prog, hosts=["site0-alpha0", "site2-alpha0"]
        )
        # Equal machines, but site2 pays WAN shipping per event.
        assert shares["site0-alpha0"] > shares.get("site2-alpha0", 0)

    def test_register_duplicate_rejected(self, manager, tape_dataset):
        manager.register(tape_dataset)
        with pytest.raises(ValueError):
            manager.register(tape_dataset)

    def test_local_hosts(self, manager):
        assert all(h.startswith("site1-") for h in manager.local_hosts())


class TestCostPrediction:
    def test_tape_access_dominates(self, manager, tape_dataset):
        report = manager.predict_run_cost(tape_dataset, HistogramAnalysis())
        assert report.data_access_s > report.compute_s
        assert report.total_s == report.data_access_s + report.compute_s

    def test_local_disk_cheap(self, manager, local_dataset):
        report = manager.predict_run_cost(local_dataset, HistogramAnalysis())
        assert report.total_s < 60.0

    def test_skim_cost_scales_with_fraction(self, manager, tape_dataset):
        full = manager.predict_skim_cost(tape_dataset, 1.0, "site1-alpha0")
        slim = manager.predict_skim_cost(tape_dataset, 0.1, "site1-alpha0")
        assert slim < full
        # Both pay the full source scan.
        assert slim > tape_dataset.read_time()


class TestSkimDecision:
    def test_many_runs_favour_skim(self, manager, tape_dataset):
        decision = manager.decide_skim(
            tape_dataset, HistogramAnalysis(), expected_runs=50, skim_fraction=0.2
        )
        assert decision.skim
        assert decision.local_run_s < decision.remote_run_s

    def test_crossover_consistent(self, manager, tape_dataset):
        decision = manager.decide_skim(
            tape_dataset, HistogramAnalysis(), expected_runs=1, skim_fraction=0.2
        )
        c = decision.crossover_runs
        assert math.isfinite(c)
        below = manager.decide_skim(
            tape_dataset, HistogramAnalysis(),
            expected_runs=max(int(c) - 1, 1), skim_fraction=0.2,
        )
        above = manager.decide_skim(
            tape_dataset, HistogramAnalysis(),
            expected_runs=int(c) + 1, skim_fraction=0.2,
        )
        assert above.skim
        if c > 1.5:
            assert not below.skim

    def test_local_data_never_needs_skim(self, manager, local_dataset):
        decision = manager.decide_skim(
            local_dataset, HistogramAnalysis(), expected_runs=1000
        )
        # Skimming an already-local disk dataset saves little; crossover is
        # large or infinite.
        assert decision.crossover_runs > 10 or not decision.skim

    def test_invalid_runs_rejected(self, manager, tape_dataset):
        with pytest.raises(ValueError):
            manager.decide_skim(tape_dataset, HistogramAnalysis(), expected_runs=0)


class TestNileAgent:
    def test_schedule_covers_events(self, nile_bed, tape_dataset):
        agent = make_nile_agent(nile_bed, tape_dataset, HistogramAnalysis())
        best = agent.schedule().best
        assert best.total_work_units == pytest.approx(tape_dataset.nevents)

    def test_corba_requirement_default(self, nile_bed, tape_dataset):
        agent = make_nile_agent(nile_bed, tape_dataset, HistogramAnalysis())
        assert agent.info.userspec.required_capabilities == frozenset({"corba-orb"})

    def test_data_host_carries_most_work(self, nile_bed, tape_dataset):
        agent = make_nile_agent(nile_bed, tape_dataset, HistogramAnalysis())
        best = agent.schedule().best
        shares = {a.machine: a.work_units for a in best.allocations}
        data_site = {m: u for m, u in shares.items() if m.startswith("site0-")}
        assert sum(data_site.values()) > 0.4 * tape_dataset.nevents

    def test_userspec_restriction(self, nile_bed, tape_dataset):
        us = UserSpecification(
            required_capabilities=frozenset({"corba-orb"}),
            accessible_machines=frozenset({"site0-alpha0", "site0-alpha1"}),
        )
        agent = make_nile_agent(nile_bed, tape_dataset, HistogramAnalysis(), userspec=us)
        best = agent.schedule().best
        assert set(best.resource_set) <= {"site0-alpha0", "site0-alpha1"}

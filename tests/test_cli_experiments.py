"""CLI integration tests for the remaining subcommands (reduced scale)."""

from __future__ import annotations

from repro.cli import main


class TestAblationCommands:
    def test_info(self, capsys):
        assert main(["info", "--n", "1000"]) == 0
        assert "ABL-A2" in capsys.readouterr().out

    def test_selection(self, capsys):
        assert main(["selection", "--n", "1000"]) == 0
        assert "ABL-A3" in capsys.readouterr().out

    def test_metrics(self, capsys):
        assert main(["metrics", "--n", "1000"]) == 0
        assert "METRIC-A6" in capsys.readouterr().out

    def test_decomposition(self, capsys):
        assert main(["decomposition", "--n", "1000"]) == 0
        assert "ABL-A7" in capsys.readouterr().out

    def test_fig6_reduced(self, capsys):
        assert main([
            "fig6", "--sizes", "2000,4200", "--iterations", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_react(self, capsys):
        assert main(["react"]) == 0
        out = capsys.readouterr().out
        assert "REACT-T1" in out
        assert "REACT-T2" in out

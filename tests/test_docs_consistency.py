"""Documentation consistency: the docs must reference real artifacts.

DESIGN.md's experiment index, README's benchmark table and EXPERIMENTS.md
all name bench targets; these tests keep them honest against the actual
files, and verify every benchmark file is documented somewhere.
"""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
BENCH_DIR = ROOT / "benchmarks"


def _bench_names_on_disk() -> set[str]:
    return {p.stem for p in BENCH_DIR.glob("bench_*.py")}


def _referenced_benches(text: str) -> set[str]:
    names = set(re.findall(r"bench_[a-z0-9_]+", text))
    return names - {"bench_output"}  # the captured-output file, not a bench


class TestDocsReferenceRealBenches:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_no_phantom_bench_references(self, doc):
        text = (ROOT / doc).read_text()
        on_disk = _bench_names_on_disk()
        for name in _referenced_benches(text):
            # Strip trailing artifacts of markdown (e.g. bench_x.py).
            stem = name.removesuffix("_py")
            assert stem in on_disk, f"{doc} references missing {name}"

    def test_every_bench_documented_in_readme(self):
        text = (ROOT / "README.md").read_text()
        documented = _referenced_benches(text)
        for stem in _bench_names_on_disk():
            assert stem in documented, f"{stem} missing from README benchmark table"

    def test_every_bench_in_design_index(self):
        text = (ROOT / "DESIGN.md").read_text()
        documented = _referenced_benches(text)
        for stem in _bench_names_on_disk():
            assert stem in documented, f"{stem} missing from DESIGN.md"


class TestExamplesListedInReadme:
    def test_every_example_listed(self):
        text = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in text, f"{example.name} missing from README"


class TestObservabilityDocumented:
    """README/TUTORIAL must document the tracing flags the CLI exposes."""

    @pytest.mark.parametrize("doc", ["README.md", "docs/TUTORIAL.md"])
    def test_docs_mention_trace_flag_and_report(self, doc):
        text = (ROOT / doc).read_text()
        for needle in ("--trace", "obs-report", "repro.obs"):
            assert needle in text, f"{doc} does not document {needle}"

    def test_every_experiment_subcommand_accepts_trace_and_quick(self):
        from repro.cli import _COMMANDS, build_parser

        parser = build_parser()
        for name in list(_COMMANDS) + ["all"]:
            args = parser.parse_args([name])
            assert hasattr(args, "trace"), f"{name} lacks --trace"
            assert hasattr(args, "quick"), f"{name} lacks --quick"

    def test_obs_report_subcommand_exists(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["obs-report", "some.jsonl"])
        assert args.experiment == "obs-report"
        assert args.trace == "some.jsonl"
        assert args.diff is None


class TestDaemonDocumented:
    """The always-on daemon and its load generator must stay documented."""

    @pytest.mark.parametrize("doc", ["README.md", "docs/TUTORIAL.md", "DESIGN.md"])
    def test_docs_cover_daemon_and_loadgen(self, doc):
        text = (ROOT / doc).read_text()
        for needle in ("SchedulingDaemon", "MicroBatcher", "loadgen",
                       "serve --smoke", "bench_service_daemon"):
            assert needle in text, f"{doc} does not document {needle}"

    def test_serve_subcommand_exists(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--smoke"])
        assert args.experiment == "serve"
        assert args.smoke is True
        assert args.queue_capacity == 256
        assert hasattr(args, "trace") and hasattr(args, "workers")


class TestArenaDocumented:
    """The scheduler arena must stay documented wherever schedulers are."""

    @pytest.mark.parametrize("doc", ["README.md", "docs/TUTORIAL.md", "DESIGN.md"])
    def test_docs_cover_arena(self, doc):
        text = (ROOT / doc).read_text()
        for needle in ("repro.arena", "bench_arena_regret", "verifier",
                       "exhaustive oracle"):
            assert needle in text, f"{doc} does not document {needle}"

    @pytest.mark.parametrize("doc", ["README.md", "docs/TUTORIAL.md"])
    def test_walkthrough_covers_every_action(self, doc):
        text = (ROOT / doc).read_text()
        for needle in ("arena generate", "arena score", "arena verify",
                       "arena report", "arena --smoke"):
            assert needle in text, f"{doc} does not document {needle}"

    def test_design_states_verifier_independence(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Independence is the design" in text
        assert "repro.arena.instance/v1" in text

    def test_arena_subcommand_exists(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["arena", "--smoke"])
        assert args.experiment == "arena"
        assert args.smoke is True
        assert hasattr(args, "trace") and hasattr(args, "quick")


class TestSoloVectorDocumented:
    """The unified vectorised decision core and its kill switch."""

    @pytest.mark.parametrize("doc", ["README.md", "docs/TUTORIAL.md", "DESIGN.md"])
    def test_docs_cover_vectorised_solo_decision(self, doc):
        text = (ROOT / doc).read_text()
        for needle in ("REPRO_NO_SOLO_VECTOR", "repro.core.sweep",
                       "bench_solo_decision"):
            assert needle in text, f"{doc} does not document {needle}"

    def test_readme_names_the_counters_and_suite(self):
        text = (ROOT / "README.md").read_text()
        for needle in ("service.solo_vectorised", "service.solo_scalar",
                       "test_solo_vector_equivalence"):
            assert needle in text, f"README does not document {needle}"

    def test_gate_flags_exist(self):
        from repro.util import perf

        assert hasattr(perf, "solo_vector")
        assert hasattr(perf, "solo_vector_enabled")


class TestReserveDocumented:
    """The reservation layer must stay documented wherever it is used."""

    @pytest.mark.parametrize("doc", ["README.md", "docs/TUTORIAL.md", "DESIGN.md"])
    def test_docs_cover_the_reservation_layer(self, doc):
        text = (ROOT / doc).read_text()
        for needle in ("ReservationRequest", "ReservationLedger",
                       "repro.reserve", "reserve --smoke",
                       "bench_request_repair"):
            assert needle in text, f"{doc} does not document {needle}"

    @pytest.mark.parametrize("doc", ["README.md", "docs/TUTORIAL.md"])
    def test_walkthrough_covers_every_action(self, doc):
        text = (ROOT / doc).read_text()
        for needle in ("reserve submit", "reserve plan", "reserve repair",
                       "reserve report"):
            assert needle in text, f"{doc} does not document {needle}"

    def test_design_names_the_repair_ladder(self):
        text = (ROOT / "DESIGN.md").read_text()
        for needle in ("shift-within-window", "shrink-toward-min",
                       "re-expand", "bump-by-priority"):
            assert needle in text, f"DESIGN.md does not name {needle}"

    def test_reserve_subcommand_exists(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["reserve", "--smoke"])
        assert args.experiment == "reserve"
        assert args.smoke is True
        assert hasattr(args, "pool") and hasattr(args, "invalidate")


class TestModulesReferencedExist:
    @pytest.mark.parametrize("doc", ["DESIGN.md", "docs/PAPER_MAP.md"])
    def test_repro_module_paths_resolve(self, doc):
        import importlib

        text = (ROOT / doc).read_text()
        modules = set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text))
        assert modules, f"no module references found in {doc}?"
        for dotted in sorted(modules):
            parts = dotted.split(".")
            # Try importing the longest importable prefix; the tail may be
            # an attribute (class/function).
            for cut in range(len(parts), 0, -1):
                try:
                    mod = importlib.import_module(".".join(parts[:cut]))
                    break
                except ImportError:
                    continue
            else:
                pytest.fail(f"{doc}: cannot import any prefix of {dotted}")
            for attr in parts[cut:]:
                assert hasattr(mod, attr), f"{doc}: {dotted} has no {attr}"
                mod = getattr(mod, attr)

"""Tests for hosts, the memory model and contention conversions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.contention import (
    availability_from_load,
    effective_rate,
    load_from_availability,
    timeshared_slowdown,
)
from repro.sim.host import Host
from repro.sim.load import ConstantLoad, TraceLoad
from repro.sim.memory import MemoryModel


class TestMemoryModel:
    def test_available(self):
        m = MemoryModel(128.0, 8.0)
        assert m.available_mb == 120.0

    def test_fits(self):
        m = MemoryModel(128.0, 8.0)
        assert m.fits(120.0)
        assert not m.fits(120.1)

    def test_no_slowdown_in_core(self):
        m = MemoryModel(128.0, 8.0, page_penalty=40.0)
        assert m.slowdown(0.0) == 1.0
        assert m.slowdown(120.0) == 1.0

    def test_slowdown_grows_with_spill(self):
        m = MemoryModel(128.0, 8.0, page_penalty=40.0)
        s1 = m.slowdown(150.0)
        s2 = m.slowdown(300.0)
        assert 1.0 < s1 < s2 < 41.0

    def test_slowdown_asymptote(self):
        m = MemoryModel(100.0, 0.0, page_penalty=40.0)
        assert m.slowdown(1e9) == pytest.approx(41.0, rel=1e-3)

    def test_reserve_exceeding_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(64.0, 64.0)

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_property_slowdown_at_least_one(self, footprint):
        m = MemoryModel(128.0, 8.0)
        assert m.slowdown(footprint) >= 1.0


class TestContention:
    def test_slowdown(self):
        assert timeshared_slowdown(0) == 1.0
        assert timeshared_slowdown(3) == 4.0

    def test_availability_roundtrip(self):
        for q in (0.0, 0.5, 2.0, 10.0):
            assert load_from_availability(availability_from_load(q)) == pytest.approx(q)

    def test_effective_rate(self):
        assert effective_rate(100.0, 0.25) == 25.0

    def test_effective_rate_bad_availability(self):
        with pytest.raises(ValueError):
            effective_rate(100.0, 1.5)


class TestHost:
    def make(self, speed=50.0, avail=1.0, mem=MemoryModel(128.0, 8.0)):
        return Host("h", speed_mflops=speed, memory=mem, load=ConstantLoad(avail))

    def test_effective_speed_scales_with_availability(self):
        h = self.make(speed=100.0, avail=0.5)
        assert h.effective_speed(0.0) == 50.0

    def test_effective_speed_with_paging(self):
        mem = MemoryModel(100.0, 0.0, page_penalty=9.0)
        h = self.make(speed=100.0, mem=mem)
        # Footprint of 200 MB: spill fraction 0.5 -> slowdown 5.5.
        assert h.effective_speed(0.0, footprint_mb=200.0) == pytest.approx(100.0 / 5.5)

    def test_time_to_compute_constant_load(self):
        h = self.make(speed=10.0)
        assert h.time_to_compute(100.0) == pytest.approx(10.0)

    def test_time_to_compute_zero_work(self):
        assert self.make().time_to_compute(0.0) == 0.0

    def test_time_to_compute_integrates_epochs(self):
        # First 10 s at 100% of 10 MFLOP/s, then 50%: 150 MFLOP should take
        # 10 s (100 MFLOP) + 10 s (50 MFLOP) = 20 s.
        load = TraceLoad([1.0, 0.5, 0.5, 0.5], dt=10.0)
        h = Host("h", speed_mflops=10.0, load=load)
        assert h.time_to_compute(150.0) == pytest.approx(20.0)

    def test_time_to_compute_skips_dead_epochs(self):
        load = TraceLoad([0.0, 1.0], dt=10.0)
        h = Host("h", speed_mflops=10.0, load=load)
        # Epoch 0 delivers nothing; work finishes 5 s into epoch 1.
        assert h.time_to_compute(50.0) == pytest.approx(15.0)

    def test_time_to_compute_respects_start_time(self):
        load = TraceLoad([1.0, 0.1], dt=10.0)
        h = Host("h", speed_mflops=10.0, load=load)
        fast = h.time_to_compute(50.0, t0=0.0)
        slow = h.time_to_compute(50.0, t0=10.0)
        assert slow > fast

    def test_seconds_per_mflop_infinite_when_dead(self):
        h = Host("h", speed_mflops=10.0, load=ConstantLoad(0.0))
        assert h.seconds_per_mflop(0.0) == float("inf")

    def test_mean_effective_speed(self):
        load = TraceLoad([1.0, 0.0], dt=10.0)
        h = Host("h", speed_mflops=10.0, load=load)
        assert h.mean_effective_speed(0.0, 20.0) == pytest.approx(5.0)

    def test_name_required(self):
        with pytest.raises(ValueError):
            Host("", speed_mflops=10.0)

    @given(
        work=st.floats(min_value=0.1, max_value=1e4),
        avail=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_property_time_inverse_to_availability(self, work, avail):
        base = Host("h", speed_mflops=20.0, load=ConstantLoad(1.0)).time_to_compute(work)
        loaded = Host("h", speed_mflops=20.0, load=ConstantLoad(avail)).time_to_compute(work)
        assert loaded == pytest.approx(base / avail, rel=1e-9)

"""Tests for repro.util.stats."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    OnlineStats,
    confidence_interval,
    geometric_mean,
    mean_absolute_error,
    mean_ci,
    mean_squared_error,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.min == s.max == 5.0

    def test_matches_numpy(self):
        data = [1.5, 2.0, -3.0, 4.25, 0.0, 7.5]
        s = OnlineStats()
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.std == pytest.approx(np.std(data, ddof=1))
        assert s.min == min(data)
        assert s.max == max(data)

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_property_matches_numpy(self, data):
        s = OnlineStats()
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-9)
        assert s.variance == pytest.approx(np.var(data, ddof=1), rel=1e-7, abs=1e-7)


class TestConfidenceInterval:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_single_value_collapses(self):
        lo, hi = confidence_interval([3.0])
        assert lo == hi == 3.0

    def test_contains_mean(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = confidence_interval(data)
        assert lo < 3.0 < hi

    def test_higher_level_wider(self):
        data = list(range(20))
        lo90, hi90 = confidence_interval(data, 0.90)
        lo99, hi99 = confidence_interval(data, 0.99)
        assert hi99 - lo99 > hi90 - lo90

    def test_nonstandard_level(self):
        data = list(range(10))
        lo, hi = confidence_interval(data, 0.5)
        assert lo < np.mean(data) < hi


class TestMeanCI:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_single_sample_collapses(self):
        ci = mean_ci([3.0])
        assert ci.mean == ci.lo == ci.hi == 3.0
        assert ci.n == 1
        assert ci.half_width == 0.0

    def test_zero_variance_collapses(self):
        ci = mean_ci([2.0, 2.0, 2.0])
        assert ci.lo == ci.hi == 2.0
        assert ci.n == 3

    def test_normal_matches_confidence_interval(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        ci = mean_ci(data)
        assert (ci.lo, ci.hi) == confidence_interval(data)
        assert ci.lo < ci.mean < ci.hi
        assert ci.method == "normal"

    def test_bootstrap_seeded_reproducible(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0]
        a = mean_ci(data, method="bootstrap", seed=4)
        b = mean_ci(data, method="bootstrap", seed=4)
        assert a == b
        c = mean_ci(data, method="bootstrap", seed=5)
        assert (c.lo, c.hi) != (a.lo, a.hi)
        assert a.lo <= a.mean <= a.hi

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            mean_ci([1.0, 2.0], level=1.5)

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            mean_ci([1.0, 2.0], method="jackknife")

    def test_str_renders(self):
        assert "±" in str(mean_ci([1.0, 2.0, 3.0]))

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_property_interval_brackets_mean(self, data):
        ci = mean_ci(data)
        assert ci.lo <= ci.mean <= ci.hi
        assert ci.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-9)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, data):
        g = geometric_mean(data)
        assert min(data) - 1e-9 <= g <= max(data) + 1e-9


class TestErrors:
    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(1.0)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_perfect_prediction(self):
        assert mean_squared_error([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.min == 1.0
        assert s.max == 4.0
        assert s.median == pytest.approx(2.5)

    def test_single(self):
        s = summarize([7.0])
        assert s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_renders(self):
        assert "mean=" in str(summarize([1.0, 2.0]))

"""Tests for the Jacobi cost model and the AppLeS/baseline planners."""

from __future__ import annotations

import pytest

from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.userspec import UserSpecification
from repro.jacobi.apples import (
    BlockedPlanner,
    JacobiPlanner,
    StaticStripPlanner,
    UniformStripPlanner,
    locality_order,
    make_jacobi_agent,
)
from repro.jacobi.cost import StripCostModel, strip_comm_seconds
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.partition import uniform_strip


def _info(testbed, nws=None, problem=None):
    problem = problem or JacobiProblem(n=1000, iterations=10)
    return InformationPool(
        pool=ResourcePool(testbed.topology, nws), hat=jacobi_hat(problem)
    ), problem


class TestStripCostModel:
    def test_point_rate_nominal(self, testbed):
        info, problem = _info(testbed)
        model = StripCostModel(info.pool, problem)
        # alpha1: 45 MFLOP/s at 5e-6 MFLOP/point = 9e6 points/s.
        assert model.point_rate("alpha1") == pytest.approx(9e6)

    def test_point_rate_dynamic_lower(self, testbed, warmed_nws):
        _, problem = _info(testbed)
        nominal = StripCostModel(ResourcePool(testbed.topology), problem)
        dynamic = StripCostModel(ResourcePool(testbed.topology, warmed_nws), problem)
        assert dynamic.point_rate("rs6000a") < nominal.point_rate("rs6000a")

    def test_comm_costs_ends_cheaper(self, testbed):
        info, problem = _info(testbed)
        model = StripCostModel(info.pool, problem)
        costs = model.comm_costs(["alpha1", "alpha2", "alpha3"])
        assert costs[1] > costs[0]
        assert costs[1] > costs[2]

    def test_comm_costs_cross_site_expensive(self, testbed):
        info, problem = _info(testbed)
        cheap = strip_comm_seconds(info.pool, ["alpha1", "alpha2"], problem)
        pricey = strip_comm_seconds(info.pool, ["alpha1", "sparc2"], problem)
        assert pricey[0] > cheap[0]

    def test_memory_penalty_in_point_time(self, testbed):
        info, problem = _info(testbed, problem=JacobiProblem(n=4000, iterations=1))
        model = StripCostModel(info.pool, problem, account_memory=True)
        # sparc2 has 26 MB available; 4000x4000/2 points = 128 MB footprint.
        in_core = model.point_time("sparc2", area=1e5)
        spilled = model.point_time("sparc2", area=8e6)
        assert spilled > in_core * 2

    def test_execution_time_scales_with_iterations(self, testbed):
        info, problem = _info(testbed)
        model = StripCostModel(info.pool, problem)
        part = uniform_strip(problem.n, ["alpha1", "alpha2"])
        assert model.execution_time(part) == pytest.approx(
            model.step_time(part) * problem.iterations
        )

    def test_step_time_is_max(self, testbed):
        info, problem = _info(testbed)
        model = StripCostModel(info.pool, problem)
        part = uniform_strip(problem.n, ["sparc2", "alpha1"])
        t = model.step_time(part)
        assert t == pytest.approx(
            max(model.machine_time(part, m) for m in part.machines)
        )


class TestLocalityOrder:
    def test_groups_by_segment(self, testbed):
        pool = ResourcePool(testbed.topology)
        order = locality_order(pool, testbed.host_names)
        # Machines sharing a segment must be adjacent in the order.
        def positions(names):
            return [order.index(n) for n in names]

        for group in (["sparc2", "sparc10"], ["rs6000a", "rs6000b"],
                      ["alpha1", "alpha2", "alpha3", "alpha4"]):
            pos = sorted(positions(group))
            assert pos == list(range(pos[0], pos[0] + len(group)))


class TestJacobiPlanner:
    def test_plan_covers_grid(self, testbed, warmed_nws):
        info, problem = _info(testbed, warmed_nws)
        sched = JacobiPlanner(problem).plan(testbed.host_names, info)
        assert sched is not None
        assert sched.total_work_units == problem.total_points
        assert sched.decomposition == "apples-strip"

    def test_loaded_machine_gets_less(self, testbed, warmed_nws):
        info, problem = _info(testbed, warmed_nws)
        sched = JacobiPlanner(problem).plan(["rs6000a", "rs6000b"], info)
        # Same nominal speed; rs6000a is far more loaded (mean 0.30 vs 0.70).
        a = sched.allocation_for("rs6000a").work_units
        b = sched.allocation_for("rs6000b").work_units
        assert a < b

    def test_memory_capacity_respected(self, testbed_sp2, warmed_nws_sp2):
        problem = JacobiProblem(n=4200, iterations=1)
        info, _ = _info(testbed_sp2, warmed_nws_sp2, problem)
        sched = JacobiPlanner(problem).plan(list(testbed_sp2.host_names), info)
        assert sched is not None
        for alloc in sched.allocations:
            cap = info.pool.machine_info(alloc.machine).memory_available_mb
            assert alloc.footprint_mb <= cap + 1e-6

    def test_infeasible_memory_returns_none(self, casa):
        # A problem too big for the CASA pair's memory with memory
        # accounting on.
        problem = JacobiProblem(n=30_000, iterations=1)
        info = InformationPool(
            pool=ResourcePool(casa.topology), hat=jacobi_hat(problem)
        )
        assert JacobiPlanner(problem).plan(["c90", "paragon"], info) is None

    def test_metadata_partition_consistent(self, testbed, warmed_nws):
        info, problem = _info(testbed, warmed_nws)
        sched = JacobiPlanner(problem).plan(["alpha1", "alpha2", "alpha3"], info)
        part = sched.metadata["partition"]
        assert part.n == problem.n
        assert set(part.machines) == set(a.machine for a in sched.allocations)


class TestBaselinePlanners:
    def test_static_strip_uses_nominal_speeds(self, testbed, warmed_nws):
        info, problem = _info(testbed, warmed_nws)
        sched = StaticStripPlanner(problem).plan(["rs6000a", "rs6000b"], info)
        # Nominal speeds equal -> equal areas, despite rs6000a's load.
        a = sched.allocation_for("rs6000a").work_units
        b = sched.allocation_for("rs6000b").work_units
        assert a == pytest.approx(b)

    def test_uniform_strip_equal_areas(self, testbed):
        info, problem = _info(testbed)
        sched = UniformStripPlanner(problem).plan(["alpha1", "sparc2"], info)
        a = sched.allocation_for("alpha1").work_units
        b = sched.allocation_for("sparc2").work_units
        assert a == pytest.approx(b)

    def test_blocked_partition_attached(self, testbed):
        info, problem = _info(testbed)
        sched = BlockedPlanner(problem).plan(list(testbed.host_names), info)
        part = sched.metadata["partition"]
        assert (part.pr, part.pc) == (2, 4)
        assert sched.total_work_units == problem.total_points

    def test_blocked_comm_between_tile_neighbors(self, testbed):
        info, problem = _info(testbed)
        sched = BlockedPlanner(problem).plan(list(testbed.host_names), info)
        assert all(a.comm_bytes for a in sched.allocations)


class TestMakeJacobiAgent:
    def test_agent_schedules(self, testbed, warmed_nws):
        agent = make_jacobi_agent(
            testbed, JacobiProblem(n=800, iterations=5), warmed_nws
        )
        decision = agent.schedule()
        assert decision.best.decomposition == "apples-strip"
        assert decision.candidates_considered == 255

    def test_userspec_threaded(self, testbed, warmed_nws):
        us = UserSpecification(excluded_machines=frozenset({"sparc2"}))
        agent = make_jacobi_agent(
            testbed, JacobiProblem(n=800, iterations=5), warmed_nws, userspec=us
        )
        decision = agent.schedule()
        for ev in decision.evaluations:
            assert "sparc2" not in ev.resource_set

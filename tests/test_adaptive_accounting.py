"""Accounting tests for AdaptiveJacobiRunner results.

The adaptive ablation reports ``migration_time``, ``chunks`` and the
:class:`RescheduleEvent` log; these tests pin down that accounting on a
quiet run (no reschedules) and on a run where rescheduling is forced.
"""

from __future__ import annotations

import math

import pytest

import repro.jacobi.adaptive as adaptive_mod
from repro.jacobi.adaptive import AdaptiveJacobiRunner, RescheduleEvent
from repro.jacobi.grid import JacobiProblem
from repro.nws.service import NetworkWeatherService
from repro.obs.trace import tracing


def make_runner(testbed, iterations=50, check_every=20, **kwargs):
    nws = NetworkWeatherService.for_testbed(testbed, seed=5)
    nws.warmup(300.0)
    problem = JacobiProblem(n=600, iterations=iterations)
    return AdaptiveJacobiRunner(testbed, problem, nws,
                                check_every=check_every, **kwargs)


def force_reschedules(runner, monkeypatch, migration_s=3.5):
    """Make every rescheduling check accept.

    The keep-prediction (first ``_remaining_prediction`` call per check)
    is inflated 100x, so the candidate always clears ``min_gain_fraction``;
    the migration-cost model is pinned to a known constant so its
    propagation into the accounting is exactly checkable.
    """
    calls = {"n": 0}
    orig = runner._remaining_prediction

    def fake(schedule, remaining):
        calls["n"] += 1
        value = orig(schedule, remaining)
        return value * 100.0 if calls["n"] % 2 == 1 else value

    monkeypatch.setattr(runner, "_remaining_prediction", fake)
    monkeypatch.setattr(adaptive_mod, "migration_cost_s",
                        lambda *a, **k: migration_s)


class TestQuietRun:
    def test_chunks_and_zero_migration(self, testbed):
        runner = make_runner(testbed, iterations=50, check_every=20)
        result = runner.run(t0=300.0)
        assert result.iterations == 50
        assert result.chunks == math.ceil(50 / 20) == 3
        assert result.reschedules == []
        assert result.reschedule_count == 0
        assert result.migration_time == 0.0
        assert result.total_time > 0.0

    def test_short_run_single_chunk(self, testbed):
        runner = make_runner(testbed, iterations=10, check_every=20)
        result = runner.run(t0=300.0)
        assert result.chunks == 1
        assert result.reschedules == []


class TestForcedReschedules:
    def test_event_fields_and_migration_accounting(self, testbed, monkeypatch):
        runner = make_runner(testbed, iterations=50, check_every=20)
        force_reschedules(runner, monkeypatch, migration_s=3.5)
        result = runner.run(t0=300.0)

        # Checks fire after iterations 20 and 40 — never after the last chunk.
        assert result.chunks == 3
        assert result.reschedule_count == 2
        assert result.migration_time == pytest.approx(2 * 3.5)

        machines = set(runner.testbed.topology.hosts)
        for event, after in zip(result.reschedules, (20, 40)):
            assert isinstance(event, RescheduleEvent)
            assert event.after_iteration == after
            assert event.migration_s == pytest.approx(3.5)
            assert event.predicted_gain_s > 0.0
            assert event.time >= 300.0
            assert set(event.old_machines) <= machines
            assert set(event.new_machines) <= machines
        # Events are logged in simulated-time order.
        times = [e.time for e in result.reschedules]
        assert times == sorted(times)

    def test_migration_counts_toward_total_time(self, testbed, monkeypatch):
        quiet = make_runner(testbed, iterations=50, check_every=20)
        quiet_total = quiet.run(t0=300.0).total_time

        forced = make_runner(testbed, iterations=50, check_every=20)
        force_reschedules(forced, monkeypatch, migration_s=50.0)
        result = forced.run(t0=300.0)
        # Every accepted migration costs 50 s, which must show up both in
        # the migration accounting and in the run's wall clock (50 s of
        # pure migration dominates any plan delta at this size).  The
        # second check may legitimately reject: with only 10 iterations
        # left even the inflated gain cannot clear a 50 s migration.
        assert result.reschedule_count >= 1
        assert result.migration_time == pytest.approx(50.0 * result.reschedule_count)
        assert result.total_time >= quiet_total + 50.0 * result.reschedule_count - 5.0

    def test_reschedule_event_traced(self, testbed, monkeypatch):
        runner = make_runner(testbed, iterations=50, check_every=20)
        force_reschedules(runner, monkeypatch, migration_s=3.5)
        with tracing() as tr:
            result = runner.run(t0=300.0)
        events = [r for r in tr.records()
                  if r["kind"] == "event" and r["name"] == "core.reschedule"]
        assert len(events) == result.reschedule_count == 2
        for ev, logged in zip(events, result.reschedules):
            assert ev["layer"] == "core"
            assert ev["clock"] == "sim"
            assert ev["fields"]["migration_s"] == pytest.approx(logged.migration_s)
            assert ev["fields"]["after_iteration"] == logged.after_iteration
            assert ev["fields"]["repaired"] == logged.repaired
        metrics = tr.metrics.as_dict()
        assert metrics["core.reschedules"]["value"] == 2


class TestRepairedAccounting:
    """The ``repaired`` flag must follow the candidate-generation path."""

    def test_default_events_are_repaired(self, testbed, monkeypatch):
        runner = make_runner(testbed, iterations=50, check_every=20)
        assert runner.repair and runner._sweep is not None
        force_reschedules(runner, monkeypatch, migration_s=3.5)
        result = runner.run(t0=300.0)
        assert result.reschedule_count == 2
        assert all(e.repaired for e in result.reschedules)
        assert result.repaired_count == result.reschedule_count == 2

    def test_repair_off_events_are_blueprint(self, testbed, monkeypatch):
        runner = make_runner(testbed, iterations=50, check_every=20,
                             repair=False)
        assert not runner.repair and runner._sweep is None
        force_reschedules(runner, monkeypatch, migration_s=3.5)
        result = runner.run(t0=300.0)
        assert result.reschedule_count == 2
        assert not any(e.repaired for e in result.reschedules)
        assert result.repaired_count == 0

    @pytest.mark.parametrize("repair", [True, False])
    def test_keep_then_move_call_order(self, testbed, monkeypatch, repair):
        """Both paths make exactly two prediction calls per check, keep
        first — the contract ``force_reschedules`` (and the ablation's
        accounting) relies on."""
        runner = make_runner(testbed, iterations=50, check_every=20,
                             repair=repair)
        calls = []
        orig = runner._remaining_prediction

        def spy(schedule, remaining):
            calls.append(schedule.resource_set)
            return orig(schedule, remaining)

        monkeypatch.setattr(runner, "_remaining_prediction", spy)
        runner.run(t0=300.0)
        # Two checks (after iterations 20 and 40), two calls each.
        assert len(calls) == 4

    def test_repaired_flag_defaults_false(self):
        event = RescheduleEvent(
            time=1.0, after_iteration=10, old_machines=("a",),
            new_machines=("b",), migration_s=0.5, predicted_gain_s=2.0,
        )
        assert event.repaired is False

    def test_quiet_run_repaired_count_zero(self, testbed):
        result = make_runner(testbed, iterations=50, check_every=20).run(t0=300.0)
        assert result.repaired_count == 0

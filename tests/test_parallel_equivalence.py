"""Serial vs parallel equivalence: the runner's determinism contract.

Every experiment driver must produce *bit-identical* results regardless of
the worker count — tasks rebuild their worlds from explicit seeds, so which
process ran a trial can never matter.  These tests run small-scale
configurations both ways and require exact equality (no ``approx``).
"""

from __future__ import annotations

import dataclasses

from repro.experiments.ablation import run_selection_ablation
from repro.experiments.fig5 import run_fig5
from repro.experiments.nws_exp import run_nws_comparison
from repro.sim.warmcache import clear_warm_cache


class TestFig5Equivalence:
    def test_rows_and_table_identical(self):
        kwargs = dict(sizes=(1000, 1200), iterations=8, repeats=2)
        serial = run_fig5(**kwargs, workers=1)
        clear_warm_cache()
        parallel = run_fig5(**kwargs, workers=4)
        assert [dataclasses.astuple(r) for r in serial.rows] == [
            dataclasses.astuple(r) for r in parallel.rows
        ]
        assert serial.table().render() == parallel.table().render()


class TestSelectionAblationEquivalence:
    def test_result_identical(self):
        serial = run_selection_ablation(n=1000, iterations=8, workers=1)
        clear_warm_cache()
        parallel = run_selection_ablation(n=1000, iterations=8, workers=2)
        assert dataclasses.astuple(serial) == dataclasses.astuple(parallel)


class TestNwsComparisonEquivalence:
    def test_mse_and_order_identical(self):
        serial = run_nws_comparison(nsamples=120, workers=1)
        parallel = run_nws_comparison(nsamples=120, workers=4)
        assert serial.mse == parallel.mse
        # Insertion order matters to the rendered table; assert it too.
        assert list(serial.mse) == list(parallel.mse)
        for process in serial.mse:
            assert list(serial.mse[process]) == list(parallel.mse[process])

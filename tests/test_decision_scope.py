"""Regression tests for per-request decision scoping.

The bug class under guard: a :class:`~repro.core.infopool.DecisionCache`
surviving from one service request into the next.  Rates, cost models and
locality orders memoised for a decision at ``t1`` must never answer a
decision at ``t2`` — the fix gives every request an explicit
``decision_scope`` whose cache is dropped (and any enclosing scope's cache
restored) on exit.
"""

from __future__ import annotations

import pytest

from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws import NetworkWeatherService
from repro.service import DecisionRequest, SchedulingService
from repro.sim import sdsc_pcl_testbed
from repro.util import perf


def _world(tb_seed=1996, nws_seed=7):
    testbed = sdsc_pcl_testbed(seed=tb_seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=nws_seed)
    return testbed, nws


def _fingerprint(decision):
    best = decision.best
    return (
        best.resource_set,
        best.predicted_time,
        decision.best_objective,
        [a.work_units for a in best.allocations],
    )


@pytest.mark.parametrize("fast", [True, False], ids=["fastpath", "reference"])
def test_back_to_back_decisions_see_fresh_information(fast):
    """One agent, two instants: the second decision must equal what a
    brand-new agent decides at that instant (no stale memo reuse)."""
    problem = JacobiProblem(n=900, iterations=60)
    testbed, nws = _world()
    with perf.fastpath(fast):
        agent = make_jacobi_agent(testbed, problem, nws)
        nws.advance_to(300.0)
        first = agent.schedule()
        nws.advance_to(1500.0)  # load has moved on
        second = agent.schedule()

    # Fresh worlds, fresh agents — the memoryless oracle.
    testbed2, nws2 = _world()
    with perf.fastpath(fast):
        nws2.advance_to(300.0)
        solo_first = make_jacobi_agent(testbed2, problem, nws2).schedule()
        nws2.advance_to(1500.0)
        solo_second = make_jacobi_agent(testbed2, problem, nws2).schedule()

    assert _fingerprint(first) == _fingerprint(solo_first)
    assert _fingerprint(second) == _fingerprint(solo_second)
    # The two instants genuinely differ — otherwise this test proves nothing.
    assert first.best.predicted_time != second.best.predicted_time


@pytest.mark.parametrize("fast", [True, False], ids=["fastpath", "reference"])
def test_service_batches_at_two_instants_match_fresh_worlds(fast):
    """The same service answering two instants back-to-back must agree
    with two single-instant services built from scratch."""
    problem = JacobiProblem(n=900, iterations=60)

    def _answers(batches):
        testbed, nws = _world()
        with perf.fastpath(fast):
            service = SchedulingService(testbed, nws)
            out = []
            for at in batches:
                out.extend(
                    service.decide([DecisionRequest(problem=problem, at=at)])
                )
            return out

    combined = _answers([300.0, 1500.0])
    alone_early = _answers([300.0])
    alone_late = _answers([1500.0])
    for got, want in zip(combined, alone_early + alone_late):
        assert got.machines == want.machines
        assert got.predicted_time == want.predicted_time
        assert got.best_objective == want.best_objective


def _info(testbed, nws):
    problem = JacobiProblem(n=600, iterations=10)
    return make_jacobi_agent(testbed, problem, nws).info


def test_stale_snapshot_rejected():
    testbed, nws = _world()
    info = _info(testbed, nws)
    nws.advance_to(100.0)
    snapshot = info.pool.snapshot()
    nws.advance_to(200.0)  # epoch moves; the snapshot's floats are history
    with pytest.raises(ValueError, match="stale"):
        info.begin_decision(snapshot)


def test_decision_scope_drops_cache_and_restores_outer():
    testbed, nws = _world()
    info = _info(testbed, nws)

    assert info.decision_cache is None
    with info.decision_scope() as outer:
        outer.memo["k"] = "outer-value"
        with info.decision_scope() as inner:
            assert info.decision_cache is inner
            assert "k" not in inner.memo  # fresh memo per scope
            inner.memo["k"] = "inner-value"
        # The enclosing decision's cache comes back untouched.
        assert info.decision_cache is outer
        assert info.decision_cache.memo["k"] == "outer-value"
    assert info.decision_cache is None


def test_decision_scope_restores_on_error():
    testbed, nws = _world()
    info = _info(testbed, nws)
    with pytest.raises(RuntimeError, match="boom"):
        with info.decision_scope():
            raise RuntimeError("boom")
    assert info.decision_cache is None

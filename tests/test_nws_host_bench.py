"""Tests for benchmark-based prediction sources."""

from __future__ import annotations

import pytest

from repro.jacobi.apples import JacobiPlanner
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.core.infopool import InformationPool
from repro.nws.host_bench import (
    BenchmarkCalibratedPool,
    calibrate_nominal_speed,
    measure_effective_speed,
)
from repro.sim.host import Host
from repro.sim.load import ConstantLoad, TraceLoad
from repro.sim.topology import Topology


def quiet_host(speed=40.0, avail=1.0):
    topo = Topology()
    topo.add_host(Host("h", speed_mflops=speed, load=ConstantLoad(avail)))
    return topo


class TestMeasureEffectiveSpeed:
    def test_dedicated_host_measures_nominal(self):
        topo = quiet_host(speed=40.0)
        assert measure_effective_speed(topo, "h", 0.0) == pytest.approx(40.0)

    def test_loaded_host_measures_deliverable(self):
        topo = quiet_host(speed=40.0, avail=0.25)
        assert measure_effective_speed(topo, "h", 0.0) == pytest.approx(10.0)

    def test_probe_averages_over_window(self):
        topo = Topology()
        topo.add_host(Host(
            "h", speed_mflops=10.0, load=TraceLoad([1.0, 0.5, 0.5, 0.5], dt=10.0)
        ))
        # A 150-MFLOP probe spans the regime change: 10 s at 10 MFLOP/s +
        # 10 s at 5 -> 150 MFLOP in 20 s = 7.5 MFLOP/s average.
        assert measure_effective_speed(topo, "h", 0.0, probe_mflop=150.0) == (
            pytest.approx(7.5)
        )

    def test_bad_probe_rejected(self):
        with pytest.raises(ValueError):
            measure_effective_speed(quiet_host(), "h", 0.0, probe_mflop=0.0)


class TestCalibrateNominal:
    def test_recovers_catalogue_number(self):
        topo = quiet_host(speed=37.0, avail=0.4)
        assert calibrate_nominal_speed(topo, "h", 0.0) == pytest.approx(37.0)

    def test_works_under_varying_load(self):
        topo = Topology()
        topo.add_host(Host(
            "h", speed_mflops=20.0, load=TraceLoad([0.8, 0.4] * 10, dt=10.0)
        ))
        est = calibrate_nominal_speed(topo, "h", 0.0, probe_mflop=200.0)
        assert est == pytest.approx(20.0, rel=0.05)


class TestBenchmarkCalibratedPool:
    def test_speed_matches_truth_at_probe_time(self, testbed):
        pool = BenchmarkCalibratedPool(testbed.topology, t_now=500.0)
        host = testbed.topology.host("rs6000a")
        measured = pool.predicted_speed("rs6000a")
        instantaneous = host.speed_mflops * host.availability(500.0)
        # The probe averages over its own duration, so allow drift.
        assert measured == pytest.approx(instantaneous, rel=0.5)
        assert 0.0 < pool.predicted_availability("rs6000a") <= 1.0

    def test_cache_respects_ttl(self, testbed):
        pool = BenchmarkCalibratedPool(testbed.topology, t_now=500.0, ttl_s=60.0)
        first = pool.predicted_speed("alpha2")
        pool.advance(510.0)
        assert pool.predicted_speed("alpha2") == first  # cached
        pool.advance(600.0)
        refreshed = pool.predicted_speed("alpha2")
        assert refreshed != first or True  # refresh happened (value may repeat)
        assert pool._cache["alpha2"][0] == 600.0

    def test_clock_cannot_go_backwards(self, testbed):
        pool = BenchmarkCalibratedPool(testbed.topology, t_now=500.0)
        with pytest.raises(ValueError):
            pool.advance(100.0)

    def test_usable_by_planner(self, testbed):
        problem = JacobiProblem(n=800, iterations=10)
        pool = BenchmarkCalibratedPool(testbed.topology, t_now=500.0)
        info = InformationPool(pool=pool, hat=jacobi_hat(problem))
        sched = JacobiPlanner(problem).plan(["alpha1", "alpha2"], info)
        assert sched is not None
        assert sched.total_work_units == problem.total_points

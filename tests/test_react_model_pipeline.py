"""Tests for the 3D-REACT tasks, analytic model and pipeline simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.react.model import ReactPerformanceModel
from repro.react.pipeline import simulate_pipeline, simulate_single_site
from repro.react.tasks import ReactProblem, react_hat


def small_problem(**kw):
    defaults = dict(surface_functions=60, lhsf_mflop_per_sf=100.0,
                    logd_mflop_per_sf=500.0, bytes_per_sf=1e6)
    defaults.update(kw)
    return ReactProblem(**defaults)


def model_for(problem, lhsf_rate=50.0, logd_rate=250.0, bw=1e7, lat=0.001):
    return ReactPerformanceModel(
        problem, lhsf_rate_mflops=lhsf_rate, logd_rate_mflops=logd_rate,
        link_bandwidth_Bps=bw, link_latency_s=lat, convert=True,
    )


class TestReactProblem:
    def test_totals(self):
        p = small_problem()
        assert p.total_lhsf_mflop == pytest.approx(6000.0)
        assert p.total_logd_mflop == pytest.approx(60 * (500.0 + 150.0))

    def test_subdomain_count(self):
        p = small_problem()
        assert p.subdomain_count(20) == 3
        assert p.subdomain_count(7) == 9  # ceil(60/7)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            ReactProblem(pipeline_range=(0, 5))

    def test_hat_two_tasks(self):
        hat = react_hat(small_problem())
        assert hat.paradigm == "pipeline"
        assert hat.task("LHSF").can_run_on("c90")
        assert not hat.task("LHSF").implementations.get("alpha")
        assert hat.communication.pipeline_size_range == (5, 20)


class TestAnalyticModel:
    def test_stage_times_positive(self):
        m = model_for(small_problem())
        assert m.lhsf_stage(10) > 0
        assert m.transfer_stage(10) > 0
        assert m.logd_stage(10) > 0

    def test_conversion_overhead_applied(self):
        p = small_problem(conversion_overhead=0.5)
        with_conv = ReactPerformanceModel(p, 50.0, 250.0, 1e7, 0.0, convert=True)
        without = ReactPerformanceModel(p, 50.0, 250.0, 1e7, 0.0, convert=False)
        assert with_conv.transfer_stage(10) == pytest.approx(
            1.5 * without.transfer_stage(10)
        )

    def test_buffering_quadratic(self):
        p = small_problem(buffer_cost_s_per_sf_per_k=0.1)
        m = model_for(p)
        extra5 = m.logd_stage(5) - 5 * (650.0 / 250.0) - p.subdomain_startup_logd_s
        extra10 = m.logd_stage(10) - 10 * (650.0 / 250.0) - p.subdomain_startup_logd_s
        assert extra10 == pytest.approx(4 * extra5)

    def test_out_of_range_pipeline_size(self):
        m = model_for(small_problem())
        with pytest.raises(ValueError):
            m.estimate(2)
        with pytest.raises(ValueError):
            m.estimate(50)

    def test_sweep_covers_range(self):
        m = model_for(small_problem())
        ks = [e.pipeline_size for e in m.sweep()]
        assert ks == list(range(5, 21))

    def test_optimal_is_minimum(self):
        m = model_for(small_problem())
        sweep = m.sweep()
        best = m.optimal()
        assert best.makespan_s == min(e.makespan_s for e in sweep)

    def test_interior_optimum_with_default_calibration(self):
        # The paper-calibrated problem must have its optimum strictly
        # inside [5, 20] — the tradeoff of §2.3.
        p = ReactProblem()
        m = ReactPerformanceModel(p, 450.0, 2464.0, 1e8, 0.01)
        best = m.optimal()
        assert 5 < best.pipeline_size < 20

    def test_bottleneck_label(self):
        m = model_for(small_problem(), lhsf_rate=1.0)  # starve the producer
        assert m.estimate(10).bottleneck == "LHSF"

    def test_single_site_time(self):
        p = small_problem()
        t = ReactPerformanceModel.single_site_time(p, 10.0, 20.0)
        assert t == pytest.approx(p.total_lhsf_mflop / 10.0 + p.total_logd_mflop / 20.0)

    @given(k=st.integers(min_value=5, max_value=20))
    @settings(max_examples=16)
    def test_property_makespan_at_least_serial_bound(self, k):
        m = model_for(small_problem())
        est = m.estimate(k)
        # The pipeline can never beat the bottleneck stage's total work.
        p = m.problem
        lower = max(
            p.total_lhsf_mflop / m.lhsf_rate, p.total_logd_mflop / m.logd_rate
        )
        assert est.makespan_s >= lower


class TestPipelineSimulation:
    def test_simulation_close_to_model(self, casa):
        p = ReactProblem()
        sim = simulate_pipeline(casa.topology, p, "c90", "paragon", 10)
        m = ReactPerformanceModel(
            p, 1000.0 * 0.45, 3200.0 * 0.77,
            casa.topology.path_bandwidth("c90", "paragon"),
            casa.topology.path_latency("c90", "paragon"),
        )
        assert sim.makespan_s == pytest.approx(m.estimate(10).makespan_s, rel=0.1)

    def test_overlap_beats_serial(self, casa):
        p = ReactProblem()
        piped = simulate_pipeline(casa.topology, p, "c90", "paragon", 10).makespan_s
        serial = (
            simulate_single_site(casa.topology, p, "c90")
            + simulate_single_site(casa.topology, p, "paragon")
        ) / 2
        assert piped < serial / 2

    def test_paper_shape(self, casa):
        """The §2.3 claims: >=16 h alone on each machine, <5 h distributed."""
        p = ReactProblem()
        c90 = simulate_single_site(casa.topology, p, "c90")
        paragon = simulate_single_site(casa.topology, p, "paragon")
        piped = simulate_pipeline(casa.topology, p, "c90", "paragon", 10).makespan_s
        assert c90 >= 16 * 3600
        assert paragon >= 16 * 3600
        assert piped < 5 * 3600

    def test_small_pipeline_stalls_consumer(self, casa):
        p = ReactProblem()
        small = simulate_pipeline(casa.topology, p, "c90", "paragon", 5)
        large = simulate_pipeline(casa.topology, p, "c90", "paragon", 20)
        assert small.subdomains > large.subdomains

    def test_multiple_passes(self, casa):
        one = simulate_pipeline(casa.topology, ReactProblem(passes=1),
                                "c90", "paragon", 10).makespan_s
        two = simulate_pipeline(casa.topology, ReactProblem(passes=2),
                                "c90", "paragon", 10).makespan_s
        assert two == pytest.approx(2 * one, rel=0.05)

    def test_reverse_placement_worse(self, casa):
        p = ReactProblem()
        right = simulate_pipeline(casa.topology, p, "c90", "paragon", 10).makespan_s
        wrong = simulate_pipeline(casa.topology, p, "paragon", "c90", 10).makespan_s
        assert wrong > right

    def test_out_of_range_rejected(self, casa):
        with pytest.raises(ValueError):
            simulate_pipeline(casa.topology, ReactProblem(), "c90", "paragon", 3)

    def test_unsupported_arch_rejected(self, testbed):
        with pytest.raises(ValueError):
            simulate_single_site(testbed.topology, ReactProblem(), "alpha1")

    def test_busy_accounting(self, casa):
        r = simulate_pipeline(casa.topology, ReactProblem(), "c90", "paragon", 10)
        assert 0 < r.producer_busy_s <= r.makespan_s + 1e-6
        assert 0 < r.consumer_busy_s <= r.makespan_s + 1e-6
        assert r.consumer_stall_s >= 0.0

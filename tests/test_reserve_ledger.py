"""Reservation ledger: bookings, exact conflict detection, verification.

Conflicts here are checked against hand-built bookings over a tiny
hand-built arena instance, so every verdict is unambiguous: machine
overlap is pure interval arithmetic, per-booking feasibility is the
standalone arena verifier over the frozen instance, and
:func:`verify_ledger` layers the request constraints on top.
"""

from __future__ import annotations

import json

import pytest

from repro.arena import ArenaInstance, MachineState
from repro.jacobi.grid import JacobiProblem
from repro.reserve import (
    BOOKING_SCHEMA,
    Booking,
    ReservationLedger,
    ReservationRequest,
    load_bookings,
    save_bookings,
    verify_ledger,
)

_MACHINES = (
    MachineState(
        name="alpha", site="sdsc", arch="alpha", speed_mflops=100.0,
        memory_available_mb=64.0, availability=0.8, availability_error=0.1,
    ),
    MachineState(
        name="beta", site="sdsc", arch="alpha", speed_mflops=50.0,
        memory_available_mb=64.0, availability=0.9, availability_error=0.05,
    ),
)


def tiny_instance(instance_id: str = "tiny-000") -> ArenaInstance:
    inf = float("inf")
    return ArenaInstance(
        instance_id=instance_id,
        instance_class="reserve:test",
        world={"generator": "sdsc", "seed": 1, "nws_seed": 1, "warmup_s": 0.0,
               "n_hosts": 8, "n_segments": None},
        machines=_MACHINES,
        latency_s=((0.0, 0.001), (0.001, 0.0)),
        bandwidth_bps=((inf, 1e7), (1e7, inf)),
        problem={"n": 100, "iterations": 10, "flop_per_point": 1e-3,
                 "bytes_per_point": 8.0, "border_bytes_per_point": 8.0,
                 "sync_overhead_s": 0.001},
    )


def booking(
    booking_id: str,
    start: float,
    end: float,
    machines: tuple[str, ...] = ("alpha",),
    points: tuple[float, ...] | None = None,
    priority: int = 2,
    request_id: str = "r1",
    occurrence: int = 0,
) -> Booking:
    if points is None:
        # Work-conserving split of the tiny problem's 100x100 grid.
        share = 10000.0 / len(machines)
        points = tuple(share for _ in machines)
    return Booking(
        booking_id=booking_id,
        request_id=request_id,
        occurrence=occurrence,
        priority=priority,
        start=start,
        end=end,
        machines=machines,
        points=points,
        objective=1.0,
        instance=tiny_instance(),
    )


class TestBooking:
    def test_interval_and_duration(self):
        b = booking("b1", 100.0, 250.0)
        assert b.duration == 150.0
        assert b.overlaps(249.9, 400.0)
        assert not b.overlaps(250.0, 400.0)  # half-open
        assert not b.overlaps(0.0, 100.0)

    def test_shifted_keeps_everything_but_the_interval(self):
        b = booking("b1", 100.0, 250.0, machines=("alpha", "beta"))
        moved = b.shifted(500.0)
        assert (moved.start, moved.end) == (500.0, 650.0)
        assert moved.machines == b.machines
        assert moved.points == b.points
        assert moved.instance is b.instance
        assert moved.booking_id == b.booking_id

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(start=200.0, end=200.0), "empty booking interval"),
            (dict(machines=(), points=()), "non-empty and aligned"),
            (dict(machines=("alpha",), points=(1.0, 2.0)), "aligned"),
            (
                dict(machines=("alpha", "alpha"), points=(1.0, 2.0)),
                "duplicate machines",
            ),
        ],
    )
    def test_malformed_rejected(self, kwargs, match):
        base = dict(
            booking_id="b1", request_id="r1", occurrence=0, priority=2,
            start=100.0, end=200.0, machines=("alpha",), points=(10000.0,),
            objective=1.0, instance=tiny_instance(),
        )
        base.update(kwargs)
        with pytest.raises(ValueError, match=match):
            Booking(**base)


class TestLedger:
    def test_book_and_query(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0, machines=("alpha",)))
        ledger.book(booking("b2", 150.0, 300.0, machines=("beta",)))
        assert len(ledger) == 2 and "b1" in ledger
        assert ledger.busy_machines(180.0, 190.0) == {"alpha", "beta"}
        assert ledger.busy_machines(250.0, 260.0) == {"beta"}
        assert ledger.busy_machines(250.0, 260.0, exclude={"b2"}) == frozenset()

    def test_refuses_conflicting_booking(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        with pytest.raises(ValueError, match="conflicts"):
            ledger.book(booking("b2", 150.0, 250.0))
        # Disjoint in time, or disjoint in machines: both fine.
        ledger.book(booking("b3", 200.0, 250.0))
        ledger.book(booking("b4", 150.0, 250.0, machines=("beta",)))

    def test_force_admits_the_conflict(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        ledger.book(booking("b2", 150.0, 250.0), force=True)
        kinds = [c.kind for c in ledger.conflicts()]
        assert kinds == ["machine-overlap"]

    def test_duplicate_id_rejected_even_forced(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        with pytest.raises(ValueError, match="duplicate booking id"):
            ledger.book(booking("b1", 500.0, 600.0), force=True)

    def test_remove_returns_the_booking(self):
        ledger = ReservationLedger()
        b = ledger.book(booking("b1", 100.0, 200.0))
        assert ledger.remove("b1") is b
        assert len(ledger) == 0
        with pytest.raises(KeyError, match="unknown booking"):
            ledger.remove("b1")

    def test_next_booking_id_never_reuses(self):
        ledger = ReservationLedger()
        request = ReservationRequest(
            request_id="r1",
            problem=JacobiProblem(n=100, iterations=10),
            earliest_start=0.0,
            deadline=1000.0,
        )
        ids = {ledger.next_booking_id(request, 0) for _ in range(5)}
        assert len(ids) == 5
        assert all(i.startswith("r1#0@") for i in ids)


class TestConflicts:
    def test_pairwise_overlap_reported_once(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 300.0), force=True)
        ledger.book(booking("b2", 200.0, 400.0), force=True)
        ledger.book(booking("b3", 350.0, 500.0), force=True)
        found = ledger.conflicts()
        pairs = {c.booking_ids for c in found}
        assert pairs == {("b1", "b2"), ("b2", "b3")}
        assert all(c.machines == ("alpha",) for c in found)

    def test_infeasible_booking_flagged_by_the_verifier(self):
        ledger = ReservationLedger()
        # Drops work: 100x100 grid but only 9999 points placed.
        ledger.book(
            booking("b1", 100.0, 200.0, points=(9999.0,)), force=True
        )
        kinds = [c.kind for c in ledger.conflicts()]
        assert kinds == ["infeasible:work-dropped"]

    def test_clean_ledger_has_no_conflicts(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        ledger.book(booking("b2", 200.0, 300.0))
        assert ledger.conflicts() == []


class TestVerifyLedger:
    def _request(self, **overrides):
        kwargs = dict(
            request_id="r1",
            problem=JacobiProblem(n=100, iterations=10),
            earliest_start=0.0,
            deadline=1000.0,
        )
        kwargs.update(overrides)
        return ReservationRequest(**kwargs)

    def test_accepts_clean_compliant_ledger(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        assert verify_ledger(ledger) == []
        assert verify_ledger(ledger, [self._request()]) == []
        assert verify_ledger(ledger, {"r1": self._request()}) == []

    def test_unknown_request_reported(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0, request_id="ghost"))
        problems = verify_ledger(ledger, [self._request()])
        assert problems == ["unknown-request: b1"]

    def test_window_violations_reported(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        problems = verify_ledger(
            ledger, [self._request(earliest_start=150.0, deadline=1000.0)]
        )
        assert any(p.startswith("outside-window: b1") for p in problems)

    def test_preferred_window_violations_reported(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        problems = verify_ledger(
            ledger,
            [self._request(preferred_windows=((500.0, 900.0),))],
        )
        assert "outside-preferred-window: b1" in problems

    def test_machine_count_violations_reported(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        ledger.book(
            booking(
                "b2", 300.0, 400.0, machines=("alpha", "beta"),
                request_id="r2",
            )
        )
        problems = verify_ledger(
            ledger,
            [
                self._request(min_machines=2),
                self._request(request_id="r2", max_machines=1),
            ],
        )
        assert "below-min-machines: b1" in problems
        assert "above-max-machines: b2" in problems

    def test_repetition_checks_the_shifted_interval(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 2100.0, 2200.0, occurrence=1))
        request = self._request(
            earliest_start=0.0, deadline=1000.0,
            repeat_count=2, repeat_period_s=2000.0,
        )
        assert verify_ledger(ledger, [request]) == []


class TestRoundTrip:
    def _ledger(self):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 200.0))
        ledger.book(booking("b2", 150.0, 250.0, machines=("beta",)))
        return ledger

    def test_jsonl_round_trip_exact(self, tmp_path):
        path = tmp_path / "bookings.jsonl"
        save_bookings(path, self._ledger())
        loaded = load_bookings(path)
        assert loaded.bookings == self._ledger().bookings

    def test_rewrite_is_bit_identical(self, tmp_path):
        path = tmp_path / "bookings.jsonl"
        save_bookings(path, self._ledger())
        first = path.read_bytes()
        save_bookings(path, load_bookings(path))
        assert path.read_bytes() == first

    def test_conflicts_survive_the_round_trip(self, tmp_path):
        ledger = ReservationLedger()
        ledger.book(booking("b1", 100.0, 300.0), force=True)
        ledger.book(booking("b2", 200.0, 400.0), force=True)
        path = tmp_path / "conflicted.jsonl"
        save_bookings(path, ledger)
        loaded = load_bookings(path)
        assert [c.kind for c in loaded.conflicts()] == ["machine-overlap"]

    def test_schema_checked(self, tmp_path):
        payload = booking("b1", 100.0, 200.0).to_json_dict()
        assert payload["schema"] == BOOKING_SCHEMA
        payload["schema"] = "nope"
        path = tmp_path / "schema.jsonl"
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="unsupported booking schema"):
            load_bookings(path)

    def test_malformed_record_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = [json.dumps(booking("b1", 100.0, 200.0).to_json_dict()), "{"]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_bookings(path)

    def test_refuses_empty_ledger(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_bookings(tmp_path / "x.jsonl", ReservationLedger())

"""ForecastSnapshot: one immutable forecast capture per scheduling instant.

The snapshot's contract is *cache, not approximation*: every value must be
exactly what the pool itself would answer at the same instant, staleness
must be detected when time advances, and memoised lookups must not issue
repeated NWS queries.
"""

from __future__ import annotations

import pytest

from repro.core.infopool import DecisionCache, InformationPool
from repro.core.resources import ResourcePool
from repro.jacobi.grid import JacobiProblem, jacobi_hat


@pytest.fixture()
def pool(testbed, warmed_nws):
    return ResourcePool(testbed.topology, warmed_nws)


def test_snapshot_matches_pool_exactly(pool):
    snap = pool.snapshot()
    for name in pool.machine_names():
        assert snap.speed[name] == pool.predicted_speed(name)
        assert snap.availability[name] == pool.predicted_availability(name)
        assert snap.availability_error[name] == pool.predicted_availability_error(name)
        assert snap.conservative_speed(name, 1.0) == pool.predicted_speed_conservative(name, 1.0)
        assert snap.conservative_speed(name, 2.5) == pool.predicted_speed_conservative(name, 2.5)


def test_snapshot_pairwise_matches_pool(pool):
    snap = pool.snapshot()
    names = pool.machine_names()
    a, b = names[0], names[-1]
    assert snap.bandwidth(a, b) == pool.predicted_bandwidth(a, b)
    assert snap.transfer_time(a, b, 64_000.0) == pool.predicted_transfer_time(a, b, 64_000.0)
    assert snap.transfer_time(a, a, 64_000.0) == 0.0


def test_snapshot_memoises(pool):
    snap = pool.snapshot()
    names = pool.machine_names()
    a, b = names[0], names[1]
    first = snap.transfer_time(a, b, 1024.0)
    assert snap.transfer_time(a, b, 1024.0) == first
    assert (a, b, 1024.0, 1) in snap._transfer
    cs = snap.conservative_speed(a)
    assert snap._conservative[(a, 1.0)] == cs


def test_snapshot_staleness(pool):
    snap = pool.snapshot()
    assert not snap.stale
    pool.nws.advance_to(pool.nws.now + 30.0)
    assert snap.stale


def test_snapshot_without_nws(testbed):
    nominal = ResourcePool(testbed.topology, nws=None)
    snap = nominal.snapshot()
    assert not snap.stale
    for name in nominal.machine_names():
        assert snap.speed[name] == nominal.predicted_speed(name)
        assert snap.availability[name] == 1.0
        assert snap.availability_error[name] == 0.0


def test_rates_vector(pool):
    problem = JacobiProblem(n=400, iterations=10)
    snap = pool.snapshot()
    names = pool.machine_names()
    rates = snap.rates_vector(names, problem.flop_per_point)
    assert rates.shape == (len(names),)
    for j, name in enumerate(names):
        expected = pool.predicted_speed_conservative(name, 1.0) / problem.flop_per_point
        assert rates[j] == expected


def test_snapshot_subset_capture(pool):
    names = pool.machine_names()[:3]
    snap = pool.snapshot(names)
    assert snap.machines == tuple(names)
    assert set(snap.speed) == set(names)


def test_begin_end_decision_lifecycle(pool):
    info = InformationPool(pool=pool, hat=jacobi_hat(JacobiProblem(n=400)))
    assert info.decision_cache is None
    cache = info.begin_decision()
    assert isinstance(cache, DecisionCache)
    assert info.decision_cache is cache
    assert cache.snapshot.machines == tuple(pool.machine_names())
    cache.memo[("x", 1)] = "y"
    # Re-entry replaces the cache (fresh memo, fresh snapshot).
    cache2 = info.begin_decision()
    assert info.decision_cache is cache2
    assert cache2 is not cache
    assert not cache2.memo
    info.end_decision()
    assert info.decision_cache is None

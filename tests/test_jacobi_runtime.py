"""Tests for the KeLP-like Jacobi runtime: numerics and simulated timing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import blocked_partition, nonuniform_strip, uniform_strip
from repro.jacobi.runtime import (
    assignments_from_schedule,
    execute_block_partition,
    execute_strip_partition,
    simulated_execution,
)
from repro.jacobi.solver import jacobi_reference, make_test_grid


class TestStripNumerics:
    def test_matches_reference_exactly(self):
        g = make_test_grid(30, seed=1)
        ref = jacobi_reference(g, 10)
        part = uniform_strip(30, ["a", "b", "c"])
        assert np.array_equal(execute_strip_partition(g, part, 10), ref)

    def test_single_strip(self):
        g = make_test_grid(12, seed=2)
        part = uniform_strip(12, ["only"])
        assert np.array_equal(
            execute_strip_partition(g, part, 5), jacobi_reference(g, 5)
        )

    def test_nonuniform_strips_match(self):
        g = make_test_grid(25, seed=3)
        part = nonuniform_strip(25, ["a", "b", "c"], [5.0, 1.0, 2.0])
        assert np.array_equal(
            execute_strip_partition(g, part, 8), jacobi_reference(g, 8)
        )

    def test_one_row_strips(self):
        g = make_test_grid(6, seed=4)
        part = uniform_strip(6, [f"m{i}" for i in range(6)])
        assert np.array_equal(
            execute_strip_partition(g, part, 4), jacobi_reference(g, 4)
        )

    def test_shape_mismatch_rejected(self):
        part = uniform_strip(10, ["a"])
        with pytest.raises(ValueError):
            execute_strip_partition(np.zeros((8, 8)), part, 1)

    @given(
        n=st.integers(min_value=6, max_value=40),
        k=st.integers(min_value=1, max_value=5),
        iters=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_strip_equivalence(self, n, k, iters):
        k = min(k, n)
        g = make_test_grid(n, seed=n)
        part = uniform_strip(n, [f"m{i}" for i in range(k)])
        assert np.array_equal(
            execute_strip_partition(g, part, iters), jacobi_reference(g, iters)
        )


class TestBlockNumerics:
    def test_matches_reference_exactly(self):
        g = make_test_grid(24, seed=5)
        part = blocked_partition(24, [f"m{i}" for i in range(6)])
        assert np.array_equal(
            execute_block_partition(g, part, 9), jacobi_reference(g, 9)
        )

    def test_single_block(self):
        g = make_test_grid(10, seed=6)
        part = blocked_partition(10, ["only"])
        assert np.array_equal(
            execute_block_partition(g, part, 3), jacobi_reference(g, 3)
        )

    def test_prime_count_degenerates_to_strips(self):
        g = make_test_grid(15, seed=7)
        part = blocked_partition(15, [f"m{i}" for i in range(5)])  # 1x5
        assert np.array_equal(
            execute_block_partition(g, part, 5), jacobi_reference(g, 5)
        )

    @given(
        n=st.integers(min_value=8, max_value=36),
        k=st.integers(min_value=1, max_value=9),
        iters=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_block_equivalence(self, n, k, iters):
        g = make_test_grid(n, seed=n + 1)
        part = blocked_partition(n, [f"m{i}" for i in range(k)])
        assert np.array_equal(
            execute_block_partition(g, part, iters), jacobi_reference(g, iters)
        )


class TestSimulatedExecution:
    def _schedule(self, testbed, n=500, iterations=5):
        from repro.jacobi.apples import UniformStripPlanner
        from repro.core.infopool import InformationPool
        from repro.core.resources import ResourcePool
        from repro.jacobi.grid import jacobi_hat

        problem = JacobiProblem(n=n, iterations=iterations)
        info = InformationPool(
            pool=ResourcePool(testbed.topology), hat=jacobi_hat(problem)
        )
        return UniformStripPlanner(problem).plan(["alpha1", "alpha2"], info)

    def test_assignments_conserve_work(self, testbed):
        sched = self._schedule(testbed)
        was = assignments_from_schedule(sched)
        problem = sched.metadata["problem"]
        total = sum(w.work_mflop for w in was)
        assert total == pytest.approx(problem.work_mflop(problem.total_points))

    def test_assignments_carry_comm(self, testbed):
        sched = self._schedule(testbed)
        was = assignments_from_schedule(sched)
        assert any(w.comm_bytes for w in was)

    def test_simulated_execution_runs_iterations(self, testbed):
        sched = self._schedule(testbed, iterations=7)
        res = simulated_execution(testbed.topology, sched)
        assert len(res.iteration_times) == 7
        assert res.total_time > 0.0

    def test_missing_problem_metadata_rejected(self, testbed):
        sched = self._schedule(testbed)
        sched.metadata.pop("problem")
        with pytest.raises(ValueError):
            assignments_from_schedule(sched)

    def test_start_time_matters(self, testbed):
        sched = self._schedule(testbed, iterations=3)
        a = simulated_execution(testbed.topology, sched, t0=0.0).total_time
        b = simulated_execution(testbed.topology, sched, t0=500.0).total_time
        assert a != b  # load differs across windows on a non-dedicated testbed

"""Tests for forecaster backtesting, trace persistence, and solve_until."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jacobi.solver import jacobi_reference, make_test_grid, residual_norm, solve_until
from repro.nws.evaluation import backtest_family, evaluate_forecaster
from repro.nws.forecasters import LastValue, RunningMean
from repro.sim.load import AR1Load, TraceLoad
from repro.sim.trace_io import load_trace, record_trace, save_trace
from repro.util.rng import RngStream


class TestEvaluateForecaster:
    def test_perfect_on_constant(self):
        result = evaluate_forecaster(LastValue(), [0.5] * 20)
        assert result.mse == 0.0
        assert result.mae == 0.0
        assert result.bias == 0.0
        assert len(result.predictions) == 19

    def test_bias_sign(self):
        # A rising ramp makes last-value predictions systematically low.
        ramp = [i / 100 for i in range(50)]
        result = evaluate_forecaster(LastValue(), ramp)
        assert result.bias < 0

    def test_rmse_consistent(self):
        result = evaluate_forecaster(RunningMean(), [0.1, 0.9, 0.1, 0.9])
        assert result.rmse == pytest.approx(result.mse**0.5)

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            evaluate_forecaster(LastValue(), [0.5])


class TestBacktestFamily:
    @pytest.fixture(scope="class")
    def trace(self):
        return AR1Load(mean=0.6, phi=0.9, sigma=0.08,
                       rng=RngStream(3, "bt")).sample(300)

    def test_sorted_by_mse(self, trace):
        results = backtest_family(trace)
        mses = [r.mse for r in results]
        assert mses == sorted(mses)

    def test_includes_ensemble(self, trace):
        names = {r.name for r in backtest_family(trace)}
        assert "ensemble" in names

    def test_exclude_ensemble(self, trace):
        names = {r.name for r in backtest_family(trace, include_ensemble=False)}
        assert "ensemble" not in names

    def test_custom_factory(self, trace):
        results = backtest_family(
            trace, family_factory=lambda: [LastValue(), RunningMean()]
        )
        assert {r.name for r in results} == {"last", "run_mean", "ensemble"}

    def test_ensemble_near_top(self, trace):
        results = backtest_family(trace)
        rank = [r.name for r in results].index("ensemble")
        assert rank <= len(results) // 2


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        values = [0.9, 0.5, 0.7]
        path = tmp_path / "trace.json"
        save_trace(path, values, dt=5.0, name="alpha1")
        load = load_trace(path)
        assert isinstance(load, TraceLoad)
        assert load.dt == 5.0
        assert load.sample(3) == values

    def test_record_trace(self):
        load = TraceLoad([0.2, 0.8], dt=10.0)
        assert record_trace(load, 40.0) == [0.2, 0.8, 0.2, 0.8]

    def test_record_then_replay_equivalent(self, tmp_path):
        source = AR1Load(mean=0.5, phi=0.9, sigma=0.1, rng=RngStream(7, "io"))
        values = record_trace(source, 200.0)
        path = tmp_path / "t.json"
        save_trace(path, values, dt=source.dt)
        replay = load_trace(path)
        for k in range(len(values)):
            t = (k + 0.5) * source.dt
            assert replay.availability(t) == pytest.approx(source.availability(t))

    def test_bad_values_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.json", [1.5], dt=1.0)
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.json", [], dt=1.0)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {")
        with pytest.raises(ValueError, match="not a JSON trace"):
            load_trace(path)
        path.write_text('{"values": [0.5]}')
        with pytest.raises(ValueError, match="missing dt"):
            load_trace(path)


class TestSolveUntil:
    def test_converges_and_matches_reference(self):
        g = make_test_grid(16, seed=1)
        solved, sweeps = solve_until(g, tolerance=1e-5)
        assert sweeps > 1
        assert residual_norm(solved) < 1e-4
        # Same trajectory as the fixed-iteration reference.
        assert np.array_equal(solved, jacobi_reference(g, sweeps))

    def test_tighter_tolerance_more_sweeps(self):
        g = make_test_grid(16, seed=2)
        _, loose = solve_until(g, tolerance=1e-3)
        _, tight = solve_until(g, tolerance=1e-6)
        assert tight > loose

    def test_max_iterations_enforced(self):
        g = make_test_grid(32, seed=3)
        with pytest.raises(RuntimeError):
            solve_until(g, tolerance=1e-12, max_iterations=5)

    def test_validation(self):
        g = make_test_grid(8)
        with pytest.raises(ValueError):
            solve_until(g, tolerance=0.0)
        with pytest.raises(ValueError):
            solve_until(g, max_iterations=0)

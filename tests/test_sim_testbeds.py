"""Tests for the canned testbeds (Figure 2 and variants)."""

from __future__ import annotations

import pytest

from repro.sim.testbeds import (
    casa_testbed,
    nile_testbed,
    sdsc_pcl_testbed,
    sdsc_pcl_with_sp2,
)


class TestSdscPcl:
    def test_host_inventory(self, testbed):
        # Figure 2: Sparc-2, Sparc-10, 2x RS6000, 4x Alpha.
        assert set(testbed.host_names) == {
            "sparc2", "sparc10", "rs6000a", "rs6000b",
            "alpha1", "alpha2", "alpha3", "alpha4",
        }

    def test_sites(self, testbed):
        topo = testbed.topology
        assert topo.host("sparc2").site == "PCL"
        assert topo.host("alpha1").site == "SDSC"

    def test_segment_membership(self, testbed):
        topo = testbed.topology
        assert topo.same_segment("sparc2", "sparc10")
        assert topo.same_segment("rs6000a", "rs6000b")
        assert topo.same_segment("alpha1", "alpha4")
        assert not topo.same_segment("sparc2", "rs6000a")
        assert not topo.same_segment("sparc2", "alpha1")

    def test_cross_site_routes_through_wan(self, testbed):
        names = [l.name for l in testbed.topology.route("sparc2", "alpha1")]
        assert "wan" in names

    def test_intra_pcl_route_avoids_wan(self, testbed):
        names = [l.name for l in testbed.topology.route("sparc2", "rs6000a")]
        assert "wan" not in names

    def test_all_pairs_routable(self, testbed):
        topo = testbed.topology
        for a in testbed.host_names:
            for b in testbed.host_names:
                topo.route(a, b)  # must not raise

    def test_hosts_nondedicated(self, testbed):
        # Availability varies across time on every Figure 2 host.
        for host in testbed.hosts():
            xs = host.load.sample(200)
            assert max(xs) - min(xs) > 0.05, host.name

    def test_seed_reproducibility(self):
        a = sdsc_pcl_testbed(seed=11)
        b = sdsc_pcl_testbed(seed=11)
        for name in a.host_names:
            assert a.topology.host(name).load.sample(50) == b.topology.host(
                name
            ).load.sample(50)

    def test_different_seeds_differ(self):
        a = sdsc_pcl_testbed(seed=11)
        b = sdsc_pcl_testbed(seed=12)
        assert a.topology.host("alpha1").load.sample(50) != b.topology.host(
            "alpha1"
        ).load.sample(50)


class TestSdscPclWithSp2:
    def test_sp2_nodes_added(self, testbed_sp2):
        assert "sp2-1" in testbed_sp2.host_names
        assert "sp2-2" in testbed_sp2.host_names

    def test_sp2_dedicated(self, testbed_sp2):
        for name in ("sp2-1", "sp2-2"):
            host = testbed_sp2.topology.host(name)
            assert host.dedicated
            assert host.load.sample(50) == [1.0] * 50

    def test_memory_crossover_calibration(self):
        n = 3700
        tb = sdsc_pcl_with_sp2(crossover_n=n, bytes_per_point=16.0)
        per_node = tb.topology.host("sp2-1").memory.available_mb
        # Exactly at the crossover the problem fills both nodes.
        assert 2 * per_node * 1e6 == pytest.approx(16.0 * n * n, rel=1e-9)
        # One step beyond spills.
        beyond = 16.0 * (n + 50) * (n + 50) / 2 / 1e6
        assert tb.topology.host("sp2-1").memory.slowdown(beyond) > 1.0

    def test_crossover_too_large_rejected(self):
        with pytest.raises(ValueError):
            sdsc_pcl_with_sp2(crossover_n=10_000, sp2_memory_mb=128.0)

    def test_sp2_pair_fast_path(self, testbed_sp2):
        topo = testbed_sp2.topology
        direct = topo.path_bandwidth("sp2-1", "sp2-2")
        via_fddi = topo.path_bandwidth("sp2-1", "alpha1")
        assert direct > via_fddi


class TestCasa:
    def test_pair(self, casa):
        assert set(casa.host_names) == {"c90", "paragon"}

    def test_dedicated(self, casa):
        for host in casa.hosts():
            assert host.dedicated

    def test_hippi_link(self, casa):
        names = [l.name for l in casa.topology.route("c90", "paragon")]
        assert names == ["hippi-sonet"]

    def test_architectures(self, casa):
        assert casa.topology.host("c90").arch == "c90"
        assert casa.topology.host("paragon").arch == "paragon"


class TestNile:
    def test_site_count(self):
        tb = nile_testbed(nsites=4)
        sites = {h.site for h in tb.hosts()}
        assert len(sites) == 4

    def test_alphas_dedicated_workstations_not(self, nile_bed):
        topo = nile_bed.topology
        assert topo.host("site0-alpha0").dedicated
        assert not topo.host("site0-ws0").dedicated

    def test_cross_site_routable(self, nile_bed):
        nile_bed.topology.route("site0-alpha0", "site2-ws1")

    def test_corba_capability(self, nile_bed):
        for host in nile_bed.hosts():
            assert "corba-orb" in host.capabilities

    def test_bad_nsites(self):
        with pytest.raises(ValueError):
            nile_testbed(nsites=0)

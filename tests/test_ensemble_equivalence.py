"""Differential proof that the ensemble tensor backend is bit-identical.

Every replica of an :class:`repro.sim.execution_ensemble.EnsembleExecution`
pass must reproduce :func:`repro.sim.execution.simulate_iterations_reference`
run *solo* — ``total_time``, every entry of ``iteration_times`` and every
value of ``host_busy_time`` — regardless of its batch-mates, start time or
load regime.  CI also runs this module under ``REPRO_NO_FASTPATH=1``,
which swaps :func:`repro.sim.execution_ensemble.run_ensemble` to a loop
of the reference executor, proving the equivalence in both regimes.
"""

from __future__ import annotations

import pytest

from repro.sim.execution import WorkAssignment, simulate_iterations_reference
from repro.sim.execution_ensemble import (
    EnsembleExecution,
    ReplicaSpec,
    ensemble_summary,
    replicated,
    ring_assignments,
    run_ensemble,
)
from repro.sim.jobs import make_injectable
from repro.sim.testbeds import (
    casa_testbed,
    nile_testbed,
    sdsc_pcl_testbed,
    sdsc_pcl_with_sp2,
    synthetic_metacomputer,
)
from repro.util import perf

BUILDERS = {
    "casa": casa_testbed,
    "nile": nile_testbed,
    "sdsc_pcl": sdsc_pcl_testbed,
    "sdsc_pcl_sp2": sdsc_pcl_with_sp2,
    "synthetic": lambda seed: synthetic_metacomputer(16, seed=seed),
}

SEEDS = [1, 7, 42]
REGIMES = (0.5, 1.0, 3.0)


def _spec(builder_key: str, seed: int, regime: float, t0: float) -> ReplicaSpec:
    testbed = BUILDERS[builder_key](seed=seed)
    return ReplicaSpec(
        testbed.topology,
        ring_assignments(
            testbed, work_mflop=40.0 * regime, comm_bytes=200_000.0 * regime
        ),
        t0=t0,
    )


def _assert_identical(got, ref):
    assert got.total_time == ref.total_time
    assert got.iteration_times == ref.iteration_times
    assert got.host_busy_time == ref.host_busy_time


def _assert_all_match_reference(specs, results, iterations):
    assert len(results) == len(specs)
    for spec, got in zip(specs, results):
        ref = simulate_iterations_reference(
            spec.topology, spec.assignments,
            iterations if spec.iterations is None else spec.iterations,
            spec.t0,
        )
        _assert_identical(got, ref)


@pytest.mark.parametrize("builder_key", sorted(BUILDERS))
def test_mixed_regime_batch_bit_identical(builder_key):
    """Seeds × load regimes of one testbed family, one ensemble pass."""
    specs = [
        _spec(builder_key, seed, regime, t0=2.5)
        for seed in SEEDS
        for regime in REGIMES
    ]
    _assert_all_match_reference(specs, run_ensemble(specs, 15), 15)


def test_cross_testbed_batch_bit_identical():
    """Heterogeneous topologies (different dts, sizes) in one batch."""
    specs = [_spec(key, 7, 1.0, t0=0.0) for key in sorted(BUILDERS)]
    _assert_all_match_reference(specs, run_ensemble(specs, 12), 12)


def test_staggered_start_times_bit_identical():
    """Replicas at different simulated instants advance independently."""
    specs = [_spec("sdsc_pcl", 3, 1.0, t0=137.0 * i) for i in range(5)]
    _assert_all_match_reference(specs, run_ensemble(specs, 10), 10)


def test_result_independent_of_batch_mates():
    """A replica's floats cannot depend on what else is in the batch."""
    target = _spec("nile", 11, 1.0, t0=5.0)
    solo = run_ensemble([target], 10)[0]
    crowd = [_spec("casa", s, r, t0=50.0 * s) for s in SEEDS for r in REGIMES]
    batched = run_ensemble(crowd + [target], 10)[-1]
    _assert_identical(batched, solo)


def test_mutable_load_replica_surrenders_in_mixed_batch():
    """An injector-mutated replica surrenders; the batch stays correct."""
    def mutated():
        testbed = sdsc_pcl_testbed(seed=9)
        injectors = make_injectable(testbed)
        for injector in injectors.values():
            injector.occupy(10.0, 300.0, 0.5)
        return testbed

    tb = mutated()
    specs = [
        _spec("sdsc_pcl", 1, 1.0, t0=1.5),
        ReplicaSpec(tb.topology, ring_assignments(tb), t0=1.5),
        _spec("sdsc_pcl", 42, 2.0, t0=1.5),
    ]
    ex = EnsembleExecution(specs, 20)
    assert ex.compile_report["surrendered"] == 1
    assert ex.surrender_reasons == {1: "mutable-host-load"}
    _assert_all_match_reference(specs, ex.run(), 20)


def test_heterogeneous_iterations_surrender():
    """A per-replica iteration override cannot ride the lock-step tensors."""
    specs = [
        _spec("casa", 1, 1.0, t0=0.0),
        ReplicaSpec(
            BUILDERS["casa"](seed=2).topology,
            ring_assignments(BUILDERS["casa"](seed=2)),
            iterations=4,
        ),
    ]
    ex = EnsembleExecution(specs, 10)
    assert ex.surrender_reasons == {1: "heterogeneous-iterations"}
    results = ex.run()
    assert len(results[0].iteration_times) == 10
    assert len(results[1].iteration_times) == 4
    _assert_all_match_reference(specs, results, 10)


def test_long_horizon_tensor_growth():
    """Work heavy enough to force repeated table doubling stays identical."""
    def heavy(seed):
        testbed = sdsc_pcl_testbed(seed=seed)
        hosts = sorted(testbed.topology.hosts)
        return ReplicaSpec(
            testbed.topology,
            [WorkAssignment(h, 4000.0, {}) for h in hosts],
        )

    specs = [heavy(3), heavy(5)]
    _assert_all_match_reference(specs, run_ensemble(specs, 8), 8)


def test_gate_dispatches_fast_and_reference():
    """run_ensemble honours the perf gate; both modes agree exactly."""
    specs_a = [_spec("sdsc_pcl", 5, 1.0, t0=3.5) for _ in range(2)]
    specs_b = [_spec("sdsc_pcl", 5, 1.0, t0=3.5) for _ in range(2)]
    with perf.fastpath(True):
        fast = run_ensemble(specs_a, 15)
    with perf.fastpath(False):
        ref = run_ensemble(specs_b, 15)
    for a, b in zip(fast, ref):
        _assert_identical(a, b)


def test_replicated_deterministic_and_seed_split():
    """replicated() worlds depend only on (seed, regime, replica) coords."""
    a = replicated(3, n_hosts=6, seed=1996, regimes=(1.0, 2.0))
    b = replicated(3, n_hosts=6, seed=1996, regimes=(1.0, 2.0))
    assert len(a) == len(b) == 6
    res_a = run_ensemble(a, 8)
    res_b = run_ensemble(b, 8)
    for x, y in zip(res_a, res_b):
        _assert_identical(x, y)
    # Distinct replica coordinates produce distinct worlds.
    assert res_a[0].total_time != res_a[1].total_time


def test_ensemble_summary_metrics():
    specs = replicated(4, n_hosts=6, seed=3)
    summary = ensemble_summary(run_ensemble(specs, 8))
    assert set(summary) == {"total_time", "mean_iteration_time", "efficiency"}
    for ci in summary.values():
        assert ci.n == 4
        assert ci.lo <= ci.mean <= ci.hi


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one replica"):
            EnsembleExecution([], 5)

    def test_bad_iterations_rejected(self):
        spec = _spec("casa", 1, 1.0, t0=0.0)
        with pytest.raises(ValueError):
            run_ensemble([spec], 0)

    def test_invalid_assignment_named(self):
        testbed = casa_testbed(seed=1)
        spec = ReplicaSpec(testbed.topology, [WorkAssignment("ghost", 10.0)])
        with pytest.raises(ValueError, match="'ghost'.*not in the topology"):
            EnsembleExecution([spec], 5)

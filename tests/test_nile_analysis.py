"""Tests for the event-analysis programs and their merge property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nile.analysis import CullAnalysis, HistogramAnalysis, StatisticsAnalysis
from repro.nile.events import PASS2, EventBatch


@pytest.fixture(scope="module")
def batch():
    return EventBatch(20_000, PASS2, seed=11)


class TestHistogram:
    def test_counts_all_in_range_events(self, batch):
        h = HistogramAnalysis(lo=0.0, hi=20.0)
        result = h.run(batch)
        assert result.counts.sum() == batch.nevents

    def test_merge_equals_whole(self, batch):
        h = HistogramAnalysis()
        whole = h.run(batch)
        parts = [h.run(batch.slice(0, 7000)), h.run(batch.slice(7000, 20_000))]
        merged = h.merge(parts)
        assert np.array_equal(whole.counts, merged.counts)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            HistogramAnalysis().merge([])

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            HistogramAnalysis(bins=0)
        with pytest.raises(ValueError):
            HistogramAnalysis(lo=5.0, hi=5.0)

    @given(split=st.integers(min_value=1, max_value=19_999))
    @settings(max_examples=20, deadline=None)
    def test_property_any_split_merges_exactly(self, batch, split):
        h = HistogramAnalysis()
        whole = h.run(batch)
        merged = h.merge([h.run(batch.slice(0, split)), h.run(batch.slice(split, 20_000))])
        assert np.array_equal(whole.counts, merged.counts)


class TestStatistics:
    def test_mean_std_match_numpy(self, batch):
        s = StatisticsAnalysis(fields=("energy_gev",))
        m = s.run(batch)
        arr = batch.field("energy_gev")
        assert m.mean("energy_gev") == pytest.approx(arr.mean())
        assert m.std("energy_gev") == pytest.approx(arr.std(), rel=1e-6)

    def test_merge_equals_whole(self, batch):
        s = StatisticsAnalysis()
        whole = s.run(batch)
        merged = s.merge([s.run(batch.slice(0, 5000)), s.run(batch.slice(5000, 20_000))])
        for f in s.fields:
            assert merged.mean(f) == pytest.approx(whole.mean(f))
            assert merged.std(f) == pytest.approx(whole.std(f), rel=1e-9)

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            StatisticsAnalysis(fields=())


class TestCull:
    def test_selects_signal(self, batch):
        c = CullAnalysis()
        selected = c.run(batch)
        signal_idx = np.flatnonzero(batch.field("is_signal"))
        assert set(signal_idx) <= set(selected)

    def test_offset_merge_equals_whole(self, batch):
        c = CullAnalysis()
        whole = c.run(batch)
        parts = [
            c.run_offset(batch.slice(0, 8000), 0),
            c.run_offset(batch.slice(8000, 20_000), 8000),
        ]
        assert np.array_equal(c.merge(parts), whole)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CullAnalysis(energy_window=(11.0, 10.0))

    def test_cost_model(self):
        c = CullAnalysis(mflop_per_event=2e-3)
        assert c.total_mflop(1000) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            c.total_mflop(-1)

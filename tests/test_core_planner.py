"""Tests for the time-balancing planner machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import InformationPool
from repro.core.planner import (
    TimeBalancedPlanner,
    balance_divisible_work,
    balance_divisible_work_batched,
)
from repro.core.resources import ResourcePool
from repro.util import perf


class TestBalanceDivisibleWork:
    def test_equal_machines_split_evenly(self):
        r = balance_divisible_work([10.0, 10.0], [0.0, 0.0], 100.0)
        assert r is not None
        assert r.allocations == pytest.approx([50.0, 50.0])
        assert r.makespan == pytest.approx(5.0)

    def test_faster_machine_gets_more(self):
        r = balance_divisible_work([30.0, 10.0], [0.0, 0.0], 100.0)
        assert r.allocations == pytest.approx([75.0, 25.0])
        assert r.makespan == pytest.approx(2.5)

    def test_fixed_costs_shift_work(self):
        # Machine 1 pays 1 s of communication; it must receive less work so
        # both finish together.
        r = balance_divisible_work([10.0, 10.0], [0.0, 1.0], 100.0)
        t0 = r.allocations[0] / 10.0
        t1 = r.allocations[1] / 10.0 + 1.0
        assert t0 == pytest.approx(t1)
        assert r.allocations[0] > r.allocations[1]

    def test_useless_machine_dropped(self):
        # Machine 1's fixed cost exceeds any balanced completion time.
        r = balance_divisible_work([100.0, 1.0], [0.0, 50.0], 10.0)
        assert r.allocations[1] == 0.0
        assert 1 in r.dropped
        assert r.makespan == pytest.approx(0.1)

    def test_capacity_clamps_and_redistributes(self):
        r = balance_divisible_work([10.0, 10.0], [0.0, 0.0], 100.0, capacities=[20.0, None])
        assert r.allocations[0] == pytest.approx(20.0)
        assert r.allocations[1] == pytest.approx(80.0)
        assert 0 in r.saturated

    def test_infeasible_capacities(self):
        r = balance_divisible_work([10.0, 10.0], [0.0, 0.0], 100.0, capacities=[10.0, 10.0])
        assert r is None

    def test_capacities_exactly_sufficient(self):
        r = balance_divisible_work([10.0, 10.0], [0.0, 0.0], 100.0, capacities=[50.0, 50.0])
        assert r is not None
        assert sum(r.allocations) == pytest.approx(100.0)

    def test_single_machine(self):
        r = balance_divisible_work([5.0], [2.0], 10.0)
        assert r.allocations == pytest.approx([10.0])
        assert r.makespan == pytest.approx(4.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            balance_divisible_work([0.0], [0.0], 10.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            balance_divisible_work([1.0], [-1.0], 10.0)

    def test_empty_returns_none(self):
        assert balance_divisible_work([], [], 10.0) is None

    @given(
        rates=st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=8),
        total=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_property_conservation_and_balance(self, rates, total):
        costs = [0.0] * len(rates)
        r = balance_divisible_work(rates, costs, total)
        assert r is not None
        assert sum(r.allocations) == pytest.approx(total, rel=1e-6)
        # With zero fixed costs everything is loaded and all finish together.
        times = [a / rate for a, rate in zip(r.allocations, rates)]
        assert max(times) == pytest.approx(min(times), rel=1e-6)

    @given(
        rates=st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=6),
        costs=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=2, max_size=6),
        total=st.floats(min_value=10.0, max_value=1e4),
    )
    def test_property_makespan_beats_single_machine(self, rates, costs, total):
        n = min(len(rates), len(costs))
        rates, costs = rates[:n], costs[:n]
        r = balance_divisible_work(rates, costs, total)
        assert r is not None
        # The balanced makespan can never exceed doing everything on the
        # single best machine alone.
        best_single = min(total / rate + cost for rate, cost in zip(rates, costs))
        assert r.makespan <= best_single + 1e-6

    @given(
        rates=st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=6),
        total=st.floats(min_value=1.0, max_value=1e4),
    )
    def test_property_allocations_nonnegative(self, rates, total):
        r = balance_divisible_work(rates, [0.1] * len(rates), total)
        assert r is not None
        assert all(a >= 0.0 for a in r.allocations)


class TestFastBalanceEquivalence:
    """The closed-form fast balance must be bit-identical to the loop."""

    def _both(self, rates, costs, total, caps=None):
        with perf.fastpath(False):
            ref = balance_divisible_work(rates, costs, total, caps)
        with perf.fastpath(True):
            fast = balance_divisible_work(rates, costs, total, caps)
        return ref, fast

    def _assert_identical(self, ref, fast):
        if ref is None:
            assert fast is None
            return
        assert fast is not None
        assert fast.allocations == ref.allocations  # exact, not approx
        assert fast.makespan == ref.makespan
        assert fast.dropped == ref.dropped
        assert fast.saturated == ref.saturated

    @given(
        rates=st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=8),
        costs=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=8),
        total=st.floats(min_value=0.5, max_value=1e5),
    )
    def test_property_bit_identical(self, rates, costs, total):
        n = min(len(rates), len(costs))
        ref, fast = self._both(rates[:n], costs[:n], total)
        self._assert_identical(ref, fast)

    @given(
        rates=st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=6),
        total=st.floats(min_value=10.0, max_value=1e4),
        cap=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_property_bit_identical_with_caps(self, rates, total, cap):
        costs = [0.1 * i for i in range(len(rates))]
        caps = [cap if i % 2 == 0 else None for i in range(len(rates))]
        ref, fast = self._both(rates, costs, total, caps)
        self._assert_identical(ref, fast)

    def test_tied_costs(self):
        ref, fast = self._both([10.0, 20.0, 30.0], [1.0, 1.0, 1.0], 100.0)
        self._assert_identical(ref, fast)

    def test_cost_exactly_at_drop_boundary(self):
        # Construct c_1 == final T so the >= drop predicate is exercised:
        # with machine 0 alone, T = 10/10 + 0 = 1.0; give machine 1 cost 1.0.
        ref, fast = self._both([10.0, 10.0], [0.0, 1.0], 10.0)
        self._assert_identical(ref, fast)

    def test_cascade_of_drops(self):
        ref, fast = self._both(
            [100.0, 1.0, 1.0, 1.0], [0.0, 5.0, 50.0, 500.0], 10.0
        )
        self._assert_identical(ref, fast)

    def test_saturation_falls_back_identically(self):
        ref, fast = self._both(
            [10.0, 10.0, 10.0], [0.0, 0.0, 0.0], 300.0, [50.0, 50.0, None]
        )
        self._assert_identical(ref, fast)
        assert ref.saturated  # the case really does exercise the cap path

    def test_infeasible_caps_identical(self):
        ref, fast = self._both([10.0, 10.0], [0.0, 0.0], 100.0, [10.0, 10.0])
        self._assert_identical(ref, fast)


class TestBatchedBalance:
    """The batched water-filler must agree with per-set scalar calls."""

    def _scalar_uncapped(self, rates, costs, total, members):
        idx = [i for i, m in enumerate(members) if m]
        sub = balance_divisible_work(
            [rates[i] for i in idx], [costs[i] for i in idx], total
        )
        alloc = [0.0] * len(rates)
        for j, i in enumerate(idx):
            alloc[i] = sub.allocations[j]
        return sub.makespan, alloc

    @given(
        rates=st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=6),
        costs=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=2, max_size=6),
        total=st.floats(min_value=1.0, max_value=1e4),
        mask_bits=st.integers(min_value=1, max_value=63),
    )
    def test_property_matches_scalar(self, rates, costs, total, mask_bits):
        n = min(len(rates), len(costs))
        rates, costs = rates[:n], costs[:n]
        members = [bool(mask_bits & (1 << i)) for i in range(n)]
        if not any(members):
            members[0] = True
        batched = balance_divisible_work_batched(
            rates, costs, total, [members]
        )
        makespan, alloc = self._scalar_uncapped(rates, costs, total, members)
        assert batched.makespans[0] == pytest.approx(makespan, rel=1e-12)
        assert list(batched.allocations[0]) == pytest.approx(alloc, rel=1e-9, abs=1e-9)

    def test_many_sets_at_once(self):
        rates = [10.0, 20.0, 30.0, 40.0]
        costs = [0.0, 0.5, 1.0, 2.0]
        sets = [
            [True, False, False, False],
            [True, True, False, False],
            [True, True, True, True],
            [False, False, False, True],
        ]
        out = balance_divisible_work_batched(rates, costs, 500.0, sets)
        assert out.makespans.shape == (4,)
        for row, members in enumerate(sets):
            makespan, _ = self._scalar_uncapped(rates, costs, 500.0, members)
            assert out.makespans[row] == pytest.approx(makespan, rel=1e-12)
            # Allocations outside the set stay zero.
            for i, m in enumerate(members):
                if not m:
                    assert out.allocations[row, i] == 0.0
                    assert not out.active[row, i]

    def test_empty_set_gets_inf(self):
        out = balance_divisible_work_batched(
            [10.0, 20.0], [0.0, 0.0], 100.0, [[False, False], [True, False]]
        )
        assert out.makespans[0] == float("inf")
        assert np.isfinite(out.makespans[1])

    def test_default_members_is_full_universe(self):
        out = balance_divisible_work_batched([10.0, 10.0], [0.0, 0.0], 100.0)
        assert out.makespans.shape == (1,)
        assert out.makespans[0] == pytest.approx(5.0)

    def test_superset_never_slower(self):
        """Monotonicity that makes subset pruning admissible."""
        rates = [10.0, 20.0, 5.0]
        costs = [0.1, 0.2, 0.3]
        out = balance_divisible_work_batched(
            rates, costs, 1000.0,
            [[True, True, True], [True, True, False], [True, False, False]],
        )
        assert out.makespans[0] <= out.makespans[1] <= out.makespans[2]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            balance_divisible_work_batched([1.0, 2.0], [0.0], 10.0)
        with pytest.raises(ValueError):
            balance_divisible_work_batched([1.0], [0.0], 10.0, [[True, False]])


class TestTimeBalancedPlanner:
    def make_info(self, testbed, nws=None, bytes_per_unit=0.0):
        hat = HeterogeneousApplicationTemplate(
            name="toy", paradigm="data-parallel",
            tasks=(TaskCharacteristics("work", flop_per_unit=1e-3,
                                       bytes_per_unit=bytes_per_unit),),
            communication=CommunicationCharacteristics(),
            structure=StructureInfo(total_units=1e6, iterations=1),
        )
        return InformationPool(pool=ResourcePool(testbed.topology, nws), hat=hat)

    def test_plan_covers_all_work(self, testbed):
        info = self.make_info(testbed)
        sched = TimeBalancedPlanner().plan(["alpha1", "alpha2"], info)
        assert sched is not None
        assert sched.total_work_units == pytest.approx(1e6)

    def test_plan_empty_set_none(self, testbed):
        info = self.make_info(testbed)
        assert TimeBalancedPlanner().plan([], info) is None

    def test_dynamic_info_shifts_allocation(self, testbed, warmed_nws):
        nominal = TimeBalancedPlanner().plan(
            ["alpha1", "rs6000a"], self.make_info(testbed)
        )
        dynamic = TimeBalancedPlanner().plan(
            ["alpha1", "rs6000a"], self.make_info(testbed, warmed_nws)
        )
        # rs6000a is heavily loaded; the NWS-informed plan gives it less.
        nom_share = nominal.allocation_for("rs6000a").work_units
        dyn_share = dynamic.allocation_for("rs6000a").work_units
        assert dyn_share < nom_share

    def test_memory_capacity_respected(self, testbed):
        # 8 bytes/unit, 1e6 units = 8 MB total; cap sparc2 (26 MB avail)
        # cannot be exceeded anyway — use a big problem instead.
        hat = HeterogeneousApplicationTemplate(
            name="big", paradigm="data-parallel",
            tasks=(TaskCharacteristics("work", flop_per_unit=1e-3,
                                       bytes_per_unit=16.0),),
            communication=CommunicationCharacteristics(),
            structure=StructureInfo(total_units=4e6, iterations=1),  # 64 MB
        )
        info = InformationPool(pool=ResourcePool(testbed.topology), hat=hat)
        sched = TimeBalancedPlanner().plan(["sparc2", "alpha1"], info)
        assert sched is not None
        cap = info.pool.machine_info("sparc2").memory_available_mb * 1e6 / 16.0
        assert sched.allocation_for("sparc2").work_units <= cap + 1.0

    def test_lower_bounds_admissible(self, testbed, warmed_nws):
        """Bounds never exceed the true predicted time of any candidate."""
        info = self.make_info(testbed, warmed_nws, bytes_per_unit=8.0)
        planner = TimeBalancedPlanner()
        names = info.pool.machine_names()
        candidate_sets = [
            (names[0],),
            (names[0], names[1]),
            tuple(names[:4]),
            tuple(names),
        ]
        bounds = planner.lower_bounds(candidate_sets, info)
        assert len(bounds) == len(candidate_sets)
        for rset, lb in zip(candidate_sets, bounds):
            sched = planner.plan(rset, info)
            assert sched is not None
            assert lb <= sched.predicted_time + 1e-9

"""Differential proof that the vectorised executor is bit-identical.

:class:`repro.sim.execution_fast.CompiledExecution` must reproduce
:func:`repro.sim.execution.simulate_iterations_reference` *float-for-float*
— ``total_time``, every entry of ``iteration_times`` and every value of
``host_busy_time`` — across every canned testbed, multiple seeds and
multiple allocation shapes.  CI also runs this module under
``REPRO_NO_FASTPATH=1``, which flips the construction-time bulk-generation
paths inside the load processes, so the equivalence is proven in both
regimes.
"""

from __future__ import annotations

import pytest

from repro.sim.execution import (
    WorkAssignment,
    simulate_iterations,
    simulate_iterations_reference,
)
from repro.sim.execution_fast import CompiledExecution
from repro.sim.jobs import make_injectable
from repro.sim.testbeds import (
    casa_testbed,
    nile_testbed,
    sdsc_pcl_testbed,
    sdsc_pcl_with_sp2,
    synthetic_metacomputer,
)
from repro.util import perf

BUILDERS = {
    "casa": casa_testbed,
    "nile": nile_testbed,
    "sdsc_pcl": sdsc_pcl_testbed,
    "sdsc_pcl_sp2": sdsc_pcl_with_sp2,
    "synthetic": lambda seed: synthetic_metacomputer(24, seed=seed),
}

SEEDS = [1, 7, 42]


def _ring(hosts: list[str]) -> list[WorkAssignment]:
    """Neighbour exchange with uneven work and footprints."""
    n = len(hosts)
    return [
        WorkAssignment(
            h, 40.0 + 11.0 * i,
            {hosts[(i + 1) % n]: 250_000.0, hosts[(i - 1) % n]: 125_000.0},
            footprint_mb=6.0 * i, overhead_s=0.001,
        )
        for i, h in enumerate(hosts)
    ]


def _star(hosts: list[str]) -> list[WorkAssignment]:
    """Hub-and-spoke: everyone talks to the first host; hub does no work."""
    hub = hosts[0]
    out = [WorkAssignment(hub, 0.0, {h: 80_000.0 for h in hosts[1:]})]
    out.extend(
        WorkAssignment(h, 150.0, {hub: 400_000.0}, footprint_mb=2.0)
        for h in hosts[1:]
    )
    return out


def _clique(hosts: list[str]) -> list[WorkAssignment]:
    """All-pairs exchange over (at most) the first five hosts."""
    group = hosts[:5]
    return [
        WorkAssignment(h, 75.0, {p: 60_000.0 for p in group if p != h})
        for h in group
    ]


SHAPES = {"ring": _ring, "star": _star, "clique": _clique}


def _pair(builder_key: str, seed: int, shape_key: str):
    """Two independently built (testbed, assignments) copies of one case."""
    out = []
    for _ in range(2):
        testbed = BUILDERS[builder_key](seed=seed)
        out.append((testbed, SHAPES[shape_key](sorted(testbed.topology.hosts))))
    return out


def _assert_identical(fast, ref):
    assert fast.total_time == ref.total_time
    assert fast.iteration_times == ref.iteration_times
    assert fast.host_busy_time == ref.host_busy_time


@pytest.mark.parametrize("shape_key", sorted(SHAPES))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("builder_key", sorted(BUILDERS))
def test_fast_executor_bit_identical(builder_key, seed, shape_key):
    (tb1, a1), (tb2, a2) = _pair(builder_key, seed, shape_key)
    fast = CompiledExecution(tb1.topology, a1).run(20, t0=3.5)
    ref = simulate_iterations_reference(tb2.topology, a2, 20, t0=3.5)
    _assert_identical(fast, ref)


def test_dispatcher_selects_by_fastpath_gate():
    (tb1, a1), (tb2, a2) = _pair("sdsc_pcl", 5, "ring")
    with perf.fastpath(True):
        fast = simulate_iterations(tb1.topology, a1, 15)
    with perf.fastpath(False):
        ref = simulate_iterations(tb2.topology, a2, 15)
    _assert_identical(fast, ref)


def test_mutable_injected_loads_bit_identical():
    """Injector-mutated hosts (live-query fallback) stay bit-identical."""
    def build():
        testbed = sdsc_pcl_testbed(seed=9)
        injectors = make_injectable(testbed)
        for injector in injectors.values():
            injector.occupy(10.0, 300.0, 0.5)
            injector.occupy(60.0, 145.0, 0.25)
        return testbed

    tb1, tb2 = build(), build()
    hosts = sorted(tb1.topology.hosts)
    a1, a2 = _ring(hosts), _ring(hosts)
    fast = CompiledExecution(tb1.topology, a1).run(20, t0=1.5)
    ref = simulate_iterations_reference(tb2.topology, a2, 20, t0=1.5)
    _assert_identical(fast, ref)


def test_compiled_execution_reusable_across_start_times():
    """One compilation, chunked runs — the adaptive-runner usage pattern."""
    tb1 = sdsc_pcl_testbed(seed=13)
    tb2 = sdsc_pcl_testbed(seed=13)
    hosts = sorted(tb1.topology.hosts)
    compiled = CompiledExecution(tb1.topology, _ring(hosts))

    t = 0.0
    for _ in range(4):
        chunk_fast = compiled.run(5, t0=t)
        chunk_ref = simulate_iterations_reference(
            tb2.topology, _ring(hosts), 5, t0=t
        )
        _assert_identical(chunk_fast, chunk_ref)
        t += chunk_fast.total_time


def test_long_horizon_table_growth():
    """Runs long enough to force repeated table doubling stay identical."""
    tb1 = sdsc_pcl_testbed(seed=3)
    tb2 = sdsc_pcl_testbed(seed=3)
    hosts = sorted(tb1.topology.hosts)

    def heavy():
        return [WorkAssignment(h, 4000.0, {}) for h in hosts]

    fast = CompiledExecution(tb1.topology, heavy()).run(8)
    ref = simulate_iterations_reference(tb2.topology, heavy(), 8)
    _assert_identical(fast, ref)


class TestValidation:
    """The dispatcher rejects bad allocations up front, naming the culprit."""

    def _testbed(self):
        return sdsc_pcl_testbed(seed=1)

    def test_unknown_host_named(self):
        tb = self._testbed()
        with pytest.raises(ValueError, match="'ghost'.*not in the topology"):
            simulate_iterations(
                tb.topology, [WorkAssignment("ghost", 10.0)], 5
            )

    def test_unknown_peer_named(self):
        tb = self._testbed()
        with pytest.raises(ValueError, match="comm peer 'nowhere'"):
            simulate_iterations(
                tb.topology,
                [WorkAssignment("sparc2", 10.0, {"nowhere": 1000.0})],
                5,
            )

    def test_reference_validates_identically(self):
        tb = self._testbed()
        with pytest.raises(ValueError, match="comm peer 'nowhere'"):
            simulate_iterations_reference(
                tb.topology,
                [WorkAssignment("sparc2", 10.0, {"nowhere": 1000.0})],
                5,
            )

    def test_zero_byte_peer_not_validated(self):
        # A zero-byte entry never routes, so an unknown name is harmless —
        # mirrors the execution loops, which skip it before routing.
        tb = self._testbed()
        result = simulate_iterations(
            tb.topology,
            [WorkAssignment("sparc2", 10.0, {"nowhere": 0.0})],
            3,
        )
        assert result.total_time > 0.0

    def test_duplicate_host_rejected(self):
        tb = self._testbed()
        with pytest.raises(ValueError, match="duplicate"):
            simulate_iterations(
                tb.topology,
                [WorkAssignment("sparc2", 10.0), WorkAssignment("sparc2", 5.0)],
                5,
            )

    def test_empty_assignments_rejected(self):
        tb = self._testbed()
        with pytest.raises(ValueError, match="at least one"):
            simulate_iterations(tb.topology, [], 5)

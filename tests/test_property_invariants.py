"""Cross-cutting property-based invariants.

Hypothesis-driven checks spanning module boundaries: schedules produced
by any planner conserve work and respect capacities; the coordinator's
choice is optimal among its evaluations; the adaptive ensemble never
predicts outside sane bounds for bounded series; engine determinism under
random process mixes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinator import AppLeSAgent
from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import InformationPool
from repro.core.planner import TimeBalancedPlanner, balance_divisible_work
from repro.core.resources import ResourcePool
from repro.core.userspec import UserSpecification
from repro.nws.ensemble import AdaptiveEnsemble
from repro.sim.engine import Simulator
from repro.sim.testbeds import sdsc_pcl_testbed

_TESTBED = sdsc_pcl_testbed(seed=31)


def _info(total_units: float, max_machines: int | None = None):
    hat = HeterogeneousApplicationTemplate(
        name="toy", paradigm="data-parallel",
        tasks=(TaskCharacteristics("work", flop_per_unit=1e-3),),
        communication=CommunicationCharacteristics(),
        structure=StructureInfo(total_units=total_units, iterations=1),
    )
    return InformationPool(
        pool=ResourcePool(_TESTBED.topology), hat=hat,
        userspec=UserSpecification(max_machines=max_machines),
    )


class TestPlannerInvariants:
    @given(
        total=st.floats(min_value=1e3, max_value=1e8),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_plan_conserves_work(self, total, k):
        info = _info(total)
        machines = _TESTBED.host_names[:k]
        sched = TimeBalancedPlanner().plan(machines, info)
        assert sched is not None
        assert sched.total_work_units == pytest.approx(total, rel=1e-6)
        assert all(a.work_units >= 0 for a in sched.allocations)

    @given(
        total=st.floats(min_value=1e3, max_value=1e7),
        max_machines=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_coordinator_choice_is_minimum(self, total, max_machines):
        info = _info(total, max_machines=max_machines)
        decision = AppLeSAgent(info, planner=TimeBalancedPlanner()).schedule()
        feasible = [e.objective for e in decision.evaluations if e.feasible]
        assert decision.best_objective == min(feasible)
        assert all(len(e.resource_set) <= max_machines
                   for e in decision.evaluations)

    @given(
        rates=st.lists(st.floats(min_value=0.1, max_value=100.0),
                       min_size=2, max_size=8),
        costs=st.lists(st.floats(min_value=0.0, max_value=10.0),
                       min_size=2, max_size=8),
        total=st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=40, deadline=None)
    def test_balance_dominates_any_subset_single(self, rates, costs, total):
        """The balanced makespan never exceeds using any single machine."""
        n = min(len(rates), len(costs))
        rates, costs = rates[:n], costs[:n]
        result = balance_divisible_work(rates, costs, total)
        assert result is not None
        for r, c in zip(rates, costs):
            assert result.makespan <= total / r + c + 1e-6


class TestEnsembleInvariants:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3,
                    max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_averaging_members_stay_in_range(self, xs):
        # Only the AR member may extrapolate; everything else must stay in
        # the observed hull.  The ensemble therefore stays within a small
        # tolerance of it whenever a non-AR member is winning.
        ens = AdaptiveEnsemble()
        for x in xs:
            ens.update(x)
        forecast = ens.forecast()
        lo, hi = min(xs), max(xs)
        if not forecast.method.startswith("ar("):
            assert lo - 1e-9 <= forecast.value <= hi + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2,
                    max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_ensemble_deterministic(self, xs):
        def run():
            ens = AdaptiveEnsemble()
            for x in xs:
                ens.update(x)
            return ens.forecast()

        assert run() == run()


class TestEngineInvariants:
    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                        min_size=1, max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_events_processed_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired: list[float] = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.01, max_value=10.0),
                        min_size=1, max_size=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_process_mix_deterministic(self, delays):
        def run():
            sim = Simulator()
            order = []

            def proc(tag, d):
                yield d
                order.append((tag, sim.now))
                yield d / 2
                order.append((tag, sim.now))

            for i, d in enumerate(delays):
                sim.process(proc(i, d))
            sim.run()
            return order

        assert run() == run()

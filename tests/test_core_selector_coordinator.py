"""Tests for the Resource Selector and the Coordinator blueprint."""

from __future__ import annotations

import pytest

from repro.core.actuator import RecordingActuator
from repro.core.coordinator import AppLeSAgent, PruningStats
from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import InformationPool
from repro.core.planner import TimeBalancedPlanner
from repro.core.resources import ResourcePool
from repro.core.selector import LocalitySelector, ResourceSelector, SeededSelector
from repro.core.userspec import UserSpecification
from repro.sim import nile_testbed


@pytest.fixture(scope="module")
def nile_bed4():
    """A 4-site NILE configuration: 16 hosts, above the exhaustive bound."""
    return nile_testbed(seed=1996, nsites=4)


def make_info(testbed, userspec=None, nws=None, arch_limited=None):
    implementations = {arch_limited: 1.0} if arch_limited else {}
    hat = HeterogeneousApplicationTemplate(
        name="toy", paradigm="data-parallel",
        tasks=(TaskCharacteristics("work", flop_per_unit=1e-3,
                                   implementations=implementations),),
        communication=CommunicationCharacteristics(
            pattern="stencil", bytes_per_border_unit=8.0
        ),
        structure=StructureInfo(total_units=1e6, iterations=1),
    )
    return InformationPool(
        pool=ResourcePool(testbed.topology, nws),
        hat=hat,
        userspec=userspec or UserSpecification(),
    )


class TestFeasibleMachines:
    def test_all_feasible_by_default(self, testbed):
        sel = ResourceSelector()
        assert set(sel.feasible_machines(make_info(testbed))) == set(testbed.host_names)

    def test_userspec_filters(self, testbed):
        us = UserSpecification(excluded_machines=frozenset({"sparc2", "sparc10"}))
        sel = ResourceSelector()
        feas = sel.feasible_machines(make_info(testbed, us))
        assert "sparc2" not in feas and "sparc10" not in feas

    def test_capability_filter(self, testbed):
        us = UserSpecification(required_capabilities=frozenset({"corba-orb"}))
        feas = ResourceSelector().feasible_machines(make_info(testbed, us))
        # Only the alphas carry a CORBA ORB in the Figure 2 testbed.
        assert set(feas) == {"alpha1", "alpha2", "alpha3", "alpha4"}

    def test_architecture_filter(self, testbed):
        feas = ResourceSelector().feasible_machines(
            make_info(testbed, arch_limited="rs6000")
        )
        assert set(feas) == {"rs6000a", "rs6000b"}


class TestCandidateSets:
    def test_exhaustive_counts(self, testbed):
        sets = ResourceSelector().candidate_sets(make_info(testbed))
        assert len(sets) == 2**8 - 1

    def test_max_machines_respected(self, testbed):
        us = UserSpecification(max_machines=2)
        sets = ResourceSelector().candidate_sets(make_info(testbed, us))
        assert all(len(s) <= 2 for s in sets)
        assert len(sets) == 8 + 28

    def test_max_sets_cap(self, testbed):
        sel = ResourceSelector(max_sets=10)
        assert len(sel.candidate_sets(make_info(testbed))) == 10

    def test_exhaustive_count_excludes_empty_set(self):
        # 2^n - 1, not 2^n: the empty set can run nothing.
        assert ResourceSelector.exhaustive_count(8) == 255
        assert ResourceSelector.exhaustive_count(12) == 4095
        assert ResourceSelector.exhaustive_count(0) == 0
        with pytest.raises(ValueError):
            ResourceSelector.exhaustive_count(-1)

    def test_twelve_machine_pool_yields_4095(self, nile_bed):
        # nile has exactly 12 hosts — the documented exhaustive_limit edge.
        info = make_info(nile_bed)
        assert len(info.pool.machine_names()) == 12
        sets = ResourceSelector().candidate_sets(info)
        assert len(sets) == ResourceSelector.exhaustive_count(12) == 4095

    def test_truncation_is_deterministic(self, testbed):
        info = make_info(testbed)
        full = ResourceSelector().candidate_sets(info)
        capped = ResourceSelector(max_sets=40).candidate_sets(info)
        # Same pool → same result, call after call.
        assert capped == ResourceSelector(max_sets=40).candidate_sets(info)
        assert len(capped) == 40
        # The cap keeps the deterministic enumeration prefix (sizes
        # ascending, combinations order) before priority sorting, so every
        # kept set comes from the start of the uncapped enumeration.
        enumerated = ResourceSelector()._exhaustive(
            ResourceSelector().feasible_machines(info), 8
        )
        assert set(capped) == set(enumerated[:40])
        assert set(capped) <= set(full)

    def test_greedy_mode_for_big_pools(self, nile_bed):
        sel = ResourceSelector(exhaustive_limit=4)
        sets = sel.candidate_sets(make_info(nile_bed))
        # Greedy ladder: far fewer than 2^12 sets, but non-empty and unique.
        assert 0 < len(sets) < 2**12
        assert len(set(sets)) == len(sets)

    def test_empty_when_filtered_out(self, testbed):
        us = UserSpecification(accessible_machines=frozenset())
        assert ResourceSelector().candidate_sets(make_info(testbed, us)) == []

    def test_coupled_app_prioritises_tight_sets(self, testbed):
        sets = ResourceSelector().candidate_sets(make_info(testbed))
        # With stencil coupling, the first multi-machine candidate sharing a
        # segment should appear before any cross-site pair.
        first_pair = next(s for s in sets if len(s) == 2)
        sites = {testbed.topology.host(m).site for m in first_pair}
        assert len(sites) == 1


class TestCoordinator:
    def test_schedule_picks_minimum_objective(self, testbed):
        info = make_info(testbed)
        agent = AppLeSAgent(info, planner=TimeBalancedPlanner())
        decision = agent.schedule()
        finite = [e for e in decision.evaluations if e.feasible]
        assert decision.best_objective == min(e.objective for e in finite)
        assert decision.candidates_considered == 255

    def test_run_actuates_best(self, testbed):
        info = make_info(testbed)
        actuator = RecordingActuator()
        agent = AppLeSAgent(info, planner=TimeBalancedPlanner(), actuator=actuator)
        decision, result = agent.run(t0=5.0)
        assert actuator.last_schedule is decision.best
        assert actuator.actuated[0][0] == 5.0

    def test_no_candidates_raises(self, testbed):
        us = UserSpecification(accessible_machines=frozenset())
        info = make_info(testbed, us)
        agent = AppLeSAgent(info, planner=TimeBalancedPlanner())
        with pytest.raises(RuntimeError, match="no candidate sets"):
            agent.schedule()

    def test_infeasible_planner_raises(self, testbed):
        class NonePlanner:
            def plan(self, rset, info):
                return None

        info = make_info(testbed)
        agent = AppLeSAgent(info, planner=NonePlanner())
        with pytest.raises(RuntimeError, match="no feasible schedule"):
            agent.schedule()

    def test_metric_threaded_from_userspec(self, testbed):
        us = UserSpecification(performance_metric="execution_time")
        info = make_info(testbed, us)
        agent = AppLeSAgent(info, planner=TimeBalancedPlanner())
        assert agent.schedule().metric == "execution_time"

    def test_dynamic_information_changes_choice(self, testbed, warmed_nws):
        nominal = AppLeSAgent(make_info(testbed), planner=TimeBalancedPlanner())
        dynamic = AppLeSAgent(
            make_info(testbed, nws=warmed_nws), planner=TimeBalancedPlanner()
        )
        nom_best = nominal.schedule().best
        dyn_best = dynamic.schedule().best
        # The loaded rs6000a gets a smaller share once the NWS reports load.
        def share(schedule, machine):
            try:
                return schedule.allocation_for(machine).work_units
            except KeyError:
                return 0.0

        assert share(dyn_best, "rs6000a") < share(nom_best, "rs6000a")


class TestSelectorRegimes:
    def test_invalid_regime_rejected(self):
        with pytest.raises(ValueError, match="regime must be one of"):
            ResourceSelector(regime="optimal")

    def test_exhaustive_regime_over_bound_names_machine_count(self, nile_bed4):
        """Forcing exhaustive enumeration above 2^exhaustive_limit - 1 is a
        loud error that says how many machines were feasible, not a silent
        greedy fallback."""
        sel = ResourceSelector(regime="exhaustive")
        n = len(nile_bed4.host_names)
        assert n > 12
        with pytest.raises(ValueError) as err:
            sel.candidate_sets(make_info(nile_bed4))
        message = str(err.value)
        assert f"{n} feasible" in message
        assert "2^12 - 1" in message
        assert "regime='greedy'" in message

    def test_exhaustive_regime_honours_raised_limit(self, nile_bed4):
        n = len(nile_bed4.host_names)
        sel = ResourceSelector(
            regime="exhaustive", exhaustive_limit=n, max_sets=2**n - 1
        )
        sets = sel.candidate_sets(make_info(nile_bed4))
        assert len(sets) == 2**n - 1

    def test_greedy_regime_on_small_pool(self, testbed):
        """regime='greedy' skips enumeration even where auto would not."""
        greedy = ResourceSelector(regime="greedy").candidate_sets(make_info(testbed))
        auto = ResourceSelector().candidate_sets(make_info(testbed))
        assert len(greedy) < len(auto) == 255


class TestAdaptiveSelectors:
    def test_extra_sets_superset_of_greedy_ladder(self, nile_bed4):
        """Seeded/locality candidates extend the greedy ladder, never drop
        from it — regret against the ladder can only shrink."""
        info = make_info(nile_bed4)
        ladder = set(ResourceSelector(regime="greedy").candidate_sets(info))
        for cls in (SeededSelector, LocalitySelector):
            assert ladder <= set(cls().candidate_sets(info)), cls.__name__
        # Locality's cross-site unions exist even with nothing observed;
        # seeded grows once it has a winner to build neighbourhoods around.
        assert len(set(LocalitySelector().candidate_sets(info))) > len(ladder)
        seeded = SeededSelector()
        seeded.observe(tuple(sorted(nile_bed4.host_names)[:3]))
        assert len(set(seeded.candidate_sets(info))) > len(ladder)

    def test_observe_replays_previous_winner(self, nile_bed4):
        info = make_info(nile_bed4)
        sel = SeededSelector()
        winner = tuple(sorted(nile_bed4.host_names)[:2])
        sel.observe(winner)
        assert winner in sel.candidate_sets(info)

    def test_observe_adapts_breadth_from_pruning(self):
        sel = SeededSelector(breadth=4)
        productive = PruningStats(candidates=10, planned=3, pruned=7, bounded=True)
        sel.observe(("a",), productive)
        assert sel.breadth == 5
        starved = PruningStats(candidates=10, planned=9, pruned=1, bounded=True)
        for _ in range(10):
            sel.observe(("a",), starved)
        # Narrowing stops at the floor: cross-site pairing needs >= 3 sites.
        assert sel.breadth == sel.min_breadth == 3

    def test_winner_memory_bounded_and_deduplicated(self):
        sel = SeededSelector(memory=2)
        sel.observe(("a",))
        sel.observe(("b",))
        sel.observe(("a",))
        assert sel._winners == [("a",), ("b",)]
        sel.observe(("c",))
        assert sel._winners == [("c",), ("a",)]

"""Tests for the resource pool and the logical-distance metric."""

from __future__ import annotations

import pytest

from repro.core.distance import logical_distance, rank_by_distance, set_diameter
from repro.core.resources import ResourcePool


class TestResourcePool:
    def test_machine_names(self, testbed):
        pool = ResourcePool(testbed.topology)
        assert set(pool.machine_names()) == set(testbed.host_names)

    def test_machine_info_fields(self, testbed):
        pool = ResourcePool(testbed.topology)
        info = pool.machine_info("alpha1")
        assert info.site == "SDSC"
        assert info.arch == "alpha"
        assert info.speed_mflops == 45.0
        assert "corba-orb" in info.capabilities

    def test_nominal_predictions_without_nws(self, testbed):
        pool = ResourcePool(testbed.topology)
        assert pool.predicted_speed("alpha1") == 45.0
        assert pool.predicted_availability("alpha1") == 1.0

    def test_dynamic_predictions_with_nws(self, testbed, warmed_nws):
        pool = ResourcePool(testbed.topology, warmed_nws)
        # Non-dedicated hosts deliver strictly less than nominal.
        assert pool.predicted_speed("rs6000a") < 30.0
        assert 0.0 < pool.predicted_availability("rs6000a") < 1.0

    def test_predicted_bandwidth_self_infinite(self, testbed):
        pool = ResourcePool(testbed.topology)
        assert pool.predicted_bandwidth("alpha1", "alpha1") == float("inf")

    def test_predicted_transfer_nominal_vs_dynamic(self, testbed, warmed_nws):
        nominal = ResourcePool(testbed.topology)
        dynamic = ResourcePool(testbed.topology, warmed_nws)
        n_t = nominal.predicted_transfer_time("sparc2", "alpha1", 1e6)
        d_t = dynamic.predicted_transfer_time("sparc2", "alpha1", 1e6)
        # The WAN is contended (mean availability ~0.5), so the dynamic
        # prediction must be slower than nominal.
        assert d_t > n_t

    def test_unknown_machine_raises(self, testbed):
        pool = ResourcePool(testbed.topology)
        with pytest.raises(KeyError):
            pool.machine_info("nope")


class TestLogicalDistance:
    def test_zero_coupling_flat_world(self, testbed):
        pool = ResourcePool(testbed.topology)
        assert logical_distance(pool, "sparc2", "alpha1", 0.0) == 0.0

    def test_self_distance_zero(self, testbed):
        pool = ResourcePool(testbed.topology)
        assert logical_distance(pool, "alpha1", "alpha1", 1e9) == 0.0

    def test_coupled_app_sees_network(self, testbed):
        pool = ResourcePool(testbed.topology)
        near = logical_distance(pool, "alpha1", "alpha2", 32_000)
        far = logical_distance(pool, "alpha1", "sparc2", 32_000)
        assert far > near

    def test_distance_scales_with_coupling(self, testbed):
        pool = ResourcePool(testbed.topology)
        light = logical_distance(pool, "alpha1", "sparc2", 1_000)
        heavy = logical_distance(pool, "alpha1", "sparc2", 1_000_000)
        assert heavy > light

    def test_negative_coupling_rejected(self, testbed):
        pool = ResourcePool(testbed.topology)
        with pytest.raises(ValueError):
            logical_distance(pool, "alpha1", "alpha2", -1.0)

    def test_rank_by_distance(self, testbed):
        pool = ResourcePool(testbed.topology)
        ranked = rank_by_distance(
            pool, "alpha1", ["sparc2", "alpha2", "rs6000a"], 32_000
        )
        assert ranked[0] == "alpha2"  # same FDDI ring

    def test_rank_stable_when_uncoupled(self, testbed):
        pool = ResourcePool(testbed.topology)
        cands = ["sparc2", "alpha2", "rs6000a"]
        assert rank_by_distance(pool, "alpha1", cands, 0.0) == cands

    def test_set_diameter(self, testbed):
        pool = ResourcePool(testbed.topology)
        tight = set_diameter(pool, ["alpha1", "alpha2", "alpha3"], 32_000)
        loose = set_diameter(pool, ["alpha1", "sparc2"], 32_000)
        assert loose > tight
        assert set_diameter(pool, ["alpha1"], 32_000) == 0.0

"""Tests for the §3.2 wait-or-run decision."""

from __future__ import annotations

import pytest

from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.userspec import UserSpecification
from repro.core.wait_or_run import Reservation, decide_wait_or_run
from repro.jacobi.apples import JacobiPlanner
from repro.jacobi.grid import JacobiProblem, jacobi_hat


def _info(testbed_sp2, nws):
    problem = JacobiProblem(n=3000, iterations=200)
    info = InformationPool(
        pool=ResourcePool(testbed_sp2.topology, nws), hat=jacobi_hat(problem)
    )
    return info, JacobiPlanner(problem)


class TestReservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            Reservation(machines=(), wait_s=10.0)
        with pytest.raises(ValueError):
            Reservation(machines=("sp2-1",), wait_s=-1.0)


class TestDecideWaitOrRun:
    def test_short_wait_for_fast_machines_wins(self, testbed_sp2, warmed_nws_sp2):
        info, planner = _info(testbed_sp2, warmed_nws_sp2)
        # The SP-2 pair dwarfs the loaded workstations; a short queue wait
        # is worth it.  Exclude the SP-2s from "run now" (they are what we
        # would be queueing for).
        shared = [m for m in testbed_sp2.host_names if not m.startswith("sp2")]
        decision = decide_wait_or_run(
            info, planner,
            Reservation(machines=("sp2-1", "sp2-2"), wait_s=5.0),
            shared_machines=shared,
        )
        assert decision.wait
        assert decision.wait_total_s < decision.run_now_s

    def test_enormous_wait_loses(self, testbed_sp2, warmed_nws_sp2):
        info, planner = _info(testbed_sp2, warmed_nws_sp2)
        shared = [m for m in testbed_sp2.host_names if not m.startswith("sp2")]
        decision = decide_wait_or_run(
            info, planner,
            Reservation(machines=("sp2-1", "sp2-2"), wait_s=1e6),
            shared_machines=shared,
        )
        assert not decision.wait
        assert decision.now_schedule is not None

    def test_crossover_wait_exists(self, testbed_sp2, warmed_nws_sp2):
        """Somewhere between 'no wait' and 'forever' the decision flips —
        the comparison is a real tradeoff, not a constant."""
        info, planner = _info(testbed_sp2, warmed_nws_sp2)
        shared = [m for m in testbed_sp2.host_names if not m.startswith("sp2")]

        def wait_for(w):
            return decide_wait_or_run(
                info, planner, Reservation(("sp2-1", "sp2-2"), w), shared
            ).wait

        assert wait_for(0.0)
        assert not wait_for(1e6)

    def test_dedicated_branch_sees_full_availability(self, testbed_sp2, warmed_nws_sp2):
        info, planner = _info(testbed_sp2, warmed_nws_sp2)
        decision = decide_wait_or_run(
            info, planner,
            Reservation(machines=("rs6000a", "rs6000b"), wait_s=0.0),
            shared_machines=["rs6000a", "rs6000b"],
        )
        # Same machines both branches: dedicated (nominal) must predict
        # faster than contended "now".
        assert decision.wait_total_s < decision.run_now_s

    def test_default_shared_respects_userspec(self, testbed_sp2, warmed_nws_sp2):
        problem = JacobiProblem(n=1000, iterations=10)
        us = UserSpecification(accessible_machines=frozenset({"alpha1"}))
        info = InformationPool(
            pool=ResourcePool(testbed_sp2.topology, warmed_nws_sp2),
            hat=jacobi_hat(problem),
            userspec=us,
        )
        decision = decide_wait_or_run(
            info, JacobiPlanner(problem), Reservation(("sp2-1",), 1e9)
        )
        assert decision.now_schedule is not None
        assert decision.now_schedule.resource_set == ("alpha1",)

    def test_advantage(self, testbed_sp2, warmed_nws_sp2):
        info, planner = _info(testbed_sp2, warmed_nws_sp2)
        decision = decide_wait_or_run(
            info, planner, Reservation(("sp2-1", "sp2-2"), 5.0)
        )
        assert decision.advantage_s == pytest.approx(
            abs(decision.run_now_s - decision.wait_total_s)
        )

"""The canonical sweep (:mod:`repro.core.sweep`): unit contracts plus the
cross-entry-point pin.

``replay_sweep`` is the one implementation of the seeded-incumbent,
epsilon-margin-pruning candidate sweep; the Coordinator's solo
``schedule()`` (scalar and vectorised) and the scheduling service's
batched ``_sweep`` all replay it.  The unit tests pin its control flow —
seed choice, evaluation order, the pruning predicate, tie-breaking — and
the integration test pins that both entry points report the *identical*
:class:`PruningStats` for the same decision, which is the whole point of
deduplicating the loop.
"""

from __future__ import annotations

import pytest

from repro.core.sweep import (
    PRUNE_RELATIVE_EPS,
    PruningStats,
    SweepResult,
    replay_sweep,
)
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws import NetworkWeatherService
from repro.service import DecisionRequest, SchedulingService
from repro.sim import sdsc_pcl_testbed

INF = float("inf")


def _spy(objectives):
    """An objective callable that records its evaluation order."""
    order = []

    def objective(idx):
        order.append(idx)
        return objectives[idx]

    return objective, order


# -- replay_sweep control flow --------------------------------------------
class TestReplaySweep:
    def test_unbounded_sweep_is_the_reference_loop(self):
        objectives = [4.0, 2.0, 3.0, 2.5]
        objective, order = _spy(objectives)
        incumbents = []
        result = replay_sweep(
            4, None, objective,
            lambda idx, obj, seeded: incumbents.append((idx, obj, seeded)),
        )
        assert order == [0, 1, 2, 3]  # no bounds: strict candidate order
        assert result.best_idx == 1
        assert result.best_objective == 2.0
        assert result.seed_idx == -1
        assert result.pruned == (False,) * 4
        assert incumbents == [(0, 4.0, False), (1, 2.0, False)]

    def test_seed_candidate_evaluated_first(self):
        objectives = [4.0, 3.0, 2.0]
        bounds = [3.0, 2.0, 1.0]  # smallest bound at index 2
        objective, order = _spy(objectives)
        incumbents = []
        result = replay_sweep(
            3, bounds, objective,
            lambda idx, obj, seeded: incumbents.append((idx, obj, seeded)),
        )
        assert order[0] == 2
        assert incumbents[0] == (2, 2.0, True)  # only the seed is flagged
        assert result.seed_idx == 2
        assert result.best_idx == 2

    def test_pruning_requires_clear_relative_margin(self):
        # Seed (index 0) sets the incumbent at 10.0.  Index 1's bound sits
        # exactly on the epsilon margin (pruned); index 2's bound equals
        # the incumbent (NOT pruned: could be an exact tie).
        bounds = [0.0, 10.0 * (1.0 + PRUNE_RELATIVE_EPS), 10.0]
        objectives = [10.0, 99.0, 12.0]
        objective, order = _spy(objectives)
        result = replay_sweep(3, bounds, objective)
        assert result.pruned == (False, True, False)
        assert 1 not in order  # pruned candidates are never evaluated
        assert result.best_idx == 0

    def test_ties_go_to_the_earliest_index(self):
        # The seed evaluates index 1 first; index 0 then ties its
        # objective and must take the incumbent (reference first-minimum).
        bounds = [2.0, 1.0]
        objectives = [5.0, 5.0]
        objective, order = _spy(objectives)
        result = replay_sweep(2, bounds, objective)
        assert order == [1, 0]
        assert result.best_idx == 0
        assert result.best_objective == 5.0

    def test_all_infeasible_reports_no_winner(self):
        incumbents = []
        result = replay_sweep(
            3, [1.0, 2.0, 3.0], lambda idx: INF,
            lambda idx, obj, seeded: incumbents.append(idx),
        )
        assert result.best_idx == -1
        assert result.best_objective == INF
        assert incumbents == []  # an infinite objective is never an incumbent
        assert result.pruned == (False,) * 3  # no finite incumbent, no pruning

    def test_single_candidate_never_seeds(self):
        objective, order = _spy([7.0])
        result = replay_sweep(1, [1.0], objective)
        assert result.seed_idx == -1
        assert order == [0]
        assert result.best_idx == 0

    def test_stats_account_for_every_candidate(self):
        result = SweepResult(
            best_idx=0, best_objective=1.0, seed_idx=0,
            pruned=(False, True, True, False),
        )
        stats = result.stats(bounded=True)
        assert stats == PruningStats(candidates=4, planned=2, pruned=2, bounded=True)
        assert stats.planned + stats.pruned == stats.candidates
        assert stats.pruned_fraction == 0.5


# -- the cross-entry-point pin --------------------------------------------
AT = 420.0


def test_pruning_stats_identical_across_entry_points():
    """Coordinator ``schedule()`` and service ``decide()`` replay the same
    sweep, so the same decision yields the *identical* PruningStats —
    under whichever gate mode the suite is running."""
    problem = JacobiProblem(n=600, iterations=20)

    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    service = SchedulingService(testbed, nws)
    (answer,) = service.decide([DecisionRequest(problem=problem, at=AT)])

    solo_bed = sdsc_pcl_testbed(seed=1996)
    solo_nws = NetworkWeatherService.for_testbed(solo_bed, seed=7)
    solo_nws.advance_to(AT)
    agent = make_jacobi_agent(solo_bed, problem, nws=solo_nws)
    decision = agent.schedule()

    assert answer.pruning == decision.pruning
    assert answer.best_objective == decision.best_objective
    assert answer.predicted_time == decision.best.predicted_time
    assert answer.machines == tuple(decision.best.resource_set)


def test_pruning_stats_is_one_class():
    """The coordinator re-exports the sweep module's PruningStats — one
    dataclass, not two replicas that happen to compare equal."""
    from repro.core.coordinator import PruningStats as coordinator_stats

    assert coordinator_stats is PruningStats


def test_sweep_matches_brute_force_minimum():
    """Whatever the bounds, the sweep's winner equals the brute-force
    first minimum over all objectives (bounds are admissible here)."""
    objectives = [3.0, 1.5, 2.0, 1.5, 9.0]
    bounds = [obj * 0.9 for obj in objectives]  # admissible by construction
    result = replay_sweep(5, bounds, objectives.__getitem__)
    best = min(objectives)
    assert result.best_objective == best
    assert result.best_idx == objectives.index(best)
    for idx, skipped in enumerate(result.pruned):
        if skipped:
            assert bounds[idx] >= best * (1.0 + PRUNE_RELATIVE_EPS)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))

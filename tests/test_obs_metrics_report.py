"""Unit tests for the metrics registry and the trace report/diff tools."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.report import (
    TraceData,
    event_table,
    metric_table,
    read_trace,
    render_report,
    span_table,
    trace_diff,
)
from repro.obs.trace import Tracer, save_records


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.counter("x").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot add"):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(7.5)
        assert reg.gauge("g").value == 7.5

    def test_histogram_moments(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(4.0)
        assert h.min == 2.0 and h.max == 6.0

    def test_empty_histogram_record_has_null_range(self):
        rec = MetricsRegistry().histogram("h").as_record()
        assert rec["count"] == 0
        assert rec["min"] is None and rec["max"] is None

    def test_kind_aliasing_raises(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("name")

    def test_as_records_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.gauge("alpha").set(1)
        names = [r["name"] for r in reg.as_records()]
        assert names == sorted(names)


class TestMerge:
    def test_merge_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(5)
        a.merge_records(b.as_records())
        assert a.counter("n").value == 7

    def test_merge_histograms_combine(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(9.0)
        b.histogram("h").observe(5.0)
        a.merge_records(b.as_records())
        h = a.histogram("h")
        assert h.count == 3
        assert h.total == pytest.approx(15.0)
        assert h.min == 1.0 and h.max == 9.0

    def test_merge_empty_histogram_is_noop(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(2.0)
        b.histogram("h")  # created but never observed
        a.merge_records(b.as_records())
        assert a.histogram("h").count == 1

    def test_merge_rejects_non_metric(self):
        with pytest.raises(ValueError, match="not a metric record"):
            MetricsRegistry().merge_records([{"kind": "span"}])

    def test_null_registry_len_zero(self):
        null = NullMetricsRegistry()
        null.counter("a").inc()
        assert len(null) == 0
        assert null.as_dict() == {}


def sample_trace() -> Tracer:
    tr = Tracer()
    with tr.span("core.decision", layer="core", t=0.0) as sp:
        sp.set_end(3.0)
        sp.event("core.incumbent", t=1.0, idx=0)
        with tr.span("sim.execute", layer="sim", t=1.0):
            pass
    tr.metrics.counter("core.pruned").inc(10)
    tr.metrics.gauge("nws.rmse.mean").set(0.2)
    tr.metrics.histogram("service.batch_size").observe(8)
    return tr


class TestReport:
    def test_read_trace_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_records(path, sample_trace().records())
        data = read_trace(path)
        assert len(data.spans) == 2
        assert len(data.events) == 1
        assert set(data.metrics) == {
            "core.pruned", "nws.rmse.mean", "service.batch_size",
        }
        assert data.layers == {"core", "sim"}

    def test_span_children(self):
        data = TraceData(records=sample_trace().records())
        root = next(s for s in data.spans if s["name"] == "core.decision")
        kids = data.span_children(root["id"])
        assert [k["name"] for k in kids] == ["sim.execute"]

    def test_span_table_groups(self):
        table = span_table(TraceData(records=sample_trace().records()))
        text = table.render()
        assert "core.decision" in text and "sim.execute" in text

    def test_event_table_counts(self):
        text = event_table(TraceData(records=sample_trace().records())).render()
        assert "core.incumbent" in text

    def test_metric_table_shows_all_kinds(self):
        text = metric_table(TraceData(records=sample_trace().records())).render()
        assert "core.pruned" in text
        assert "histogram" in text and "gauge" in text

    def test_render_report_mentions_layers(self):
        report = render_report(TraceData(records=sample_trace().records()))
        assert "layers: core, sim" in report
        assert "Spans" in report and "Metrics" in report


class TestDiff:
    def test_diff_reports_deltas(self):
        a = TraceData(records=sample_trace().records())
        b_tracer = sample_trace()
        b_tracer.metrics.counter("core.pruned").inc(5)  # 15 vs 10
        with b_tracer.span("core.decision", layer="core", t=5.0):
            pass  # extra span occurrence
        b = TraceData(records=b_tracer.records())
        table = trace_diff(a, b, label_a="before", label_b="after")
        text = table.render()
        assert "metric:core.pruned" in text
        rows = {row[0]: row for row in table.rows}
        assert rows["metric:core.pruned"][1:] == [10, 15, 5]
        assert rows["span:core:core.decision"][1:] == [1, 2, 1]

    def test_diff_handles_one_sided_quantities(self):
        a = TraceData(records=sample_trace().records())
        b = TraceData(records=Tracer().records())
        rows = {row[0]: row for row in trace_diff(a, b).rows}
        assert rows["metric:core.pruned"][2] == 0.0

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        names = set(sub.choices)
        assert {"fig34", "fig5", "fig6", "react", "nile", "nws", "info",
                "selection", "adaptive", "multiapp", "metrics", "all"} <= names

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sizes_parsing(self):
        args = build_parser().parse_args(["fig5", "--sizes", "1000,2000"])
        assert args.sizes == (1000, 2000)

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--sizes", "1000,x"])

    def test_seed_option(self):
        args = build_parser().parse_args(["react", "--seed", "7"])
        assert args.seed == 7

    def test_replicates_option(self):
        args = build_parser().parse_args(["fig5", "--replicates", "4"])
        assert args.replicates == 4
        args = build_parser().parse_args(["fig6"])
        assert args.replicates == 1
        # `all` carries the flag so generic forwarding can hand it down.
        args = build_parser().parse_args(["all", "--replicates", "2"])
        assert args.replicates == 2


class TestMain:
    def test_fig34_runs(self, capsys):
        assert main(["fig34", "--n", "800"]) == 0
        out = capsys.readouterr().out
        assert "Figures 3 & 4" in out

    def test_fig5_small(self, capsys):
        assert main([
            "fig5", "--sizes", "1000", "--iterations", "10", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "ratio range" in out

    def test_fig5_replicated(self, capsys):
        assert main([
            "fig5", "--sizes", "600", "--iterations", "5", "--repeats", "1",
            "--replicates", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean ± 95% CI" in out
        assert "2 replicates" in out

    def test_fig6_replicated(self, capsys):
        assert main([
            "fig6", "--sizes", "1000", "--iterations", "5",
            "--replicates", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean ± 95% CI" in out
        assert "sp2-only" in out

    def test_nile_runs(self, capsys):
        assert main(["nile", "--events", "50000"]) == 0
        assert "NILE-T1" in capsys.readouterr().out

    def test_nws_runs(self, capsys):
        assert main(["nws", "--samples", "120"]) == 0
        out = capsys.readouterr().out
        assert "NWS-A1" in out
        assert "ensemble regret" in out


class TestArenaCLI:
    def test_arena_registered_with_actions(self):
        args = build_parser().parse_args(
            ["arena", "generate", "--classes", "sdsc8", "--per-class", "2",
             "--sizes", "400", "--iterations", "5"]
        )
        assert args.action == "generate"
        assert args.classes == "sdsc8"
        assert args.per_class == 2
        assert args.sizes == (400,)

    def test_arena_smoke_flag(self):
        args = build_parser().parse_args(["arena", "--smoke"])
        assert args.smoke and args.action is None

    def test_arena_bad_action_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["arena", "destroy"])

    def test_arena_requires_action_or_smoke(self):
        with pytest.raises(SystemExit, match="needs an action"):
            main(["arena"])

    def test_arena_score_requires_instances(self):
        with pytest.raises(SystemExit, match="requires --instances"):
            main(["arena", "score"])

    def test_arena_file_pipeline(self, tmp_path, capsys):
        """generate -> score -> verify -> report over real JSONL files."""
        inst = str(tmp_path / "instances.jsonl")
        alloc = str(tmp_path / "allocations.jsonl")
        assert main([
            "arena", "generate", "--classes", "sdsc8", "--per-class", "1",
            "--sizes", "400", "--iterations", "5", "--out", inst,
        ]) == 0
        assert "1 instances" in capsys.readouterr().out
        assert main([
            "arena", "score", "--instances", inst,
            "--policies", "greedy,exhaustive", "--out", alloc,
        ]) == 0
        assert "regret vs exhaustive oracle" in capsys.readouterr().out
        assert main([
            "arena", "verify", "--instances", inst, "--allocations", alloc,
        ]) == 0
        out = capsys.readouterr().out
        assert "2 allocations verified, 0 rejected" in out
        assert main([
            "arena", "report", "--instances", inst, "--allocations", alloc,
        ]) == 0
        assert "regret vs exhaustive oracle" in capsys.readouterr().out


class TestReserveCLI:
    def test_reserve_registered_with_actions(self):
        args = build_parser().parse_args(
            ["reserve", "plan", "--pool", "synth", "--requests", "r.jsonl",
             "--out", "b.jsonl"]
        )
        assert args.experiment == "reserve"
        assert args.action == "plan"
        assert args.pool == "synth"
        assert args.requests == "r.jsonl"

    def test_reserve_smoke_flag(self):
        args = build_parser().parse_args(["reserve", "--smoke"])
        assert args.smoke and args.action is None

    def test_reserve_invalidate_repeats(self):
        args = build_parser().parse_args(
            ["reserve", "repair", "--requests", "r", "--bookings", "b",
             "--invalidate", "x#0@1", "--invalidate", "y#0@2"]
        )
        assert args.invalidate == ["x#0@1", "y#0@2"]

    def test_reserve_bad_action_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reserve", "destroy"])

    def test_reserve_requires_action_or_smoke(self):
        with pytest.raises(SystemExit, match="needs an action"):
            main(["reserve"])

    def test_reserve_plan_requires_requests(self):
        with pytest.raises(SystemExit, match="requires --requests"):
            main(["reserve", "plan"])

    def test_reserve_repair_requires_bookings(self, tmp_path, capsys):
        req = str(tmp_path / "r.jsonl")
        assert main(["reserve", "submit", "--count", "2", "--out", req]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="requires --bookings"):
            main(["reserve", "repair", "--requests", req])

    def test_reserve_unknown_pool_rejected(self, tmp_path):
        req = str(tmp_path / "r.jsonl")
        assert main(["reserve", "submit", "--count", "2", "--out", req]) == 0
        with pytest.raises(SystemExit, match="unknown pool"):
            main(["reserve", "plan", "--pool", "mars", "--requests", req])

    def test_reserve_file_pipeline(self, tmp_path, capsys):
        """submit -> plan -> report -> repair over real JSONL files."""
        req = str(tmp_path / "requests.jsonl")
        book = str(tmp_path / "bookings.jsonl")
        assert main([
            "reserve", "submit", "--count", "3", "--out", req,
        ]) == 0
        assert "wrote 3 requests" in capsys.readouterr().out
        assert main([
            "reserve", "plan", "--requests", req, "--out", book,
        ]) == 0
        out = capsys.readouterr().out
        assert "booked 3" in out and "bookings to" in out
        assert main([
            "reserve", "report", "--requests", req, "--bookings", book,
        ]) == 0
        assert "verified: conflict-free" in capsys.readouterr().out
        from repro.reserve import load_bookings

        stale = load_bookings(book).bookings[0].booking_id
        assert main([
            "reserve", "repair", "--requests", req, "--bookings", book,
            "--invalidate", stale, "--out", book,
        ]) == 0
        out = capsys.readouterr().out
        assert f"repaired {stale}" in out and "via re-expand" in out
        assert main([
            "reserve", "report", "--requests", req, "--bookings", book,
        ]) == 0
        assert "verified: conflict-free" in capsys.readouterr().out

"""Planner and incremental repair: the differential harness.

The repair engine's contract, on small exactly-checkable scenarios over a
6-host synthetic world:

- repair reaches a ledger the standalone :func:`verify_ledger` accepts;
- every booking repair did not touch is *the same object* afterwards
  (``is``-identity, not tolerance);
- the repaired ledger books the same ``(request, occurrence)`` set a
  from-scratch replan books, while spending strictly fewer decisions;
- the whole pipeline is bit-identical under ``perf.fastpath`` on and off
  (the expander's checkpoint/restore fast path vs rebuild-from-seeds).
"""

from __future__ import annotations

import pytest

from repro.jacobi.grid import JacobiProblem
from repro.reserve import (
    RepairSweep,
    ReservationLedger,
    ReservationPlanner,
    ReservationRequest,
    seeded_requests,
    verify_ledger,
)
from repro.util import perf

WORLD = {
    "generator": "synthetic",
    "n_hosts": 6,
    "n_segments": 2,
    "seed": 21,
    "nws_seed": 22,
    "warmup_s": 300.0,
}


def small_workload(count: int = 6) -> list[ReservationRequest]:
    """Heavily overlapping windows on the 6-host world."""
    return seeded_requests(
        count, seed=7, base_at=360.0, stagger_s=60.0, window_s=1500.0
    )


def fresh_plan(requests):
    planner = ReservationPlanner(world=WORLD, label="test")
    return planner, planner.plan(list(requests))


def occurrence_set(ledger: ReservationLedger) -> set[tuple[str, int]]:
    return {(b.request_id, b.occurrence) for b in ledger.bookings}


@pytest.fixture(scope="module")
def workload():
    return small_workload()


@pytest.fixture(scope="module")
def planned(workload):
    """One booked baseline shared by the read-only tests."""
    return fresh_plan(workload)


class TestPlan:
    def test_books_a_verified_partition(self, workload, planned):
        planner, outcome = planned
        # Booked plus rejected is exactly the occurrence set; whatever was
        # rejected failed its own constraints (here: min_machines asks for
        # more machines than the best decision uses), not bookkeeping.
        want = sum(r.repeat_count for r in workload)
        assert len(outcome.booked) + len(outcome.rejected) == want
        assert len(outcome.booked) >= want - 2
        by_id = {r.request_id: r for r in workload}
        assert all(
            by_id[rid].min_machines > 1 for rid, _ in outcome.rejected
        )
        assert verify_ledger(outcome.ledger, workload) == []

    def test_deterministic(self, workload, planned):
        _, again = fresh_plan(workload)
        assert again.ledger.bookings == planned[1].ledger.bookings
        assert again.booked == planned[1].booked

    def test_priority_classes_plan_first(self, workload, planned):
        _, outcome = planned
        ledger = planned[0].requests
        order = [ledger[b.request_id].priority
                 for b in planned[1].ledger.bookings]
        assert order == sorted(order)

    def test_impossible_request_rejected_not_raised(self):
        impossible = ReservationRequest(
            request_id="too-big",
            problem=JacobiProblem(n=300, iterations=10),
            earliest_start=360.0,
            deadline=1500.0,
            min_machines=99,
        )
        _, outcome = fresh_plan([impossible])
        assert outcome.booked == ()
        assert outcome.rejected == (("too-big", 0),)


class TestDifferentialRepair:
    """Repair vs from-scratch replan, exact on small scenarios."""

    def _urgent(self) -> ReservationRequest:
        return ReservationRequest(
            request_id="urgent",
            problem=JacobiProblem(n=300, iterations=10),
            earliest_start=400.0,
            deadline=1900.0,
            priority=1,
        )

    def test_new_request_arrival(self, workload):
        planner, outcome = fresh_plan(workload)
        ledger = outcome.ledger
        before = {b.booking_id: b for b in ledger.bookings}
        urgent = self._urgent()

        repair = planner.repair(ledger, new_requests=[urgent])
        assert verify_ledger(ledger, list(workload) + [urgent]) == []
        assert ("urgent", 0) in occurrence_set(ledger)
        for bid in repair.untouched:
            assert ledger.get(bid) is before[bid]

        _, replan = fresh_plan(list(workload) + [urgent])
        assert occurrence_set(ledger) == occurrence_set(replan.ledger)
        assert repair.stats.decisions < replan.decisions

    def test_invalidation_forces_reexpansion(self, workload):
        planner, outcome = fresh_plan(workload)
        ledger = outcome.ledger
        stale = outcome.booked[0]
        before = {b.booking_id: b for b in ledger.bookings}

        repair = planner.repair(ledger, invalidate=(stale,))
        assert repair.repaired[stale] == "re-expand"
        assert repair.stats.invalidated == 1
        assert verify_ledger(ledger, workload) == []
        # Everything else is the same object.
        assert set(repair.untouched) == set(before) - {stale}
        for bid in repair.untouched:
            assert ledger.get(bid) is before[bid]
        assert occurrence_set(ledger) == occurrence_set(outcome.ledger)

    def test_forced_conflict_resolved(self, workload):
        planner, outcome = fresh_plan(workload)
        ledger = outcome.ledger
        # Shove the last booking onto the first one's machines and
        # interval: a forced overlap the conflict detector must find and
        # repair must resolve.
        import dataclasses

        first = ledger.get(outcome.booked[0])
        # The victim must have been individually valid before and stay so
        # after the forced move (repair fixes conflicts, it does not grant
        # constraints the booking never met) — pick a min_machines=1 one.
        victim_id = next(
            bid
            for bid in reversed(outcome.booked)
            if bid != first.booking_id
            and planner.requests[ledger.get(bid).request_id].min_machines == 1
        )
        victim = ledger.remove(victim_id)
        share = sum(victim.points) / len(first.machines)
        forced = dataclasses.replace(
            victim,
            start=first.start,
            end=first.start + victim.duration,
            machines=first.machines,
            points=tuple(share for _ in first.machines),
        )
        ledger.book(forced, force=True)
        assert ledger.conflicts(), "scenario failed to create a conflict"

        repair = planner.repair(ledger)
        assert verify_ledger(ledger, workload) == []
        assert repair.stats.conflicts_found > 0
        assert occurrence_set(ledger) == occurrence_set(outcome.ledger)
        # The loser (lower class, later order) was repaired, not the winner.
        assert first.booking_id not in repair.repaired

    def test_repair_on_clean_ledger_is_a_noop(self, workload, planned):
        planner, outcome = planned
        before = tuple(outcome.ledger.bookings)
        repair = planner.repair(outcome.ledger)
        assert repair.actions == ()
        assert repair.stats.decisions == 0
        assert tuple(outcome.ledger.bookings) == before
        assert set(repair.untouched) == {b.booking_id for b in before}

    def test_loaded_ledger_repairs_with_requests_kwarg(
        self, tmp_path, workload
    ):
        from repro.reserve import load_bookings, save_bookings

        _, outcome = fresh_plan(workload)
        path = tmp_path / "bookings.jsonl"
        save_bookings(path, outcome.ledger)
        loaded = load_bookings(path)

        fresh = ReservationPlanner(world=WORLD, label="test")
        repair = fresh.repair(
            loaded,
            new_requests=[self._urgent()],
            requests=workload,
        )
        assert ("urgent", 0) in occurrence_set(loaded)
        assert verify_ledger(loaded, list(workload) + [self._urgent()]) == []
        assert repair.booked != ()


class TestGateEquivalence:
    """The expander's checkpoint/restore fast path vs rebuild-from-seeds."""

    def _run(self, use_checkpoints: bool | None = None):
        workload = small_workload(4)
        planner = ReservationPlanner(world=WORLD, label="test")
        if use_checkpoints is not None:
            planner.expander._use_checkpoints = use_checkpoints
        outcome = planner.plan(list(workload))
        urgent = ReservationRequest(
            request_id="urgent",
            problem=JacobiProblem(n=300, iterations=10),
            earliest_start=400.0,
            deadline=1900.0,
            priority=1,
        )
        planner.repair(
            outcome.ledger,
            new_requests=[urgent],
            invalidate=(outcome.booked[0],),
        )
        return planner, tuple(outcome.ledger.bookings)

    def test_checkpoint_restore_bit_identical_to_rebuilds(self):
        """Restoring a checkpoint and advancing equals rebuilding from
        seeds and advancing, bit for bit (the warm-cache argument) — the
        forecaster implementation is held fixed, so any divergence would
        be the checkpoint path's own."""
        with perf.fastpath(True):
            planner, checkpointed = self._run(use_checkpoints=True)
            _, rebuilt = self._run(use_checkpoints=False)
        assert checkpointed == rebuilt
        assert planner.expander.stats.restores > 0, (
            "scenario never exercised the restore path"
        )

    def test_across_gates_same_decisions(self):
        """Across the perf gate the member forecasters themselves change
        implementation, so the repo-wide contract applies: identical
        resource decisions, objectives within float-accumulation
        tolerance (see test_perf_fastpaths on ensemble drift)."""
        with perf.fastpath(True):
            _, fast = self._run()
        with perf.fastpath(False):
            _, ref = self._run()
        assert [
            (b.request_id, b.occurrence, b.machines) for b in fast
        ] == [(b.request_id, b.occurrence, b.machines) for b in ref]
        for f, r in zip(fast, ref):
            assert f.start == r.start
            assert f.points == pytest.approx(r.points, rel=1e-9)
            assert f.objective == pytest.approx(r.objective, rel=1e-9)

    def test_fast_path_actually_restores(self, workload):
        if not perf.fastpath_enabled():
            pytest.skip("reference-path run: checkpoints gated off")
        planner, outcome = fresh_plan(workload)
        stats = planner.expander.stats
        assert stats.rebuilds > 0, "workload never rewound the clock"
        assert stats.restores > 0, "rewinds never hit a checkpoint"


class TestErrors:
    def test_unknown_invalidation_fails_before_mutation(self, workload):
        planner, outcome = fresh_plan(workload)
        before = tuple(outcome.ledger.bookings)
        with pytest.raises(KeyError, match="unknown booking"):
            planner.repair(outcome.ledger, invalidate=("nope",))
        assert tuple(outcome.ledger.bookings) == before

    def test_unregistered_request_is_an_error(self, workload):
        _, outcome = fresh_plan(workload)
        stranger = ReservationPlanner(world=WORLD, label="test")
        with pytest.raises(ValueError, match="not registered"):
            stranger.repair(outcome.ledger, invalidate=(outcome.booked[0],))

    def test_register_rejects_conflicting_content(self, workload):
        planner, _ = fresh_plan(workload)
        changed = ReservationRequest(
            request_id=workload[0].request_id,
            problem=workload[0].problem,
            earliest_start=workload[0].earliest_start,
            deadline=workload[0].deadline + 1.0,
        )
        with pytest.raises(ValueError, match="already registered"):
            planner.register([changed])

    def test_expander_requires_exactly_one_world(self):
        from repro.reserve.expand import Expander

        with pytest.raises(ValueError, match="exactly one"):
            Expander()
        with pytest.raises(ValueError, match="exactly one"):
            Expander(world=WORLD, factory=lambda: None)


class TestRepairSweep:
    def test_seeded_sweep_decides_and_remembers(self, testbed, warmed_nws):
        sweep = RepairSweep(
            testbed, JacobiProblem(n=400, iterations=20), warmed_nws
        )
        decision = sweep.decide()
        assert decision.best.resource_set
        # The winner was fed back: the next sweep's neighbourhood seeds
        # include the adopted resource set.
        winners = sweep.selector._winners
        assert tuple(sorted(decision.best.resource_set)) in winners

"""Property-based arena invariants (Hypothesis).

Three families:

- **Round-trip** — any structurally valid instance or allocation survives
  JSON serialisation bit-identically, including awkward floats (Python's
  shortest-repr float round-trip is exact, and ``inf`` is legal JSON here
  as in :mod:`repro.sim.trace_io`).
- **Mutation rejection** — take a feasible allocation and break exactly
  one invariant (overflow a capacity, kill a route, drop work): the
  verifier must reject it, every time, with the matching reason.
- **Regret sign** — over the real policy portfolio on real instances,
  regret against the exhaustive oracle is never negative, and the oracle's
  own regret is exactly 0.0 on pools within the 2^12 - 1 bound.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arena import (
    ArenaAllocation,
    ArenaInstance,
    MachineState,
    generate_instances,
    run_policies,
    score_allocations,
    verify_allocation,
)

# -- strategies -------------------------------------------------------------

_name = st.sampled_from(["m0", "m1", "m2", "m3"])
_finite = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def _instances(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    names = [f"m{i}" for i in range(n)]
    machines = tuple(
        MachineState(
            name=names[i],
            site=draw(st.sampled_from(["sdsc", "pcl", "ucsd"])),
            arch=draw(st.sampled_from(["alpha", "sparc", "rs6000"])),
            speed_mflops=draw(_finite),
            memory_available_mb=draw(
                st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False, allow_infinity=False)
            ),
            availability=draw(st.floats(min_value=0.0, max_value=1.0)),
            availability_error=draw(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
            ),
        )
        for i in range(n)
    )
    entry = st.floats(min_value=0.0, max_value=1e10,
                      allow_nan=False, allow_infinity=False)
    latency = tuple(
        tuple(0.0 if a == b else draw(entry) for b in range(n)) for a in range(n)
    )
    bandwidth = tuple(
        tuple(float("inf") if a == b else draw(entry) for b in range(n))
        for a in range(n)
    )
    return ArenaInstance(
        instance_id=draw(st.sampled_from(["p-000", "p-001", "p-002"])),
        instance_class="sdsc8",
        world={"generator": "sdsc", "seed": 1, "nws_seed": 2, "warmup_s": 0.0,
               "n_hosts": 8, "n_segments": None},
        machines=machines,
        latency_s=latency,
        bandwidth_bps=bandwidth,
        problem={"n": draw(st.integers(min_value=1, max_value=2000)),
                 "iterations": draw(st.integers(min_value=1, max_value=100)),
                 "flop_per_point": draw(_finite),
                 "bytes_per_point": draw(_finite),
                 "border_bytes_per_point": draw(_finite),
                 "sync_overhead_s": draw(
                     st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
                 )},
    )


@st.composite
def _allocations(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    return ArenaAllocation(
        instance_id="p-000",
        policy=draw(st.sampled_from(["greedy", "static", "x"])),
        machines=tuple(f"m{i}" for i in range(n)),
        points=tuple(draw(_finite) for _ in range(n)),
        claimed_objective=draw(st.one_of(st.none(), _finite)),
    )


class TestRoundTripProperties:
    @given(instance=_instances())
    @settings(max_examples=40, deadline=None)
    def test_instance_json_round_trip_bit_identical(self, instance):
        text = json.dumps(instance.to_json_dict())
        assert ArenaInstance.from_json_dict(json.loads(text)) == instance

    @given(allocation=_allocations())
    @settings(max_examples=40, deadline=None)
    def test_allocation_json_round_trip_bit_identical(self, allocation):
        text = json.dumps(allocation.to_json_dict())
        assert ArenaAllocation.from_json_dict(json.loads(text)) == allocation


# -- mutation rejection -----------------------------------------------------

@pytest.fixture(scope="module")
def real_world():
    """One real instance plus its exhaustive oracle allocation (feasible)."""
    instances = generate_instances("sdsc8", 1, seed=77, sizes=(500,), iterations=10)
    allocations = run_policies(instances, ("exhaustive",))
    report = verify_allocation(instances[0], allocations[0])
    assert report.feasible
    return instances[0], allocations[0]


class TestMutationRejection:
    @given(scale=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
           index=st.integers(min_value=0, max_value=31))
    @settings(max_examples=40, deadline=None)
    def test_work_drop_always_rejected(self, real_world, scale, index):
        instance, alloc = real_world
        i = index % len(alloc.points)
        delta = alloc.points[i] * scale
        if delta == 0.0:
            return
        points = list(alloc.points)
        points[i] = points[i] + delta  # conservation broken by construction
        mutated = dataclasses.replace(alloc, points=tuple(points))
        report = verify_allocation(instance, mutated)
        assert not report.feasible
        assert "work-dropped" in report.reasons

    @given(shrink=st.floats(min_value=1e-6, max_value=0.5, allow_nan=False),
           index=st.integers(min_value=0, max_value=31))
    @settings(max_examples=30, deadline=None)
    def test_capacity_overflow_always_rejected(self, real_world, shrink, index):
        instance, alloc = real_world
        i = index % len(alloc.machines)
        victim = alloc.machines[i]
        # Shrink the victim's memory below its strip's footprint.
        footprint_mb = (
            alloc.points[i] * instance.problem["bytes_per_point"] / 1e6
        )
        machines = tuple(
            dataclasses.replace(m, memory_available_mb=footprint_mb * shrink)
            if m.name == victim else m
            for m in instance.machines
        )
        mutated_instance = dataclasses.replace(instance, machines=machines)
        report = verify_allocation(mutated_instance, alloc)
        assert not report.feasible
        assert f"capacity-overflow:{victim}" in report.reasons

    @given(index=st.integers(min_value=0, max_value=31))
    @settings(max_examples=20, deadline=None)
    def test_unroutable_always_rejected(self, real_world, index):
        instance, alloc = real_world
        if len(alloc.machines) < 2:
            return
        i = index % (len(alloc.machines) - 1)
        a = instance.machine_names.index(alloc.machines[i])
        b = instance.machine_names.index(alloc.machines[i + 1])
        bandwidth = [list(row) for row in instance.bandwidth_bps]
        bandwidth[a][b] = 0.0  # dead link on a strip border
        mutated_instance = dataclasses.replace(
            instance, bandwidth_bps=tuple(tuple(row) for row in bandwidth)
        )
        report = verify_allocation(mutated_instance, alloc)
        assert not report.feasible
        assert any(r.startswith("unroutable:") for r in report.reasons)


# -- regret sign ------------------------------------------------------------

@pytest.fixture(scope="module")
def scored_portfolio():
    instances = generate_instances("sdsc8", 2, seed=13, sizes=(400,), iterations=10)
    allocations = run_policies(
        instances, ("greedy", "exhaustive", "seeded", "locality")
    )
    return score_allocations(instances, allocations)


class TestRegretSign:
    def test_regret_never_negative(self, scored_portfolio):
        for entry in scored_portfolio.detail:
            if entry["regret"] is not None:
                assert entry["regret"] >= 0.0, entry

    def test_exhaustive_regret_exactly_zero_within_bound(self, scored_portfolio):
        """On pools <= 12 machines the oracle IS the enumeration: regret 0."""
        score = scored_portfolio.score("sdsc8", "exhaustive")
        assert score.regrets and score.mean_regret == 0.0
        assert score.max_regret == 0.0
        assert score.wins == score.scored

"""Tests for synthetic CLEO events and storage tiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nile.events import PASS2, RAW, ROAR, EventBatch, format_by_name
from repro.nile.storage import DISK, TAPE, StorageTier, StoredDataset


class TestRecordFormats:
    def test_paper_sizes(self):
        assert RAW.bytes_per_event == 8_192
        assert PASS2.bytes_per_event == 20_480

    def test_roar_compressed_and_lossy(self):
        assert ROAR.lossy
        assert ROAR.bytes_per_event < RAW.bytes_per_event
        assert set(ROAR.fields) < set(PASS2.fields)

    def test_lookup(self):
        assert format_by_name("raw") is RAW
        with pytest.raises(KeyError):
            format_by_name("zzz")


class TestEventBatch:
    def test_size(self):
        b = EventBatch(1000, RAW)
        assert b.size_bytes == 1000 * 8192

    def test_deterministic(self):
        a = EventBatch(500, PASS2, seed=3)
        b = EventBatch(500, PASS2, seed=3)
        assert np.array_equal(a.field("energy_gev"), b.field("energy_gev"))

    def test_seeds_differ(self):
        a = EventBatch(500, PASS2, seed=3)
        b = EventBatch(500, PASS2, seed=4)
        assert not np.array_equal(a.field("energy_gev"), b.field("energy_gev"))

    def test_fields_have_physics_shape(self):
        b = EventBatch(5000, PASS2, seed=1)
        energy = b.field("energy_gev")
        assert 10.0 < energy.mean() < 11.0
        assert b.field("charged_multiplicity").min() >= 0
        signal = b.field("is_signal")
        assert 0 < signal.sum() < 100  # rare

    def test_format_restricts_fields(self):
        b = EventBatch(10, RAW)
        with pytest.raises(KeyError):
            b.field("vertex_chi2")

    def test_features_complete(self):
        b = EventBatch(10, ROAR)
        assert set(b.features()) == set(ROAR.fields)

    def test_slice_matches_parent(self):
        b = EventBatch(100, PASS2, seed=9)
        sub = b.slice(10, 40)
        assert sub.nevents == 30
        assert np.array_equal(sub.field("energy_gev"), b.field("energy_gev")[10:40])

    def test_slice_bounds_checked(self):
        b = EventBatch(10, PASS2)
        with pytest.raises(ValueError):
            b.slice(5, 20)
        with pytest.raises(ValueError):
            b.slice(5, 5)

    def test_to_format_preserves_shared_fields(self):
        b = EventBatch(50, PASS2, seed=2)
        r = b.to_format(ROAR)
        assert np.array_equal(r.field("energy_gev"), b.field("energy_gev"))
        assert r.size_bytes < b.size_bytes


class TestStorage:
    def test_tape_slower_than_disk(self):
        nbytes = 100e6
        assert TAPE.read_time(nbytes) > DISK.read_time(nbytes)

    def test_read_time_zero_bytes(self):
        assert TAPE.read_time(0) == 0.0

    def test_read_time_formula(self):
        t = StorageTier("t", bandwidth_mbps=10.0, access_latency_s=2.0)
        assert t.read_time(50e6) == pytest.approx(7.0)

    def test_write_symmetric(self):
        assert DISK.write_time(1e6) == DISK.read_time(1e6)

    def test_stored_dataset(self):
        ds = StoredDataset("d", EventBatch(1000, RAW), DISK, host="h")
        assert ds.nevents == 1000
        assert ds.size_bytes == 1000 * 8192
        assert ds.read_time() == pytest.approx(DISK.read_time(ds.size_bytes))

    def test_stored_dataset_validation(self):
        with pytest.raises(ValueError):
            StoredDataset("", EventBatch(10, RAW), DISK, host="h")
        with pytest.raises(ValueError):
            StoredDataset("d", EventBatch(10, RAW), DISK, host="")

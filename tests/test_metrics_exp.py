"""Tests for the §3.1 performance-metrics experiment."""

from __future__ import annotations

import pytest

from repro.experiments.metrics_exp import DEFAULT_COST_RATES, run_metrics_comparison


@pytest.fixture(scope="module")
def result():
    return run_metrics_comparison(n=1200, iterations=30)


class TestMetricsComparison:
    def test_schedules_differ(self, result):
        assert result.schedules_differ

    def test_cost_user_pays_least(self, result):
        assert result.costs["cost"] == min(result.costs.values())

    def test_time_user_fastest(self, result):
        assert result.times["execution_time"] == min(result.times.values())

    def test_cost_user_avoids_expensive_machines(self, result):
        sched = result.schedules["cost"]
        # The centre Alphas cost 1.0/s; a cost-minimising schedule must
        # not be built on them.
        alphas = {m for m in sched.resource_set if m.startswith("alpha")}
        assert not alphas

    def test_speedup_equals_time_schedule(self, result):
        # Fixed-size speedup is a monotone transform of execution time.
        assert (
            result.schedules["speedup"].resource_set
            == result.schedules["execution_time"].resource_set
        )

    def test_time_user_beats_best_single(self, result):
        assert result.times["execution_time"] < result.best_single_s

    def test_table_renders(self, result):
        text = result.table().render()
        assert "METRIC-A6" in text
        assert "cost" in text

    def test_custom_rates_change_choice(self):
        # Make the alphas free and the PCL machines expensive: the cost
        # user should now sit on alphas.
        inverted = {m: (0.01 if m.startswith("alpha") else 5.0)
                    for m in DEFAULT_COST_RATES}
        r = run_metrics_comparison(n=1200, iterations=30, cost_rates=inverted)
        assert all(m.startswith("alpha")
                   for m in r.schedules["cost"].resource_set)

"""Tests for the adaptive forecaster ensemble."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.nws.ensemble import AdaptiveEnsemble
from repro.nws.forecasters import LastValue, RunningMean, SlidingWindowMean


class TestAdaptiveEnsemble:
    def test_forecast_before_update_raises(self):
        with pytest.raises(RuntimeError):
            AdaptiveEnsemble().forecast()

    def test_duplicate_member_names_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveEnsemble([LastValue(), LastValue()])

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveEnsemble([LastValue()], decay=0.0)

    def test_unscored_members_have_infinite_mse(self):
        ens = AdaptiveEnsemble([LastValue()])
        ens.update(0.5)
        # One update stages a prediction but nothing has been scored yet.
        assert ens.mse("last") == math.inf

    def test_picks_last_value_on_random_walk(self):
        rng = np.random.default_rng(1)
        ens = AdaptiveEnsemble([LastValue(), RunningMean()])
        x = 0.5
        for _ in range(200):
            x = min(1.0, max(0.0, x + rng.normal(0, 0.05)))
            ens.update(x)
        assert ens.best_member().name == "last"

    def test_picks_mean_on_iid_noise(self):
        rng = np.random.default_rng(2)
        ens = AdaptiveEnsemble([LastValue(), RunningMean()])
        for _ in range(300):
            ens.update(min(1.0, max(0.0, rng.normal(0.5, 0.15))))
        assert ens.best_member().name == "run_mean"

    def test_forecast_has_provenance(self):
        ens = AdaptiveEnsemble([LastValue()])
        for v in (0.2, 0.4, 0.6):
            ens.update(v)
        f = ens.forecast()
        assert f.method == "last"
        assert f.value == 0.6
        assert f.observations == 3
        assert f.error >= 0.0

    def test_error_estimate_tracks_volatility(self):
        calm = AdaptiveEnsemble([LastValue()])
        wild = AdaptiveEnsemble([LastValue()])
        rng = np.random.default_rng(3)
        for _ in range(100):
            calm.update(0.5 + rng.normal(0, 0.01))
            wild.update(min(1.0, max(0.0, 0.5 + rng.normal(0, 0.3))))
        assert wild.forecast().error > calm.forecast().error

    def test_leaderboard_sorted(self):
        ens = AdaptiveEnsemble([LastValue(), RunningMean(), SlidingWindowMean(4)])
        rng = np.random.default_rng(4)
        for _ in range(100):
            ens.update(float(rng.random()))
        board = ens.leaderboard()
        mses = [m for _, m in board]
        assert mses == sorted(mses)
        assert board[0][0] == ens.best_member().name

    def test_ensemble_regret_bounded(self):
        # The ensemble's realised squared error should be close to the best
        # single member's on a stationary series (it may switch early on).
        rng = np.random.default_rng(5)
        series = [min(1.0, max(0.0, rng.normal(0.6, 0.1))) for _ in range(400)]
        members = [LastValue(), RunningMean(), SlidingWindowMean(8)]
        solo_errs = {}
        for member in [LastValue(), RunningMean(), SlidingWindowMean(8)]:
            err = 0.0
            for i, v in enumerate(series):
                if i > 0:
                    err += (member.forecast() - v) ** 2
                member.update(v)
            solo_errs[member.name] = err
        ens = AdaptiveEnsemble(members)
        ens_err = 0.0
        for i, v in enumerate(series):
            if i > 0:
                ens_err += (ens.forecast().value - v) ** 2
            ens.update(v)
        assert ens_err <= 1.25 * min(solo_errs.values())

    def test_decay_allows_regime_switch(self):
        # Stationary phase (mean wins) followed by a random-walk phase:
        # with decay < 1 the ensemble must eventually switch to last-value.
        rng = np.random.default_rng(6)
        ens = AdaptiveEnsemble([LastValue(), RunningMean()], decay=0.9)
        for _ in range(150):
            ens.update(min(1.0, max(0.0, rng.normal(0.5, 0.1))))
        assert ens.best_member().name == "run_mean"
        x = 0.5
        for _ in range(150):
            x = min(1.0, max(0.0, x + rng.normal(0, 0.08)))
            ens.update(x)
        assert ens.best_member().name == "last"

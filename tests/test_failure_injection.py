"""Failure-injection tests: outages, dead links, stale weather.

The paper's premise is a hostile environment — resources degrade without
notice.  These tests drive the stack through concrete failure scenarios
and check it degrades the way the design intends (gracefully, and
recoverably where a mechanism exists).
"""

from __future__ import annotations

import pytest

from repro.core.infopool import InformationPool
from repro.core.planner import balance_divisible_work
from repro.core.resources import ResourcePool
from repro.experiments.multiapp_exp import make_injectable
from repro.jacobi.adaptive import AdaptiveJacobiRunner
from repro.jacobi.apples import JacobiPlanner
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.runtime import simulated_execution
from repro.nws.forecasters import AdaptiveWindowMean
from repro.nws.service import NetworkWeatherService
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.load import ConstantLoad, IntervalLoad, TraceLoad
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.sim.topology import Topology


class TestHostOutage:
    def test_outage_stretches_execution(self):
        testbed = sdsc_pcl_testbed(seed=8)
        injectors = make_injectable(testbed)
        nws = NetworkWeatherService.for_testbed(testbed, seed=9)
        nws.warmup(300.0)
        problem = JacobiProblem(n=1000, iterations=150)

        from repro.jacobi.apples import make_jacobi_agent

        agent = make_jacobi_agent(testbed, problem, nws)
        sched = agent.schedule().best
        clean = simulated_execution(testbed.topology, sched, 300.0).total_time

        # Re-run the same schedule with one of its machines dead for a
        # window inside the run.
        victim = sched.resource_set[0]
        injectors[victim].occupy(305.0, 305.0 + clean, 0.0)
        degraded = simulated_execution(testbed.topology, sched, 300.0).total_time
        assert degraded > 1.5 * clean

    def test_adaptive_runner_recovers_from_outage(self):
        testbed = sdsc_pcl_testbed(seed=8)
        injectors = make_injectable(testbed)
        nws = NetworkWeatherService.for_testbed(testbed, seed=9)
        nws.warmup(300.0)
        problem = JacobiProblem(n=1000, iterations=600)

        runner = AdaptiveJacobiRunner(testbed, problem, nws, check_every=50)
        # Find what the initial plan picks, then kill one of its machines
        # shortly after the run starts, for a long window.
        initial = runner.agent.schedule().best
        victim = initial.resource_set[0]
        injectors[victim].occupy(310.0, 10_000.0, 0.02)
        result = runner.run(t0=300.0)
        assert result.reschedule_count >= 1
        final_event = result.reschedules[-1]
        assert victim not in final_event.new_machines


class TestDeadLink:
    def build(self):
        topo = Topology()
        topo.add_host(Host("near", speed_mflops=20.0))
        topo.add_host(Host("far", speed_mflops=40.0))
        # The only path to 'far' is a dead link.
        topo.connect("near", "far",
                     Link("dead", bandwidth_mbit=10.0, load=ConstantLoad(0.0)))
        return topo

    def test_planner_drops_unreachable_peer(self):
        topo = self.build()
        problem = JacobiProblem(n=200, iterations=5)
        info = InformationPool(pool=ResourcePool(topo), hat=jacobi_hat(problem))
        sched = JacobiPlanner(problem).plan(["near", "far"], info)
        # 'far' is faster but only reachable over a dead link: the border
        # cost is infinite, so the plan must fall back to 'near' alone.
        assert sched is not None
        assert sched.resource_set == ("near",)

    def test_balance_handles_infinite_cost(self):
        result = balance_divisible_work([10.0, 10.0], [0.0, float("inf")], 100.0)
        assert result is not None
        assert result.allocations[1] == 0.0


class TestStaleWeather:
    def test_stale_forecast_misleads(self):
        # A host that was fast during warmup and died afterwards: a
        # scheduler using the stale NWS believes it is fast.
        topo = Topology()
        topo.add_host(Host(
            "flaky", speed_mflops=50.0,
            load=TraceLoad([0.95] * 60 + [0.05] * 600, dt=10.0),
        ))
        topo.add_host(Host("steady", speed_mflops=30.0))
        nws = NetworkWeatherService(topo, noise_std=0.0)
        nws.advance_to(590.0)
        pool = ResourcePool(topo, nws)
        assert pool.predicted_speed("flaky") > pool.predicted_speed("steady")
        # After observing the collapse the ordering flips.
        nws.advance_to(900.0)
        assert pool.predicted_speed("flaky") < pool.predicted_speed("steady")

    def test_forecast_error_rises_after_regime_change(self):
        topo = Topology()
        topo.add_host(Host(
            "flaky", speed_mflops=50.0,
            load=TraceLoad([0.9] * 60 + [0.1] * 60 + [0.9] * 60, dt=10.0),
        ))
        nws = NetworkWeatherService(topo, noise_std=0.0)
        nws.advance_to(590.0)
        calm_error = nws.cpu_forecast("flaky").error
        nws.advance_to(1400.0)
        churn_error = nws.cpu_forecast("flaky").error
        assert churn_error > calm_error


class TestAdaptiveWindowMean:
    def test_prefers_long_window_when_stationary(self):
        f = AdaptiveWindowMean(windows=(4, 32))
        import numpy as np

        rng = np.random.default_rng(3)
        for _ in range(200):
            f.update(float(rng.normal(0.5, 0.1)))
        assert f.best_window() == 32

    def test_shrinks_window_after_regime_change(self):
        f = AdaptiveWindowMean(windows=(4, 32))
        for v in [0.9] * 100:
            f.update(v)
        for v in [0.2] * 10:
            f.update(v)
        assert f.best_window() == 4
        assert f.forecast() == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWindowMean(windows=())
        with pytest.raises(ValueError):
            AdaptiveWindowMean(decay=0.0)

    def test_in_default_family(self):
        from repro.nws.forecasters import default_forecaster_family

        names = [f.name for f in default_forecaster_family()]
        assert any(n.startswith("adapt_mean") for n in names)

"""Tests for the generative background-job workload, plus a churn-model
robustness check of the Figure 5 result."""

from __future__ import annotations

import pytest

from repro.jacobi.apples import StaticStripPlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.runtime import simulated_execution
from repro.nws.service import NetworkWeatherService
from repro.sim.jobs import BackgroundJob, JobWorkload, generate_jobs
from repro.sim.load import ConstantLoad
from repro.sim.testbeds import sdsc_pcl_testbed


class TestGenerateJobs:
    def test_reproducible(self):
        a = generate_jobs(["h1", "h2"], 3600.0, seed=5)
        b = generate_jobs(["h1", "h2"], 3600.0, seed=5)
        assert a == b

    def test_seed_changes_stream(self):
        a = generate_jobs(["h1"], 3600.0, seed=5)
        b = generate_jobs(["h1"], 3600.0, seed=6)
        assert a != b

    def test_sorted_by_start(self):
        jobs = generate_jobs(["h1", "h2", "h3"], 7200.0, seed=1)
        starts = [j.start for j in jobs]
        assert starts == sorted(starts)

    def test_bounds_respected(self):
        jobs = generate_jobs(
            ["h"], 36_000.0, seed=2,
            min_duration_s=60.0, max_duration_s=600.0,
            min_level=0.3, max_level=0.6,
        )
        assert jobs
        for j in jobs:
            assert 60.0 <= j.duration <= 600.0
            assert 0.3 <= j.level <= 0.6
            assert 0.0 <= j.start < 36_000.0

    def test_rate_scales_count(self):
        low = generate_jobs(["h"], 36_000.0, seed=3, arrival_rate_per_hour=2.0)
        high = generate_jobs(["h"], 36_000.0, seed=3, arrival_rate_per_hour=20.0)
        assert len(high) > 2 * len(low)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_jobs([], 100.0)
        with pytest.raises(ValueError):
            generate_jobs(["h"], 100.0, min_level=0.9, max_level=0.1)


class TestJobWorkload:
    def make_quiet_testbed(self):
        tb = sdsc_pcl_testbed(seed=1)
        for host in tb.hosts():
            host.load = ConstantLoad(1.0, dt=5.0)
        return tb

    def test_jobs_visible_on_hosts(self):
        tb = self.make_quiet_testbed()
        jobs = [BackgroundJob("alpha1", 100.0, 200.0, 0.4)]
        workload = JobWorkload(tb, jobs)
        host = tb.topology.host("alpha1")
        assert host.availability(50.0) == pytest.approx(1.0)
        assert host.availability(150.0) == pytest.approx(0.4)
        assert workload.pressure("alpha1", 150.0) == pytest.approx(0.4)
        assert workload.pressure("alpha2", 150.0) == 1.0

    def test_active_jobs(self):
        tb = self.make_quiet_testbed()
        jobs = [
            BackgroundJob("alpha1", 0.0, 100.0, 0.5),
            BackgroundJob("alpha2", 50.0, 100.0, 0.5),
        ]
        workload = JobWorkload(tb, jobs)
        assert len(workload.active_jobs(75.0)) == 2
        assert len(workload.active_jobs(125.0)) == 1
        assert len(workload) == 2

    def test_unknown_host_rejected(self):
        tb = self.make_quiet_testbed()
        with pytest.raises(KeyError):
            JobWorkload(tb, [BackgroundJob("nope", 0.0, 10.0, 0.5)])


class TestChurnRobustness:
    def test_apples_advantage_survives_generative_churn(self):
        """Figure 5's conclusion under a *generative* contention model:
        AppLeS still beats the static strip when interference comes from
        discrete jobs rather than AR(1) noise."""
        tb = sdsc_pcl_testbed(seed=77)
        # Replace statistical load with quiet hosts + a job stream.
        for host in tb.hosts():
            host.load = ConstantLoad(1.0, dt=5.0)
        jobs = generate_jobs(
            tb.host_names, horizon_s=7200.0, seed=13,
            arrival_rate_per_hour=10.0, min_level=0.15, max_level=0.5,
        )
        JobWorkload(tb, jobs)
        nws = NetworkWeatherService.for_testbed(tb, seed=14)
        nws.warmup(1200.0)
        problem = JacobiProblem(n=1400, iterations=60)

        wins = 0
        submissions = (1200.0, 2400.0, 3600.0)
        for t0 in submissions:
            nws.advance_to(t0)
            agent = make_jacobi_agent(tb, problem, nws)
            apples = agent.schedule().best
            static = StaticStripPlanner(problem).plan(tb.host_names, agent.info)
            t_apples = simulated_execution(tb.topology, apples, t0).total_time
            t_static = simulated_execution(tb.topology, static, t0).total_time
            if t_apples < t_static:
                wins += 1
        assert wins == len(submissions)

"""Tests for repro.util.validation."""

from __future__ import annotations

import pytest

from repro.util.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2) == 2.0

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_fraction("f", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_fraction("f", bad)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", 5, int) == 5

    def test_rejects_with_message(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "s", int)

    def test_tuple_of_types(self):
        assert check_type("x", 5.0, (int, float)) == 5.0


class TestCheckIn:
    def test_accepts(self):
        assert check_in("mode", "a", ["a", "b"]) == "a"

    def test_rejects(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "z", ["a", "b"])

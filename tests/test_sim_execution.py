"""Tests for the epoch-based execution of work allocations."""

from __future__ import annotations

import pytest

from repro.sim.execution import WorkAssignment, count_flows, simulate_iterations
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.load import ConstantLoad, TraceLoad
from repro.sim.memory import MemoryModel
from repro.sim.topology import Topology


def _mk_topology(avail_a=1.0, avail_b=1.0, bw_mbit=8.0):
    topo = Topology()
    topo.add_host(Host("a", speed_mflops=10.0, load=ConstantLoad(avail_a)))
    topo.add_host(Host("b", speed_mflops=20.0, load=ConstantLoad(avail_b)))
    topo.connect("a", "b", Link("ab", bandwidth_mbit=bw_mbit, latency_s=0.001))
    return topo


class TestSimulateIterations:
    def test_compute_only(self):
        topo = _mk_topology()
        res = simulate_iterations(
            topo, [WorkAssignment("a", 10.0), WorkAssignment("b", 10.0)], 5
        )
        # a: 1 s/iter (10 MFLOP @ 10 MFLOP/s); b: 0.5 s/iter -> barrier at 1 s.
        assert res.total_time == pytest.approx(5.0)
        assert res.iteration_times == pytest.approx([1.0] * 5)

    def test_comm_charged(self):
        topo = _mk_topology()
        res = simulate_iterations(
            topo,
            [
                WorkAssignment("a", 10.0, {"b": 1_000_000}),
                WorkAssignment("b", 10.0, {"a": 1_000_000}),
            ],
            1,
        )
        # 1e6 bytes at 1e6 B/s = 1 s + 1 ms latency on top of a's 1 s compute.
        assert res.total_time == pytest.approx(2.001)

    def test_busy_time_and_efficiency(self):
        topo = _mk_topology()
        res = simulate_iterations(
            topo, [WorkAssignment("a", 10.0), WorkAssignment("b", 10.0)], 4
        )
        assert res.host_busy_time["a"] == pytest.approx(4.0)
        assert res.host_busy_time["b"] == pytest.approx(2.0)
        assert res.efficiency() == pytest.approx(0.75)

    def test_load_change_mid_run_felt(self):
        topo = Topology()
        topo.add_host(
            Host("a", speed_mflops=10.0, load=TraceLoad([1.0] + [0.25] * 9, dt=10.0))
        )
        res = simulate_iterations(topo, [WorkAssignment("a", 100.0)], 2)
        # Iter 1: 10 s at full speed.  Iter 2 starts at t=10 with avail 0.25.
        assert res.iteration_times[0] == pytest.approx(10.0)
        assert res.iteration_times[1] == pytest.approx(40.0)

    def test_paging_footprint_slows_compute(self):
        topo = Topology()
        mem = MemoryModel(100.0, 0.0, page_penalty=9.0)
        topo.add_host(Host("a", speed_mflops=10.0, memory=mem))
        fit = simulate_iterations(topo, [WorkAssignment("a", 10.0, footprint_mb=50.0)], 1)
        spill = simulate_iterations(
            topo, [WorkAssignment("a", 10.0, footprint_mb=200.0)], 1
        )
        assert spill.total_time > 5.0 * fit.total_time

    def test_duplicate_host_rejected(self):
        topo = _mk_topology()
        with pytest.raises(ValueError):
            simulate_iterations(
                topo, [WorkAssignment("a", 1.0), WorkAssignment("a", 1.0)], 1
            )

    def test_empty_assignments_rejected(self):
        with pytest.raises(ValueError):
            simulate_iterations(_mk_topology(), [], 1)

    def test_mean_iteration_time(self):
        topo = _mk_topology()
        res = simulate_iterations(topo, [WorkAssignment("a", 10.0)], 4)
        assert res.mean_iteration_time == pytest.approx(res.total_time / 4)

    def test_t0_offset_changes_conditions(self):
        topo = Topology()
        topo.add_host(Host("a", speed_mflops=10.0, load=TraceLoad([1.0, 0.1], dt=100.0)))
        early = simulate_iterations(topo, [WorkAssignment("a", 10.0)], 1, t0=0.0)
        late = simulate_iterations(topo, [WorkAssignment("a", 10.0)], 1, t0=100.0)
        assert late.total_time > early.total_time


class TestCountFlows:
    def test_pairs_deduplicated(self):
        topo = _mk_topology()
        flows = count_flows(
            topo,
            [
                WorkAssignment("a", 1.0, {"b": 100.0}),
                WorkAssignment("b", 1.0, {"a": 100.0}),
            ],
        )
        assert flows == {"ab": 1}

    def test_zero_bytes_ignored(self):
        topo = _mk_topology()
        flows = count_flows(topo, [WorkAssignment("a", 1.0, {"b": 0.0})])
        assert flows == {}

    def test_shared_link_counts_multiple_pairs(self):
        topo = Topology()
        for name in "abc":
            topo.add_host(Host(name, speed_mflops=10.0))
        from repro.sim.link import SharedSegment

        topo.attach_segment(SharedSegment("seg", bandwidth_mbit=10.0), ["a", "b", "c"])
        flows = count_flows(
            topo,
            [
                WorkAssignment("a", 1.0, {"b": 10.0}),
                WorkAssignment("b", 1.0, {"c": 10.0}),
            ],
        )
        # Both pairs route over the segment; each route traverses the shared
        # link object twice (host->hub, hub->host), so 4 flow-traversals.
        assert flows["seg"] == 4

"""Tests for ScheduleDecision.explain/ranked, InformationPool and actuators."""

from __future__ import annotations

import pytest

from repro.core.actuator import RecordingActuator
from repro.core.coordinator import AppLeSAgent
from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import InformationPool
from repro.core.planner import TimeBalancedPlanner
from repro.core.resources import ResourcePool
from repro.core.userspec import UserSpecification
from repro.experiments.ablation import OraclePool


def _info(testbed, nws=None):
    hat = HeterogeneousApplicationTemplate(
        name="toy", paradigm="data-parallel",
        tasks=(TaskCharacteristics("work", flop_per_unit=1e-3),),
        communication=CommunicationCharacteristics(),
        structure=StructureInfo(total_units=1e6, iterations=1),
    )
    return InformationPool(pool=ResourcePool(testbed.topology, nws), hat=hat)


class TestDecisionExplain:
    @pytest.fixture(scope="class")
    def decision(self, testbed):
        us = UserSpecification(max_machines=3)
        info = _info(testbed)
        info.userspec = us
        return AppLeSAgent(info, planner=TimeBalancedPlanner()).schedule()

    def test_ranked_sorted_and_bounded(self, decision):
        top = decision.ranked(4)
        assert len(top) == 4
        objectives = [e.objective for e in top]
        assert objectives == sorted(objectives)
        assert top[0].objective == decision.best_objective

    def test_explain_mentions_chosen(self, decision):
        text = decision.explain(top=3)
        assert "Chosen schedule" in text
        assert "<- chosen" in text
        assert "metric 'execution_time'" in text

    def test_explain_counts(self, decision):
        text = decision.explain()
        assert f"Considered {decision.candidates_considered}" in text


class TestInformationPool:
    def test_model_registry(self, testbed):
        info = _info(testbed)
        info.register_model("m", object())
        assert info.model("m") is info.models["m"]

    def test_missing_model_lists_available(self, testbed):
        info = _info(testbed)
        info.register_model("jacobi", 1)
        with pytest.raises(KeyError, match="jacobi"):
            info.model("nope")

    def test_empty_name_rejected(self, testbed):
        info = _info(testbed)
        with pytest.raises(ValueError):
            info.register_model("", 1)

    def test_dynamic_flag(self, testbed, warmed_nws):
        assert not _info(testbed).has_dynamic_information
        assert _info(testbed, warmed_nws).has_dynamic_information


class TestRecordingActuator:
    def test_records_in_order(self, testbed):
        info = _info(testbed)
        act = RecordingActuator()
        agent = AppLeSAgent(info, planner=TimeBalancedPlanner(), actuator=act)
        agent.run(t0=1.0)
        agent.run(t0=2.0)
        assert [t for t, _ in act.actuated] == [1.0, 2.0]
        assert act.last_schedule is act.actuated[-1][1]

    def test_empty_raises(self):
        with pytest.raises(IndexError):
            RecordingActuator().last_schedule


class TestConservativeSpeed:
    def test_nominal_pool_no_discount(self, testbed):
        pool = ResourcePool(testbed.topology)
        assert pool.predicted_speed_conservative("alpha1", 2.0) == pool.predicted_speed(
            "alpha1"
        )

    def test_discount_with_nws(self, testbed, warmed_nws):
        pool = ResourcePool(testbed.topology, warmed_nws)
        plain = pool.predicted_speed("rs6000a")
        careful = pool.predicted_speed_conservative("rs6000a", 1.0)
        assert careful <= plain
        assert careful > 0.0

    def test_floor_prevents_vanishing(self, testbed, warmed_nws):
        pool = ResourcePool(testbed.topology, warmed_nws)
        # Even absurd conservatism leaves 5% of the forecast.
        extreme = pool.predicted_speed_conservative("rs6000a", 100.0)
        avail = pool.predicted_availability("rs6000a")
        nominal = testbed.topology.host("rs6000a").speed_mflops
        assert extreme == pytest.approx(nominal * 0.05 * avail)

    def test_negative_sigmas_rejected(self, testbed):
        pool = ResourcePool(testbed.topology)
        with pytest.raises(ValueError):
            pool.predicted_speed_conservative("alpha1", -1.0)

    def test_error_zero_without_nws(self, testbed):
        pool = ResourcePool(testbed.topology)
        assert pool.predicted_availability_error("alpha1") == 0.0


class TestOraclePool:
    def test_truth_at_instant(self, testbed):
        pool = OraclePool(testbed.topology, t_oracle=500.0)
        host = testbed.topology.host("rs6000a")
        assert pool.predicted_availability("rs6000a") == host.availability(500.0)
        assert pool.predicted_speed("rs6000a") == pytest.approx(
            host.speed_mflops * host.availability(500.0)
        )

    def test_bandwidth_truth(self, testbed):
        pool = OraclePool(testbed.topology, t_oracle=500.0)
        assert pool.predicted_bandwidth("sparc2", "alpha1") == pytest.approx(
            testbed.topology.path_bandwidth("sparc2", "alpha1", 500.0)
        )

    def test_self_bandwidth_infinite(self, testbed):
        pool = OraclePool(testbed.topology, t_oracle=0.0)
        assert pool.predicted_bandwidth("alpha1", "alpha1") == float("inf")

"""Tests for multi-dataset (multi-site) NILE analysis planning."""

from __future__ import annotations

import pytest

from repro.core.resources import ResourcePool
from repro.nile.analysis import HistogramAnalysis
from repro.nile.events import PASS2, ROAR, EventBatch
from repro.nile.site_manager import SiteManager
from repro.nile.storage import DISK, TAPE, StoredDataset


@pytest.fixture()
def manager(nile_bed):
    return SiteManager(site="site1", pool=ResourcePool(nile_bed.topology))


@pytest.fixture()
def datasets():
    return [
        StoredDataset("d0", EventBatch(100_000, PASS2, seed=1), TAPE,
                      host="site0-alpha0"),
        StoredDataset("d1", EventBatch(60_000, ROAR, seed=2), DISK,
                      host="site1-alpha0"),
        StoredDataset("d2", EventBatch(40_000, PASS2, seed=3), DISK,
                      host="site2-alpha1"),
    ]


class TestPlanMultiDataset:
    def test_each_dataset_fully_allocated(self, manager, datasets):
        plans = manager.plan_multi_dataset(datasets, HistogramAnalysis())
        assert set(plans) == {"d0", "d1", "d2"}
        for ds in datasets:
            assert sum(plans[ds.name].values()) == ds.nevents

    def test_compute_stays_at_data_site(self, manager, datasets):
        plans = manager.plan_multi_dataset(datasets, HistogramAnalysis())
        for ds in datasets:
            site = ds.host.split("-")[0]
            for host in plans[ds.name]:
                assert host.startswith(site), (ds.name, host)

    def test_empty_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.plan_multi_dataset([], HistogramAnalysis())

    def test_predicted_cost_is_slowest_site(self, manager, datasets):
        program = HistogramAnalysis()
        total = manager.predict_multi_dataset_cost(datasets, program)
        per_site = []
        for ds in datasets:
            site = manager.pool.machine_info(ds.host).site
            hosts = [m.name for m in manager.pool.machines() if m.site == site]
            per_site.append(manager.predict_run_cost(ds, program, hosts).total_s)
        assert total == pytest.approx(max(per_site))

    def test_tape_site_dominates(self, manager, datasets):
        # d0 sits on tape; its site must be the bottleneck.
        program = HistogramAnalysis()
        total = manager.predict_multi_dataset_cost(datasets, program)
        site0_hosts = [m.name for m in manager.pool.machines()
                       if m.site == "site0"]
        d0_cost = manager.predict_run_cost(datasets[0], program, site0_hosts).total_s
        assert total == pytest.approx(d0_cost)

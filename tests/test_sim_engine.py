"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Process, Signal, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, seen.append, "c")
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_equal_times_fifo(self):
        sim = Simulator()
        seen = []
        for tag in "abcde":
            sim.schedule(1.0, seen.append, tag)
        sim.run()
        assert seen == list("abcde")

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_at_absolute_time(self):
        sim = Simulator()
        hits = []
        sim.at(5.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [5.0]

    def test_run_until_stops_early(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(10.0, seen.append, "late")
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_max_events_fires_exactly_that_many(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)
        assert sim.events_processed == 100

    def test_max_events_allows_exact_budget(self):
        # A workload of exactly max_events events completes without tripping
        # the guard.
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(float(i), seen.append, i)
        assert sim.run(max_events=5) == 4.0
        assert seen == [0, 1, 2, 3, 4]

    def test_run_until_done_max_events_guard(self):
        sim = Simulator()

        def spinner():
            while True:
                yield 1.0

        proc = sim.process(spinner(), name="spinner")
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until_done([proc], max_events=50)
        assert sim.events_processed == 50


class TestProcesses:
    def test_process_sleeps(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 2.0
            trace.append(sim.now)
            yield 3.0
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_process_result(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        p = sim.process(proc())
        sim.run()
        assert p.done
        assert p.result == 42

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "nope"

        sim.process(proc())
        with pytest.raises(SimulationError, match="unsupported value"):
            sim.run()

    def test_negative_yield_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_done(self):
        sim = Simulator()

        def proc(delay):
            yield delay

        procs = [sim.process(proc(d)) for d in (1.0, 5.0, 3.0)]
        end = sim.run_until_done(procs)
        assert end == 5.0
        assert all(p.done for p in procs)

    def test_run_until_done_detects_deadlock(self):
        sim = Simulator()
        sig = Signal("never")

        def proc():
            yield sig

        p = sim.process(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_done([p])


class TestSignals:
    def test_signal_wakes_waiter_with_payload(self):
        sim = Simulator()
        got = []
        sig = Signal("data")

        def waiter():
            value = yield sig
            got.append((sim.now, value))

        def firer():
            yield 4.0
            sig.fire("hello")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == [(4.0, "hello")]

    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        woken = []
        sig = Signal()

        def waiter(i):
            yield sig
            woken.append(i)

        for i in range(3):
            sim.process(waiter(i))

        def firer():
            yield 1.0
            assert sig.waiting == 3
            count = sig.fire()
            assert count == 3

        sim.process(firer())
        sim.run()
        assert sorted(woken) == [0, 1, 2]

    def test_fire_count_tracked(self):
        sig = Signal()
        sig.fire()
        sig.fire()
        assert sig.fire_count == 2

    def test_process_finished_signal(self):
        sim = Simulator()
        done = []

        def short():
            yield 1.0
            return "x"

        p = sim.process(short(), "short")

        def watcher():
            value = yield p.finished
            done.append(value)

        sim.process(watcher())
        sim.run()
        assert done == ["x"]


class TestDeterminism:
    def test_identical_runs(self):
        def build():
            sim = Simulator()
            order = []

            def proc(tag, delay):
                yield delay
                order.append(tag)
                yield delay
                order.append(tag.upper())

            for i, d in enumerate((1.0, 0.5, 0.75)):
                sim.process(proc(f"p{i}", d))
            sim.run()
            return order

        assert build() == build()

"""Tests for the NWS forecaster family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nws.forecasters import (
    ARForecaster,
    ExponentialSmoothing,
    LastValue,
    MedianWindow,
    RunningMean,
    SlidingWindowMean,
    TrimmedMeanWindow,
    default_forecaster_family,
)

values = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=60
)


def feed(forecaster, xs):
    for x in xs:
        forecaster.update(x)
    return forecaster.forecast()


class TestLastValue:
    def test_predicts_last(self):
        assert feed(LastValue(), [0.1, 0.9, 0.4]) == 0.4

    def test_forecast_before_update_raises(self):
        with pytest.raises(RuntimeError):
            LastValue().forecast()


class TestRunningMean:
    def test_predicts_mean(self):
        assert feed(RunningMean(), [1.0, 2.0, 3.0]) == pytest.approx(2.0)

    @given(values)
    def test_property_equals_numpy_mean(self, xs):
        assert feed(RunningMean(), xs) == pytest.approx(np.mean(xs), abs=1e-9)


class TestSlidingWindowMean:
    def test_window_limits_history(self):
        f = SlidingWindowMean(window=2)
        assert feed(f, [100.0, 1.0, 3.0]) == pytest.approx(2.0)

    def test_short_history_uses_all(self):
        assert feed(SlidingWindowMean(window=10), [4.0]) == 4.0


class TestMedianWindow:
    def test_robust_to_spike(self):
        f = MedianWindow(window=5)
        assert feed(f, [0.9, 0.9, 0.0, 0.9, 0.9]) == pytest.approx(0.9)

    @given(values)
    def test_property_within_range(self, xs):
        pred = feed(MedianWindow(window=16), xs)
        window = xs[-16:]
        assert min(window) - 1e-12 <= pred <= max(window) + 1e-12


class TestTrimmedMean:
    def test_trims_outliers(self):
        f = TrimmedMeanWindow(window=5, trim=0.2)
        pred = feed(f, [0.5, 0.5, 0.5, 0.5, 50.0])
        assert pred == pytest.approx(0.5)

    def test_trim_half_rejected(self):
        with pytest.raises(ValueError):
            TrimmedMeanWindow(window=4, trim=0.5)


class TestExponentialSmoothing:
    def test_initialises_to_first(self):
        assert feed(ExponentialSmoothing(0.3), [0.8]) == 0.8

    def test_tracks_towards_recent(self):
        f = ExponentialSmoothing(0.5)
        pred = feed(f, [0.0, 1.0, 1.0, 1.0])
        assert 0.8 < pred <= 1.0

    def test_zero_gain_rejected(self):
        with pytest.raises(ValueError):
            ExponentialSmoothing(0.0)

    @given(values)
    def test_property_within_range(self, xs):
        pred = feed(ExponentialSmoothing(0.3), xs)
        assert min(xs) - 1e-12 <= pred <= max(xs) + 1e-12


class TestARForecaster:
    def test_falls_back_to_mean_before_fit(self):
        f = ARForecaster(order=2, window=16, refit_every=100)
        assert feed(f, [1.0, 3.0]) == pytest.approx(2.0)

    def test_learns_ar1_process(self):
        # A strongly autocorrelated series: AR fit should beat the running
        # mean noticeably.
        rng = np.random.default_rng(5)
        phi, mean = 0.95, 0.5
        x = mean
        series = []
        for _ in range(300):
            x = mean + phi * (x - mean) + rng.normal(0, 0.02)
            series.append(min(1.0, max(0.0, x)))
        ar = ARForecaster(order=2, window=64, refit_every=4)
        rm = RunningMean()
        ar_err = rm_err = 0.0
        for i, v in enumerate(series):
            if i > 50:
                ar_err += (ar.forecast() - v) ** 2
                rm_err += (rm.forecast() - v) ** 2
            ar.update(v)
            rm.update(v)
        assert ar_err < rm_err

    def test_window_order_constraint(self):
        with pytest.raises(ValueError):
            ARForecaster(order=8, window=10)

    def test_constant_series_predicted_exactly(self):
        f = ARForecaster(order=2, window=16, refit_every=2)
        pred = feed(f, [0.5] * 30)
        assert pred == pytest.approx(0.5, abs=1e-6)


class TestDefaultFamily:
    def test_unique_names(self):
        family = default_forecaster_family()
        names = [f.name for f in family]
        assert len(set(names)) == len(names)

    def test_covers_predictor_styles(self):
        names = {f.name for f in default_forecaster_family()}
        assert "last" in names
        assert "run_mean" in names
        assert any(n.startswith("median") for n in names)
        assert any(n.startswith("exp_smooth") for n in names)
        assert any(n.startswith("ar(") for n in names)

    def test_fresh_instances_each_call(self):
        a = default_forecaster_family()
        b = default_forecaster_family()
        assert a[0] is not b[0]

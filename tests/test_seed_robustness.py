"""Seed-robustness: the headline shapes must not depend on the lucky seed.

Every figure claim is re-checked (at reduced scale) across several testbed
load seeds.  These runs are the slowest tests in the suite, so scales are
kept small; the full-scale single-seed versions live in the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig5, run_fig6, run_nws_comparison

SEEDS = (7, 1996, 20260706)


class TestFig5AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_apples_wins_for_any_seed(self, seed):
        result = run_fig5(sizes=(1400,), iterations=30, repeats=2, seed=seed)
        row = result.rows[0]
        assert row.apples_s < row.strip_s, f"seed={seed}"
        assert row.apples_s < row.blocked_s, f"seed={seed}"
        # The band is wide but the advantage must be material.
        assert row.strip_ratio > 1.3
        assert row.blocked_ratio > 1.3


class TestFig6AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crossover_structure_for_any_seed(self, seed):
        result = run_fig6(sizes=(3000, 4200), iterations=10, seed=seed)
        below = result.rows[0]
        above = result.rows[1]
        assert below.apples_uses_only_sp2, f"seed={seed}"
        assert above.blocked_spills
        assert above.blocked_sp2_s > 2.0 * above.apples_s, f"seed={seed}"


class TestNwsAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ensemble_competitive_for_any_seed(self, seed):
        result = run_nws_comparison(nsamples=300, seed=seed)
        for process in result.mse:
            assert result.ensemble_regret(process) < 2.0, (seed, process)

"""Tests for repro.util.rng: determinism and stream independence."""

from __future__ import annotations

import numpy as np

from repro.util.rng import RngStream, spawn_rng


class TestSpawnRng:
    def test_same_seed_name_reproduces(self):
        a = spawn_rng(42, "load")
        b = spawn_rng(42, "load")
        assert a.uniform() == b.uniform()

    def test_different_names_differ(self):
        a = spawn_rng(42, "load:host1")
        b = spawn_rng(42, "load:host2")
        assert a.uniform() != b.uniform()

    def test_different_seeds_differ(self):
        a = spawn_rng(1, "x")
        b = spawn_rng(2, "x")
        assert a.uniform() != b.uniform()

    def test_stable_across_processes(self):
        # The name hash must not depend on interpreter hash randomisation:
        # draw a known value and pin it.
        value = spawn_rng(0, "pin").uniform()
        assert value == spawn_rng(0, "pin").uniform()


class TestRngStream:
    def test_child_streams_independent(self):
        root = RngStream(seed=7)
        xs = [root.child(f"c{i}").uniform() for i in range(10)]
        assert len(set(xs)) == 10

    def test_child_reproducible(self):
        a = RngStream(7).child("load").child("host")
        b = RngStream(7).child("load").child("host")
        assert a.normal() == b.normal()

    def test_uniform_bounds(self):
        s = RngStream(3)
        for _ in range(100):
            assert 0.0 <= s.uniform() < 1.0

    def test_uniform_custom_bounds(self):
        s = RngStream(3)
        for _ in range(100):
            assert 2.0 <= s.uniform(2.0, 5.0) < 5.0

    def test_integers_bounds(self):
        s = RngStream(3)
        draws = {s.integers(0, 4) for _ in range(200)}
        assert draws == {0, 1, 2, 3}

    def test_exponential_positive(self):
        s = RngStream(3)
        assert all(s.exponential(2.0) > 0 for _ in range(50))

    def test_choice_covers_sequence(self):
        s = RngStream(9)
        seq = ["a", "b", "c"]
        picks = {s.choice(seq) for _ in range(100)}
        assert picks == set(seq)

    def test_shuffle_permutes(self):
        s = RngStream(11)
        xs = list(range(20))
        ys = list(xs)
        s.shuffle(ys)
        assert sorted(ys) == xs
        assert ys != xs  # vanishingly unlikely to be identity

    def test_generator_exposed(self):
        s = RngStream(1)
        assert isinstance(s.generator, np.random.Generator)

"""Tests for repro.util.rng: determinism and stream independence."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed, spawn_rng


class TestSpawnRng:
    def test_same_seed_name_reproduces(self):
        a = spawn_rng(42, "load")
        b = spawn_rng(42, "load")
        assert a.uniform() == b.uniform()

    def test_different_names_differ(self):
        a = spawn_rng(42, "load:host1")
        b = spawn_rng(42, "load:host2")
        assert a.uniform() != b.uniform()

    def test_different_seeds_differ(self):
        a = spawn_rng(1, "x")
        b = spawn_rng(2, "x")
        assert a.uniform() != b.uniform()

    def test_stable_across_processes(self):
        # The name hash must not depend on interpreter hash randomisation:
        # draw a known value and pin it.
        value = spawn_rng(0, "pin").uniform()
        assert value == spawn_rng(0, "pin").uniform()


class TestRngStream:
    def test_child_streams_independent(self):
        root = RngStream(seed=7)
        xs = [root.child(f"c{i}").uniform() for i in range(10)]
        assert len(set(xs)) == 10

    def test_child_reproducible(self):
        a = RngStream(7).child("load").child("host")
        b = RngStream(7).child("load").child("host")
        assert a.normal() == b.normal()

    def test_uniform_bounds(self):
        s = RngStream(3)
        for _ in range(100):
            assert 0.0 <= s.uniform() < 1.0

    def test_uniform_custom_bounds(self):
        s = RngStream(3)
        for _ in range(100):
            assert 2.0 <= s.uniform(2.0, 5.0) < 5.0

    def test_integers_bounds(self):
        s = RngStream(3)
        draws = {s.integers(0, 4) for _ in range(200)}
        assert draws == {0, 1, 2, 3}

    def test_exponential_positive(self):
        s = RngStream(3)
        assert all(s.exponential(2.0) > 0 for _ in range(50))

    def test_choice_covers_sequence(self):
        s = RngStream(9)
        seq = ["a", "b", "c"]
        picks = {s.choice(seq) for _ in range(100)}
        assert picks == set(seq)

    def test_shuffle_permutes(self):
        s = RngStream(11)
        xs = list(range(20))
        ys = list(xs)
        s.shuffle(ys)
        assert sorted(ys) == xs
        assert ys != xs  # vanishingly unlikely to be identity

    def test_generator_exposed(self):
        s = RngStream(1)
        assert isinstance(s.generator, np.random.Generator)


class TestEnsembleBatchSplitInvariance:
    """Replica substreams are coordinates, not cursors: any partition of an
    ensemble batch concatenates to the single-pass result exactly, because
    every replica's world derives from ``derive_seed(seed, ..., index)``
    — never from its position in a shared stream."""

    N_REPLICAS = 6
    ITERATIONS = 6

    def _full_batch(self):
        from repro.sim.execution_ensemble import replicated, run_ensemble

        specs = replicated(self.N_REPLICAS, n_hosts=4, seed=5)
        return specs, run_ensemble(specs, self.ITERATIONS)

    @settings(max_examples=10, deadline=None)
    @given(cuts=st.sets(st.integers(min_value=1, max_value=N_REPLICAS - 1)))
    def test_any_partition_reproduces_single_pass(self, cuts):
        from repro.sim.execution_ensemble import replicated, run_ensemble

        specs, full = self._full_batch()
        bounds = [0, *sorted(cuts), self.N_REPLICAS]
        merged = []
        for lo, hi in zip(bounds, bounds[1:]):
            # Each segment rebuilds its replicas from coordinates alone.
            segment = replicated(self.N_REPLICAS, n_hosts=4, seed=5)[lo:hi]
            merged.extend(run_ensemble(segment, self.ITERATIONS))
        assert len(merged) == len(full)
        for a, b in zip(merged, full):
            assert a.total_time == b.total_time
            assert a.iteration_times == b.iteration_times
            assert a.host_busy_time == b.host_busy_time

    def test_derive_seed_is_positional(self):
        # The invariance above rests on this: the seed of replica i is a
        # pure function of (master seed, coordinates), nothing else.
        assert derive_seed(5, "ensemble", 0, 3) == derive_seed(5, "ensemble", 0, 3)
        assert derive_seed(5, "ensemble", 0, 3) != derive_seed(5, "ensemble", 0, 4)
        assert derive_seed(5, "ensemble", 0, 3) != derive_seed(6, "ensemble", 0, 3)

"""Shared fixtures for the AppLeS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.nws import NetworkWeatherService
from repro.sim import casa_testbed, nile_testbed, sdsc_pcl_testbed, sdsc_pcl_with_sp2


@pytest.fixture(scope="session")
def testbed():
    """The Figure 2 SDSC/PCL testbed (session-scoped; loads are cached)."""
    return sdsc_pcl_testbed(seed=1996)


@pytest.fixture(scope="session")
def testbed_sp2():
    """The Figure 6 configuration (Figure 2 plus two SP-2 nodes)."""
    return sdsc_pcl_with_sp2(seed=1996)


@pytest.fixture(scope="session")
def casa():
    """The CASA C90/Paragon pair."""
    return casa_testbed()


@pytest.fixture(scope="session")
def nile_bed():
    """A 3-site NILE-style configuration."""
    return nile_testbed(seed=1996)


@pytest.fixture(scope="session")
def warmed_nws(testbed):
    """A Network Weather Service over the SDSC/PCL testbed, warmed 600 s."""
    nws = NetworkWeatherService.for_testbed(testbed, seed=7)
    nws.warmup(600.0)
    return nws


@pytest.fixture(scope="session")
def warmed_nws_sp2(testbed_sp2):
    """A warmed NWS over the SP-2 configuration."""
    nws = NetworkWeatherService.for_testbed(testbed_sp2, seed=7)
    nws.warmup(600.0)
    return nws

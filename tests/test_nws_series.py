"""Tests for the NWS time-series store."""

from __future__ import annotations

import pytest

from repro.nws.series import TimeSeries


class TestTimeSeries:
    def test_append_and_read(self):
        ts = TimeSeries("cpu")
        ts.append(0.0, 0.5)
        ts.append(10.0, 0.6)
        assert len(ts) == 2
        assert ts.last_time == 10.0
        assert ts.last_value == 0.6

    def test_iteration(self):
        ts = TimeSeries()
        ts.append(1.0, 0.1)
        ts.append(2.0, 0.2)
        assert list(ts) == [(1.0, 0.1), (2.0, 0.2)]

    def test_timestamps_must_not_decrease(self):
        ts = TimeSeries()
        ts.append(5.0, 0.1)
        with pytest.raises(ValueError):
            ts.append(4.0, 0.2)

    def test_equal_timestamps_allowed(self):
        ts = TimeSeries()
        ts.append(5.0, 0.1)
        ts.append(5.0, 0.2)
        assert len(ts) == 2

    def test_bounded(self):
        ts = TimeSeries(maxlen=3)
        for i in range(10):
            ts.append(float(i), float(i))
        assert len(ts) == 3
        assert ts.values() == [7.0, 8.0, 9.0]
        assert ts.total_observations == 10

    def test_window_reads(self):
        ts = TimeSeries()
        for i in range(5):
            ts.append(float(i), float(i * 10))
        assert ts.values(2) == [30.0, 40.0]
        assert ts.times(2) == [3.0, 4.0]
        assert ts.values(100) == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_window_must_be_positive(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)
        with pytest.raises(ValueError):
            ts.values(0)

    def test_empty_accessors_raise(self):
        ts = TimeSeries("x")
        with pytest.raises(IndexError):
            _ = ts.last_value
        with pytest.raises(IndexError):
            _ = ts.last_time

"""Tests for the detector-acceptance Monte Carlo application."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.userspec import UserSpecification
from repro.montecarlo.apples import make_montecarlo_agent
from repro.montecarlo.problem import MonteCarloProblem, montecarlo_hat
from repro.montecarlo.simulation import (
    AcceptanceResult,
    run_acceptance_batch,
    true_acceptance,
)


class TestSimulation:
    def test_deterministic(self):
        a = run_acceptance_batch(5000, seed=3)
        b = run_acceptance_batch(5000, seed=3)
        assert a == b

    def test_shares_independent(self):
        a = run_acceptance_batch(5000, seed=3, share_index=0)
        b = run_acceptance_batch(5000, seed=3, share_index=1)
        assert a.accepted != b.accepted  # different sub-streams

    def test_converges_to_truth(self):
        result = run_acceptance_batch(400_000, seed=1)
        assert result.acceptance == pytest.approx(true_acceptance(), abs=0.003)

    def test_stderr_shrinks(self):
        small = run_acceptance_batch(1_000, seed=2)
        big = run_acceptance_batch(100_000, seed=2)
        assert big.stderr() < small.stderr()

    def test_merge_counters(self):
        a = AcceptanceResult(100, 80)
        b = AcceptanceResult(300, 270)
        m = a.merge(b)
        assert m.thrown == 400
        assert m.accepted == 350
        assert m.acceptance == pytest.approx(0.875)

    def test_empty_result(self):
        empty = AcceptanceResult(0, 0)
        assert empty.acceptance == 0.0
        assert empty.stderr() == 0.0

    @given(
        n1=st.integers(min_value=100, max_value=5000),
        n2=st.integers(min_value=100, max_value=5000),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_acceptance_in_unit_interval(self, n1, n2):
        merged = run_acceptance_batch(n1, seed=9, share_index=0).merge(
            run_acceptance_batch(n2, seed=9, share_index=1)
        )
        assert 0.0 <= merged.acceptance <= 1.0
        assert merged.thrown == n1 + n2


class TestProblemAndHat:
    def test_hat_shape(self):
        hat = montecarlo_hat(MonteCarloProblem(samples=1000))
        assert hat.paradigm == "master-worker"
        assert hat.communication.pattern == "gather"
        assert hat.structure.total_units == 1000.0
        assert hat.task("simulate").can_run_on("anything")

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloProblem(samples=0)


class TestAgent:
    @pytest.fixture(scope="class")
    def run(self, testbed, warmed_nws):
        problem = MonteCarloProblem(samples=500_000, seed=5)
        agent = make_montecarlo_agent(testbed, problem, warmed_nws)
        decision, run = agent.run(t0=600.0)
        return problem, decision, run

    def test_all_samples_assigned(self, run):
        problem, _, result = run
        assert sum(result.shares.values()) == problem.samples

    def test_estimate_near_truth(self, run):
        _, _, result = run
        assert result.result.acceptance == pytest.approx(
            true_acceptance(), abs=5 * result.result.stderr() + 1e-3
        )

    def test_loaded_machines_get_fewer_samples(self, run):
        _, _, result = run
        # rs6000a (mean availability 0.30) vs rs6000b (0.70): same nominal
        # speed, very different shares.
        assert result.shares["rs6000a"] < result.shares["rs6000b"]

    def test_timing_positive(self, run):
        _, decision, result = run
        assert result.elapsed_s > 0.0
        assert decision.best.predicted_time > 0.0

    def test_userspec_filters(self, testbed, warmed_nws):
        problem = MonteCarloProblem(samples=100_000)
        us = UserSpecification(
            accessible_machines=frozenset({"alpha1", "alpha2"})
        )
        agent = make_montecarlo_agent(testbed, problem, warmed_nws, userspec=us)
        _, result = agent.run(t0=600.0)
        assert set(result.shares) <= {"alpha1", "alpha2"}

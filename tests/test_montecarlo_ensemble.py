"""Tests for the Monte-Carlo acceptance ensemble sweep."""

from __future__ import annotations

import pytest

from repro.montecarlo import (
    MonteCarloProblem,
    run_acceptance_ensemble,
    true_acceptance,
)
from repro.util import perf

PROBLEM = MonteCarloProblem(samples=40_000, seed=3)


class TestAcceptanceEnsemble:
    def test_reproducible(self):
        a = run_acceptance_ensemble(PROBLEM, 5, seed=11)
        b = run_acceptance_ensemble(PROBLEM, 5, seed=11)
        assert a.replicas == b.replicas
        assert a.acceptance_ci == b.acceptance_ci
        assert a.elapsed_ci == b.elapsed_ci

    def test_converges_to_true_acceptance(self):
        ens = run_acceptance_ensemble(PROBLEM, 8, seed=11)
        truth = true_acceptance()
        assert ens.acceptance_ci.lo <= truth <= ens.acceptance_ci.hi
        # Each replica individually lands within a loose window too.
        for rep in ens.replicas:
            assert abs(rep.result.acceptance - truth) < 0.02

    def test_replicas_have_independent_worlds(self):
        ens = run_acceptance_ensemble(PROBLEM, 5, seed=11)
        elapsed = {rep.elapsed_s for rep in ens.replicas}
        assert len(elapsed) > 1  # different testbeds → different timings
        assert all(rep.elapsed_s > 0.0 for rep in ens.replicas)

    def test_partition_invariance(self):
        """Computing any index split concatenates to the full sweep."""
        full = run_acceptance_ensemble(PROBLEM, 6, seed=11)
        head = run_acceptance_ensemble(PROBLEM, 6, seed=11, indices=[0, 1])
        tail = run_acceptance_ensemble(PROBLEM, 6, seed=11, indices=[2, 3, 4, 5])
        assert head.replicas + tail.replicas == full.replicas

    def test_fast_and_reference_modes_agree(self):
        with perf.fastpath(True):
            fast = run_acceptance_ensemble(PROBLEM, 4, seed=11)
        with perf.fastpath(False):
            ref = run_acceptance_ensemble(PROBLEM, 4, seed=11)
        assert fast.replicas == ref.replicas

    def test_table_renders(self):
        ens = run_acceptance_ensemble(PROBLEM, 3, seed=11)
        text = ens.table().render()
        assert "MC acceptance ensemble" in text
        assert "mean" in text

    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError):
            run_acceptance_ensemble(PROBLEM, 0)

    def test_shares_cover_all_samples(self):
        ens = run_acceptance_ensemble(PROBLEM, 3, seed=11)
        for rep in ens.replicas:
            assert sum(rep.shares.values()) == PROBLEM.samples
            assert rep.result.thrown == PROBLEM.samples

"""Tests for repro.util.tables."""

from __future__ import annotations

import pytest

from repro.util.tables import Table, render_table


class TestRenderTable:
    def test_basic_render(self):
        text = render_table(["n", "time"], [[1000, 2.5], [2000, 10.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "n" in lines[0] and "time" in lines[0]

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["x"], [[1234567.0], [0.0000012], [float("nan")]])
        assert "e" in text  # scientific for extremes
        assert "nan" in text

    def test_bool_rendered_as_word(self):
        text = render_table(["flag"], [[True]])
        assert "True" in text

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestTable:
    def test_accumulate_and_render(self):
        t = Table(["n", "apples", "strip"], title="fig5")
        t.add(1000, 1.0, 3.0)
        t.add(2000, 2.0, 7.0)
        assert len(t) == 2
        out = t.render()
        assert "fig5" in out
        assert "2000" in out

    def test_add_wrong_arity_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_column_extraction(self):
        t = Table(["n", "time"])
        t.add(1, 10.0)
        t.add(2, 20.0)
        assert t.column("time") == [10.0, 20.0]

    def test_column_unknown_raises(self):
        t = Table(["n"])
        with pytest.raises(ValueError):
            t.column("zzz")

"""Tests for the HAT and User Specifications."""

from __future__ import annotations

import pytest

from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.resources import MachineInfo
from repro.core.userspec import UserSpecification


def _machine(name="m", site="PCL", arch="alpha", caps=()):
    return MachineInfo(
        name=name, speed_mflops=50.0, memory_available_mb=100.0,
        site=site, arch=arch, dedicated=False, capabilities=frozenset(caps),
    )


class TestTaskCharacteristics:
    def test_portable_task_runs_anywhere(self):
        t = TaskCharacteristics("sweep", flop_per_unit=1.0)
        assert t.efficiency_on("anything") == 1.0
        assert t.can_run_on("sparc")

    def test_specialised_task(self):
        t = TaskCharacteristics(
            "lhsf", flop_per_unit=1.0, implementations={"c90": 0.5}
        )
        assert t.efficiency_on("c90") == 0.5
        assert t.efficiency_on("paragon") == 0.0
        assert not t.can_run_on("paragon")

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            TaskCharacteristics("t", 1.0, implementations={"x": 0.0})

    def test_negative_flop_rejected(self):
        with pytest.raises(ValueError):
            TaskCharacteristics("t", -1.0)


class TestCommunicationCharacteristics:
    def test_defaults(self):
        c = CommunicationCharacteristics()
        assert c.pattern == "none"

    def test_bad_pattern(self):
        with pytest.raises(ValueError):
            CommunicationCharacteristics(pattern="mesh")

    def test_bad_pipeline_range(self):
        with pytest.raises(ValueError):
            CommunicationCharacteristics(pattern="pipeline", pipeline_size_range=(5, 3))


class TestHAT:
    def make(self):
        return HeterogeneousApplicationTemplate(
            name="app",
            paradigm="data-parallel",
            tasks=(
                TaskCharacteristics("a", 2.0),
                TaskCharacteristics("b", 3.0),
            ),
            communication=CommunicationCharacteristics(pattern="stencil"),
            structure=StructureInfo(total_units=100.0, iterations=10),
        )

    def test_task_lookup(self):
        hat = self.make()
        assert hat.task("a").flop_per_unit == 2.0
        with pytest.raises(KeyError):
            hat.task("zzz")

    def test_total_flop(self):
        assert self.make().total_flop == pytest.approx(500.0)

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousApplicationTemplate(
                name="x", paradigm="pipeline",
                tasks=(TaskCharacteristics("a", 1.0), TaskCharacteristics("a", 1.0)),
                communication=CommunicationCharacteristics(),
                structure=StructureInfo(total_units=1.0),
            )

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousApplicationTemplate(
                name="x", paradigm="pipeline", tasks=(),
                communication=CommunicationCharacteristics(),
                structure=StructureInfo(total_units=1.0),
            )

    def test_bad_paradigm_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousApplicationTemplate(
                name="x", paradigm="quantum",
                tasks=(TaskCharacteristics("a", 1.0),),
                communication=CommunicationCharacteristics(),
                structure=StructureInfo(total_units=1.0),
            )


class TestUserSpecification:
    def test_default_permits_everything(self):
        us = UserSpecification()
        assert us.permits(_machine())

    def test_exclusion_wins(self):
        us = UserSpecification(
            accessible_machines=frozenset({"m"}), excluded_machines=frozenset({"m"})
        )
        assert not us.permits(_machine("m"))

    def test_accessibility_filter(self):
        us = UserSpecification(accessible_machines=frozenset({"other"}))
        assert not us.permits(_machine("m"))

    def test_capability_requirement(self):
        us = UserSpecification(required_capabilities=frozenset({"corba-orb"}))
        assert not us.permits(_machine(caps=()))
        assert us.permits(_machine(caps=("corba-orb", "pvm")))

    def test_site_preference_rank(self):
        us = UserSpecification(preferred_sites=("SDSC", "PCL"))
        assert us.site_preference_rank("SDSC") == 0
        assert us.site_preference_rank("PCL") == 1
        assert us.site_preference_rank("elsewhere") == 2

    def test_bad_metric_rejected(self):
        with pytest.raises(ValueError):
            UserSpecification(performance_metric="throughput")

    def test_bad_max_machines(self):
        with pytest.raises(ValueError):
            UserSpecification(max_machines=0)

"""Tests for the ASCII chart helpers."""

from __future__ import annotations

import pytest

from repro.util.ascii_plot import bar_chart, line_chart


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        assert "2.5s" in bar_chart(["x"], [2.5], unit="s")

    def test_title(self):
        assert bar_chart(["x"], [1.0], title="T").splitlines()[0] == "T"

    def test_zero_value_empty_bar(self):
        text = bar_chart(["z", "a"], [0.0, 1.0])
        assert "#" not in text.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = line_chart([0, 1, 2], {"s1": [1, 2, 3], "s2": [3, 2, 1]})
        assert "*" in text
        assert "o" in text
        assert "* s1" in text and "o s2" in text

    def test_axis_labels(self):
        text = line_chart([10, 20], {"s": [5.0, 15.0]})
        assert "15" in text
        assert "5" in text
        assert "10" in text and "20" in text

    def test_log_scale(self):
        text = line_chart([0, 1], {"s": [1.0, 1000.0]}, logy=True, height=6)
        assert "1e+03" in text or "1000" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [0.0, 1.0]}, logy=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {})
        with pytest.raises(ValueError):
            line_chart([0], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0]})

    def test_flat_series_ok(self):
        text = line_chart([0, 1, 2], {"s": [5.0, 5.0, 5.0]})
        assert "*" in text

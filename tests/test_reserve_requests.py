"""Reservation requests: validation, occurrence geometry, JSONL round-trip.

The request is the reservation layer's public contract: every structural
violation is a ``ValueError`` naming the field, occurrence windows are
pure arithmetic over the repetition pattern, the decision bridge carries
constraints into the User Specification filter, and the JSONL form
round-trips bit-for-bit like every other frozen artifact in the repo.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.jacobi.grid import JacobiProblem
from repro.reserve import (
    REQUEST_SCHEMA,
    ReservationRequest,
    load_requests,
    save_requests,
    seeded_requests,
)


def _request(**overrides) -> ReservationRequest:
    kwargs = dict(
        request_id="r1",
        problem=JacobiProblem(n=400, iterations=20),
        earliest_start=600.0,
        deadline=3000.0,
    )
    kwargs.update(overrides)
    return ReservationRequest(**kwargs)


class TestValidation:
    def test_defaults_are_valid(self):
        r = _request()
        assert r.priority == 2
        assert r.min_machines == 1 and r.max_machines is None

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"request_id": ""}, "request_id"),
            ({"earliest_start": -1.0}, "earliest_start"),
            ({"deadline": 600.0}, "deadline"),
            ({"preferred_windows": ((100.0, 200.0),)}, "preferred window"),
            ({"preferred_windows": ((700.0, 700.0),)}, "preferred window"),
            ({"repeat_count": 0}, "repeat_count"),
            ({"repeat_count": 2}, "repeat_period_s"),
            ({"min_machines": 0}, "min_machines"),
            ({"min_machines": 3, "max_machines": 2}, "max_machines"),
            ({"priority": 0}, "priority classes start at 1"),
        ],
    )
    def test_violations_raise(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            _request(**overrides)


class TestOccurrenceGeometry:
    def test_single_occurrence_interval(self):
        r = _request()
        assert r.occurrence_interval(0) == (600.0, 3000.0)
        with pytest.raises(ValueError, match="occurrence"):
            r.occurrence_interval(1)

    def test_repetition_shifts_whole_interval(self):
        r = _request(repeat_count=3, repeat_period_s=4000.0)
        assert r.occurrence_interval(0) == (600.0, 3000.0)
        assert r.occurrence_interval(2) == (8600.0, 11000.0)

    def test_windows_default_to_whole_interval(self):
        r = _request(repeat_count=2, repeat_period_s=4000.0)
        assert r.occurrence_windows(1) == ((4600.0, 7000.0),)

    def test_preferred_windows_shift_with_occurrence(self):
        r = _request(
            preferred_windows=((700.0, 1200.0), (2000.0, 2500.0)),
            repeat_count=2,
            repeat_period_s=4000.0,
        )
        assert r.occurrence_windows(0) == ((700.0, 1200.0), (2000.0, 2500.0))
        assert r.occurrence_windows(1) == ((4700.0, 5200.0), (6000.0, 6500.0))


class TestDecisionBridge:
    def test_constraints_reach_the_userspec(self):
        r = _request(max_machines=4)
        dreq = r.decision_request(700.0, exclude={"a", "b"})
        assert dreq.at == 700.0
        assert dreq.problem is r.problem
        assert dreq.userspec.excluded_machines == frozenset({"a", "b"})
        assert dreq.userspec.max_machines == 4
        assert dreq.userspec.accessible_machines is None

    def test_shrink_overrides(self):
        r = _request(max_machines=4)
        dreq = r.decision_request(
            700.0, accessible={"a", "c"}, max_machines=2
        )
        assert dreq.userspec.accessible_machines == frozenset({"a", "c"})
        assert dreq.userspec.max_machines == 2


class TestRoundTrip:
    def test_jsonl_round_trip_exact(self, tmp_path):
        requests = seeded_requests(7, seed=99)
        path = tmp_path / "requests.jsonl"
        save_requests(path, requests)
        assert load_requests(path) == requests

    def test_rewrite_is_bit_identical(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        save_requests(path, seeded_requests(5, seed=3))
        first = path.read_bytes()
        save_requests(path, load_requests(path))
        assert path.read_bytes() == first

    def test_schema_checked(self):
        payload = _request().to_json_dict()
        assert payload["schema"] == REQUEST_SCHEMA
        payload["schema"] = "repro.reserve.request/v0"
        with pytest.raises(ValueError, match="unsupported request schema"):
            ReservationRequest.from_json_dict(payload)

    def test_malformed_record_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = [json.dumps(_request().to_json_dict()), "{nope"]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_requests(path)

    def test_missing_key_is_a_value_error(self, tmp_path):
        payload = _request().to_json_dict()
        del payload["deadline"]
        path = tmp_path / "short.jsonl"
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="malformed request record"):
            load_requests(path)

    def test_refuses_empty_writes_and_reads(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_requests(tmp_path / "x.jsonl", [])
        empty = tmp_path / "none.jsonl"
        empty.write_text("\n")
        with pytest.raises(ValueError, match="no request records"):
            load_requests(empty)


class TestSeededWorkload:
    def test_deterministic_from_seed(self):
        assert seeded_requests(10, seed=5) == seeded_requests(10, seed=5)

    def test_seeds_never_collide(self):
        a = {r.request_id for r in seeded_requests(10, seed=5)}
        b = {r.request_id for r in seeded_requests(10, seed=6)}
        assert not (a & b)

    def test_workload_exercises_every_feature(self):
        requests = seeded_requests(15, seed=1)
        assert any(r.preferred_windows for r in requests)
        assert any(r.repeat_count > 1 for r in requests)
        assert any(r.min_machines > 1 for r in requests)
        assert any(r.max_machines is not None for r in requests)
        assert {r.priority for r in requests} == {1, 2, 3}

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            seeded_requests(0)


class TestImmutability:
    def test_frozen(self):
        r = _request()
        with pytest.raises(dataclasses.FrozenInstanceError):
            r.priority = 1

#!/usr/bin/env python
"""CLEO/NILE: data-parallel event analysis and the skim decision.

A physicist at site 1 analyses half a million pass2 events stored on tape
at site 0.  The example runs a *real* analysis (an energy histogram over
synthetic CLEO-style events), schedules it data-parallel with an AppLeS
agent, and then consults the Site Manager about skimming a private
working set onto local disk.

Run:  python examples/nile_event_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ResourcePool
from repro.nile import (
    PASS2,
    TAPE,
    EventBatch,
    HistogramAnalysis,
    SiteManager,
    StoredDataset,
    make_nile_agent,
)
from repro.nws import NetworkWeatherService
from repro.sim import nile_testbed


def main() -> None:
    testbed = nile_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed)
    nws.warmup(600.0)
    pool = ResourcePool(testbed.topology, nws)

    events = EventBatch(500_000, PASS2, seed=42)
    dataset = StoredDataset("run4-pass2", events, TAPE, host="site0-alpha0")
    program = HistogramAnalysis(field="energy_gev", bins=40, lo=9.0, hi=12.0)

    # -- data-parallel scheduling -----------------------------------------
    agent = make_nile_agent(testbed, dataset, program, nws)
    decision = agent.schedule()
    best = decision.best
    print(f"analysis schedule over {len(best.resource_set)} hosts "
          f"(predicted {best.predicted_time:.1f} s):")
    for alloc in best.allocations:
        print(f"  {alloc.machine:<14s} {alloc.work_units:>12,.0f} events")
    print()

    # -- actually run it, split exactly as scheduled ----------------------
    partials = []
    offset = 0
    for alloc in best.allocations:
        count = int(alloc.work_units)
        if offset + count > events.nevents:
            count = events.nevents - offset
        if count <= 0:
            continue
        partials.append(program.run(events.slice(offset, offset + count)))
        offset += count
    if offset < events.nevents:  # rounding remainder
        partials.append(program.run(events.slice(offset, events.nevents)))
    merged = program.merge(partials)
    whole = program.run(events)
    assert np.array_equal(merged.counts, whole.counts)
    peak_bin = int(np.argmax(merged.counts))
    print(f"histogram peak: bin {peak_bin} "
          f"[{merged.edges[peak_bin]:.2f}, {merged.edges[peak_bin + 1]:.2f}) GeV, "
          f"{merged.counts[peak_bin]:,} events — "
          "distributed result identical to single-site ✓")
    print()

    # -- the Site Manager's skim decision ----------------------------------
    from repro.nile import DISK, ROAR

    manager = SiteManager(site="site1", pool=pool)
    manager.register(dataset)
    disk_dataset = StoredDataset(
        "run4-disk", EventBatch(500_000, PASS2, seed=42), DISK,
        host="site0-alpha1",
    )
    manager.register(disk_dataset)

    cases = (
        # Tape-resident data with a compact roar skim: every remote run
        # re-reads the tape, so skimming pays almost immediately.
        (dataset, 0.2, ROAR, "20% roar skim of pass2 on remote TAPE"),
        # Disk-resident data, skimming the *full* set in pass2 format: the
        # skim costs several remote runs, so the decision flips with the
        # expected repeat count.
        (disk_dataset, 1.0, PASS2, "full pass2 copy of pass2 on remote DISK"),
    )
    for ds, fraction, fmt, label in cases:
        print(f"skim-vs-remote decision — {label}:")
        for runs in (1, 2, 5, 30):
            d = manager.decide_skim(ds, program, expected_runs=runs,
                                    skim_fraction=fraction, target_format=fmt)
            verdict = "SKIM" if d.skim else "stay remote"
            print(f"  {runs:>3d} expected runs -> {verdict:<12s} "
                  f"(skim {d.skim_cost_s:7.0f} s, remote/run {d.remote_run_s:6.0f} s, "
                  f"local/run {d.local_run_s:5.1f} s, crossover {d.crossover_runs:5.2f})")
        print()


if __name__ == "__main__":
    main()

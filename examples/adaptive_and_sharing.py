#!/usr/bin/env python
"""Living in a shared metacomputer: redistribution and co-scheduling.

Two stories from §3.2 and §3 the one-shot prototype only sketched:

1. **Redistribution during execution** — a load-regime flip mid-run; the
   adaptive runner notices (through the NWS), re-runs the blueprint and
   migrates the grid, paying a modelled migration cost.
2. **Two applications sharing the pool** — application B schedules while
   application A is running; with a live NWS it routes around A's
   machines, with a stale snapshot it piles onto them.

Run:  python examples/adaptive_and_sharing.py
"""

from __future__ import annotations

from repro.experiments import run_adaptive_ablation, run_multiapp


def main() -> None:
    print("1) redistribution during execution (§3.2)")
    print("   a deterministic availability flip hits mid-run ...")
    adaptive = run_adaptive_ablation()
    print()
    print(adaptive.table().render())
    print(f"\n   adaptive improvement: {adaptive.improvement:.2f}x "
          f"({adaptive.reschedules} redistribution(s), "
          f"{adaptive.migration_s:.1f} s spent migrating)")
    print()

    print("2) two applications sharing the metacomputer (§3)")
    shared = run_multiapp()
    print()
    print(shared.table().render())
    print(f"\n   watching the weather instead of a stale snapshot: "
          f"{shared.improvement:.2f}x faster for application B")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""3D-REACT: task-parallel pipeline scheduling on the CASA testbed.

Reproduces the §2.3 story: the full quantum-dynamics computation takes
over 16 hours on either the C90 or the Paragon alone, but under 5 hours
when LHSF runs on the C90 and Log-D/ASY on the Paragon with subdomains of
surface functions pipelined between them — and shows the pipeline-size
tradeoff the developers' performance model captured.

Run:  python examples/react_pipeline.py
"""

from __future__ import annotations

from repro.react import (
    ReactProblem,
    make_react_agent,
    simulate_pipeline,
    simulate_single_site,
)
from repro.sim import casa_testbed


def hours(seconds: float) -> str:
    return f"{seconds / 3600:6.2f} h"


def main() -> None:
    testbed = casa_testbed()
    problem = ReactProblem()

    # Single-site references (the paper: "in excess of 16 hours").
    print("single-site execution:")
    for host in ("c90", "paragon"):
        t = simulate_single_site(testbed.topology, problem, host)
        print(f"  {host:<8s} {hours(t)}")
    print()

    # The AppLeS agent picks the placement and the pipeline size.
    agent = make_react_agent(testbed, problem)
    decision = agent.schedule()
    best = decision.best
    k = best.metadata["pipeline_size"]
    print(
        f"AppLeS placement: LHSF on {best.metadata['lhsf_host']}, "
        f"Log-D/ASY on {best.metadata['logd_host']}, pipeline size {k} "
        f"surface functions"
    )
    print(f"predicted makespan: {hours(best.predicted_time)}")

    run = simulate_pipeline(
        testbed.topology, problem,
        best.metadata["lhsf_host"], best.metadata["logd_host"], k,
    )
    print(f"simulated makespan: {hours(run.makespan_s)} "
          f"({run.subdomains} subdomains, "
          f"consumer stalled {run.consumer_stall_s:.0f} s)")
    print()

    # The tradeoff: sweep the admissible pipeline sizes.
    print("pipeline-size sweep (stall vs buffering):")
    lo, hi = problem.pipeline_range
    for size in range(lo, hi + 1, 3):
        r = simulate_pipeline(
            testbed.topology, problem,
            best.metadata["lhsf_host"], best.metadata["logd_host"], size,
        )
        marker = "  <- chosen" if size == k else ""
        print(f"  k={size:>2d}  {hours(r.makespan_s)}  "
              f"stall {r.consumer_stall_s:7.0f} s{marker}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: schedule Jacobi2D with an AppLeS agent in ~30 lines.

Builds the paper's Figure 2 testbed, starts a Network Weather Service,
lets the AppLeS agent derive a schedule, and compares it against the
compile-time HPF blocked schedule by executing both on the simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.jacobi import BlockedPlanner, JacobiProblem, make_jacobi_agent
from repro.jacobi.runtime import simulated_execution
from repro.nws import NetworkWeatherService
from repro.sim import sdsc_pcl_testbed


def main() -> None:
    # 1. The metacomputer: 8 non-dedicated workstations across two sites.
    testbed = sdsc_pcl_testbed(seed=1996)

    # 2. The Network Weather Service: sensors + adaptive forecasters.
    nws = NetworkWeatherService.for_testbed(testbed)
    nws.warmup(600.0)  # ten simulated minutes of measurements

    # 3. The application and its AppLeS agent.
    problem = JacobiProblem(n=1500, iterations=80)
    agent = make_jacobi_agent(testbed, problem, nws)

    # 4. Run the blueprint: select resources, plan, estimate, choose.
    decision = agent.schedule()
    print(f"candidate resource sets considered: {decision.candidates_considered}")
    print(decision.best.describe())
    print()

    # 5. Execute the chosen schedule on the simulated metacomputer, next to
    #    the compile-time baseline a careful user might have written.
    apples = simulated_execution(testbed.topology, decision.best, t0=600.0)
    blocked_schedule = BlockedPlanner(problem).plan(testbed.host_names, agent.info)
    blocked = simulated_execution(testbed.topology, blocked_schedule, t0=600.0)

    print(f"AppLeS schedule : {apples.total_time:8.2f} s "
          f"({len(decision.best.resource_set)} machines)")
    print(f"HPF blocked     : {blocked.total_time:8.2f} s (8 machines)")
    print(f"speedup         : {blocked.total_time / apples.total_time:8.2f} x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The Network Weather Service up close.

Watches one loaded host of the Figure 2 testbed: its true availability,
the NWS sensors' measurements, the adaptive ensemble's one-step forecasts
(with which member is currently winning), and the forecast-error estimate
that AppLeS's risk model consumes.  Ends with the forecaster leaderboard.

Run:  python examples/weather_forecasting.py
"""

from __future__ import annotations

from repro.nws import NetworkWeatherService
from repro.sim import sdsc_pcl_testbed


def main() -> None:
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed)
    host = "alpha2"  # AR(1) load around 55% availability
    truth = testbed.topology.host(host).load

    print(f"watching {host} (non-dedicated DEC Alpha at SDSC)")
    print(f"{'time':>6s}  {'truth':>6s}  {'forecast':>8s}  {'err est':>7s}  method")
    for minute in range(2, 31, 2):
        t = minute * 60.0
        nws.advance_to(t)
        f = nws.cpu_forecast(host)
        print(f"{minute:>4d}m  {truth.availability(t):6.3f}  "
              f"{f.value:8.3f}  {f.error:7.3f}  {f.method}")
    print()

    sensor = nws.cpu_sensors[host]
    print("forecaster leaderboard (discounted MSE, best first):")
    for name, mse in sensor.ensemble.leaderboard():
        print(f"  {name:<18s} {mse:.5f}")
    print()

    a, b = "sparc2", "alpha1"
    print(f"network forecast {a} -> {b}:")
    print(f"  predicted bottleneck bandwidth: "
          f"{nws.path_bandwidth_forecast(a, b) / 1e3:.1f} KB/s")
    print(f"  actual at this instant       : "
          f"{testbed.topology.path_bandwidth(a, b, nws.now) / 1e3:.1f} KB/s")
    print(f"  1 MB transfer forecast       : "
          f"{nws.transfer_time_forecast(a, b, 1e6):.2f} s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Jacobi2D partitioning: reproduce the Figures 3–5 story end to end.

Shows, for one problem size:

1. the Figure 4 static strip partition (nominal speeds),
2. the Figure 3 AppLeS partition (NWS-driven, "non-intuitive"),
3. back-to-back execution of AppLeS / static-strip / blocked schedules on
   the live simulator (the Figure 5 protocol for one size),
4. numeric validation: the partitioned sweep equals the reference solver.

Run:  python examples/jacobi_partitioning.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.experiments import run_fig34
from repro.jacobi import (
    JacobiProblem,
    execute_strip_partition,
    jacobi_reference,
    make_jacobi_agent,
    make_test_grid,
)
from repro.jacobi.apples import BlockedPlanner, StaticStripPlanner
from repro.jacobi.runtime import simulated_execution
from repro.nws import NetworkWeatherService
from repro.sim import sdsc_pcl_testbed


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1600

    # -- the two partitions, side by side (Figures 3 and 4) ---------------
    result = run_fig34(n=n, iterations=100)
    print(result.table().render())
    print()
    print(result.ascii_partition("apples"))
    print()

    # -- one Figure 5 round: execute all three schedules ------------------
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed)
    nws.warmup(600.0)
    problem = JacobiProblem(n=n, iterations=60)
    agent = make_jacobi_agent(testbed, problem, nws)
    apples = agent.schedule().best
    static = StaticStripPlanner(problem).plan(testbed.host_names, agent.info)
    blocked = BlockedPlanner(problem).plan(testbed.host_names, agent.info)

    print(f"back-to-back execution, n={n}, {problem.iterations} iterations:")
    for name, sched in (("AppLeS", apples), ("static strip", static),
                        ("HPF blocked", blocked)):
        res = simulated_execution(testbed.topology, sched, t0=600.0)
        print(f"  {name:<13s} {res.total_time:8.2f} s  "
              f"(predicted {sched.predicted_time:8.2f} s, "
              f"efficiency {res.efficiency():.2f})")
    print()

    # -- numerics: the schedule's partition computes the right answer -----
    check_n = 96  # full-size numeric check would be slow; geometry is scale-free
    grid = make_test_grid(check_n, seed=7)
    from repro.jacobi import nonuniform_strip

    # Same non-uniform geometry family the schedules above use.
    partition = nonuniform_strip(
        check_n, ["alpha1", "alpha2", "alpha3", "rs6000b"], [4.0, 3.0, 2.0, 1.0]
    )
    ours = execute_strip_partition(grid, partition, 12)
    reference = jacobi_reference(grid, 12)
    assert np.array_equal(ours, reference)
    print(f"numeric check: partitioned sweep over {len(partition.strips)} "
          "non-uniform strips is bit-identical to the reference solver ✓")


if __name__ == "__main__":
    main()

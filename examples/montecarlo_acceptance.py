#!/usr/bin/env python
"""Detector-acceptance Monte Carlo: the docs/TUTORIAL.md application, live.

A CLEO physicist needs the detector-acceptance correction (§2.1 mentions
exactly these Monte Carlo runs).  The samples are independent, so the
*stock* framework pieces suffice: generic time-balancing planner, default
estimator, exhaustive selector — the application adds only its numerics
and an actuator.

Run:  python examples/montecarlo_acceptance.py
"""

from __future__ import annotations

from repro.montecarlo import (
    MonteCarloProblem,
    make_montecarlo_agent,
    true_acceptance,
)
from repro.nws import NetworkWeatherService
from repro.sim import sdsc_pcl_testbed


def main() -> None:
    testbed = sdsc_pcl_testbed(seed=1996)
    nws = NetworkWeatherService.for_testbed(testbed)
    nws.warmup(600.0)

    problem = MonteCarloProblem(samples=2_000_000, seed=42)
    agent = make_montecarlo_agent(testbed, problem, nws)
    decision, run = agent.run(t0=600.0)

    print(f"{problem.samples:,} events over {len(run.shares)} machines:")
    for machine, count in sorted(run.shares.items(), key=lambda kv: -kv[1]):
        print(f"  {machine:<9s} {count:>10,d} samples")
    print()
    estimate = run.result
    print(f"acceptance estimate : {estimate.acceptance:.4f} "
          f"± {estimate.stderr():.4f}")
    print(f"analytic truth      : {true_acceptance():.4f}")
    print(f"simulated wall clock: {run.elapsed_s:.2f} s "
          f"(agent predicted {decision.best.predicted_time:.2f} s)")
    print()
    print(decision.explain(top=3))


if __name__ == "__main__":
    main()

"""Problem definition for the detector-acceptance Monte Carlo."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.util.validation import check_positive

__all__ = ["MonteCarloProblem", "montecarlo_hat"]


@dataclass(frozen=True)
class MonteCarloProblem:
    """A detector-acceptance estimation run.

    Parameters
    ----------
    samples:
        Monte Carlo events to throw.
    flop_per_sample:
        MFLOP per simulated event (generation + toy detector transport).
    seed:
        Generation seed; worker shares are derived sub-streams, so the
        merged estimate is independent of how the samples are split.
    """

    samples: int = 1_000_000
    flop_per_sample: float = 2.0e-4
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("samples", self.samples)
        check_positive("flop_per_sample", self.flop_per_sample)


def montecarlo_hat(problem: MonteCarloProblem) -> HeterogeneousApplicationTemplate:
    """The HAT: one divisible, communication-free, portable task.

    Master–worker Monte Carlo is the simplest possible HAT — which is the
    point of the tutorial: the framework supplies selection, balancing,
    estimation and actuation; the application supplies three numbers and
    the numerics.
    """
    return HeterogeneousApplicationTemplate(
        name=f"mc-acceptance-{problem.samples}",
        paradigm="master-worker",
        tasks=(
            TaskCharacteristics(
                name="simulate",
                flop_per_unit=problem.flop_per_sample,
                divisible=True,
            ),
        ),
        communication=CommunicationCharacteristics(pattern="gather"),
        structure=StructureInfo(
            total_units=float(problem.samples),
            iterations=1,
            unifying_structure="sample-stream",
        ),
    )

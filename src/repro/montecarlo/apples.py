"""Agent assembly and actuation for the Monte Carlo application.

The planner is the stock :class:`~repro.core.planner.TimeBalancedPlanner`
(independent samples, no coupling — the generic balancer is exactly
right), so all this module adds is the actuator: run each machine's share
numerically, merge the counters, and charge the simulated metacomputer
for the compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actuator import Actuator
from repro.core.coordinator import AppLeSAgent
from repro.core.infopool import InformationPool
from repro.core.planner import TimeBalancedPlanner
from repro.core.resources import ResourcePool
from repro.core.schedule import Schedule
from repro.core.selector import ResourceSelector
from repro.core.userspec import UserSpecification
from repro.montecarlo.problem import MonteCarloProblem, montecarlo_hat
from repro.montecarlo.simulation import AcceptanceResult, run_acceptance_batch
from repro.nws.service import NetworkWeatherService
from repro.sim.execution import WorkAssignment, simulate_iterations
from repro.sim.testbeds import Testbed

__all__ = ["MonteCarloRun", "MonteCarloActuator", "make_montecarlo_agent"]


@dataclass(frozen=True)
class MonteCarloRun:
    """What actuation returns: physics + timing."""

    result: AcceptanceResult
    elapsed_s: float
    shares: dict[str, int]


class MonteCarloActuator:
    """Run the schedule's shares for real and charge simulated time."""

    def __init__(self, testbed: Testbed, problem: MonteCarloProblem) -> None:
        self.testbed = testbed
        self.problem = problem

    def actuate(self, schedule: Schedule, info: InformationPool, t0: float) -> MonteCarloRun:
        shares: dict[str, int] = {}
        remaining = self.problem.samples
        for alloc in schedule.allocations:
            count = min(int(round(alloc.work_units)), remaining)
            if count > 0:
                shares[alloc.machine] = count
                remaining -= count
        if remaining > 0 and shares:
            # Rounding remainder lands on the largest share.
            biggest = max(shares, key=shares.get)  # type: ignore[arg-type]
            shares[biggest] += remaining

        merged = AcceptanceResult(0, 0)
        for idx, (_machine, count) in enumerate(sorted(shares.items())):
            merged = merged.merge(
                run_acceptance_batch(count, self.problem.seed, share_index=idx)
            )

        assignments = [
            WorkAssignment(host=m, work_mflop=c * self.problem.flop_per_sample)
            for m, c in shares.items()
        ]
        timing = simulate_iterations(
            self.testbed.topology, assignments, iterations=1, t0=t0
        )
        return MonteCarloRun(
            result=merged, elapsed_s=timing.total_time, shares=shares
        )


def make_montecarlo_agent(
    testbed: Testbed,
    problem: MonteCarloProblem,
    nws: NetworkWeatherService | None = None,
    userspec: UserSpecification | None = None,
) -> AppLeSAgent:
    """Assemble the Monte Carlo AppLeS agent.

    Everything is stock framework: generic planner, default estimator from
    the User Specification, exhaustive selector, plus the numeric actuator.
    """
    pool = ResourcePool(testbed.topology, nws)
    info = InformationPool(
        pool=pool,
        hat=montecarlo_hat(problem),
        userspec=userspec if userspec is not None else UserSpecification(),
    )
    return AppLeSAgent(
        info,
        planner=TimeBalancedPlanner(task_name="simulate"),
        selector=ResourceSelector(),
        actuator=MonteCarloActuator(testbed, problem),
    )

"""Monte-Carlo acceptance sweeps over ensembles of metacomputers.

The single-agent run of :mod:`repro.montecarlo.apples` answers "what does
*this* metacomputer deliver"; the physicists of §2.1 also need the
distribution — how the acceptance estimate and its turnaround time vary
across plausible testbeds and load draws.  This module throws the same
acceptance problem at ``n_replicas`` independently-seeded synthetic
metacomputers and executes every replica's charge in **one**
:func:`~repro.sim.execution_ensemble.run_ensemble` pass.

Replica ``j`` depends only on ``(seed, j)`` — its testbed comes from the
:func:`~repro.util.rng.derive_seed` spawn key ``(seed, "mc-ensemble", j)``
and its generation sub-streams from the problem seed and ``j`` — so
computing any partition of the replica indices and concatenating the
records reproduces the single-pass sweep exactly (the batch-split
invariance the tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.montecarlo.problem import MonteCarloProblem
from repro.montecarlo.simulation import AcceptanceResult, run_acceptance_batch
from repro.sim.execution import WorkAssignment
from repro.sim.execution_ensemble import ReplicaSpec, run_ensemble
from repro.sim.testbeds import synthetic_metacomputer
from repro.util.rng import derive_seed
from repro.util.stats import MeanCI, mean_ci
from repro.util.tables import Table
from repro.util.validation import check_positive

__all__ = [
    "AcceptanceReplica",
    "AcceptanceEnsemble",
    "run_acceptance_ensemble",
]


@dataclass(frozen=True)
class AcceptanceReplica:
    """One replica's physics + timing record."""

    index: int
    result: AcceptanceResult
    elapsed_s: float
    shares: dict[str, int]


@dataclass(frozen=True)
class AcceptanceEnsemble:
    """The sweep's records plus the summary rows the tables consume."""

    problem: MonteCarloProblem
    replicas: list[AcceptanceReplica]
    acceptance_ci: MeanCI
    elapsed_ci: MeanCI

    def table(self) -> Table:
        t = Table(
            ["replica", "acceptance", "stderr", "elapsed_s"],
            title=(
                f"MC acceptance ensemble "
                f"({self.problem.samples} samples x {len(self.replicas)} replicas)"
            ),
        )
        for rep in self.replicas:
            t.add(
                rep.index,
                f"{rep.result.acceptance:.4f}",
                f"{rep.result.stderr():.4f}",
                f"{rep.elapsed_s:.1f}",
            )
        t.add(
            "mean",
            f"{self.acceptance_ci.mean:.4f} ± {self.acceptance_ci.half_width:.4f}",
            "",
            f"{self.elapsed_ci.mean:.1f} ± {self.elapsed_ci.half_width:.1f}",
        )
        return t


def _replica_shares(testbed, samples: int) -> dict[str, int]:
    """Deterministic speed-proportional split of ``samples`` across hosts."""
    hosts = [testbed.topology.host(name) for name in testbed.host_names]
    total_speed = sum(h.speed_mflops for h in hosts)
    shares: dict[str, int] = {}
    remaining = samples
    for h in hosts[:-1]:
        count = int(samples * h.speed_mflops / total_speed)
        shares[h.name] = count
        remaining -= count
    shares[hosts[-1].name] = remaining
    return {name: c for name, c in shares.items() if c > 0}


def run_acceptance_ensemble(
    problem: MonteCarloProblem,
    n_replicas: int,
    seed: int = 1996,
    n_hosts: int = 8,
    indices: Sequence[int] | None = None,
    level: float = 0.95,
) -> AcceptanceEnsemble:
    """Estimate acceptance on ``n_replicas`` independent metacomputers.

    Each replica builds its own :func:`synthetic_metacomputer`, splits the
    samples speed-proportionally, runs the physics on per-replica
    sub-streams, and charges the simulated compute; all charges execute in
    a single ensemble pass.  Pass ``indices`` to compute a subset of the
    replica axis (partition runs concatenate to the full sweep exactly).
    """
    check_positive("n_replicas", n_replicas)
    if indices is None:
        indices = range(int(n_replicas))
    replica_shares: list[dict[str, int]] = []
    specs: list[ReplicaSpec] = []
    for j in indices:
        testbed = synthetic_metacomputer(
            n_hosts, seed=derive_seed(seed, "mc-ensemble", int(j))
        )
        shares = _replica_shares(testbed, problem.samples)
        replica_shares.append(shares)
        specs.append(
            ReplicaSpec(
                testbed.topology,
                [
                    WorkAssignment(
                        host=name, work_mflop=count * problem.flop_per_sample
                    )
                    for name, count in shares.items()
                ],
                label=f"mc-{j}",
            )
        )
    timings = run_ensemble(specs, iterations=1)

    replicas = []
    for j, shares, timing in zip(indices, replica_shares, timings):
        merged = AcceptanceResult(0, 0)
        mc_seed = derive_seed(problem.seed, "mc-replicate", int(j))
        for idx, (_machine, count) in enumerate(sorted(shares.items())):
            merged = merged.merge(
                run_acceptance_batch(count, mc_seed, share_index=idx)
            )
        replicas.append(
            AcceptanceReplica(
                index=int(j), result=merged,
                elapsed_s=timing.total_time, shares=shares,
            )
        )
    return AcceptanceEnsemble(
        problem=problem,
        replicas=replicas,
        acceptance_ci=mean_ci(
            [r.result.acceptance for r in replicas], level=level
        ),
        elapsed_ci=mean_ci([r.elapsed_s for r in replicas], level=level),
    )

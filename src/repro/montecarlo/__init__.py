"""Detector-acceptance Monte Carlo: a master–worker AppLeS application.

§2.1 mentions that "Monte carlo simulations of the experiment may be run
to correct the data for detector acceptance and inefficiencies as well as
to verify the model."  This subpackage implements that workload as the
fourth application of the reproduction — and as the worked example of
docs/TUTORIAL.md, because it shows how *little* an application must bring
to the framework when its structure is simple:

- a problem definition and HAT (:mod:`repro.montecarlo.problem`),
- real numerics (:mod:`repro.montecarlo.simulation`): seeded event
  generation, a toy detector-acceptance model, mergeable counters,
- an agent factory reusing the generic
  :class:`~repro.core.planner.TimeBalancedPlanner` (independent samples
  need no custom planner at all), and an actuator that runs the samples
  and charges simulated time (:mod:`repro.montecarlo.apples`).
"""

from repro.montecarlo.apples import MonteCarloActuator, make_montecarlo_agent
from repro.montecarlo.ensemble import (
    AcceptanceEnsemble,
    AcceptanceReplica,
    run_acceptance_ensemble,
)
from repro.montecarlo.problem import MonteCarloProblem, montecarlo_hat
from repro.montecarlo.simulation import (
    AcceptanceResult,
    run_acceptance_batch,
    true_acceptance,
)

__all__ = [
    "MonteCarloProblem",
    "montecarlo_hat",
    "AcceptanceResult",
    "AcceptanceEnsemble",
    "AcceptanceReplica",
    "run_acceptance_batch",
    "run_acceptance_ensemble",
    "true_acceptance",
    "MonteCarloActuator",
    "make_montecarlo_agent",
]

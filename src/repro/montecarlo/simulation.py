"""The Monte Carlo numerics: a toy CLEO detector-acceptance model.

Events are generated with CLEO-flavoured kinematics (energy near the
Υ(4S), isotropic polar angle, Poisson track counts) and pushed through a
toy detector: a barrel with limited polar acceptance, a momentum
threshold, and per-track detection inefficiency.  The estimated quantity
is the *acceptance* — the fraction of true events the detector registers
— the correction factor the physicists of §2.1 run these simulations for.

Everything is seeded and the per-share sub-streams are drawn from a
common root, so the merged estimate over any split of the samples is
exactly the single-machine estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import check_positive

__all__ = ["AcceptanceResult", "run_acceptance_batch", "true_acceptance"]

#: Detector geometry/efficiency constants of the toy model.
_COS_THETA_MAX = 0.85      # barrel coverage
_MIN_TRACKS_SEEN = 3       # trigger requirement
_TRACK_EFFICIENCY = 0.92   # per-track detection probability
_MEAN_TRACKS = 10.0        # Poisson mean charged multiplicity


@dataclass(frozen=True)
class AcceptanceResult:
    """Mergeable acceptance counters."""

    thrown: int
    accepted: int

    @property
    def acceptance(self) -> float:
        """Accepted fraction (0.0 when nothing thrown)."""
        return self.accepted / self.thrown if self.thrown else 0.0

    def stderr(self) -> float:
        """Binomial standard error of the acceptance estimate."""
        if self.thrown == 0:
            return 0.0
        p = self.acceptance
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.thrown)

    def merge(self, other: "AcceptanceResult") -> "AcceptanceResult":
        """Combine counters from two shares."""
        return AcceptanceResult(
            thrown=self.thrown + other.thrown,
            accepted=self.accepted + other.accepted,
        )


def run_acceptance_batch(samples: int, seed: int, share_index: int = 0) -> AcceptanceResult:
    """Throw ``samples`` events on sub-stream ``share_index`` and count hits.

    Each worker share uses an independent sub-stream of the same root
    seed, so estimates are statistically independent and the merged total
    does not depend on the partitioning.
    """
    check_positive("samples", samples)
    rng = spawn_rng(seed, f"mc-share:{share_index}")
    n = int(samples)

    # Event kinematics.
    cos_theta = rng.uniform(-1.0, 1.0, size=n)
    n_tracks = rng.poisson(_MEAN_TRACKS, size=n)
    # Per-event detected tracks: Binomial(n_tracks, efficiency).
    seen = rng.binomial(np.maximum(n_tracks, 0), _TRACK_EFFICIENCY)

    in_barrel = np.abs(cos_theta) <= _COS_THETA_MAX
    triggered = seen >= _MIN_TRACKS_SEEN
    accepted = int(np.count_nonzero(in_barrel & triggered))
    return AcceptanceResult(thrown=n, accepted=accepted)


def true_acceptance() -> float:
    """The analytic acceptance of the toy detector.

    ``P(|cosθ| <= c) * P(Binomial(N, eff) >= k)`` with N ~ Poisson —
    the thinned Poisson of detected tracks has mean ``λ·eff``, so the
    trigger term is one minus its lower tail.  Used by the tests to check
    the Monte Carlo converges to the right number.
    """
    geometry = _COS_THETA_MAX
    lam = _MEAN_TRACKS * _TRACK_EFFICIENCY
    tail = sum(
        math.exp(-lam) * lam**k / math.factorial(k)
        for k in range(_MIN_TRACKS_SEEN)
    )
    return geometry * (1.0 - tail)

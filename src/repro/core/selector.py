"""The Resource Selector.

"Using information from the HAT and US to guide the selection process, the
Resource Selector routines identify promising sets of resources for the
Coordinator to consider.  Access rights, resource capacities, user
directives, and other constraints are used to 'filter' infeasible resource
sets.  The Resource Selector uses an application-specific notion of logical
'distance' between resources to prioritize them." (§4.2)

For pools up to :attr:`ResourceSelector.exhaustive_limit` machines every
non-empty subset is generated (the paper's Jacobi prototype considered
"all subsets" of its eight hosts).  Larger pools fall back to a greedy
ladder: machines ranked by predicted deliverable speed, then locality-
tightened prefixes per site.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Sequence

from repro.core.distance import set_diameter
from repro.core.infopool import InformationPool
from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.coordinator import PruningStats

__all__ = ["ResourceSelector", "SeededSelector", "LocalitySelector"]

_REGIMES = ("auto", "exhaustive", "greedy")


class ResourceSelector:
    """Enumerate and prioritise candidate resource sets.

    Parameters
    ----------
    exhaustive_limit:
        Enumerate all *non-empty* subsets when the feasible pool has at
        most this many machines: ``2^n - 1`` candidate sets for an
        ``n``-machine pool, i.e. 2^12 - 1 = 4095 at the default limit (the
        empty set is never a candidate — see :meth:`exhaustive_count`).
    max_sets:
        Hard cap on the number of candidate sets returned.  Truncation is
        deterministic: enumeration emits sizes ascending and, within a
        size, machines in feasible-pool order (``itertools.combinations``),
        so the same pool always keeps the same prefix.
    regime:
        ``"auto"`` (default) enumerates exhaustively up to
        ``exhaustive_limit`` machines and falls back to the greedy ladder
        beyond it.  ``"greedy"`` always uses the ladder.  ``"exhaustive"``
        demands full enumeration and raises ``ValueError`` — naming the
        machine count — when the feasible pool exceeds the limit, instead
        of silently degrading to the ladder (the arena's exhaustive oracle
        must never quietly stop being an oracle).
    """

    def __init__(
        self,
        exhaustive_limit: int = 12,
        max_sets: int = 8192,
        regime: str = "auto",
    ) -> None:
        if exhaustive_limit < 1:
            raise ValueError("exhaustive_limit must be >= 1")
        if max_sets < 1:
            raise ValueError("max_sets must be >= 1")
        if regime not in _REGIMES:
            raise ValueError(f"regime must be one of {_REGIMES}, got {regime!r}")
        self.exhaustive_limit = exhaustive_limit
        self.max_sets = max_sets
        self.regime = regime

    @staticmethod
    def exhaustive_count(n_machines: int) -> int:
        """Candidate sets exhaustive enumeration yields for ``n`` machines.

        ``2^n - 1``: every subset except the empty one, which can run
        nothing.  (At the default ``exhaustive_limit`` of 12 this is 4095,
        not 4096 — a historical off-by-one in this class's docs.)
        """
        if n_machines < 0:
            raise ValueError("n_machines must be >= 0")
        return 2 ** n_machines - 1

    # -- filtering -------------------------------------------------------------
    def feasible_machines(self, info: InformationPool) -> list[str]:
        """Machines that pass the User Specification filter and can run at
        least one HAT task on their architecture."""
        names = []
        for m in info.pool.machines():
            if not info.userspec.permits(m):
                continue
            if not any(t.can_run_on(m.arch) for t in info.hat.tasks):
                continue
            names.append(m.name)
        return names

    # -- enumeration ----------------------------------------------------------
    def candidate_sets(self, info: InformationPool) -> list[tuple[str, ...]]:
        """Prioritised candidate resource sets for the Coordinator.

        Ordering: smaller logical diameter first within a size class, sizes
        interleaved so both small tight sets and large aggregates appear
        early; truncated at ``max_sets``.
        """
        feasible = self.feasible_machines(info)
        if not feasible:
            return []
        max_machines = info.userspec.max_machines or len(feasible)
        max_machines = min(max_machines, len(feasible))

        if self.regime == "exhaustive" and len(feasible) > self.exhaustive_limit:
            raise ValueError(
                f"exhaustive selection requested for {len(feasible)} feasible "
                f"machines, above the 2^{self.exhaustive_limit} - 1 bound "
                f"(exhaustive_limit={self.exhaustive_limit}); raise "
                f"exhaustive_limit explicitly or use regime='greedy'"
            )
        exhaustive = self.regime == "exhaustive" or (
            self.regime == "auto" and len(feasible) <= self.exhaustive_limit
        )
        if exhaustive:
            regime = "exhaustive"
            sets = self._exhaustive(feasible, max_machines)
        else:
            regime = "greedy"
            sets = self._greedy(feasible, info, max_machines)

        extras = self._extra_sets(feasible, info, max_machines)
        if extras:
            seen = set(sets)
            for candidate in extras:
                if candidate and candidate not in seen:
                    seen.add(candidate)
                    sets.append(candidate)

        coupling = self._coupling_bytes(info)
        if coupling > 0.0 and len(sets) <= 1024:
            # Prioritise tight sets; expensive for huge enumerations, so only
            # applied when the candidate list is modest.
            sets.sort(key=lambda s: (set_diameter(info.pool, list(s), coupling), len(s)))
        sets = sets[: self.max_sets]
        tracer = get_tracer()
        if tracer.enabled:
            nws = info.pool.nws
            tracer.event(
                "core.selector.candidates", layer="core",
                t=float(nws.now) if nws is not None else None,
                feasible=len(feasible), sets=len(sets), regime=regime,
            )
            tracer.metrics.counter("core.selector.calls").inc()
            tracer.metrics.counter("core.selector.candidate_sets").inc(len(sets))
            tracer.metrics.counter(f"core.selector.regime.{regime}").inc()
        return sets

    def _extra_sets(
        self, feasible: Sequence[str], info: InformationPool, max_machines: int
    ) -> list[tuple[str, ...]]:
        """Additional candidate sets appended (deduplicated) to the base
        enumeration.  Subclasses — the arena's portfolio generators — add
        their learned or locality-expanded sets here; the base selector
        adds none."""
        return []

    def _coupling_bytes(self, info: InformationPool) -> float:
        comm = info.hat.communication
        if comm.pattern == "stencil":
            return comm.bytes_per_border_unit
        if comm.pattern == "pipeline":
            return comm.pipeline_unit_bytes
        return 0.0

    def _exhaustive(self, feasible: Sequence[str], max_machines: int) -> list[tuple[str, ...]]:
        sets: list[tuple[str, ...]] = []
        for size in range(1, max_machines + 1):
            for combo in combinations(feasible, size):
                sets.append(combo)
                if len(sets) >= self.max_sets:
                    return sets
        return sets

    def _greedy(
        self, feasible: Sequence[str], info: InformationPool, max_machines: int
    ) -> list[tuple[str, ...]]:
        """Speed-ranked prefixes plus per-site prefixes.

        O(n log n) candidate generation for big pools: the ladder of the
        globally fastest k machines for each k, and the same ladder
        restricted to each site (locality-tight sets).
        """
        by_speed = sorted(
            feasible, key=lambda n: info.pool.predicted_speed(n), reverse=True
        )
        sets: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()

        def push(candidate: tuple[str, ...]) -> None:
            if candidate and candidate not in seen:
                seen.add(candidate)
                sets.append(candidate)

        for k in range(1, max_machines + 1):
            push(tuple(by_speed[:k]))
        sites: dict[str, list[str]] = {}
        for name in by_speed:
            sites.setdefault(info.pool.machine_info(name).site, []).append(name)
        for members in sites.values():
            for k in range(1, min(len(members), max_machines) + 1):
                push(tuple(members[:k]))
        return sets[: self.max_sets]


class _AdaptiveSelector(ResourceSelector):
    """Greedy-ladder selector with a :class:`PruningStats` feedback loop.

    The ROADMAP's "selector learning" direction: the Coordinator's
    candidate-search statistics (how much of the last candidate space the
    admissible bounds pruned) plus the winning resource set are fed back
    via :meth:`observe`, and the generator adapts how *wide* it casts its
    extra candidate sets.  A heavily-pruned search means bounds are strong
    and extra candidates are nearly free, so breadth grows; a search that
    planned almost everything means candidates are expensive, so breadth
    shrinks.

    The base enumeration is always the greedy ladder (``regime="greedy"``),
    so on any pool these generators cost O(n log n) + O(breadth) planner
    calls — and because every extra set is *appended* to the ladder, their
    best objective can never be worse than the plain ladder's.
    """

    #: Breadth bounds for the PruningStats adaptation.  The floor keeps
    #: three sites in play — cross-site unions need at least the strongest
    #: site *pairs* even when pruning feedback argues for a narrow cast.
    min_breadth = 3
    max_breadth = 8

    def __init__(
        self,
        exhaustive_limit: int = 12,
        max_sets: int = 8192,
        breadth: int = 4,
        memory: int = 4,
    ) -> None:
        super().__init__(exhaustive_limit, max_sets, regime="greedy")
        if breadth < 1:
            raise ValueError("breadth must be >= 1")
        if memory < 1:
            raise ValueError("memory must be >= 1")
        self.breadth = breadth
        self.memory = memory
        self._winners: list[tuple[str, ...]] = []  # most recent first

    def observe(
        self, winner: Sequence[str], stats: "PruningStats | None" = None
    ) -> None:
        """Feed back one decision's winning resource set and search stats."""
        key = tuple(sorted(winner))
        if key:
            self._winners = [key] + [w for w in self._winners if w != key]
            del self._winners[self.memory:]
        if stats is not None and stats.bounded:
            if stats.pruned_fraction > 0.5:
                self.breadth = min(self.max_breadth, self.breadth + 1)
            else:
                self.breadth = max(self.min_breadth, self.breadth - 1)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter("core.selector.observed_winners").inc()

    def _conservative_ranked(
        self, feasible: Sequence[str], info: InformationPool
    ) -> list[str]:
        """Feasible machines by *conservative* deliverable speed, fastest
        first.  The greedy ladder ranks by the mean forecast; under volatile
        loads the error-discounted ranking the planner actually budgets
        with can differ — which is exactly the gap these generators mine."""
        return sorted(
            feasible,
            key=lambda n: info.pool.predicted_speed_conservative(n),
            reverse=True,
        )

    def _risk_ordered(
        self, feasible: Sequence[str], info: InformationPool
    ) -> list[str]:
        """Feasible machines by ascending forecast risk.

        Risk is the relative availability-forecast error
        (``error / availability``) — the exact per-member term whose
        maximum multiplies a schedule's objective.  Ties break toward
        higher conservative speed.
        """
        pool = info.pool

        def risk(name: str) -> float:
            avail = pool.predicted_availability(name)
            err = pool.predicted_availability_error(name)
            return err / max(avail, 0.05) if avail > 0 else float("inf")

        return sorted(
            feasible,
            key=lambda n: (risk(n), -pool.predicted_speed_conservative(n), n),
        )

    def _risk_ladder(
        self, feasible: Sequence[str], info: InformationPool, max_machines: int
    ) -> list[tuple[str, ...]]:
        """Prefixes of the pool ordered by ascending forecast risk.

        A schedule's objective is multiplied by ``1 + aversion × worst
        member risk``, so the best set at a given risk tolerance is drawn
        from the machines *below* that risk.  Each prefix of the
        risk-ascending order is exactly the pool at one risk cutoff; the
        planner's own drop/re-balance pass then discards members whose
        border cost outweighs their rate, so one candidate per cutoff lets
        the planner explore the whole speed-vs-volatility frontier — sets
        the mean-speed ladder cannot express.
        """
        ordered = self._risk_ordered(feasible, info)
        return [
            tuple(ordered[:k])
            for k in range(1, min(len(ordered), max_machines) + 1)
        ]


class SeededSelector(_AdaptiveSelector):
    """Previous-winner seeding: the greedy ladder plus remembered winners
    and single-machine variations around them.

    Scheduling decisions over one slowly-drifting pool tend to keep
    choosing near-identical resource sets; re-proposing recent winners (and
    their add-one/drop-one neighbourhood, strongest machines first) lets a
    big pool benefit from yesterday's search without exhaustive cost.
    """

    def _extra_sets(
        self, feasible: Sequence[str], info: InformationPool, max_machines: int
    ) -> list[tuple[str, ...]]:
        pool = set(feasible)
        ranked = self._conservative_ranked(feasible, info)
        extras: list[tuple[str, ...]] = []
        for k in range(1, max_machines + 1):
            extras.append(tuple(ranked[:k]))
        extras.extend(self._risk_ladder(feasible, info, max_machines))
        for winner in self._winners:
            members = [m for m in winner if m in pool]
            if not members:
                continue
            extras.append(tuple(members))
            member_set = set(members)
            added = 0
            if len(members) < max_machines:
                for m in ranked:  # add-one, strongest candidates first
                    if m in member_set:
                        continue
                    extras.append(tuple(members + [m]))
                    added += 1
                    if added >= self.breadth:
                        break
            if len(members) > 1:
                for dropped in members[: self.breadth]:  # drop-one
                    extras.append(tuple(m for m in members if m != dropped))
        return extras


class LocalitySelector(_AdaptiveSelector):
    """Locality-neighbourhood expansion: conservative-speed prefixes per
    site and unions of the strongest sites' prefixes.

    Site-restricted sets keep every strip border on a fast local segment;
    expanding the best site's prefix with its strongest neighbours explores
    the boundary where adding remote rate stops paying for WAN borders —
    candidate shapes the global ladder never proposes.
    """

    def _extra_sets(
        self, feasible: Sequence[str], info: InformationPool, max_machines: int
    ) -> list[tuple[str, ...]]:
        ranked = self._conservative_ranked(feasible, info)
        extras: list[tuple[str, ...]] = []
        for k in range(1, max_machines + 1):
            extras.append(tuple(ranked[:k]))
        extras.extend(self._risk_ladder(feasible, info, max_machines))
        # Two within-site orderings: by conservative speed (pure rate) and
        # by ascending risk (the multiplier the balance cannot see).  The
        # risk ordering matters because the planner never drops a member to
        # lower the set's risk multiplier — only candidates that already
        # exclude the volatile machines can reach low-risk optima.
        orderings = (ranked, self._risk_ordered(feasible, info))
        for ordering in orderings:
            sites: dict[str, list[str]] = {}
            for name in ordering:
                sites.setdefault(info.pool.machine_info(name).site, []).append(name)
            for members in sites.values():
                for k in range(1, min(len(members), max_machines) + 1):
                    extras.append(tuple(members[:k]))
            # Unions of the strongest sites' prefixes, widest pairing first.
            site_order = sorted(
                sites,
                key=lambda s: info.pool.predicted_speed_conservative(sites[s][0]),
                reverse=True,
            )
            # Small-subset unions dig deeper than prefixes: the best
            # two-site set often pairs each site's workhorse with a slow
            # *edge* machine that absorbs the WAN border cost on a tiny
            # strip — a member no prefix of either ordering reaches.  The
            # subset depth is fixed: breadth governs how many sites pair,
            # not how deep each site's roster goes.
            depth = 4
            for i, first in enumerate(site_order[: self.breadth]):
                for second in site_order[i + 1 : self.breadth]:
                    a, b = sites[first], sites[second]
                    for ka in range(1, len(a) + 1):
                        for kb in range(1, len(b) + 1):
                            if ka + kb <= max_machines:
                                extras.append(tuple(a[:ka] + b[:kb]))
                    for na in range(1, depth + 1):
                        for sub_a in combinations(a[:depth], na):
                            for nb in range(1, depth + 1):
                                if na + nb > max_machines:
                                    continue
                                for sub_b in combinations(b[:depth], nb):
                                    extras.append(sub_a + sub_b)
        return extras

"""The Resource Selector.

"Using information from the HAT and US to guide the selection process, the
Resource Selector routines identify promising sets of resources for the
Coordinator to consider.  Access rights, resource capacities, user
directives, and other constraints are used to 'filter' infeasible resource
sets.  The Resource Selector uses an application-specific notion of logical
'distance' between resources to prioritize them." (§4.2)

For pools up to :attr:`ResourceSelector.exhaustive_limit` machines every
non-empty subset is generated (the paper's Jacobi prototype considered
"all subsets" of its eight hosts).  Larger pools fall back to a greedy
ladder: machines ranked by predicted deliverable speed, then locality-
tightened prefixes per site.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.core.distance import set_diameter
from repro.core.infopool import InformationPool
from repro.obs.trace import get_tracer

__all__ = ["ResourceSelector"]


class ResourceSelector:
    """Enumerate and prioritise candidate resource sets.

    Parameters
    ----------
    exhaustive_limit:
        Enumerate all *non-empty* subsets when the feasible pool has at
        most this many machines: ``2^n - 1`` candidate sets for an
        ``n``-machine pool, i.e. 2^12 - 1 = 4095 at the default limit (the
        empty set is never a candidate — see :meth:`exhaustive_count`).
    max_sets:
        Hard cap on the number of candidate sets returned.  Truncation is
        deterministic: enumeration emits sizes ascending and, within a
        size, machines in feasible-pool order (``itertools.combinations``),
        so the same pool always keeps the same prefix.
    """

    def __init__(self, exhaustive_limit: int = 12, max_sets: int = 8192) -> None:
        if exhaustive_limit < 1:
            raise ValueError("exhaustive_limit must be >= 1")
        if max_sets < 1:
            raise ValueError("max_sets must be >= 1")
        self.exhaustive_limit = exhaustive_limit
        self.max_sets = max_sets

    @staticmethod
    def exhaustive_count(n_machines: int) -> int:
        """Candidate sets exhaustive enumeration yields for ``n`` machines.

        ``2^n - 1``: every subset except the empty one, which can run
        nothing.  (At the default ``exhaustive_limit`` of 12 this is 4095,
        not 4096 — a historical off-by-one in this class's docs.)
        """
        if n_machines < 0:
            raise ValueError("n_machines must be >= 0")
        return 2 ** n_machines - 1

    # -- filtering -------------------------------------------------------------
    def feasible_machines(self, info: InformationPool) -> list[str]:
        """Machines that pass the User Specification filter and can run at
        least one HAT task on their architecture."""
        names = []
        for m in info.pool.machines():
            if not info.userspec.permits(m):
                continue
            if not any(t.can_run_on(m.arch) for t in info.hat.tasks):
                continue
            names.append(m.name)
        return names

    # -- enumeration ----------------------------------------------------------
    def candidate_sets(self, info: InformationPool) -> list[tuple[str, ...]]:
        """Prioritised candidate resource sets for the Coordinator.

        Ordering: smaller logical diameter first within a size class, sizes
        interleaved so both small tight sets and large aggregates appear
        early; truncated at ``max_sets``.
        """
        feasible = self.feasible_machines(info)
        if not feasible:
            return []
        max_machines = info.userspec.max_machines or len(feasible)
        max_machines = min(max_machines, len(feasible))

        if len(feasible) <= self.exhaustive_limit:
            regime = "exhaustive"
            sets = self._exhaustive(feasible, max_machines)
        else:
            regime = "greedy"
            sets = self._greedy(feasible, info, max_machines)

        coupling = self._coupling_bytes(info)
        if coupling > 0.0 and len(sets) <= 1024:
            # Prioritise tight sets; expensive for huge enumerations, so only
            # applied when the candidate list is modest.
            sets.sort(key=lambda s: (set_diameter(info.pool, list(s), coupling), len(s)))
        sets = sets[: self.max_sets]
        tracer = get_tracer()
        if tracer.enabled:
            nws = info.pool.nws
            tracer.event(
                "core.selector.candidates", layer="core",
                t=float(nws.now) if nws is not None else None,
                feasible=len(feasible), sets=len(sets), regime=regime,
            )
            tracer.metrics.counter("core.selector.calls").inc()
            tracer.metrics.counter("core.selector.candidate_sets").inc(len(sets))
            tracer.metrics.counter(f"core.selector.regime.{regime}").inc()
        return sets

    def _coupling_bytes(self, info: InformationPool) -> float:
        comm = info.hat.communication
        if comm.pattern == "stencil":
            return comm.bytes_per_border_unit
        if comm.pattern == "pipeline":
            return comm.pipeline_unit_bytes
        return 0.0

    def _exhaustive(self, feasible: Sequence[str], max_machines: int) -> list[tuple[str, ...]]:
        sets: list[tuple[str, ...]] = []
        for size in range(1, max_machines + 1):
            for combo in combinations(feasible, size):
                sets.append(combo)
                if len(sets) >= self.max_sets:
                    return sets
        return sets

    def _greedy(
        self, feasible: Sequence[str], info: InformationPool, max_machines: int
    ) -> list[tuple[str, ...]]:
        """Speed-ranked prefixes plus per-site prefixes.

        O(n log n) candidate generation for big pools: the ladder of the
        globally fastest k machines for each k, and the same ladder
        restricted to each site (locality-tight sets).
        """
        by_speed = sorted(
            feasible, key=lambda n: info.pool.predicted_speed(n), reverse=True
        )
        sets: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()

        def push(candidate: tuple[str, ...]) -> None:
            if candidate and candidate not in seen:
                seen.add(candidate)
                sets.append(candidate)

        for k in range(1, max_machines + 1):
            push(tuple(by_speed[:k]))
        sites: dict[str, list[str]] = {}
        for name in by_speed:
            sites.setdefault(info.pool.machine_info(name).site, []).append(name)
        for members in sites.values():
            for k in range(1, min(len(members), max_machines) + 1):
                push(tuple(members[:k]))
        return sets[: self.max_sets]

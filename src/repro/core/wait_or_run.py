"""The wait-or-run decision (§3.2).

"When dedicated resources are considered, the user must determine whether
to wait until the resources will be available or to execute the
application with lesser performance on the resources currently available.
Users make these decisions all the time by estimating the sum of the wait
time and the dedicated time and comparing it with a prediction of the
slowdown the application will experience on non-dedicated resources."

:func:`decide_wait_or_run` formalises exactly that comparison using the
same Planner/Information Pool machinery as everything else: the
"run now" branch plans on the currently accessible (shared) machines with
live forecasts; the "wait" branch plans on the reservation's dedicated
machines at full availability, delayed by the queue wait.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.infopool import InformationPool
from repro.core.planner import Planner
from repro.core.resources import ResourcePool
from repro.core.schedule import Schedule
from repro.util.validation import check_nonnegative

__all__ = ["Reservation", "WaitOrRunDecision", "decide_wait_or_run"]


@dataclass(frozen=True)
class Reservation:
    """A promise of dedicated machines after a queue wait.

    Parameters
    ----------
    machines:
        Machines that will be dedicated to the application.
    wait_s:
        Expected queue wait before they become available (the batch
        system's estimate — e.g. the 17 dedicated C90/Paragon hours the
        3D-REACT team had to book).
    """

    machines: tuple[str, ...]
    wait_s: float

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("a reservation needs at least one machine")
        check_nonnegative("wait_s", self.wait_s)


@dataclass(frozen=True)
class WaitOrRunDecision:
    """The comparison's outcome.

    Attributes
    ----------
    wait:
        True when queueing for the dedicated resources is predicted to
        finish sooner.
    run_now_s:
        Predicted completion time running immediately on shared resources
        (execution only — it starts now).
    wait_total_s:
        Queue wait plus predicted dedicated execution.
    now_schedule / dedicated_schedule:
        The plans behind each branch (either may be None if that branch
        is infeasible; an infeasible branch loses automatically).
    """

    wait: bool
    run_now_s: float
    wait_total_s: float
    now_schedule: Schedule | None
    dedicated_schedule: Schedule | None

    @property
    def advantage_s(self) -> float:
        """How many seconds the chosen branch saves over the other."""
        return abs(self.run_now_s - self.wait_total_s)


def decide_wait_or_run(
    info: InformationPool,
    planner: Planner,
    reservation: Reservation,
    shared_machines: Sequence[str] | None = None,
) -> WaitOrRunDecision:
    """Run the §3.2 comparison.

    Parameters
    ----------
    info:
        The Information Pool (its NWS feeds the "run now" branch).
    planner:
        The application's planner, used for both branches.
    reservation:
        The dedicated offer.
    shared_machines:
        Machines accessible right now; defaults to every machine the User
        Specification permits.
    """
    # Branch 1: run now on shared resources, with live forecasts.
    if shared_machines is None:
        shared_machines = [
            m.name for m in info.pool.machines() if info.userspec.permits(m)
        ]
    now_schedule = planner.plan(list(shared_machines), info) if shared_machines else None
    run_now = now_schedule.predicted_time if now_schedule is not None else float("inf")

    # Branch 2: wait, then run on dedicated machines at full availability.
    # A nominal pool models dedication: availability 1, no forecast error.
    dedicated_info = InformationPool(
        pool=ResourcePool(info.pool.topology, nws=None),
        hat=info.hat,
        userspec=info.userspec,
        models=info.models,
    )
    dedicated_schedule = planner.plan(list(reservation.machines), dedicated_info)
    wait_total = (
        reservation.wait_s + dedicated_schedule.predicted_time
        if dedicated_schedule is not None
        else float("inf")
    )

    if run_now == float("inf") and wait_total == float("inf"):
        raise RuntimeError("neither branch of wait-or-run is feasible")
    return WaitOrRunDecision(
        wait=wait_total < run_now,
        run_now_s=run_now,
        wait_total_s=wait_total,
        now_schedule=now_schedule,
        dedicated_schedule=dedicated_schedule,
    )

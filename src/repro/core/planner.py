"""Planners: resource set → candidate schedule.

"The Planner generates a description of a resource-dependent schedule from
a given resource combination" (§4.1).  Each application ships its own
planner; this module provides the protocol plus the workhorse they share:
:func:`balance_divisible_work`, which balances *time* (not work) across
heterogeneous machines — the essence of the AppLeS Jacobi2D partitioner
("AppLeS seeks to balance time directly", §5).

The balancing problem: machines ``i`` process work at predicted rate
``r_i`` (units/second) and pay a fixed per-step cost ``c_i`` (seconds,
typically communication).  Find non-negative allocations ``A_i`` summing to
``U`` that minimise ``max_i (A_i / r_i + c_i)``.  At the optimum every
machine with ``A_i > 0`` finishes at the same instant ``T``, so
``A_i = r_i (T - c_i)``; machines whose fixed cost exceeds ``T`` get
nothing (dropping them is *resource selection falling out of planning*).
Capacity limits (real memory) clamp allocations and the remainder
re-balances over the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.infopool import InformationPool
from repro.core.schedule import Schedule
from repro.util.validation import check_positive

__all__ = ["Planner", "BalanceResult", "balance_divisible_work", "TimeBalancedPlanner"]


class Planner(Protocol):
    """Protocol all application planners implement."""

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        """Produce a candidate schedule for ``resource_set``.

        Returns None when no feasible schedule exists on this set (e.g. a
        required task has no implementation on any member architecture).
        """
        ...


@dataclass(frozen=True)
class BalanceResult:
    """Outcome of :func:`balance_divisible_work`.

    Attributes
    ----------
    allocations:
        Work units per input machine (0.0 for dropped machines), aligned
        with the input order.
    makespan:
        The common finish time ``T`` of the loaded machines.
    dropped:
        Indices whose fixed cost made them useless at the optimum.
    saturated:
        Indices clamped at their capacity.
    """

    allocations: list[float]
    makespan: float
    dropped: tuple[int, ...]
    saturated: tuple[int, ...]


def balance_divisible_work(
    rates: Sequence[float],
    fixed_costs: Sequence[float],
    total_units: float,
    capacities: Sequence[float] | None = None,
) -> BalanceResult | None:
    """Time-balance ``total_units`` of divisible work across machines.

    Parameters
    ----------
    rates:
        Predicted processing rates ``r_i`` in units/second (must be > 0; a
        machine predicted to deliver nothing should be excluded upstream).
    fixed_costs:
        Per-step fixed costs ``c_i`` in seconds (communication, startup).
    total_units:
        Work to distribute, ``U > 0``.
    capacities:
        Optional per-machine maximum units (e.g. what fits in real memory).
        ``None`` entries mean unbounded.

    Returns
    -------
    BalanceResult, or None when the capacities cannot hold ``U``.
    """
    n = len(rates)
    if n == 0:
        return None
    if len(fixed_costs) != n:
        raise ValueError("rates and fixed_costs length mismatch")
    check_positive("total_units", total_units)
    rates = [float(r) for r in rates]
    fixed_costs = [float(c) for c in fixed_costs]
    for i, r in enumerate(rates):
        if r <= 0:
            raise ValueError(f"rate[{i}] must be > 0, got {r}")
        if fixed_costs[i] < 0:
            raise ValueError(f"fixed_costs[{i}] must be >= 0, got {fixed_costs[i]}")
    caps = [None] * n if capacities is None else [
        None if c is None else float(c) for c in capacities
    ]

    alloc = [0.0] * n
    active = set(range(n))
    saturated: set[int] = set()
    remaining = float(total_units)

    # Each pass either drops a machine, saturates a machine, or terminates;
    # at most 2n passes.
    for _ in range(2 * n + 1):
        if not active:
            return None  # capacity exhausted before all work placed
        rate_sum = sum(rates[i] for i in active)
        weighted_cost = sum(rates[i] * fixed_costs[i] for i in active)
        t = (remaining + weighted_cost) / rate_sum
        # Drop machines whose fixed cost alone exceeds the balanced time.
        useless = [i for i in active if fixed_costs[i] >= t]
        if useless:
            # Drop only the single worst offender per pass: removing one can
            # change T for the rest.
            worst = max(useless, key=lambda i: fixed_costs[i])
            active.discard(worst)
            continue
        trial = {i: rates[i] * (t - fixed_costs[i]) for i in active}
        over = [
            i for i in active
            if caps[i] is not None and trial[i] > caps[i] + 1e-9  # type: ignore[operator]
        ]
        if over:
            # Saturate the most-over machine and re-balance the remainder.
            worst = max(over, key=lambda i: trial[i] - caps[i])  # type: ignore[operator]
            alloc[worst] = float(caps[worst])  # type: ignore[arg-type]
            remaining -= alloc[worst]
            saturated.add(worst)
            active.discard(worst)
            if remaining <= 1e-12:
                # Capacities consumed everything; ensure nothing negative.
                remaining = 0.0
                break
            continue
        for i in active:
            alloc[i] = trial[i]
        remaining = 0.0
        break
    else:  # pragma: no cover - loop bound is structural
        raise RuntimeError("balance_divisible_work failed to converge")

    if remaining > 1e-9:
        return None

    dropped = tuple(
        i for i in range(n) if alloc[i] == 0.0 and i not in saturated
    )
    makespan = max(
        (alloc[i] / rates[i] + fixed_costs[i]) for i in range(n) if alloc[i] > 0
    ) if any(a > 0 for a in alloc) else 0.0
    return BalanceResult(
        allocations=alloc,
        makespan=makespan,
        dropped=dropped,
        saturated=tuple(sorted(saturated)),
    )


class TimeBalancedPlanner:
    """Generic planner for single-task divisible (data-parallel) applications.

    Rates come from the Information Pool's dynamic speed forecasts scaled by
    the task's per-architecture efficiency; fixed costs default to zero
    (no coupling).  Applications with real communication structure subclass
    or wrap this — see :class:`repro.jacobi.apples.JacobiPlanner`.
    """

    def __init__(self, task_name: str | None = None) -> None:
        self.task_name = task_name

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        from repro.core.schedule import Allocation  # local to avoid cycle at import

        machines = list(resource_set)
        if not machines:
            return None
        task = (
            info.hat.task(self.task_name)
            if self.task_name is not None
            else info.hat.tasks[0]
        )
        rates: list[float] = []
        usable: list[str] = []
        caps: list[float | None] = []
        for name in machines:
            m = info.pool.machine_info(name)
            eff = task.efficiency_on(m.arch)
            if eff <= 0.0:
                continue
            speed = info.pool.predicted_speed(name) * eff
            if speed <= 0.0 or task.flop_per_unit <= 0.0:
                continue
            rates.append(speed / task.flop_per_unit)
            usable.append(name)
            if task.bytes_per_unit > 0:
                caps.append(m.memory_available_mb * 1e6 / task.bytes_per_unit)
            else:
                caps.append(None)
        if not usable:
            return None
        total = info.hat.structure.total_units
        result = balance_divisible_work(rates, [0.0] * len(usable), total, caps)
        if result is None:
            return None
        allocations = [
            Allocation(
                machine=name,
                task=task.name,
                work_units=units,
                footprint_mb=units * task.bytes_per_unit / 1e6,
            )
            for name, units in zip(usable, result.allocations)
            if units > 0.0
        ]
        if not allocations:
            return None
        predicted = result.makespan * info.hat.structure.iterations
        return Schedule(
            allocations=allocations,
            predicted_time=predicted,
            decomposition="divisible",
            metadata={"per_step_time": result.makespan},
        )

"""Planners: resource set → candidate schedule.

"The Planner generates a description of a resource-dependent schedule from
a given resource combination" (§4.1).  Each application ships its own
planner; this module provides the protocol plus the workhorse they share:
:func:`balance_divisible_work`, which balances *time* (not work) across
heterogeneous machines — the essence of the AppLeS Jacobi2D partitioner
("AppLeS seeks to balance time directly", §5).

The balancing problem: machines ``i`` process work at predicted rate
``r_i`` (units/second) and pay a fixed per-step cost ``c_i`` (seconds,
typically communication).  Find non-negative allocations ``A_i`` summing to
``U`` that minimise ``max_i (A_i / r_i + c_i)``.  At the optimum every
machine with ``A_i > 0`` finishes at the same instant ``T``, so
``A_i = r_i (T - c_i)``; machines whose fixed cost exceeds ``T`` get
nothing (dropping them is *resource selection falling out of planning*).
Capacity limits (real memory) clamp allocations and the remainder
re-balances over the rest.

Two implementations coexist behind :mod:`repro.util.perf`:

- the **reference** iterative drop/re-balance loop (the seed algorithm,
  selected by ``REPRO_NO_FASTPATH=1``), and
- a **closed-form water-filling** fast path that finds the final active
  set in one vectorized pass over the sorted fixed-cost breakpoints, then
  computes the terminating arithmetic with exactly the reference's
  summation order — so both paths return bit-identical results.  Inputs
  the closed form cannot certify (binding capacities, breakpoint ties
  beyond float resolution) fall back to the reference loop.

:func:`balance_divisible_work_batched` water-fills **many** candidate
machine sets over one shared machine universe in a single NumPy call —
the vector engine behind the Coordinator's candidate pruning bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.infopool import InformationPool
from repro.core.schedule import Schedule
from repro.util import perf
from repro.util.validation import check_positive

__all__ = [
    "Planner",
    "BalanceResult",
    "BatchBalanceResult",
    "ExactBatchBalance",
    "balance_divisible_work",
    "balance_divisible_work_batched",
    "balance_prefix_exact_batched",
    "fractional_time_floor",
    "TimeBalancedPlanner",
]


class Planner(Protocol):
    """Protocol all application planners implement.

    Planners may additionally offer two *optional* fast-path hooks the
    Coordinator probes for (see :mod:`repro.core.coordinator`):

    - ``lower_bounds(candidate_sets, info) -> Sequence[float]`` — an
      admissible (never over-estimating) lower bound on the predicted
      time of the best schedule this planner could produce on each
      candidate set, computed vectorized for the whole list at once;
    - ``begin_decision(info)`` / ``end_decision(info)`` — bracket one
      Coordinator decision so the planner can set up / drop per-decision
      memoisation.
    """

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        """Produce a candidate schedule for ``resource_set``.

        Returns None when no feasible schedule exists on this set (e.g. a
        required task has no implementation on any member architecture).
        """
        ...


@dataclass(frozen=True)
class BalanceResult:
    """Outcome of :func:`balance_divisible_work`.

    Attributes
    ----------
    allocations:
        Work units per input machine (0.0 for dropped machines), aligned
        with the input order.
    makespan:
        The common finish time ``T`` of the loaded machines.
    dropped:
        Indices whose fixed cost made them useless at the optimum.
    saturated:
        Indices clamped at their capacity.
    """

    allocations: list[float]
    makespan: float
    dropped: tuple[int, ...]
    saturated: tuple[int, ...]


def balance_divisible_work(
    rates: Sequence[float],
    fixed_costs: Sequence[float],
    total_units: float,
    capacities: Sequence[float] | None = None,
) -> BalanceResult | None:
    """Time-balance ``total_units`` of divisible work across machines.

    Parameters
    ----------
    rates:
        Predicted processing rates ``r_i`` in units/second (must be > 0; a
        machine predicted to deliver nothing should be excluded upstream).
    fixed_costs:
        Per-step fixed costs ``c_i`` in seconds (communication, startup).
    total_units:
        Work to distribute, ``U > 0``.
    capacities:
        Optional per-machine maximum units (e.g. what fits in real memory).
        ``None`` entries mean unbounded.

    Returns
    -------
    BalanceResult, or None when the capacities cannot hold ``U``.
    """
    n = len(rates)
    if n == 0:
        return None
    if len(fixed_costs) != n:
        raise ValueError("rates and fixed_costs length mismatch")
    check_positive("total_units", total_units)
    rates = [float(r) for r in rates]
    fixed_costs = [float(c) for c in fixed_costs]
    for i, r in enumerate(rates):
        if r <= 0:
            raise ValueError(f"rate[{i}] must be > 0, got {r}")
        if fixed_costs[i] < 0:
            raise ValueError(f"fixed_costs[{i}] must be >= 0, got {fixed_costs[i]}")
    caps = [None] * n if capacities is None else [
        None if c is None else float(c) for c in capacities
    ]
    if perf.fastpath_enabled():
        return _balance_fast(rates, fixed_costs, float(total_units), caps)
    return _balance_reference(rates, fixed_costs, float(total_units), caps)


def fractional_time_floor(
    rates: Sequence[float],
    fixed_costs: Sequence[float],
    total_units: float,
) -> float:
    """Uncapacitated fractional balanced time for one machine set.

    The makespan of :func:`balance_divisible_work` with capacities relaxed
    away: an admissible floor on the per-step time of *any* schedule a
    time-balancing planner could produce on these machines.  The scheduling
    arena reports it next to each instance's best verified objective, so a
    regret table separates "the search missed a better set" from "the
    partition itself is near its fractional optimum".  Machines predicted
    to deliver nothing must be excluded by the caller, mirroring the
    planners.  Returns ``inf`` when no machine can be loaded.
    """
    result = balance_divisible_work(rates, fixed_costs, total_units)
    return float("inf") if result is None else result.makespan


def _balance_reference(
    rates: list[float],
    fixed_costs: list[float],
    total_units: float,
    caps: list[float | None],
) -> BalanceResult | None:
    """The seed drop/re-balance loop (inputs pre-validated).

    ``active`` is kept as an *ascending* index list: the summation order of
    ``rate_sum`` and ``weighted_cost`` is part of the reference contract —
    the fast path replicates it to return bit-identical floats.
    """
    n = len(rates)
    alloc = [0.0] * n
    active = list(range(n))
    saturated: set[int] = set()
    remaining = total_units

    # Each pass either drops a machine, saturates a machine, or terminates;
    # at most 2n passes.
    for _ in range(2 * n + 1):
        if not active:
            return None  # capacity exhausted before all work placed
        rate_sum = sum(rates[i] for i in active)
        weighted_cost = sum(rates[i] * fixed_costs[i] for i in active)
        t = (remaining + weighted_cost) / rate_sum
        # Drop machines whose fixed cost alone exceeds the balanced time.
        useless = [i for i in active if fixed_costs[i] >= t]
        if useless:
            # Drop only the single worst offender per pass: removing one can
            # change T for the rest.
            worst = max(useless, key=lambda i: fixed_costs[i])
            active.remove(worst)
            continue
        trial = {i: rates[i] * (t - fixed_costs[i]) for i in active}
        over = [
            i for i in active
            if caps[i] is not None and trial[i] > caps[i] + 1e-9  # type: ignore[operator]
        ]
        if over:
            # Saturate the most-over machine and re-balance the remainder.
            worst = max(over, key=lambda i: trial[i] - caps[i])  # type: ignore[operator]
            alloc[worst] = float(caps[worst])  # type: ignore[arg-type]
            remaining -= alloc[worst]
            saturated.add(worst)
            active.remove(worst)
            if remaining <= 1e-12:
                # Capacities consumed everything; ensure nothing negative.
                remaining = 0.0
                break
            continue
        for i in active:
            alloc[i] = trial[i]
        remaining = 0.0
        break
    else:  # pragma: no cover - loop bound is structural
        raise RuntimeError("balance_divisible_work failed to converge")

    if remaining > 1e-9:
        return None

    dropped = tuple(
        i for i in range(n) if alloc[i] == 0.0 and i not in saturated
    )
    makespan = max(
        (alloc[i] / rates[i] + fixed_costs[i]) for i in range(n) if alloc[i] > 0
    ) if any(a > 0 for a in alloc) else 0.0
    return BalanceResult(
        allocations=alloc,
        makespan=makespan,
        dropped=dropped,
        saturated=tuple(sorted(saturated)),
    )


def _balance_fast(
    rates: list[float],
    fixed_costs: list[float],
    total_units: float,
    caps: list[float | None],
) -> BalanceResult | None:
    """Closed-form water-filling over sorted fixed-cost breakpoints.

    The reference loop's fixpoint keeps exactly the machines whose fixed
    cost is below the final balanced time ``T`` (each drop lowers ``T``
    monotonically, so drop order never changes membership).  Sorting costs
    ascending, the candidate active sets are prefixes, and the consistency
    predicate ``c_k < T(prefix k)`` is prefix-monotone — so one cumsum pass
    finds the active set.  The terminating arithmetic is then recomputed
    with the reference's exact summation order (ascending original index)
    and *verified* against the reference's drop predicate; any
    disagreement (float-boundary ties) or a binding capacity falls back to
    the reference loop, keeping results bit-identical by construction.
    """
    n = len(rates)
    has_caps = any(c is not None for c in caps)

    # Pure-Python prefix scan: the arrays here are machine pools (a few to
    # a few dozen entries), where numpy's per-call overhead costs more than
    # the arithmetic it vectorises.
    order = sorted(range(n), key=fixed_costs.__getitem__)
    k = 0
    cum_r = 0.0
    cum_rc = 0.0
    for pos, i in enumerate(order):
        cum_r += rates[i]
        cum_rc += rates[i] * fixed_costs[i]
        if cum_r > 0.0 and fixed_costs[i] < (total_units + cum_rc) / cum_r:
            k = pos + 1  # prefix consistent: True...True False...False
        else:
            break
    if k == 0:
        # U > 0 makes the first prefix always consistent in exact
        # arithmetic; reaching here means degenerate floats (e.g. inf
        # costs) — let the reference loop decide.
        return _balance_reference(rates, fixed_costs, total_units, caps)

    active = sorted(order[:k])
    # Terminating pass, arithmetic identical to the reference loop.
    rate_sum = sum(rates[i] for i in active)
    weighted_cost = sum(rates[i] * fixed_costs[i] for i in active)
    t = (total_units + weighted_cost) / rate_sum

    # Certify the reference's drop predicate at the final T; ties within
    # float resolution go back to the authoritative loop.
    if any(fixed_costs[i] >= t for i in active):
        return _balance_reference(rates, fixed_costs, total_units, caps)
    if k < n and any(fixed_costs[i] < t for i in order[k:]):
        return _balance_reference(rates, fixed_costs, total_units, caps)

    alloc = [0.0] * n
    for i in active:
        alloc[i] = rates[i] * (t - fixed_costs[i])
    if has_caps and any(
        caps[i] is not None and alloc[i] > caps[i] + 1e-9  # type: ignore[operator]
        for i in active
    ):
        # A capacity binds: the saturation order is part of the reference
        # semantics, so run the loop.
        return _balance_reference(rates, fixed_costs, total_units, caps)

    dropped = tuple(i for i in range(n) if alloc[i] == 0.0)
    makespan = max(
        (alloc[i] / rates[i] + fixed_costs[i]) for i in range(n) if alloc[i] > 0
    ) if any(a > 0 for a in alloc) else 0.0
    return BalanceResult(
        allocations=alloc,
        makespan=makespan,
        dropped=dropped,
        saturated=(),
    )


@dataclass(frozen=True)
class BatchBalanceResult:
    """Outcome of :func:`balance_divisible_work_batched`.

    Attributes
    ----------
    makespans:
        Balanced step time per candidate set, shape ``(m,)``; ``inf`` for
        sets with no usable member.
    allocations:
        Work units per (set, machine), shape ``(m, n)``; zero outside the
        set and for dropped machines.
    active:
        Boolean mask of machines loaded at the optimum, shape ``(m, n)``.
    """

    makespans: np.ndarray
    allocations: np.ndarray
    active: np.ndarray


def balance_divisible_work_batched(
    rates: Sequence[float] | np.ndarray,
    fixed_costs: Sequence[float] | np.ndarray,
    total_units: float | Sequence[float] | np.ndarray,
    members: np.ndarray | Sequence[Sequence[bool]] | None = None,
) -> BatchBalanceResult:
    """Water-fill many candidate sets over one machine universe at once.

    Solves, for every row mask ``S`` of ``members``, the uncapacitated
    time-balance ``min max_{i in S', A_i > 0} (A_i / r_i + c_i)`` with the
    drop semantics of :func:`balance_divisible_work` — one vectorized
    NumPy pass (sort by cost, cumulative sums, prefix selection) instead of
    one solver call per set.  This is the engine behind the Coordinator's
    pruning bounds: thousands of candidate resource sets bounded in a
    single call.

    Parameters
    ----------
    rates / fixed_costs:
        The machine universe (rates > 0, costs >= 0 for every machine that
        appears in any set; masked-out entries may hold placeholders).
        Either may also be a ``(m, n)`` matrix giving per-set per-machine
        values — the scheduling service stacks the candidate sets of many
        concurrent requests (different problems, hence different rates)
        into one call.  A member whose cost is ``inf`` is treated as
        unusable in that set.
    total_units:
        Work to distribute per set: a scalar ``U > 0`` shared by every
        set, or a ``(m,)`` vector with one total per set (again, stacked
        heterogeneous requests).
    members:
        Boolean matrix ``(m, n)``; ``None`` balances the full universe as
        a single set.

    Capacities are deliberately unsupported: the batched form exists for
    bounds and sweeps, where ignoring capacities keeps the result a valid
    lower bound (capacities only increase the optimum).
    """
    r = np.asarray(rates, dtype=float)
    c = np.asarray(fixed_costs, dtype=float)
    if r.ndim not in (1, 2):
        raise ValueError("rates must be (n,) or (m, n) over the universe")
    n = r.shape[-1]
    if c.ndim not in (1, 2) or c.shape[-1] != n:
        raise ValueError("fixed_costs must be (n,) or (m, n) over the universe")
    if members is None:
        mask = np.ones((1, n), dtype=bool)
    else:
        mask = np.asarray(members, dtype=bool)
        if mask.ndim != 2 or mask.shape[1] != n:
            raise ValueError(f"members must have shape (m, {n})")
    m_rows = mask.shape[0]
    if c.ndim == 2 and c.shape[0] != m_rows:
        raise ValueError("2-D fixed_costs must have one row per member set")
    if r.ndim == 2 and r.shape[0] != m_rows:
        raise ValueError("2-D rates must have one row per member set")
    totals = np.asarray(total_units, dtype=float)
    if totals.ndim not in (0, 1) or (totals.ndim == 1 and totals.size != m_rows):
        raise ValueError("total_units must be a scalar or one total per set")
    if totals.size == 0 or np.any(~(totals > 0)):
        raise ValueError("total_units must be > 0 for every set")
    used_rates = r if r.ndim == 2 else r[None, :]
    if np.any((used_rates <= 0) & mask):
        raise ValueError("every machine used by a set needs rate > 0")
    used_costs = c if c.ndim == 2 else c[None, :]
    if np.any((used_costs < 0) & mask):
        raise ValueError("every machine used by a set needs fixed cost >= 0")

    # Masked-out machines sort last (infinite cost) and contribute nothing.
    cm = np.where(mask, used_costs, np.inf)
    rm = np.where(mask, used_rates, 0.0)
    order = np.argsort(cm, axis=1, kind="stable")
    cs = np.take_along_axis(cm, order, axis=1)
    rs = np.take_along_axis(rm, order, axis=1)
    cum_r = np.cumsum(rs, axis=1)
    # Sanitise costs before multiplying: masked-out slots are (rate 0,
    # cost inf) and 0 * inf would poison the cumsum with NaN.
    cum_rc = np.cumsum(rs * np.where(np.isfinite(cs), cs, 0.0), axis=1)
    totals_col = (totals if totals.ndim == 1 else totals.reshape(1))[:, None]
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        t_prefix = (totals_col + cum_rc) / cum_r
    ok = cs < t_prefix  # prefix-monotone per row
    k = np.count_nonzero(ok, axis=1)  # active prefix length per set

    m = mask.shape[0]
    makespans = np.full(m, np.inf)
    nonempty = k > 0
    rows = np.nonzero(nonempty)[0]
    makespans[rows] = t_prefix[rows, k[rows] - 1]

    # Allocations in sorted space, scattered back to machine order.
    t_col = np.where(nonempty, makespans, 0.0)[:, None]
    positions = np.arange(n)[None, :]
    active_sorted = positions < k[:, None]
    alloc_sorted = np.where(active_sorted, rs * (t_col - np.where(np.isfinite(cs), cs, 0.0)), 0.0)
    allocations = np.zeros_like(alloc_sorted)
    np.put_along_axis(allocations, order, alloc_sorted, axis=1)
    active = np.zeros_like(mask)
    np.put_along_axis(active, order, active_sorted, axis=1)
    return BatchBalanceResult(
        makespans=makespans, allocations=allocations, active=active & mask
    )


@dataclass(frozen=True)
class ExactBatchBalance:
    """Outcome of :func:`balance_prefix_exact_batched`.

    Attributes
    ----------
    makespans:
        Balanced time ``T`` per row (``nan`` for rows flagged
        ``needs_reference``).
    allocations:
        ``r_i (T - c_i)`` per (row, slot); zero outside the active set.
    active:
        Boolean mask of the certified active prefix per row.
    needs_reference:
        Rows the closed form could not certify (empty prefix, drop
        predicate disagrees at the final ``T``) — the caller must answer
        them with the scalar reference solver to stay bit-identical.
    """

    makespans: np.ndarray
    allocations: np.ndarray
    active: np.ndarray
    needs_reference: np.ndarray


def balance_prefix_exact_batched(
    rates: np.ndarray,
    fixed_costs: np.ndarray,
    total_units: np.ndarray,
) -> ExactBatchBalance:
    """Replicate :func:`_balance_fast` row-wise, bit-identically.

    Unlike :func:`balance_divisible_work_batched` (a *bound*: relaxed drop
    semantics good enough for pruning), this kernel reproduces the exact
    decision sequence of the scalar fast path for every row at once: the
    stable cost sort, the first-inconsistent-prefix break, the terminating
    arithmetic in ascending-slot summation order, and both certification
    predicates.  Rows that the scalar path would bounce to the reference
    loop are flagged ``needs_reference`` instead of being approximated —
    the scheduling service answers those rows with the scalar planner, so
    a batched answer is *never* an approximation.

    Parameters
    ----------
    rates / fixed_costs:
        ``(m, n)`` slot arrays.  Empty slots carry rate ``0`` and cost
        ``inf`` and sort past every real member; real members need finite
        cost and positive rate (callers handle infinite-cost members by
        dropping them *before* balancing, as the Jacobi planner does).
    total_units:
        ``(m,)`` work totals, ``> 0``.

    Row ``i``'s float results equal ``_balance_fast(rates[i][:k_i], ...)``
    exactly: cumulative sums run left-to-right like the scalar loop, and
    padding slots only ever add ``0.0``, which is exact in IEEE floats.
    """
    r = np.asarray(rates, dtype=float)
    c = np.asarray(fixed_costs, dtype=float)
    totals = np.asarray(total_units, dtype=float)
    if r.ndim != 2 or c.shape != r.shape:
        raise ValueError("rates and fixed_costs must both be (m, n)")
    if totals.shape != (r.shape[0],):
        raise ValueError("total_units must be (m,)")
    if np.any(np.isnan(r)) or np.any(np.isnan(c)):
        raise ValueError("rates and fixed_costs must not contain NaN")
    if np.any(~(totals > 0)):
        raise ValueError("total_units must be > 0 for every row")
    m, n = r.shape
    member = np.isfinite(c)
    if np.any(member & ~(r > 0)):
        raise ValueError("every member slot needs rate > 0")
    if np.any(member & (c < 0)):
        raise ValueError("every member slot needs fixed cost >= 0")

    order = np.argsort(c, axis=1, kind="stable")
    cs = np.take_along_axis(c, order, axis=1)
    rs = np.take_along_axis(r, order, axis=1)
    cum_r = np.cumsum(rs, axis=1)
    cum_rc = np.cumsum(rs * np.where(np.isfinite(cs), cs, 0.0), axis=1)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        t_prefix = (totals[:, None] + cum_rc) / cum_r
    ok = (cum_r > 0.0) & (cs < t_prefix)
    # The scalar loop *breaks* at the first inconsistent prefix; replicate
    # that rather than counting all consistent prefixes.
    k = np.where(ok.all(axis=1), n, np.argmin(ok, axis=1))

    needs_reference = k == 0  # degenerate floats; the reference loop decides

    positions = np.arange(n)[None, :]
    active_sorted = positions < k[:, None]
    active = np.zeros_like(member)
    np.put_along_axis(active, order, active_sorted, axis=1)

    # Terminating arithmetic in the reference's ascending-slot order.
    # Padding/inactive slots contribute exactly 0.0 to each cumsum.
    rate_sum = np.cumsum(np.where(active, r, 0.0), axis=1)[:, -1]
    weighted_cost = np.cumsum(
        np.where(active, r * np.where(np.isfinite(c), c, 0.0), 0.0), axis=1
    )[:, -1]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (totals + weighted_cost) / rate_sum

    # Certify the reference drop predicate at the final T (both directions);
    # disagreement means float-boundary ties — the reference loop decides.
    t_col = t[:, None]
    with np.errstate(invalid="ignore"):
        cert_active = active & (c >= t_col)
        cert_rest = member & ~active & (c < t_col)
    needs_reference |= cert_active.any(axis=1) | cert_rest.any(axis=1)

    with np.errstate(invalid="ignore"):
        allocations = np.where(active, r * (t_col - np.where(active, c, 0.0)), 0.0)
    makespans = np.where(needs_reference, np.nan, t)
    allocations = np.where(needs_reference[:, None], 0.0, allocations)
    return ExactBatchBalance(
        makespans=makespans,
        allocations=allocations,
        active=active & ~needs_reference[:, None],
        needs_reference=needs_reference,
    )


class TimeBalancedPlanner:
    """Generic planner for single-task divisible (data-parallel) applications.

    Rates come from the Information Pool's dynamic speed forecasts scaled by
    the task's per-architecture efficiency; fixed costs default to zero
    (no coupling).  Applications with real communication structure subclass
    or wrap this — see :class:`repro.jacobi.apples.JacobiPlanner`.
    """

    def __init__(self, task_name: str | None = None) -> None:
        self.task_name = task_name

    def _task(self, info: InformationPool):
        return (
            info.hat.task(self.task_name)
            if self.task_name is not None
            else info.hat.tasks[0]
        )

    def _rate(self, name: str, task, info: InformationPool) -> float:
        """Units/second for one machine (0.0 when unusable)."""
        m = info.pool.machine_info(name)
        eff = task.efficiency_on(m.arch)
        if eff <= 0.0:
            return 0.0
        cache = info.decision_cache
        speed = (
            cache.snapshot.speed[name]
            if cache is not None and name in cache.snapshot.speed
            else info.pool.predicted_speed(name)
        )
        speed *= eff
        if speed <= 0.0 or task.flop_per_unit <= 0.0:
            return 0.0
        return speed / task.flop_per_unit

    def lower_bounds(
        self, candidate_sets: Sequence[Sequence[str]], info: InformationPool
    ) -> np.ndarray:
        """Admissible predicted-time lower bound per candidate set.

        The ideal zero-fixed-cost time balance ``U / sum(rates)`` times the
        iteration count — capacities and any real fixed costs only raise
        the true optimum, so the Coordinator may prune candidate sets whose
        bound cannot beat the incumbent without changing the decision.
        """
        task = self._task(info)
        names = info.pool.machine_names()
        index = {name: j for j, name in enumerate(names)}
        rates = np.array([self._rate(name, task, info) for name in names])
        usable = rates > 0.0
        mask = np.zeros((len(candidate_sets), len(names)), dtype=bool)
        for i, rset in enumerate(candidate_sets):
            for name in rset:
                j = index.get(name)
                if j is not None and usable[j]:
                    mask[i, j] = True
        safe_rates = np.where(usable, rates, 1.0)
        total = info.hat.structure.total_units
        result = balance_divisible_work_batched(
            safe_rates, np.zeros_like(safe_rates), total, mask
        )
        return result.makespans * info.hat.structure.iterations

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        from repro.core.schedule import Allocation  # local to avoid cycle at import

        machines = list(resource_set)
        if not machines:
            return None
        task = self._task(info)
        rates: list[float] = []
        usable: list[str] = []
        caps: list[float | None] = []
        for name in machines:
            m = info.pool.machine_info(name)
            eff = task.efficiency_on(m.arch)
            if eff <= 0.0:
                continue
            speed = info.pool.predicted_speed(name) * eff
            if speed <= 0.0 or task.flop_per_unit <= 0.0:
                continue
            rates.append(speed / task.flop_per_unit)
            usable.append(name)
            if task.bytes_per_unit > 0:
                caps.append(m.memory_available_mb * 1e6 / task.bytes_per_unit)
            else:
                caps.append(None)
        if not usable:
            return None
        total = info.hat.structure.total_units
        result = balance_divisible_work(rates, [0.0] * len(usable), total, caps)
        if result is None:
            return None
        allocations = [
            Allocation(
                machine=name,
                task=task.name,
                work_units=units,
                footprint_mb=units * task.bytes_per_unit / 1e6,
            )
            for name, units in zip(usable, result.allocations)
            if units > 0.0
        ]
        if not allocations:
            return None
        predicted = result.makespan * info.hat.structure.iterations
        return Schedule(
            allocations=allocations,
            predicted_time=predicted,
            decomposition="divisible",
            metadata={"per_step_time": result.makespan},
        )

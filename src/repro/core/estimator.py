"""Performance Estimators.

"The Performance Estimator generates a performance estimate for candidate
schedules according to the user's performance metric" (§4.1).  §3.1 lists
the common criteria — execution time, speedup, cost — and stresses that
*distinct users optimise the same resources for different metrics at the
same time*.  Every estimator here returns an **objective to minimise** so
the Coordinator can compare candidates uniformly; the human-readable value
of the metric is available separately.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from repro.core.infopool import InformationPool
from repro.core.schedule import Schedule

__all__ = [
    "PerformanceEstimator",
    "ExecutionTimeEstimator",
    "SpeedupEstimator",
    "CostEstimator",
    "make_estimator",
]


class PerformanceEstimator(Protocol):
    """Protocol: score a candidate schedule (lower objective = better).

    Estimators may optionally implement
    ``objective_lower_bound(time_lb, resource_set, info) -> float`` — an
    admissible objective bound given a lower bound on predicted time for a
    candidate set, used by the Coordinator's pruning fast path.  Estimators
    without it simply disable pruning (never changing any decision).
    """

    def objective(self, schedule: Schedule, info: InformationPool) -> float:
        """The quantity the Coordinator minimises."""
        ...

    def metric_value(self, schedule: Schedule, info: InformationPool) -> float:
        """The user-facing value of the metric (e.g. actual speedup)."""
        ...


class ExecutionTimeEstimator:
    """Minimise predicted execution time — the Jacobi2D paper metric (§5)."""

    name = "execution_time"

    def objective(self, schedule: Schedule, info: InformationPool) -> float:
        return schedule.predicted_time

    def metric_value(self, schedule: Schedule, info: InformationPool) -> float:
        return schedule.predicted_time

    def objective_lower_bound(
        self, time_lb: float, resource_set: Sequence[str], info: InformationPool
    ) -> float:
        """Objective is the time itself, so the time bound is the bound."""
        return time_lb

    def objective_from_prediction(
        self, predicted_time: float, machines: Sequence[str], info: InformationPool
    ) -> float:
        """:meth:`objective` without a Schedule object.

        ``machines`` is the schedule's kept resource set (in allocation
        order) — what :attr:`Schedule.resource_set` would be.  The batched
        scheduling service scores candidates from predicted times alone,
        so every estimator mirrors its objective here with the exact same
        arithmetic.
        """
        return predicted_time


class SpeedupEstimator:
    """Maximise predicted speedup over the best single-machine run (§3.1).

    ``baseline`` supplies the single-machine reference time; by default it
    is computed lazily as the best predicted time over all singleton
    resource sets using a caller-provided planner.
    """

    name = "speedup"

    def __init__(self, baseline: float | Callable[[InformationPool], float]) -> None:
        self._baseline = baseline
        self._cached: float | None = None

    def _baseline_time(self, info: InformationPool) -> float:
        if self._cached is None:
            self._cached = (
                self._baseline(info) if callable(self._baseline) else float(self._baseline)
            )
            if self._cached <= 0:
                raise ValueError("speedup baseline must be positive")
        return self._cached

    def objective(self, schedule: Schedule, info: InformationPool) -> float:
        # Maximising speedup == minimising time/baseline.
        return schedule.predicted_time / self._baseline_time(info)

    def metric_value(self, schedule: Schedule, info: InformationPool) -> float:
        if schedule.predicted_time <= 0:
            return float("inf")
        return self._baseline_time(info) / schedule.predicted_time

    def objective_lower_bound(
        self, time_lb: float, resource_set: Sequence[str], info: InformationPool
    ) -> float:
        """Monotone in time: bound / baseline bounds the objective below."""
        return time_lb / self._baseline_time(info)

    def objective_from_prediction(
        self, predicted_time: float, machines: Sequence[str], info: InformationPool
    ) -> float:
        """:meth:`objective` without a Schedule (same division, same floats)."""
        return predicted_time / self._baseline_time(info)


class CostEstimator:
    """Minimise monetary cost of cycles (§3.1's "cost of execution cycles").

    Cost = predicted time × sum of the per-second rates of the machines
    used (from the User Specifications); machines without a listed rate are
    free.  ``time_weight`` blends execution time back in so ties break
    toward faster schedules.
    """

    name = "cost"

    def __init__(self, time_weight: float = 0.0) -> None:
        if time_weight < 0:
            raise ValueError("time_weight must be >= 0")
        self.time_weight = time_weight

    def _cost(self, schedule: Schedule, info: InformationPool) -> float:
        rates = info.userspec.cost_per_cpu_second
        rate_sum = sum(rates.get(m, 0.0) for m in schedule.resource_set)
        return schedule.predicted_time * rate_sum

    def objective(self, schedule: Schedule, info: InformationPool) -> float:
        return self._cost(schedule, info) + self.time_weight * schedule.predicted_time

    def metric_value(self, schedule: Schedule, info: InformationPool) -> float:
        return self._cost(schedule, info)

    def objective_lower_bound(
        self, time_lb: float, resource_set: Sequence[str], info: InformationPool
    ) -> float:
        """Admissible bound: the schedule uses at least one machine of the
        candidate set (possibly fewer after planner drops), so its rate sum
        is at least the cheapest member's rate."""
        rates = info.userspec.cost_per_cpu_second
        if not resource_set:
            return self.time_weight * time_lb
        min_rate = min(rates.get(m, 0.0) for m in resource_set)
        return time_lb * min_rate + self.time_weight * time_lb

    def objective_from_prediction(
        self, predicted_time: float, machines: Sequence[str], info: InformationPool
    ) -> float:
        """:meth:`objective` without a Schedule.

        ``machines`` must be the *kept* machine list in allocation order —
        the rate sum runs left-to-right over it, exactly like the
        Schedule-based path sums over :attr:`Schedule.resource_set`.
        """
        rates = info.userspec.cost_per_cpu_second
        rate_sum = sum(rates.get(m, 0.0) for m in machines)
        return predicted_time * rate_sum + self.time_weight * predicted_time


def make_estimator(metric: str, **kwargs) -> PerformanceEstimator:
    """Factory mapping a User Specification metric name to an estimator.

    ``speedup`` requires a ``baseline`` keyword (seconds, or a callable).
    """
    if metric == "execution_time":
        return ExecutionTimeEstimator()
    if metric == "speedup":
        if "baseline" not in kwargs:
            raise ValueError("speedup estimator requires a baseline")
        return SpeedupEstimator(kwargs["baseline"])
    if metric == "cost":
        return CostEstimator(kwargs.get("time_weight", 0.0))
    raise ValueError(f"unknown performance metric {metric!r}")

"""Schedule data model.

A :class:`Schedule` is the Planner's output and the Estimator's and
Actuator's input: which machines participate, how much work each carries,
what each exchanges with whom, and the prediction that justified choosing
it.  Schedules are plain data — they can be printed, compared and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import check_nonnegative

__all__ = ["Allocation", "Schedule"]


@dataclass
class Allocation:
    """One machine's share of the application.

    Parameters
    ----------
    machine:
        Machine name.
    task:
        Which HAT task this allocation executes.
    work_units:
        Work units assigned (grid points, surface functions, events).
    footprint_mb:
        Resident working set implied by the assignment.
    comm_bytes:
        Peer machine → bytes exchanged per step.
    """

    machine: str
    task: str
    work_units: float
    footprint_mb: float = 0.0
    comm_bytes: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_nonnegative("work_units", self.work_units)
        check_nonnegative("footprint_mb", self.footprint_mb)
        for peer, nbytes in self.comm_bytes.items():
            check_nonnegative(f"comm_bytes[{peer!r}]", nbytes)


@dataclass
class Schedule:
    """A complete candidate schedule.

    Attributes
    ----------
    allocations:
        Per-machine allocations (order is meaningful for strip
        decompositions: allocations appear in strip order).
    predicted_time:
        The Planner/Estimator's predicted execution time in seconds.
    resource_set:
        The machine names the schedule uses.
    decomposition:
        Family tag (``"strip"``, ``"blocked"``, ``"pipeline"``, ...).
    metadata:
        Planner-specific extras (e.g. pipeline size, per-machine predicted
        step times) surfaced in reports.
    """

    allocations: list[Allocation]
    predicted_time: float
    decomposition: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.allocations:
            raise ValueError("a schedule needs at least one allocation")
        names = [a.machine for a in self.allocations]
        # Task-parallel schedules may place two tasks on one machine, so
        # (machine, task) must be unique rather than machine alone.
        keys = [(a.machine, a.task) for a in self.allocations]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate (machine, task) in schedule: {keys}")
        check_nonnegative("predicted_time", self.predicted_time)
        self._machines = names

    @property
    def resource_set(self) -> tuple[str, ...]:
        """Machines used, deduplicated, in allocation order."""
        seen: dict[str, None] = {}
        for a in self.allocations:
            seen.setdefault(a.machine, None)
        return tuple(seen)

    @property
    def total_work_units(self) -> float:
        """Sum of allocated work units."""
        return sum(a.work_units for a in self.allocations)

    def allocation_for(self, machine: str, task: str | None = None) -> Allocation:
        """Find the allocation of ``machine`` (optionally for a given task)."""
        for a in self.allocations:
            if a.machine == machine and (task is None or a.task == task):
                return a
        raise KeyError(f"no allocation for machine {machine!r} task {task!r}")

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Schedule[{self.decomposition or 'generic'}] "
            f"predicted={self.predicted_time:.4g}s machines={len(self.resource_set)}"
        ]
        for a in self.allocations:
            comm = sum(a.comm_bytes.values())
            lines.append(
                f"  {a.machine:<10s} task={a.task:<12s} units={a.work_units:<12.6g} "
                f"mem={a.footprint_mb:.3g}MB comm={comm:.3g}B"
            )
        return "\n".join(lines)

"""The canonical candidate sweep: seeded incumbent + epsilon-margin pruning.

One scheduling decision is, at its core, a *sweep* over candidate resource
sets: evaluate each set's objective, keep the best, and — when admissible
lower bounds are available — skip sets whose bound cannot beat the
incumbent.  Before this module, the sweep existed twice: once inside
``AppLeSAgent._candidate_sweep`` (planning candidates one at a time) and
once inside ``SchedulingService._sweep`` (replaying precomputed batched
objectives).  Both replicas had to agree decision-for-decision; now they
*are* one implementation.

:func:`replay_sweep` is the pure control flow — the seed-candidate choice,
the incumbent updates (strict minimum, ties to the earlier index), and the
pruning predicate with its relative epsilon.  It is parameterised only by
an ``objective(idx)`` callable, so the same code drives

- the Coordinator's scalar loop (``objective`` plans and estimates one
  candidate),
- the Coordinator's vectorised solo fast path and the scheduling
  service's batched core (``objective`` reads a precomputed
  :class:`~repro.jacobi.apples.StripBatchEvaluation` row via
  :class:`BatchedObjective`).

Because every consumer replays the identical incumbent/pruning order, the
chosen schedule, the :class:`PruningStats`, and the ``core.incumbent``
observability events are bit-identical across entry points — the
regression suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = [
    "PRUNE_RELATIVE_EPS",
    "PruningStats",
    "SweepResult",
    "replay_sweep",
    "BatchedObjective",
    "materialise_winner",
    "resolve_batch_planner",
    "objective_bounds",
]

# Prune only when the lower bound beats the incumbent by this relative
# margin.  Bounds are admissible in exact arithmetic; the margin is far
# above any accumulated ulp noise (~1e-16 relative) yet far below real
# candidate separations, so it can only *disable* pruning near exact ties —
# never change the winner.
PRUNE_RELATIVE_EPS = 1e-12

_INF = float("inf")


@dataclass(frozen=True)
class PruningStats:
    """Candidate-search statistics from one scheduling decision.

    Attributes
    ----------
    candidates:
        Total candidate resource sets the Resource Selector produced.
    planned:
        How many were actually run through the Planner (or scored from a
        precomputed batched evaluation).
    pruned:
        How many were skipped because their admissible lower bound could
        not beat the incumbent objective.
    bounded:
        Whether lower bounds were available at all (planner + estimator
        both support them and the fast path was enabled).
    """

    candidates: int
    planned: int
    pruned: int
    bounded: bool

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the candidate space skipped (0.0 when unbounded)."""
        return self.pruned / self.candidates if self.candidates else 0.0


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one :func:`replay_sweep` pass.

    ``best_idx`` is ``-1`` when no candidate produced a finite objective;
    callers decide whether that is an error.  ``pruned`` flags candidates
    skipped by the lower-bound predicate, in candidate order.
    """

    best_idx: int
    best_objective: float
    seed_idx: int
    pruned: tuple[bool, ...]

    @property
    def pruned_count(self) -> int:
        return sum(self.pruned)

    def stats(self, bounded: bool) -> PruningStats:
        """The decision's :class:`PruningStats` (``bounded`` from the caller,
        which knows whether bounds were merely absent or disabled)."""
        count = len(self.pruned)
        skipped = self.pruned_count
        return PruningStats(
            candidates=count,
            planned=count - skipped,
            pruned=skipped,
            bounded=bounded,
        )


def replay_sweep(
    count: int,
    bounds: Sequence[float] | None,
    objective: Callable[[int], float],
    on_incumbent: Callable[[int, float, bool], None] | None = None,
) -> SweepResult:
    """Run the canonical prune-and-choose sweep over ``count`` candidates.

    Exactly the Coordinator's reference semantics:

    - **Warm start** (only with bounds and more than one candidate): the
      candidate with the smallest lower bound is evaluated first, so the
      sweep starts with a strong incumbent and can prune from candidate
      #0.  The winner is still the minimum objective with ties broken by
      original index — the reference loop's first-strict-minimum — so the
      out-of-order evaluation cannot change the decision.
    - **Pruning**: a candidate is skipped only with a finite incumbent and
      a clear margin (``lb >= best * (1 + PRUNE_RELATIVE_EPS)``); an
      admissible bound above the incumbent means the set cannot win, and
      the strict ``<`` incumbent update means skipping a tie never changes
      the first-minimum winner either.

    ``objective(idx)`` returns the candidate's objective (``inf`` for
    infeasible); ``on_incumbent(idx, objective, seeded)`` fires on every
    incumbent improvement, in evaluation order — the hook behind the
    ``core.incumbent`` observability events.
    """
    best_obj = _INF
    best_idx = -1
    seed_idx = -1
    pruned = [False] * count

    if bounds is not None and count > 1:
        seed_idx = min(range(count), key=bounds.__getitem__)
        obj = objective(seed_idx)
        if obj < _INF:
            best_obj, best_idx = obj, seed_idx
            if on_incumbent is not None:
                on_incumbent(seed_idx, obj, True)

    for idx in range(count):
        if idx == seed_idx:
            continue
        if bounds is not None:
            lb = bounds[idx]
            if best_obj < _INF and lb >= best_obj * (1.0 + PRUNE_RELATIVE_EPS):
                pruned[idx] = True
                continue
        obj = objective(idx)
        if obj < best_obj or (obj == best_obj and idx < best_idx):
            best_obj, best_idx = obj, idx
            if on_incumbent is not None:
                on_incumbent(idx, obj, False)

    return SweepResult(
        best_idx=best_idx,
        best_objective=best_obj,
        seed_idx=seed_idx,
        pruned=tuple(pruned),
    )


class BatchedObjective:
    """Candidate objectives from a precomputed batched strip evaluation.

    The ``objective(idx)`` callable for :func:`replay_sweep` when the
    candidate space was evaluated by
    :func:`~repro.jacobi.apples.evaluate_strip_batch`:

    - rows the batched core certified (``feasible``) are scored through
      the estimator's ``objective_from_prediction`` — the same floats the
      Schedule-based objective would produce, without the Schedule;
    - rows it *surrendered* (``fallback``) are planned by the scalar
      planner here, inside the caller's decision scope, and their
      schedules kept for callers that report per-candidate rows;
    - remaining rows mirror ``plan() is None`` (objective ``inf``).

    ``memo``/``schedules`` expose what one sweep actually computed, keyed
    by candidate index: the Coordinator's vectorised solo path turns them
    into ``ScheduleDecision.evaluations`` rows.
    """

    __slots__ = ("_agent", "_csets", "_rank_names", "_ev", "memo", "schedules")

    def __init__(self, agent: Any, csets: Sequence, inputs: Any, ev: Any) -> None:
        self._agent = agent
        self._csets = csets
        self._rank_names = inputs.rank_names
        self._ev = ev
        self.memo: dict[int, float] = {}
        self.schedules: dict[int, Any] = {}

    def __call__(self, idx: int) -> float:
        obj = self.memo.get(idx)
        if obj is not None:
            return obj
        agent = self._agent
        ev = self._ev
        if ev.fallback[idx]:
            sched = agent.planner.plan(self._csets[idx], agent.info)
            self.schedules[idx] = sched
            obj = (
                _INF
                if sched is None
                else agent.estimator.objective(sched, agent.info)
            )
        elif ev.feasible[idx]:
            kept = [nm for nm, k in zip(self._rank_names, ev.kept[idx]) if k]
            obj = agent.estimator.objective_from_prediction(
                float(ev.predicted[idx]), kept, agent.info
            )
        else:
            obj = _INF  # plan() returned None
        self.memo[idx] = obj
        return obj


def materialise_winner(agent: Any, csets: Sequence, result: SweepResult) -> Any:
    """Plan the sweep winner with the scalar planner and cross-check it.

    The vectorised paths never answer with a number the scalar path would
    not have produced: the winner's schedule is materialised by the real
    planner and its objective compared against the batched prediction — a
    divergence raises instead of answering wrong.  Raises ``RuntimeError``
    when the sweep found no feasible candidate at all.
    """
    if result.best_idx < 0:
        raise RuntimeError(
            f"no feasible schedule across {len(csets)} candidate resource sets"
        )
    best = agent.planner.plan(csets[result.best_idx], agent.info)
    if best is None or agent.estimator.objective(best, agent.info) != result.best_objective:
        raise RuntimeError(
            "batched objective diverged from the scalar planner for "
            f"candidate {csets[result.best_idx]!r} — fast-path defect"
        )
    return best


def resolve_batch_planner(planner: Any, info: Any) -> Any | None:
    """The planner to drive the one-shot batched sweep with, or ``None``.

    Planners opt in by exposing ``batch_planner(info)`` — returning an
    object with the ``batch_inputs``/``lower_bounds`` batching surface
    (usually themselves; dispatchers return their single active family).
    Used identically by the Coordinator's vectorised solo path and the
    scheduling service's batched core, so "which configurations vectorise"
    has exactly one answer.
    """
    hook = getattr(planner, "batch_planner", None)
    if hook is None:
        return None
    return hook(info)


def objective_bounds(
    agent: Any,
    planner: Any,
    csets: Sequence,
    member_mask: Any | None = None,
) -> list[float] | None:
    """Admissible objective lower bound per candidate set, or ``None``.

    ``AppLeSAgent._lower_bounds`` with the membership matrix reused: for a
    batchable configuration the dispatcher has exactly one active family,
    so that family's time bounds are the dispatcher's own — computed here
    with the precomputed masks, then mapped through the estimator's
    objective bound exactly like the Coordinator does.  Same floats as the
    scalar path, by construction.
    """
    estimator_bound = getattr(agent.estimator, "objective_lower_bound", None)
    planner_bounds = getattr(planner, "lower_bounds", None)
    if estimator_bound is None or planner_bounds is None:
        return None
    if member_mask is not None:
        time_bounds = planner_bounds(csets, agent.info, member_mask=member_mask)
    else:
        time_bounds = planner_bounds(csets, agent.info)
    if time_bounds is None or len(time_bounds) != len(csets):
        return None
    return [
        estimator_bound(float(tb), rset, agent.info)
        for tb, rset in zip(time_bounds, csets)
    ]

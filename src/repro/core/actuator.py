"""Actuators.

"The Actuator implements the 'best' schedule on the target resource
management system(s)" (§4.1).  AppLeS agents are *not* resource managers —
the paper's prototype actuated through KeLP over PVM; ours actuates onto
the simulator (and, for Jacobi2D, onto the in-process numeric runtime).
The protocol is deliberately tiny so applications can slot in their own.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.core.infopool import InformationPool
from repro.core.schedule import Schedule

__all__ = ["Actuator", "RecordingActuator"]


class Actuator(Protocol):
    """Protocol: carry out a schedule, returning an application-defined result."""

    def actuate(self, schedule: Schedule, info: InformationPool, t0: float) -> Any:
        """Implement ``schedule`` starting at simulated time ``t0``."""
        ...


class RecordingActuator:
    """A no-op actuator that records what it was asked to do.

    Useful in tests and in planning-only experiments where the caller
    executes the schedule itself.
    """

    def __init__(self) -> None:
        self.actuated: list[tuple[float, Schedule]] = []

    def actuate(self, schedule: Schedule, info: InformationPool, t0: float) -> Schedule:
        self.actuated.append((t0, schedule))
        return schedule

    @property
    def last_schedule(self) -> Schedule:
        """The most recently actuated schedule."""
        if not self.actuated:
            raise IndexError("nothing actuated yet")
        return self.actuated[-1][1]

"""The Coordinator — the single active agent of an AppLeS (§4.1–4.2).

The Coordinator runs the scheduling *blueprint* the paper gives for the
Jacobi2D prototype (§5):

1. Select candidate resource sets ``S_i`` (Resource Selector).
2. For each ``S_i``: plan a schedule (Planner) and estimate its cost
   (Performance Estimator).
3. Choose the resource set and schedule with the best predicted value of
   the user's performance metric.
4. Actuate the selected schedule (Actuator).

Everything the Coordinator knows comes from the shared Information Pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.actuator import Actuator, RecordingActuator
from repro.core.estimator import PerformanceEstimator, make_estimator
from repro.core.infopool import InformationPool
from repro.core.planner import Planner
from repro.core.schedule import Schedule
from repro.core.selector import ResourceSelector

__all__ = ["AppLeSAgent", "ScheduleDecision", "CandidateEvaluation"]


@dataclass(frozen=True)
class CandidateEvaluation:
    """One (resource set, schedule, objective) row from the blueprint loop."""

    resource_set: tuple[str, ...]
    schedule: Schedule | None
    objective: float

    @property
    def feasible(self) -> bool:
        """Whether the Planner produced a schedule for this set."""
        return self.schedule is not None


@dataclass
class ScheduleDecision:
    """The Coordinator's outcome.

    Attributes
    ----------
    best:
        The chosen schedule.
    best_objective:
        Its objective value (lower is better).
    evaluations:
        Every candidate considered, in evaluation order — the paper's
        "consider more options ... at machine speeds" made observable.
    metric:
        Name of the user's performance metric.
    """

    best: Schedule
    best_objective: float
    evaluations: list[CandidateEvaluation] = field(default_factory=list)
    metric: str = "execution_time"

    @property
    def candidates_considered(self) -> int:
        """Number of resource sets evaluated."""
        return len(self.evaluations)

    @property
    def candidates_feasible(self) -> int:
        """Number that produced a feasible schedule."""
        return sum(1 for e in self.evaluations if e.feasible)

    def ranked(self, top: int = 5) -> list[CandidateEvaluation]:
        """The best ``top`` feasible candidates, best first."""
        feasible = [e for e in self.evaluations if e.feasible]
        feasible.sort(key=lambda e: e.objective)
        return feasible[: max(0, top)]

    def explain(self, top: int = 5) -> str:
        """Human-readable account of the decision.

        Shows the winning schedule and the runners-up with their predicted
        objectives — the paper's "consider more options ... at machine
        speeds" made inspectable, so a user can see *why* the agent chose
        what it chose.
        """
        lines = [
            f"Considered {self.candidates_considered} candidate resource sets "
            f"({self.candidates_feasible} feasible) under metric "
            f"{self.metric!r}.",
            "",
            "Chosen schedule:",
            self.best.describe(),
            "",
            f"Top {top} candidates by predicted objective:",
        ]
        for rank, ev in enumerate(self.ranked(top), start=1):
            marker = " <- chosen" if ev.schedule is self.best else ""
            lines.append(
                f"  {rank}. objective={ev.objective:.6g}  "
                f"machines={','.join(ev.resource_set)}{marker}"
            )
        return "\n".join(lines)


class AppLeSAgent:
    """An application-level scheduling agent.

    Parameters
    ----------
    info:
        The Information Pool (resources + NWS + HAT + US + models).
    planner:
        The application's Planner.
    selector:
        Resource Selector (defaults to exhaustive-up-to-12 enumeration).
    estimator:
        Performance Estimator; by default built from the User
        Specification's ``performance_metric``.
    actuator:
        Actuator; defaults to a :class:`~repro.core.actuator.RecordingActuator`.
    """

    def __init__(
        self,
        info: InformationPool,
        planner: Planner,
        selector: ResourceSelector | None = None,
        estimator: PerformanceEstimator | None = None,
        actuator: Actuator | None = None,
    ) -> None:
        self.info = info
        self.planner = planner
        self.selector = selector if selector is not None else ResourceSelector()
        if estimator is None:
            estimator = make_estimator(info.userspec.performance_metric)
        self.estimator = estimator
        self.actuator = actuator if actuator is not None else RecordingActuator()

    def schedule(self) -> ScheduleDecision:
        """Run blueprint steps 1–3: select, plan, estimate, choose.

        Raises ``RuntimeError`` when no candidate resource set yields a
        feasible schedule (e.g. the User Specification filtered everything
        out).
        """
        candidate_sets = self.selector.candidate_sets(self.info)
        if not candidate_sets:
            raise RuntimeError(
                "Resource Selector produced no candidate sets "
                "(User Specification too restrictive?)"
            )
        evaluations: list[CandidateEvaluation] = []
        best: Schedule | None = None
        best_obj = float("inf")
        for rset in candidate_sets:
            sched = self.planner.plan(rset, self.info)
            if sched is None:
                evaluations.append(CandidateEvaluation(rset, None, float("inf")))
                continue
            obj = self.estimator.objective(sched, self.info)
            evaluations.append(CandidateEvaluation(rset, sched, obj))
            if obj < best_obj:
                best, best_obj = sched, obj
        if best is None:
            raise RuntimeError(
                f"no feasible schedule across {len(candidate_sets)} candidate resource sets"
            )
        return ScheduleDecision(
            best=best,
            best_objective=best_obj,
            evaluations=evaluations,
            metric=self.info.userspec.performance_metric,
        )

    def run(self, t0: float = 0.0) -> tuple[ScheduleDecision, Any]:
        """Blueprint steps 1–4: schedule, then actuate the winner at ``t0``."""
        decision = self.schedule()
        result = self.actuator.actuate(decision.best, self.info, t0)
        return decision, result

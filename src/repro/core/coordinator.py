"""The Coordinator — the single active agent of an AppLeS (§4.1–4.2).

The Coordinator runs the scheduling *blueprint* the paper gives for the
Jacobi2D prototype (§5):

1. Select candidate resource sets ``S_i`` (Resource Selector).
2. For each ``S_i``: plan a schedule (Planner) and estimate its cost
   (Performance Estimator).
3. Choose the resource set and schedule with the best predicted value of
   the user's performance metric.
4. Actuate the selected schedule (Actuator).

Everything the Coordinator knows comes from the shared Information Pool.

Fast path (:mod:`repro.util.perf`, off under ``REPRO_NO_FASTPATH=1``): the
Coordinator brackets the candidate loop with
:meth:`~repro.core.infopool.InformationPool.begin_decision` — one forecast
snapshot shared by every evaluation — and, when the Planner/Estimator pair
exposes admissible lower bounds, skips candidate sets whose bound cannot
beat the incumbent.  Bounds are *admissible* (never above the true
objective) and pruning only fires when the bound exceeds the incumbent by
a relative epsilon, so the chosen schedule is bit-identical to the
reference exhaustive loop; pruned rows stay in ``evaluations`` (objective
``inf``) and the counts are reported in :class:`PruningStats`.

Vectorised solo decision (off under ``REPRO_NO_SOLO_VECTOR=1``, and
implied off by ``REPRO_NO_FASTPATH=1``): when the Planner opts in through
``batch_planner(info)`` (the strip planner's ``batch_inputs`` /
``lower_bounds`` surface) and the Estimator exposes
``objective_from_prediction``, ``schedule()`` stacks *all* candidate sets
into one membership-mask matrix, evaluates them in a single
:func:`~repro.jacobi.apples.evaluate_strip_batch` call (a one-job batch),
and replays the incumbent/pruning order over the precomputed objectives
with the canonical :func:`~repro.core.sweep.replay_sweep`.  The batched
kernels replicate the scalar planner's float semantics
operation-for-operation and surrender any row they cannot certify back to
the scalar planner, the winner is materialised by the scalar planner and
cross-checked, and the sweep control flow is shared with the scalar loop
— so :class:`ScheduleDecision`, :class:`PruningStats`, and the obs event
stream are bit-identical to the reference loop under both gate modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.actuator import Actuator, RecordingActuator
from repro.core.estimator import PerformanceEstimator, make_estimator
from repro.core.infopool import InformationPool
from repro.core.planner import Planner
from repro.core.schedule import Schedule
from repro.core.selector import ResourceSelector
from repro.core.sweep import (
    PRUNE_RELATIVE_EPS,
    BatchedObjective,
    PruningStats,
    SweepResult,
    materialise_winner,
    objective_bounds,
    replay_sweep,
    resolve_batch_planner,
)
from repro.obs.trace import get_tracer
from repro.util import perf

__all__ = [
    "AppLeSAgent",
    "ScheduleDecision",
    "CandidateEvaluation",
    "PruningStats",
    "record_pruning_stats",
]


def record_pruning_stats(metrics: Any, stats: "PruningStats") -> None:
    """Persist one decision's :class:`PruningStats` into a metrics registry.

    The counters feed the ROADMAP "selector learning" direction: candidate
    generators need the pruned/planned history that used to vanish after
    ``ScheduleDecision.explain()``.  Called by the Coordinator and by the
    scheduling service's sweep replay, so solo and batched decisions land
    in the same instruments.
    """
    metrics.counter("core.decisions").inc()
    metrics.counter("core.candidates").inc(stats.candidates)
    metrics.counter("core.planned").inc(stats.planned)
    metrics.counter("core.pruned").inc(stats.pruned)
    if stats.bounded:
        metrics.histogram("core.pruned_fraction").observe(stats.pruned_fraction)

# The canonical epsilon now lives in repro.core.sweep; the underscored
# alias predates the shared module and is kept for importers.
_PRUNE_RELATIVE_EPS = PRUNE_RELATIVE_EPS


@dataclass(frozen=True)
class CandidateEvaluation:
    """One (resource set, schedule, objective) row from the blueprint loop.

    ``pruned`` rows were skipped by the fast path's admissible lower bound
    (``lower_bound`` > incumbent objective); their schedule is None and the
    objective ``inf``, mirroring an infeasible row for ranking purposes.

    The vectorised solo path scores most candidates straight from the
    batched prediction without materialising their Schedules, so a
    feasible row may carry ``schedule=None`` with a finite objective (the
    winner's Schedule is always materialised).
    """

    resource_set: tuple[str, ...]
    schedule: Schedule | None
    objective: float
    pruned: bool = False
    lower_bound: float | None = None

    @property
    def feasible(self) -> bool:
        """Whether the Planner could produce a schedule for this set."""
        return self.schedule is not None or self.objective < float("inf")


@dataclass
class ScheduleDecision:
    """The Coordinator's outcome.

    Attributes
    ----------
    best:
        The chosen schedule.
    best_objective:
        Its objective value (lower is better).
    evaluations:
        Every candidate considered, in evaluation order — the paper's
        "consider more options ... at machine speeds" made observable.
        Pruned candidates appear with ``pruned=True``.
    metric:
        Name of the user's performance metric.
    pruning:
        Candidate-search statistics (None when produced by code predating
        the fast path).
    vectorised:
        Whether the one-shot candidate tensor sweep answered this decision
        (False on the reference and scalar fast paths).
    """

    best: Schedule
    best_objective: float
    evaluations: list[CandidateEvaluation] = field(default_factory=list)
    metric: str = "execution_time"
    pruning: PruningStats | None = None
    vectorised: bool = False

    @property
    def candidates_considered(self) -> int:
        """Number of resource sets considered (planned + pruned)."""
        return len(self.evaluations)

    @property
    def candidates_feasible(self) -> int:
        """Number that produced a feasible schedule."""
        return sum(1 for e in self.evaluations if e.feasible)

    def ranked(self, top: int = 5) -> list[CandidateEvaluation]:
        """The best ``top`` feasible candidates, best first."""
        feasible = [e for e in self.evaluations if e.feasible]
        feasible.sort(key=lambda e: e.objective)
        return feasible[: max(0, top)]

    def explain(self, top: int = 5) -> str:
        """Human-readable account of the decision.

        Shows the winning schedule and the runners-up with their predicted
        objectives — the paper's "consider more options ... at machine
        speeds" made inspectable, so a user can see *why* the agent chose
        what it chose.
        """
        lines = [
            f"Considered {self.candidates_considered} candidate resource sets "
            f"({self.candidates_feasible} feasible) under metric "
            f"{self.metric!r}.",
        ]
        if self.pruning is not None and self.pruning.bounded:
            lines.append(
                f"Search pruning: {self.pruning.planned} planned, "
                f"{self.pruning.pruned} pruned by lower bound "
                f"({self.pruning.pruned_fraction:.0%} of the candidate space)."
            )
        lines += [
            "",
            "Chosen schedule:",
            self.best.describe(),
            "",
            f"Top {top} candidates by predicted objective:",
        ]
        for rank, ev in enumerate(self.ranked(top), start=1):
            marker = " <- chosen" if ev.schedule is self.best else ""
            lines.append(
                f"  {rank}. objective={ev.objective:.6g}  "
                f"machines={','.join(ev.resource_set)}{marker}"
            )
        return "\n".join(lines)


class AppLeSAgent:
    """An application-level scheduling agent.

    Parameters
    ----------
    info:
        The Information Pool (resources + NWS + HAT + US + models).
    planner:
        The application's Planner.
    selector:
        Resource Selector (defaults to exhaustive-up-to-12 enumeration).
    estimator:
        Performance Estimator; by default built from the User
        Specification's ``performance_metric``.
    actuator:
        Actuator; defaults to a :class:`~repro.core.actuator.RecordingActuator`.
    """

    def __init__(
        self,
        info: InformationPool,
        planner: Planner,
        selector: ResourceSelector | None = None,
        estimator: PerformanceEstimator | None = None,
        actuator: Actuator | None = None,
    ) -> None:
        self.info = info
        self.planner = planner
        self.selector = selector if selector is not None else ResourceSelector()
        if estimator is None:
            estimator = make_estimator(info.userspec.performance_metric)
        self.estimator = estimator
        self.actuator = actuator if actuator is not None else RecordingActuator()
        self._fast = perf.fastpath_enabled()
        # The one-shot candidate tensor sweep is layered under the master
        # fast path: REPRO_NO_SOLO_VECTOR=1 keeps the scalar fast path
        # (pruned one-at-a-time planning) for honest A/B measurement.
        self._vector = self._fast and perf.solo_vector_enabled()

    def _lower_bounds(
        self, candidate_sets: list[tuple[str, ...]]
    ) -> list[float] | None:
        """Admissible objective lower bound per candidate set, or None.

        Requires both optional hooks: the Planner's vectorized time bounds
        and the Estimator's mapping from a time bound to an objective
        bound.  Any failure disables pruning for this decision (the loop
        below then degenerates to the reference exhaustive scan).
        """
        planner_bounds = getattr(self.planner, "lower_bounds", None)
        estimator_bound = getattr(self.estimator, "objective_lower_bound", None)
        if planner_bounds is None or estimator_bound is None:
            return None
        time_bounds = planner_bounds(candidate_sets, self.info)
        if time_bounds is None or len(time_bounds) != len(candidate_sets):
            return None
        return [
            estimator_bound(float(tb), rset, self.info)
            for tb, rset in zip(time_bounds, candidate_sets)
        ]

    def schedule(self, snapshot: Any | None = None) -> ScheduleDecision:
        """Run blueprint steps 1–3: select, plan, estimate, choose.

        Raises ``RuntimeError`` when no candidate resource set yields a
        feasible schedule (e.g. the User Specification filtered everything
        out).

        Parameters
        ----------
        snapshot:
            Optional pre-taken :class:`~repro.nws.snapshot.ForecastSnapshot`
            for the decision scope — the scheduling service passes one
            snapshot to every agent of a batch so forecast queries are
            shared.  Snapshots are pure caches, so the decision is
            bit-identical to taking a fresh one.  Ignored on the reference
            path, which re-queries the pool per candidate by design.
        """
        candidate_sets = self.selector.candidate_sets(self.info)
        if not candidate_sets:
            raise RuntimeError(
                "Resource Selector produced no candidate sets "
                "(User Specification too restrictive?)"
            )
        if not self._fast:
            return self._schedule_reference(candidate_sets)

        begin = getattr(self.planner, "begin_decision", None)
        end = getattr(self.planner, "end_decision", None)
        with self.info.decision_scope(snapshot):
            if begin is not None:
                begin(self.info)
            try:
                if self._vector and hasattr(
                    self.estimator, "objective_from_prediction"
                ):
                    bp = resolve_batch_planner(self.planner, self.info)
                    if bp is not None:
                        return self._schedule_vectorised(candidate_sets, bp)
                bounds = self._lower_bounds(candidate_sets)
                return self._schedule_loop(candidate_sets, bounds)
            finally:
                if end is not None:
                    end(self.info)

    def _schedule_reference(
        self, candidate_sets: list[tuple[str, ...]]
    ) -> ScheduleDecision:
        """The seed exhaustive loop — one plan+estimate per candidate set."""
        return self._schedule_loop(candidate_sets, None)

    def _schedule_loop(
        self,
        candidate_sets: list[tuple[str, ...]],
        bounds: Sequence[float] | None,
    ) -> ScheduleDecision:
        # Observability (repro.obs): the span/metric calls below only read
        # decision state, never influence it — tracing on/off is
        # bit-identical.  When tracing is off they hit the no-op tracer.
        tracer = get_tracer()
        traced = tracer.enabled
        nws = self.info.pool.nws
        t_dec = float(nws.now) if nws is not None else None
        with tracer.span(
            "core.decision",
            layer="core",
            t=t_dec,
            metric=self.info.userspec.performance_metric,
            candidates=len(candidate_sets),
            bounded=bounds is not None,
        ) as span:
            decision = self._candidate_sweep(
                candidate_sets, bounds, span if traced else None, t_dec
            )
            if traced:
                stats = decision.pruning
                span.attrs.update(
                    best_objective=decision.best_objective,
                    planned=stats.planned,
                    pruned=stats.pruned,
                )
                record_pruning_stats(tracer.metrics, stats)
        return decision

    @staticmethod
    def _incumbent_hook(span: Any | None, t_dec: float | None):
        """The ``core.incumbent`` event emitter for :func:`replay_sweep`.

        The seed incumbent carries a ``seeded=True`` attribute and ordinary
        improvements carry none at all — preserved exactly, because obs
        bit-identity is asserted attribute-for-attribute.
        """
        if span is None:
            return None

        def on_incumbent(idx: int, obj: float, seeded: bool) -> None:
            if seeded:
                span.event("core.incumbent", t=t_dec, idx=idx,
                           objective=obj, seeded=True)
            else:
                span.event("core.incumbent", t=t_dec, idx=idx, objective=obj)

        return on_incumbent

    def _candidate_sweep(
        self,
        candidate_sets: list[tuple[str, ...]],
        bounds: Sequence[float] | None,
        span: Any | None,
        t_dec: float | None,
    ) -> ScheduleDecision:
        schedules: dict[int, Schedule | None] = {}
        objectives: dict[int, float] = {}

        def objective(idx: int) -> float:
            sched = self.planner.plan(candidate_sets[idx], self.info)
            schedules[idx] = sched
            obj = (
                float("inf")
                if sched is None
                else self.estimator.objective(sched, self.info)
            )
            objectives[idx] = obj
            return obj

        result = replay_sweep(
            len(candidate_sets), bounds, objective,
            self._incumbent_hook(span, t_dec),
        )
        if result.best_idx < 0:
            raise RuntimeError(
                f"no feasible schedule across {len(candidate_sets)} candidate resource sets"
            )
        evaluations: list[CandidateEvaluation] = []
        for idx, rset in enumerate(candidate_sets):
            if result.pruned[idx]:
                evaluations.append(
                    CandidateEvaluation(
                        rset, None, float("inf"),
                        pruned=True, lower_bound=bounds[idx],
                    )
                )
            else:
                evaluations.append(
                    CandidateEvaluation(rset, schedules[idx], objectives[idx])
                )
        return ScheduleDecision(
            best=schedules[result.best_idx],
            best_objective=result.best_objective,
            evaluations=evaluations,
            metric=self.info.userspec.performance_metric,
            pruning=result.stats(bounds is not None),
        )

    def _schedule_vectorised(
        self, candidate_sets: list[tuple[str, ...]], batch_planner: Any
    ) -> ScheduleDecision:
        """One-shot candidate tensor sweep: the whole decision in one batch.

        Stacks every candidate set into a membership-mask matrix, evaluates
        all of them in a single one-job ``evaluate_strip_batch`` call, then
        replays the canonical sweep over the precomputed objectives.  Rows
        the batched core surrendered are planned by the scalar planner on
        demand; the winner is materialised by the scalar planner and
        cross-checked.  Runs inside the decision scope ``schedule()``
        already opened, so all snapshot/model/plan memos are shared with
        any scalar fallbacks.
        """
        # Deferred import: repro.jacobi builds on repro.core.
        import numpy as np

        from repro.jacobi.apples import evaluate_strip_batch, member_masks_over

        info = self.info
        names = info.pool.machine_names()
        name_masks = member_masks_over(candidate_sets, names)
        bounds = objective_bounds(
            self, batch_planner, candidate_sets, member_mask=name_masks
        )
        inputs = batch_planner.batch_inputs(info)
        name_index = {m: k for k, m in enumerate(names)}
        perm = np.array([name_index[m] for m in inputs.rank_names])
        (ev,) = evaluate_strip_batch([(inputs, name_masks[:, perm])])

        tracer = get_tracer()
        traced = tracer.enabled
        nws = info.pool.nws
        t_dec = float(nws.now) if nws is not None else None
        with tracer.span(
            "core.decision",
            layer="core",
            t=t_dec,
            metric=info.userspec.performance_metric,
            candidates=len(candidate_sets),
            bounded=bounds is not None,
        ) as span:
            objective = BatchedObjective(self, candidate_sets, inputs, ev)
            result = replay_sweep(
                len(candidate_sets), bounds, objective,
                self._incumbent_hook(span if traced else None, t_dec),
            )
            best = materialise_winner(self, candidate_sets, result)
            stats = result.stats(bounds is not None)
            decision = ScheduleDecision(
                best=best,
                best_objective=result.best_objective,
                evaluations=self._batched_evaluations(
                    candidate_sets, bounds, result, objective, best
                ),
                metric=info.userspec.performance_metric,
                pruning=stats,
                vectorised=True,
            )
            if traced:
                span.attrs.update(
                    best_objective=decision.best_objective,
                    planned=stats.planned,
                    pruned=stats.pruned,
                )
                record_pruning_stats(tracer.metrics, stats)
        return decision

    @staticmethod
    def _batched_evaluations(
        candidate_sets: list[tuple[str, ...]],
        bounds: Sequence[float] | None,
        result: SweepResult,
        objective: BatchedObjective,
        best: Schedule,
    ) -> list[CandidateEvaluation]:
        """Per-candidate rows of a vectorised decision, in candidate order.

        Pruned rows mirror the scalar fast path exactly; evaluated rows
        carry the batched objective with ``schedule=None`` unless the
        scalar planner ran for them (surrendered rows and the winner).
        """
        evaluations: list[CandidateEvaluation] = []
        for idx, rset in enumerate(candidate_sets):
            if result.pruned[idx]:
                evaluations.append(
                    CandidateEvaluation(
                        rset, None, float("inf"),
                        pruned=True, lower_bound=bounds[idx],
                    )
                )
                continue
            sched = best if idx == result.best_idx else objective.schedules.get(idx)
            evaluations.append(
                CandidateEvaluation(rset, sched, objective.memo[idx])
            )
        return evaluations

    def run(self, t0: float = 0.0) -> tuple[ScheduleDecision, Any]:
        """Blueprint steps 1–4: schedule, then actuate the winner at ``t0``."""
        decision = self.schedule()
        result = self.actuator.actuate(decision.best, self.info, t0)
        return decision, result

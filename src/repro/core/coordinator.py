"""The Coordinator — the single active agent of an AppLeS (§4.1–4.2).

The Coordinator runs the scheduling *blueprint* the paper gives for the
Jacobi2D prototype (§5):

1. Select candidate resource sets ``S_i`` (Resource Selector).
2. For each ``S_i``: plan a schedule (Planner) and estimate its cost
   (Performance Estimator).
3. Choose the resource set and schedule with the best predicted value of
   the user's performance metric.
4. Actuate the selected schedule (Actuator).

Everything the Coordinator knows comes from the shared Information Pool.

Fast path (:mod:`repro.util.perf`, off under ``REPRO_NO_FASTPATH=1``): the
Coordinator brackets the candidate loop with
:meth:`~repro.core.infopool.InformationPool.begin_decision` — one forecast
snapshot shared by every evaluation — and, when the Planner/Estimator pair
exposes admissible lower bounds, skips candidate sets whose bound cannot
beat the incumbent.  Bounds are *admissible* (never above the true
objective) and pruning only fires when the bound exceeds the incumbent by
a relative epsilon, so the chosen schedule is bit-identical to the
reference exhaustive loop; pruned rows stay in ``evaluations`` (objective
``inf``) and the counts are reported in :class:`PruningStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.actuator import Actuator, RecordingActuator
from repro.core.estimator import PerformanceEstimator, make_estimator
from repro.core.infopool import InformationPool
from repro.core.planner import Planner
from repro.core.schedule import Schedule
from repro.core.selector import ResourceSelector
from repro.obs.trace import get_tracer
from repro.util import perf

__all__ = [
    "AppLeSAgent",
    "ScheduleDecision",
    "CandidateEvaluation",
    "PruningStats",
    "record_pruning_stats",
]


def record_pruning_stats(metrics: Any, stats: "PruningStats") -> None:
    """Persist one decision's :class:`PruningStats` into a metrics registry.

    The counters feed the ROADMAP "selector learning" direction: candidate
    generators need the pruned/planned history that used to vanish after
    ``ScheduleDecision.explain()``.  Called by the Coordinator and by the
    scheduling service's sweep replay, so solo and batched decisions land
    in the same instruments.
    """
    metrics.counter("core.decisions").inc()
    metrics.counter("core.candidates").inc(stats.candidates)
    metrics.counter("core.planned").inc(stats.planned)
    metrics.counter("core.pruned").inc(stats.pruned)
    if stats.bounded:
        metrics.histogram("core.pruned_fraction").observe(stats.pruned_fraction)

# Prune only when the lower bound beats the incumbent by this relative
# margin.  Bounds are admissible in exact arithmetic; the margin is far
# above any accumulated ulp noise (~1e-16 relative) yet far below real
# candidate separations, so it can only *disable* pruning near exact ties —
# never change the winner.
_PRUNE_RELATIVE_EPS = 1e-12


@dataclass(frozen=True)
class CandidateEvaluation:
    """One (resource set, schedule, objective) row from the blueprint loop.

    ``pruned`` rows were skipped by the fast path's admissible lower bound
    (``lower_bound`` > incumbent objective); their schedule is None and the
    objective ``inf``, mirroring an infeasible row for ranking purposes.
    """

    resource_set: tuple[str, ...]
    schedule: Schedule | None
    objective: float
    pruned: bool = False
    lower_bound: float | None = None

    @property
    def feasible(self) -> bool:
        """Whether the Planner produced a schedule for this set."""
        return self.schedule is not None


@dataclass(frozen=True)
class PruningStats:
    """Candidate-search statistics from one Coordinator decision.

    Attributes
    ----------
    candidates:
        Total candidate resource sets the Resource Selector produced.
    planned:
        How many were actually run through the Planner.
    pruned:
        How many were skipped because their admissible lower bound could
        not beat the incumbent objective.
    bounded:
        Whether lower bounds were available at all (planner + estimator
        both support them and the fast path was enabled).
    """

    candidates: int
    planned: int
    pruned: int
    bounded: bool

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the candidate space skipped (0.0 when unbounded)."""
        return self.pruned / self.candidates if self.candidates else 0.0


@dataclass
class ScheduleDecision:
    """The Coordinator's outcome.

    Attributes
    ----------
    best:
        The chosen schedule.
    best_objective:
        Its objective value (lower is better).
    evaluations:
        Every candidate considered, in evaluation order — the paper's
        "consider more options ... at machine speeds" made observable.
        Pruned candidates appear with ``pruned=True``.
    metric:
        Name of the user's performance metric.
    pruning:
        Candidate-search statistics (None when produced by code predating
        the fast path).
    """

    best: Schedule
    best_objective: float
    evaluations: list[CandidateEvaluation] = field(default_factory=list)
    metric: str = "execution_time"
    pruning: PruningStats | None = None

    @property
    def candidates_considered(self) -> int:
        """Number of resource sets considered (planned + pruned)."""
        return len(self.evaluations)

    @property
    def candidates_feasible(self) -> int:
        """Number that produced a feasible schedule."""
        return sum(1 for e in self.evaluations if e.feasible)

    def ranked(self, top: int = 5) -> list[CandidateEvaluation]:
        """The best ``top`` feasible candidates, best first."""
        feasible = [e for e in self.evaluations if e.feasible]
        feasible.sort(key=lambda e: e.objective)
        return feasible[: max(0, top)]

    def explain(self, top: int = 5) -> str:
        """Human-readable account of the decision.

        Shows the winning schedule and the runners-up with their predicted
        objectives — the paper's "consider more options ... at machine
        speeds" made inspectable, so a user can see *why* the agent chose
        what it chose.
        """
        lines = [
            f"Considered {self.candidates_considered} candidate resource sets "
            f"({self.candidates_feasible} feasible) under metric "
            f"{self.metric!r}.",
        ]
        if self.pruning is not None and self.pruning.bounded:
            lines.append(
                f"Search pruning: {self.pruning.planned} planned, "
                f"{self.pruning.pruned} pruned by lower bound "
                f"({self.pruning.pruned_fraction:.0%} of the candidate space)."
            )
        lines += [
            "",
            "Chosen schedule:",
            self.best.describe(),
            "",
            f"Top {top} candidates by predicted objective:",
        ]
        for rank, ev in enumerate(self.ranked(top), start=1):
            marker = " <- chosen" if ev.schedule is self.best else ""
            lines.append(
                f"  {rank}. objective={ev.objective:.6g}  "
                f"machines={','.join(ev.resource_set)}{marker}"
            )
        return "\n".join(lines)


class AppLeSAgent:
    """An application-level scheduling agent.

    Parameters
    ----------
    info:
        The Information Pool (resources + NWS + HAT + US + models).
    planner:
        The application's Planner.
    selector:
        Resource Selector (defaults to exhaustive-up-to-12 enumeration).
    estimator:
        Performance Estimator; by default built from the User
        Specification's ``performance_metric``.
    actuator:
        Actuator; defaults to a :class:`~repro.core.actuator.RecordingActuator`.
    """

    def __init__(
        self,
        info: InformationPool,
        planner: Planner,
        selector: ResourceSelector | None = None,
        estimator: PerformanceEstimator | None = None,
        actuator: Actuator | None = None,
    ) -> None:
        self.info = info
        self.planner = planner
        self.selector = selector if selector is not None else ResourceSelector()
        if estimator is None:
            estimator = make_estimator(info.userspec.performance_metric)
        self.estimator = estimator
        self.actuator = actuator if actuator is not None else RecordingActuator()
        self._fast = perf.fastpath_enabled()

    def _lower_bounds(
        self, candidate_sets: list[tuple[str, ...]]
    ) -> list[float] | None:
        """Admissible objective lower bound per candidate set, or None.

        Requires both optional hooks: the Planner's vectorized time bounds
        and the Estimator's mapping from a time bound to an objective
        bound.  Any failure disables pruning for this decision (the loop
        below then degenerates to the reference exhaustive scan).
        """
        planner_bounds = getattr(self.planner, "lower_bounds", None)
        estimator_bound = getattr(self.estimator, "objective_lower_bound", None)
        if planner_bounds is None or estimator_bound is None:
            return None
        time_bounds = planner_bounds(candidate_sets, self.info)
        if time_bounds is None or len(time_bounds) != len(candidate_sets):
            return None
        return [
            estimator_bound(float(tb), rset, self.info)
            for tb, rset in zip(time_bounds, candidate_sets)
        ]

    def schedule(self, snapshot: Any | None = None) -> ScheduleDecision:
        """Run blueprint steps 1–3: select, plan, estimate, choose.

        Raises ``RuntimeError`` when no candidate resource set yields a
        feasible schedule (e.g. the User Specification filtered everything
        out).

        Parameters
        ----------
        snapshot:
            Optional pre-taken :class:`~repro.nws.snapshot.ForecastSnapshot`
            for the decision scope — the scheduling service passes one
            snapshot to every agent of a batch so forecast queries are
            shared.  Snapshots are pure caches, so the decision is
            bit-identical to taking a fresh one.  Ignored on the reference
            path, which re-queries the pool per candidate by design.
        """
        candidate_sets = self.selector.candidate_sets(self.info)
        if not candidate_sets:
            raise RuntimeError(
                "Resource Selector produced no candidate sets "
                "(User Specification too restrictive?)"
            )
        if not self._fast:
            return self._schedule_reference(candidate_sets)

        begin = getattr(self.planner, "begin_decision", None)
        end = getattr(self.planner, "end_decision", None)
        with self.info.decision_scope(snapshot):
            if begin is not None:
                begin(self.info)
            try:
                bounds = self._lower_bounds(candidate_sets)
                return self._schedule_loop(candidate_sets, bounds)
            finally:
                if end is not None:
                    end(self.info)

    def _schedule_reference(
        self, candidate_sets: list[tuple[str, ...]]
    ) -> ScheduleDecision:
        """The seed exhaustive loop — one plan+estimate per candidate set."""
        return self._schedule_loop(candidate_sets, None)

    def _schedule_loop(
        self,
        candidate_sets: list[tuple[str, ...]],
        bounds: Sequence[float] | None,
    ) -> ScheduleDecision:
        # Observability (repro.obs): the span/metric calls below only read
        # decision state, never influence it — tracing on/off is
        # bit-identical.  When tracing is off they hit the no-op tracer.
        tracer = get_tracer()
        traced = tracer.enabled
        nws = self.info.pool.nws
        t_dec = float(nws.now) if nws is not None else None
        with tracer.span(
            "core.decision",
            layer="core",
            t=t_dec,
            metric=self.info.userspec.performance_metric,
            candidates=len(candidate_sets),
            bounded=bounds is not None,
        ) as span:
            decision = self._candidate_sweep(
                candidate_sets, bounds, span if traced else None, t_dec
            )
            if traced:
                stats = decision.pruning
                span.attrs.update(
                    best_objective=decision.best_objective,
                    planned=stats.planned,
                    pruned=stats.pruned,
                )
                record_pruning_stats(tracer.metrics, stats)
        return decision

    def _candidate_sweep(
        self,
        candidate_sets: list[tuple[str, ...]],
        bounds: Sequence[float] | None,
        span: Any | None,
        t_dec: float | None,
    ) -> ScheduleDecision:
        evaluations: list[CandidateEvaluation] = []
        best: Schedule | None = None
        best_obj = float("inf")
        best_idx = -1
        pruned = 0

        # Warm start: evaluate the candidate with the smallest lower bound
        # first so the sweep below starts with a strong incumbent and can
        # prune from candidate #0.  The winner is still chosen as the
        # minimum objective with ties broken by original index — exactly
        # the reference loop's first-strict-minimum — so evaluating one
        # candidate out of order cannot change the decision.
        seeded: dict[int, CandidateEvaluation] = {}
        if bounds is not None and len(candidate_sets) > 1:
            seed_idx = min(range(len(candidate_sets)), key=bounds.__getitem__)
            rset = candidate_sets[seed_idx]
            sched = self.planner.plan(rset, self.info)
            if sched is None:
                seeded[seed_idx] = CandidateEvaluation(rset, None, float("inf"))
            else:
                obj = self.estimator.objective(sched, self.info)
                seeded[seed_idx] = CandidateEvaluation(rset, sched, obj)
                if obj < float("inf"):
                    best, best_obj, best_idx = sched, obj, seed_idx
                    if span is not None:
                        span.event("core.incumbent", t=t_dec, idx=seed_idx,
                                   objective=obj, seeded=True)

        for idx, rset in enumerate(candidate_sets):
            pre = seeded.get(idx)
            if pre is not None:
                evaluations.append(pre)
                continue
            if bounds is not None:
                lb = bounds[idx]
                # Prune only with a finite incumbent and a clear margin:
                # admissible bound above the incumbent means this set cannot
                # win, and a strict `<` incumbent update means skipping a
                # tie never changes the first-minimum winner either.
                if best_obj < float("inf") and lb >= best_obj * (1.0 + _PRUNE_RELATIVE_EPS):
                    evaluations.append(
                        CandidateEvaluation(
                            rset, None, float("inf"), pruned=True, lower_bound=lb
                        )
                    )
                    pruned += 1
                    continue
            sched = self.planner.plan(rset, self.info)
            if sched is None:
                evaluations.append(CandidateEvaluation(rset, None, float("inf")))
                continue
            obj = self.estimator.objective(sched, self.info)
            evaluations.append(CandidateEvaluation(rset, sched, obj))
            if obj < best_obj or (obj == best_obj and idx < best_idx):
                best, best_obj, best_idx = sched, obj, idx
                if span is not None:
                    span.event("core.incumbent", t=t_dec, idx=idx, objective=obj)
        if best is None:
            raise RuntimeError(
                f"no feasible schedule across {len(candidate_sets)} candidate resource sets"
            )
        return ScheduleDecision(
            best=best,
            best_objective=best_obj,
            evaluations=evaluations,
            metric=self.info.userspec.performance_metric,
            pruning=PruningStats(
                candidates=len(candidate_sets),
                planned=len(candidate_sets) - pruned,
                pruned=pruned,
                bounded=bounds is not None,
            ),
        )

    def run(self, t0: float = 0.0) -> tuple[ScheduleDecision, Any]:
        """Blueprint steps 1–4: schedule, then actuate the winner at ``t0``."""
        decision = self.schedule()
        result = self.actuator.actuate(decision.best, self.info, t0)
        return decision, result

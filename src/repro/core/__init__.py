"""The AppLeS application-level scheduling framework (the paper's §4).

An AppLeS agent is organised as a single active **Coordinator** plus four
subsystems sharing an **Information Pool**:

- the **Resource Selector** chooses and filters resource combinations,
- the **Planner** turns a resource combination into a candidate schedule,
- the **Performance Estimator** scores candidate schedules in the *user's*
  performance metric,
- the **Actuator** implements the chosen schedule on the target resource
  management system (here: the simulator, or the in-process Jacobi runtime).

The Information Pool is fed by the Network Weather Service
(:mod:`repro.nws`), the Heterogeneous Application Template
(:mod:`repro.core.hat`), performance Models (supplied by each
application's planner), and User Specifications
(:mod:`repro.core.userspec`).
"""

from repro.core.actuator import Actuator, RecordingActuator
from repro.core.coordinator import (
    AppLeSAgent,
    CandidateEvaluation,
    PruningStats,
    ScheduleDecision,
)
from repro.core.distance import logical_distance, rank_by_distance
from repro.core.estimator import (
    CostEstimator,
    ExecutionTimeEstimator,
    PerformanceEstimator,
    SpeedupEstimator,
    make_estimator,
)
from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import DecisionCache, InformationPool
from repro.core.planner import (
    Planner,
    TimeBalancedPlanner,
    balance_divisible_work,
    balance_divisible_work_batched,
)
from repro.core.resources import MachineInfo, ResourcePool
from repro.core.schedule import Allocation, Schedule
from repro.core.selector import ResourceSelector
from repro.core.userspec import UserSpecification
from repro.core.wait_or_run import Reservation, WaitOrRunDecision, decide_wait_or_run

__all__ = [
    "AppLeSAgent",
    "ScheduleDecision",
    "CandidateEvaluation",
    "PruningStats",
    "Actuator",
    "RecordingActuator",
    "logical_distance",
    "rank_by_distance",
    "PerformanceEstimator",
    "ExecutionTimeEstimator",
    "SpeedupEstimator",
    "CostEstimator",
    "make_estimator",
    "HeterogeneousApplicationTemplate",
    "TaskCharacteristics",
    "CommunicationCharacteristics",
    "StructureInfo",
    "InformationPool",
    "DecisionCache",
    "Planner",
    "TimeBalancedPlanner",
    "balance_divisible_work",
    "balance_divisible_work_batched",
    "MachineInfo",
    "ResourcePool",
    "Allocation",
    "Schedule",
    "ResourceSelector",
    "UserSpecification",
    "Reservation",
    "WaitOrRunDecision",
    "decide_wait_or_run",
]

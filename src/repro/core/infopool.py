"""The Information Pool.

"Application-specific, system-specific, and dynamic information used by
these subsystems constitute an Information Pool which all subsystems
share" (§4.1).  Four sources feed it: the Network Weather Service (via the
:class:`~repro.core.resources.ResourcePool`), the HAT, the Models, and the
User Specifications.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.hat import HeterogeneousApplicationTemplate
from repro.core.resources import ResourcePool
from repro.core.userspec import UserSpecification

__all__ = ["InformationPool", "DecisionCache"]


class DecisionCache:
    """Scratch state shared by all subsystems for one scheduling decision.

    The Coordinator's fast path opens a decision with
    :meth:`InformationPool.begin_decision`, which takes one
    :class:`~repro.nws.snapshot.ForecastSnapshot` of the pool and hands
    every Planner/Estimator a shared ``memo`` dict for per-decision
    memoisation (cost models, locality orders, per-machine rates).  Because
    the snapshot is a pure cache over the pool, anything derived from it is
    bit-identical to the reference path that re-queries per candidate.

    Planners namespace their memo keys (e.g. ``("jacobi-model", id(self))``)
    so several planners can share one cache without collisions.

    A cache may outlive a single decision: the always-on scheduling
    daemon reuses one cache across every request of one pool state,
    because everything memoised is a pure function of the snapshot.  The
    reuse contract is :attr:`stale` — the moment the underlying NWS
    advances, the snapshot (and with it every memo derived from it) stops
    describing the pool, and :meth:`InformationPool.begin_decision`
    refuses to reuse the cache.
    """

    __slots__ = ("snapshot", "memo")

    def __init__(self, snapshot: Any) -> None:
        self.snapshot = snapshot
        self.memo: dict[Any, Any] = {}

    @property
    def stale(self) -> bool:
        """True when the snapshot no longer describes the pool's state."""
        return bool(getattr(self.snapshot, "stale", False))


@dataclass
class InformationPool:
    """Shared state for one AppLeS agent's subsystems.

    Attributes
    ----------
    pool:
        The resource pool (wraps the topology and, when present, the NWS —
        the *dynamic* information source).
    hat:
        The Heterogeneous Application Template (*application-specific*).
    userspec:
        The User Specifications (*user-specific* — the ingredient the paper
        singles out as distinguishing AppLeS from Mars et al., §4.2).
    models:
        Named performance models registered by the application (e.g. the
        Jacobi strip cost model, the 3D-REACT pipeline model).  Planners and
        Estimators look their models up here so experiments can swap them.
    """

    pool: ResourcePool
    hat: HeterogeneousApplicationTemplate
    userspec: UserSpecification = field(default_factory=UserSpecification)
    models: dict[str, Any] = field(default_factory=dict)
    _decision: DecisionCache | None = field(default=None, init=False, repr=False)

    # -- per-decision state ---------------------------------------------------
    def begin_decision(
        self, snapshot: Any | None = None, reuse: DecisionCache | None = None
    ) -> DecisionCache:
        """Open a scheduling decision: snapshot the pool, reset the memo.

        Called by the Coordinator's fast path before the candidate loop;
        planners pick the cache up via :attr:`decision_cache`.  Re-entrant
        calls replace the previous cache (one decision at a time) — a fresh
        ``DecisionCache`` with an *empty* memo, so nothing computed for one
        request can leak into the next.

        Parameters
        ----------
        snapshot:
            An existing :class:`~repro.nws.snapshot.ForecastSnapshot` to
            reuse (the scheduling service shares one snapshot across the
            requests of a batch taken at the same instant).  It must not be
            stale: a snapshot is a pure cache only while the NWS sits at
            the instant it was taken.  ``None`` takes a fresh snapshot.
        reuse:
            A :class:`DecisionCache` from an earlier decision over the
            *same* pool state (the always-on daemon keeps one per request
            configuration).  It is adopted — memo and all — only while it
            is provably still current: its snapshot must be the exact
            object ``snapshot`` passes (or ``snapshot`` must be ``None``)
            and must not be stale.  A cache that fails either check is
            silently discarded and a fresh one opened — reuse is an
            optimisation, never a semantic.
        """
        if reuse is not None:
            current = (
                not reuse.stale
                and (snapshot is None or reuse.snapshot is snapshot)
            )
            if current:
                self._decision = reuse
                return reuse
        if snapshot is None:
            snapshot = self.pool.snapshot()
        elif getattr(snapshot, "stale", False):
            raise ValueError(
                "refusing to open a decision on a stale ForecastSnapshot; "
                "take a new snapshot after advancing the NWS"
            )
        self._decision = DecisionCache(snapshot)
        return self._decision

    def end_decision(self) -> None:
        """Close the current decision and drop its cached state."""
        self._decision = None

    @contextmanager
    def decision_scope(
        self, snapshot: Any | None = None, reuse: DecisionCache | None = None
    ) -> Iterator[DecisionCache]:
        """Explicit per-request decision scope: ``with info.decision_scope():``.

        Guarantees the :class:`DecisionCache` (snapshot + memo) opened for
        one request is dropped when the request ends, even on error — two
        back-to-back decisions at different simulated times can never see
        each other's memoised rates, plans, or forecasts.  On exit the
        previous cache (if the scope was nested inside another decision) is
        restored, so a service evaluating a request inside a shared batch
        scope does not tear the batch scope down.
        """
        previous = self._decision
        cache = self.begin_decision(snapshot, reuse=reuse)
        try:
            yield cache
        finally:
            self._decision = previous

    @property
    def decision_cache(self) -> DecisionCache | None:
        """The active decision's shared cache (None outside a decision)."""
        return self._decision

    def register_model(self, name: str, model: Any) -> None:
        """Add or replace a named performance model."""
        if not name:
            raise ValueError("model name must be non-empty")
        self.models[name] = model

    def model(self, name: str) -> Any:
        """Look up a model registered by the application."""
        try:
            return self.models[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered (have: {sorted(self.models)})"
            ) from None

    @property
    def has_dynamic_information(self) -> bool:
        """True when an NWS feeds this pool (§3.2's dynamic system state)."""
        return self.pool.nws is not None

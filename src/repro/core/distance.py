"""Application-specific resource locality (§3.3).

"Two resources can be thought of as *close* if they can effectively be
coupled to promote the application's performance" — closeness is a function
of what the application *requires* from the coupling, not of the wire
between the machines.  The operational definition used here: the logical
distance between machines A and B is the predicted time to move the
application's characteristic data volume between them.  Machines on
opposite ends of a slow link are still "close" to an application that
barely communicates.
"""

from __future__ import annotations

from repro.core.resources import ResourcePool

__all__ = ["logical_distance", "rank_by_distance", "set_diameter"]


def logical_distance(
    pool: ResourcePool,
    a: str,
    b: str,
    coupling_bytes: float,
    flows: int = 1,
) -> float:
    """Predicted seconds to satisfy the app's coupling between ``a`` and ``b``.

    ``coupling_bytes`` is the application-specific per-step data movement
    between the two machines (from the HAT's communication
    characteristics).  Zero coupling means every pair is at distance 0 —
    embarrassingly-parallel applications see a flat metacomputer, exactly
    the CLEO/NILE observation that "the speed of the network link between
    [sites] is not critical" (§3.3).
    """
    if coupling_bytes < 0:
        raise ValueError(f"coupling_bytes must be >= 0, got {coupling_bytes}")
    if a == b or coupling_bytes == 0.0:
        return 0.0
    return pool.predicted_transfer_time(a, b, coupling_bytes, flows)


def rank_by_distance(
    pool: ResourcePool,
    anchor: str,
    candidates: list[str],
    coupling_bytes: float,
) -> list[str]:
    """Candidates sorted by logical distance from ``anchor`` (closest first).

    Ties (including the all-zero case) preserve the input order, keeping
    the ranking deterministic.
    """
    return sorted(
        candidates,
        key=lambda c: logical_distance(pool, anchor, c, coupling_bytes),
    )


def set_diameter(pool: ResourcePool, machines: list[str], coupling_bytes: float) -> float:
    """Largest pairwise logical distance within a machine set.

    The Resource Selector prefers candidate sets with small diameter when
    the application is communication-coupled.
    """
    if len(machines) < 2:
        return 0.0
    worst = 0.0
    for i, a in enumerate(machines):
        for b in machines[i + 1 :]:
            worst = max(worst, logical_distance(pool, a, b, coupling_bytes))
    return worst

"""The Heterogeneous Application Template (HAT).

"The HAT is an interface in which the user provides specific information
about the structure, characteristics and current implementations of the
application and its tasks" (§4.1).  Following §3.4, the template carries
three categories of attributes:

- **task-specific implementation characteristics** —
  :class:`TaskCharacteristics`: computational paradigm, work and memory per
  unit, per-architecture implementations;
- **inter-task communication characteristics** —
  :class:`CommunicationCharacteristics`: data format, pipeline size,
  regularity/frequency;
- **application structure information** — :class:`StructureInfo`:
  problem size, iteration pattern, I/O.

The template is deliberately declarative: planners read it, they never
write it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_in, check_nonnegative, check_positive

__all__ = [
    "TaskCharacteristics",
    "CommunicationCharacteristics",
    "StructureInfo",
    "HeterogeneousApplicationTemplate",
]

#: Computational paradigms the framework understands.
PARADIGMS = ("data-parallel", "task-parallel", "pipeline", "master-worker")

#: Communication patterns the framework understands.
COMM_PATTERNS = ("stencil", "pipeline", "none", "gather", "all-to-all")


@dataclass(frozen=True)
class TaskCharacteristics:
    """Implementation characteristics of one application task.

    Parameters
    ----------
    name:
        Task name (e.g. ``"jacobi-sweep"``, ``"LHSF"``).
    flop_per_unit:
        Floating-point operations per work unit (e.g. per grid point, per
        surface function, per event) in MFLOP.
    bytes_per_unit:
        Memory bytes per resident work unit.
    implementations:
        Mapping architecture tag → relative efficiency of this task's
        implementation on that architecture (1.0 = delivers the host's full
        nominal rate).  3D-REACT's vectorised Log-D on the C90 vs. the
        message-passing Log-D on the Paragon is the motivating example
        (§2.3); an architecture absent from the map cannot run the task.
        An *empty* map means a portable implementation that runs anywhere
        at efficiency 1.0.
    divisible:
        True when the task's work can be split across machines
        (data-parallel); False for atomic placement (task-parallel).
    """

    name: str
    flop_per_unit: float
    bytes_per_unit: float = 0.0
    implementations: dict[str, float] = field(default_factory=dict)
    divisible: bool = True

    def __post_init__(self) -> None:
        check_nonnegative("flop_per_unit", self.flop_per_unit)
        check_nonnegative("bytes_per_unit", self.bytes_per_unit)
        for arch, eff in self.implementations.items():
            if not (0.0 < eff <= 1.5):
                raise ValueError(
                    f"implementation efficiency for {arch!r} must be in (0, 1.5], got {eff}"
                )

    def efficiency_on(self, arch: str) -> float:
        """Relative efficiency on ``arch``; 0.0 if the task cannot run there."""
        if not self.implementations:
            return 1.0
        return self.implementations.get(arch, 0.0)

    def can_run_on(self, arch: str) -> bool:
        """Whether an implementation exists for ``arch``."""
        return self.efficiency_on(arch) > 0.0


@dataclass(frozen=True)
class CommunicationCharacteristics:
    """Inter-task communication characteristics.

    Parameters
    ----------
    pattern:
        One of :data:`COMM_PATTERNS`.
    bytes_per_border_unit:
        For stencil patterns: bytes exchanged per border unit per step.
    pipeline_unit_bytes:
        For pipeline patterns: bytes transferred per pipeline unit.
    pipeline_size_range:
        (min, max) admissible pipeline sizes in work units — 3D-REACT's
        "5 to 20 surface functions per subdomain" (§2.3).
    conversion_overhead:
        Fractional cost of data-format conversion when the endpoints have
        different architectures (the Cray→Delta float conversion of §2.3).
    frequency_per_iteration:
        Messages per step per neighbour.
    """

    pattern: str = "none"
    bytes_per_border_unit: float = 0.0
    pipeline_unit_bytes: float = 0.0
    pipeline_size_range: tuple[int, int] = (1, 1)
    conversion_overhead: float = 0.0
    frequency_per_iteration: int = 1

    def __post_init__(self) -> None:
        check_in("pattern", self.pattern, COMM_PATTERNS)
        check_nonnegative("bytes_per_border_unit", self.bytes_per_border_unit)
        check_nonnegative("pipeline_unit_bytes", self.pipeline_unit_bytes)
        check_nonnegative("conversion_overhead", self.conversion_overhead)
        lo, hi = self.pipeline_size_range
        if lo < 1 or hi < lo:
            raise ValueError(
                f"pipeline_size_range must satisfy 1 <= lo <= hi, got {self.pipeline_size_range}"
            )
        if self.frequency_per_iteration < 0:
            raise ValueError("frequency_per_iteration must be >= 0")


@dataclass(frozen=True)
class StructureInfo:
    """Application structure information.

    Parameters
    ----------
    total_units:
        Total work units (grid points, surface functions, events).
    iterations:
        Steps the application will run (1 for single-pass codes).
    io_bytes:
        Input/output volume moved at start/end.
    unifying_structure:
        Free-form tag for the data structure tying tasks together
        (``"2d-grid"``, ``"event-stream"``, ``"subdomain-pipeline"``).
    """

    total_units: float
    iterations: int = 1
    io_bytes: float = 0.0
    unifying_structure: str = ""

    def __post_init__(self) -> None:
        check_positive("total_units", self.total_units)
        check_positive("iterations", self.iterations)
        check_nonnegative("io_bytes", self.io_bytes)


@dataclass(frozen=True)
class HeterogeneousApplicationTemplate:
    """The complete HAT handed to an AppLeS agent."""

    name: str
    paradigm: str
    tasks: tuple[TaskCharacteristics, ...]
    communication: CommunicationCharacteristics
    structure: StructureInfo

    def __post_init__(self) -> None:
        check_in("paradigm", self.paradigm, PARADIGMS)
        if not self.tasks:
            raise ValueError("HAT must declare at least one task")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in HAT: {names}")

    def task(self, name: str) -> TaskCharacteristics:
        """Look up a task by name."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"HAT {self.name!r} has no task {name!r}")

    @property
    def total_flop(self) -> float:
        """Total MFLOP over all tasks for one pass over all units."""
        return self.structure.total_units * sum(t.flop_per_unit for t in self.tasks)

"""User Specifications (US).

"User Specifications provide information on the user's criteria for
performance, execution constraints, preferences for implementation, login
information, etc." (§4.1).  §3.5 stresses that user preferences "act as a
filter over the possible resources and implementations": the CLEO/NILE
researchers required a CORBA ORB on every processor; the 3D-REACT
developers wanted the CASA platform specifically.

This module is pure data plus the filter predicate; the Resource Selector
applies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resources import MachineInfo
from repro.util.validation import check_in

__all__ = ["UserSpecification", "PERFORMANCE_METRICS"]

#: Performance criteria the Estimator knows how to optimise (§3.1).
PERFORMANCE_METRICS = ("execution_time", "speedup", "cost")


@dataclass
class UserSpecification:
    """Constraints and preferences the user imposes on scheduling.

    Parameters
    ----------
    accessible_machines:
        Machines the user holds logins on; ``None`` means all machines in
        the pool.
    excluded_machines:
        Machines to never use (overrides accessibility).
    required_capabilities:
        Capability strings every selected machine must offer
        (e.g. ``{"corba-orb"}`` for NILE).
    preferred_sites:
        Sites to favour when ranking candidate sets (a soft preference:
        candidate sets drawn from preferred sites are tried first).
    performance_metric:
        One of :data:`PERFORMANCE_METRICS`.
    decomposition_preference:
        Decomposition families the Planner may consider; the paper's
        Jacobi2D user specified "only strip decompositions should be
        considered" (§5).
    max_machines:
        Upper bound on machines in a schedule (None = unlimited).
    cost_per_cpu_second:
        Mapping machine name → monetary cost rate, used by the cost metric;
        machines absent from the map cost 0.
    logins:
        Informational mapping machine → login id (carried, never
        interpreted — the Actuator of a real deployment would use it).
    """

    accessible_machines: frozenset[str] | None = None
    excluded_machines: frozenset[str] = frozenset()
    required_capabilities: frozenset[str] = frozenset()
    preferred_sites: tuple[str, ...] = ()
    performance_metric: str = "execution_time"
    decomposition_preference: tuple[str, ...] = ("strip",)
    max_machines: int | None = None
    cost_per_cpu_second: dict[str, float] = field(default_factory=dict)
    logins: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_in("performance_metric", self.performance_metric, PERFORMANCE_METRICS)
        if self.accessible_machines is not None:
            self.accessible_machines = frozenset(self.accessible_machines)
        self.excluded_machines = frozenset(self.excluded_machines)
        self.required_capabilities = frozenset(self.required_capabilities)
        if self.max_machines is not None and self.max_machines < 1:
            raise ValueError(f"max_machines must be >= 1, got {self.max_machines}")

    def permits(self, machine: MachineInfo) -> bool:
        """The §3.5 filter: may this machine appear in any schedule?"""
        if machine.name in self.excluded_machines:
            return False
        if (
            self.accessible_machines is not None
            and machine.name not in self.accessible_machines
        ):
            return False
        if not self.required_capabilities <= machine.capabilities:
            return False
        return True

    def site_preference_rank(self, site: str) -> int:
        """Rank of ``site`` in the preference list (lower = more preferred;
        unlisted sites rank after all listed ones)."""
        try:
            return self.preferred_sites.index(site)
        except ValueError:
            return len(self.preferred_sites)

"""Resource descriptors and the resource pool.

The AppLeS subsystems never touch simulator internals directly; they see a
:class:`ResourcePool` — the set of machines the user could possibly use,
with static descriptions (:class:`MachineInfo`) and dynamic queries routed
through the Network Weather Service when one is attached.  This mirrors the
paper's point that "the resources that will be required by an application
define its *system*" (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (nws imports core)
    from repro.nws.service import NetworkWeatherService

__all__ = ["MachineInfo", "ResourcePool"]


@dataclass(frozen=True)
class MachineInfo:
    """Static description of one candidate machine."""

    name: str
    speed_mflops: float
    memory_available_mb: float
    site: str
    arch: str
    dedicated: bool
    capabilities: frozenset[str]


class ResourcePool:
    """The machines and network available to one application.

    Parameters
    ----------
    topology:
        The metacomputer (simulated here; a deployment would wrap Globus or
        Legion resource queries behind the same interface).
    nws:
        Optional Network Weather Service.  Without it, dynamic queries fall
        back to nominal values — the information regime of a purely static
        scheduler, which the ablation benchmarks exploit.
    """

    def __init__(self, topology: Topology, nws: NetworkWeatherService | None = None) -> None:
        self.topology = topology
        self.nws = nws

    # -- static information ---------------------------------------------------
    def machine_names(self) -> list[str]:
        """All machine names, in registration order."""
        return list(self.topology.hosts)

    def machine_info(self, name: str) -> MachineInfo:
        """Static descriptor for one machine."""
        host = self.topology.host(name)
        return MachineInfo(
            name=host.name,
            speed_mflops=host.speed_mflops,
            memory_available_mb=host.memory.available_mb,
            site=host.site,
            arch=host.arch,
            dedicated=host.dedicated,
            capabilities=host.capabilities,
        )

    def machines(self) -> list[MachineInfo]:
        """Descriptors for every machine."""
        return [self.machine_info(n) for n in self.machine_names()]

    # -- dynamic information --------------------------------------------------
    def predicted_speed(self, name: str) -> float:
        """Forecast deliverable MFLOP/s (nominal when no NWS is attached)."""
        host = self.topology.host(name)
        if self.nws is None:
            return host.speed_mflops
        return self.nws.effective_speed_forecast(name)

    def predicted_availability(self, name: str) -> float:
        """Forecast availability fraction (1.0 when no NWS is attached)."""
        self.topology.host(name)  # validate
        if self.nws is None:
            return 1.0
        return max(0.0, min(1.0, self.nws.cpu_forecast(name).value))

    def predicted_availability_error(self, name: str) -> float:
        """RMS error estimate of the availability forecast (0.0 without NWS).

        This is the NWS ensemble's own running accuracy for the resource —
        the "short-term, accurate predictions" qualifier of §3.2 made
        quantitative.  Schedulers use it to discount volatile machines.
        """
        self.topology.host(name)  # validate
        if self.nws is None:
            return 0.0
        return max(0.0, self.nws.cpu_forecast(name).error)

    def predicted_speed_conservative(self, name: str, sigmas: float = 1.0) -> float:
        """Deliverable MFLOP/s at a pessimistic availability quantile.

        ``forecast - sigmas * error``, floored at a small positive fraction
        so a usable machine never vanishes outright.  A barrier-synchronised
        code pays for every dip of every member, so allocating at the mean
        forecast systematically under-provisions; allocating at a
        pessimistic quantile makes the balanced step time robust.
        """
        if sigmas < 0:
            raise ValueError(f"sigmas must be >= 0, got {sigmas}")
        host = self.topology.host(name)
        avail = self.predicted_availability(name)
        err = self.predicted_availability_error(name)
        pessimistic = max(avail - sigmas * err, 0.05 * avail)
        return host.speed_mflops * pessimistic

    def predicted_bandwidth(self, a: str, b: str, flows: int = 1) -> float:
        """Forecast bottleneck bytes/s between two machines.

        Nominal path bandwidth (availability 1) when no NWS is attached.
        """
        if a == b:
            return float("inf")
        if self.nws is not None:
            return self.nws.path_bandwidth_forecast(a, b, flows)
        links = self.topology.route(a, b)
        if not links:
            return float("inf")
        nominal = []
        for link in links:
            avail = max(link.load.availability(0.0), 1e-12)
            nominal.append(link.deliverable_bandwidth(0.0, flows) / avail)
        return min(nominal)

    def predicted_transfer_time(self, a: str, b: str, nbytes: float, flows: int = 1) -> float:
        """Forecast seconds to move ``nbytes`` between two machines."""
        if a == b or nbytes <= 0:
            return 0.0
        bw = self.predicted_bandwidth(a, b, flows)
        if bw <= 0.0:
            return float("inf")
        return self.topology.path_latency(a, b) + nbytes / bw

    def snapshot(self, machines: list[str] | None = None):
        """A frozen, memoising view of every forecast at this instant.

        Returns a :class:`repro.nws.snapshot.ForecastSnapshot`: bit-identical
        to querying this pool directly, but one capture shared across the
        thousands of candidate evaluations of a scheduling decision.
        """
        from repro.nws.snapshot import ForecastSnapshot  # local: nws imports core

        return ForecastSnapshot(self, machines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nws = "with NWS" if self.nws is not None else "no NWS"
        return f"ResourcePool({len(self.machine_names())} machines, {nws})"

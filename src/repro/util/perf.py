"""Performance fast-path switches.

The hot paths of the simulator (forecaster ensembles, NWS query caching,
bulk epoch generation, the engine's zero-delay queue, the vectorised
execution core) carry optimised implementations alongside the
straightforward reference code they replaced.  This module is the single
switch that selects between them:

- **fast path on** (the default) — incremental window statistics, memoised
  forecasts, batched RNG draws, compiled struct-of-arrays execution
  (:class:`repro.sim.execution_fast.CompiledExecution`);
- **fast path off** — the naive reference implementations, numerically
  identical to the original seed code.

Keeping both live serves three purposes: regression tests can assert the
optimised code agrees with the reference, benchmarks can measure the
speedup honestly, and a suspected fast-path bug can be ruled out in one
line (``REPRO_NO_FASTPATH=1``).

The switch is read at *construction* time by each component, so toggling
it mid-experiment only affects objects built afterwards.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = [
    "fastpath_enabled",
    "set_fastpath",
    "fastpath",
    "solo_vector_enabled",
    "set_solo_vector",
    "solo_vector",
]

_FASTPATH = os.environ.get("REPRO_NO_FASTPATH", "").strip().lower() not in (
    "1", "true", "yes", "on",
)

# The vectorised *solo* decision (one-shot candidate tensor sweep inside
# AppLeSAgent.schedule) has its own switch layered under the master one:
# REPRO_NO_SOLO_VECTOR=1 keeps the PR2 scalar fast path (snapshot scope +
# lower-bound pruning, candidates planned one at a time) while leaving
# every other optimisation on.  Benchmarks use it to measure the scalar
# and vectorised arms against each other honestly.
_SOLO_VECTOR = os.environ.get("REPRO_NO_SOLO_VECTOR", "").strip().lower() not in (
    "1", "true", "yes", "on",
)


def fastpath_enabled() -> bool:
    """Whether newly-constructed components should use optimised paths."""
    return _FASTPATH


def set_fastpath(enabled: bool) -> bool:
    """Set the global fast-path switch; returns the new value."""
    global _FASTPATH
    _FASTPATH = bool(enabled)
    return _FASTPATH


@contextmanager
def fastpath(enabled: bool):
    """Temporarily force the fast-path switch (for tests and benchmarks)."""
    previous = _FASTPATH
    set_fastpath(enabled)
    try:
        yield
    finally:
        set_fastpath(previous)


def solo_vector_enabled() -> bool:
    """Whether newly-constructed agents may vectorise their solo sweep.

    Only meaningful with the master fast path on: ``REPRO_NO_FASTPATH=1``
    disables the scalar fast path *and* this layer.
    """
    return _SOLO_VECTOR


def set_solo_vector(enabled: bool) -> bool:
    """Set the solo-vectorisation switch; returns the new value."""
    global _SOLO_VECTOR
    _SOLO_VECTOR = bool(enabled)
    return _SOLO_VECTOR


@contextmanager
def solo_vector(enabled: bool):
    """Temporarily force the solo-vectorisation switch."""
    previous = _SOLO_VECTOR
    set_solo_vector(enabled)
    try:
        yield
    finally:
        set_solo_vector(previous)

"""Seeded random-number streams.

Every stochastic component of the simulator (background load, sensor noise,
workload generators) draws from an explicitly seeded stream so that whole
experiments are reproducible bit-for-bit.  The helpers here wrap
:class:`numpy.random.Generator` with named sub-stream spawning so that two
components never share a stream by accident.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStream", "spawn_rng", "derive_seed"]


def _hash_name(name: str) -> int:
    """Map a stream name to a stable 64-bit integer.

    Python's built-in ``hash`` is salted per process, so we use BLAKE2 to get
    a stable mapping from names to seed material.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def derive_seed(seed: int, *key: object) -> int:
    """Derive an independent 63-bit seed for a task identified by ``key``.

    The parallel experiment runner hands every trial unit an explicit seed
    so that the result of a trial depends only on ``(master seed, task
    key)`` — never on which worker ran it or in what order.  Spawn-key
    hashing mirrors :func:`spawn_rng`: BLAKE2 over the master seed and each
    key part, with a separator so ``("ab",)`` and ``("a", "b")`` derive
    different seeds.

    >>> derive_seed(1996, "fig5", 1000, 0) == derive_seed(1996, "fig5", 1000, 0)
    True
    >>> derive_seed(1996, "fig5", 1000, 0) != derive_seed(1996, "fig5", 1000, 1)
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode("utf-8"))
    for part in key:
        h.update(b"\x1f")
        h.update(repr(part).encode("utf-8"))
    return int.from_bytes(h.digest(), "little") >> 1


def spawn_rng(seed: int, name: str = "") -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``(seed, name)``.

    The same ``(seed, name)`` pair always produces the same stream, and
    distinct names produce statistically independent streams.

    Parameters
    ----------
    seed:
        Experiment-level master seed.
    name:
        Component name, e.g. ``"load:alpha1"``.
    """
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF, _hash_name(name)])
    return np.random.Generator(np.random.PCG64(ss))


class RngStream:
    """A named, hierarchically-spawnable random stream.

    ``RngStream`` is a thin facade over :class:`numpy.random.Generator` that
    remembers its own seed and name, so components can both draw numbers and
    hand independent child streams to their own subcomponents.

    Examples
    --------
    >>> root = RngStream(seed=42)
    >>> load = root.child("load")
    >>> a = load.child("host:alpha1")
    >>> b = load.child("host:alpha2")
    >>> a.uniform() != b.uniform()
    True
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = str(name)
        self._gen = spawn_rng(self.seed, self.name)

    def child(self, name: str) -> "RngStream":
        """Spawn an independent child stream named ``self.name + '/' + name``."""
        return RngStream(self.seed, f"{self.name}/{name}")

    # -- convenience draws ------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform float in ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """Draw one normal float."""
        return float(self._gen.normal(mean, std))

    def exponential(self, scale: float = 1.0) -> float:
        """Draw one exponential float with the given scale (mean)."""
        return float(self._gen.exponential(scale))

    def integers(self, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq):
        """Pick one element of ``seq`` uniformly."""
        idx = int(self._gen.integers(0, len(seq)))
        return seq[idx]

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._gen.shuffle(seq)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator`."""
        return self._gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, name={self.name!r})"

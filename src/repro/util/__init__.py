"""Shared utilities for the AppLeS reproduction.

This subpackage is intentionally dependency-light: seeded random-number
helpers, summary statistics, ASCII table rendering for benchmark output,
and argument-validation helpers used across every other subpackage.
"""

from repro.util.ascii_plot import bar_chart, line_chart
from repro.util.rng import RngStream, spawn_rng
from repro.util.stats import (
    OnlineStats,
    confidence_interval,
    geometric_mean,
    mean_squared_error,
    summarize,
)
from repro.util.tables import Table, format_row, render_table
from repro.util.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_type,
)

__all__ = [
    "bar_chart",
    "line_chart",
    "RngStream",
    "spawn_rng",
    "OnlineStats",
    "confidence_interval",
    "geometric_mean",
    "mean_squared_error",
    "summarize",
    "Table",
    "format_row",
    "render_table",
    "check_fraction",
    "check_in",
    "check_nonnegative",
    "check_positive",
    "check_type",
]

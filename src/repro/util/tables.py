"""ASCII table rendering for the benchmark harness.

Every benchmark prints the rows/series the paper reports; these helpers keep
that output aligned and diff-friendly without pulling in a formatting
dependency.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["Table", "format_row", "render_table"]


def _fmt(value: Any, precision: int = 4) -> str:
    """Render one cell: floats get fixed significant digits, rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (value != 0 and abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_row(cells: Sequence[Any], widths: Sequence[int]) -> str:
    """Format one row with per-column widths, right-aligning numbers."""
    out = []
    for cell, width in zip(cells, widths):
        text = _fmt(cell)
        if isinstance(cell, (int, float)) and not isinstance(cell, bool):
            out.append(text.rjust(width))
        else:
            out.append(text.ljust(width))
    return "  ".join(out).rstrip()


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a complete table with a rule under the header.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row data; each row must have ``len(headers)`` cells.
    title:
        Optional title printed above the table.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers), widths))
    lines.append("  ".join("-" * w for w in widths))
    for raw in rows:
        lines.append(format_row(list(raw), widths))
    return "\n".join(lines)


class Table:
    """Accumulating table: add rows as an experiment sweeps, render at the end.

    Examples
    --------
    >>> t = Table(["n", "time"], title="demo")
    >>> t.add(1000, 2.5)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.headers = list(headers)
        self.title = title
        self.rows: list[list[Any]] = []

    def add(self, *cells: Any) -> None:
        """Append one row (must match the header width)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the accumulated rows."""
        return render_table(self.headers, self.rows, self.title)

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

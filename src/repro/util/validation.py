"""Argument-validation helpers.

The public API validates its inputs eagerly so misuse fails at the call site
with a clear message instead of deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_type",
    "check_in",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it as float."""
    v = float(value)
    if not v > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return v


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it as float."""
    v = float(value)
    if v < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return v


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it as float."""
    v = float(value)
    if not (0.0 <= v <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Require ``isinstance(value, expected)``; return it."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {exp}, got {type(value).__name__}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Require ``value in allowed``; return it."""
    allowed = list(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value

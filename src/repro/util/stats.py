"""Summary statistics used by the benchmark harness and the NWS forecasters."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "OnlineStats",
    "MeanCI",
    "confidence_interval",
    "geometric_mean",
    "mean_ci",
    "mean_squared_error",
    "mean_absolute_error",
    "summarize",
]


class OnlineStats:
    """Welford online mean/variance accumulator.

    Used by forecasters and sensors that cannot afford to keep their whole
    history; numerically stable for long streams.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        x = float(x)
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many observations."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Running mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        """Smallest observation seen (inf when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation seen (-inf when empty)."""
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(n={self.count}, mean={self.mean:.4g}, std={self.std:.4g})"


def confidence_interval(xs: Sequence[float], level: float = 0.95) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean of ``xs``.

    Returns ``(lo, hi)``.  With fewer than two samples the interval collapses
    to the single value.  The z-value is looked up for the common levels and
    computed from the inverse error function otherwise.
    """
    xs = np.asarray(list(xs), dtype=float)
    if xs.size == 0:
        raise ValueError("confidence_interval needs at least one sample")
    m = float(xs.mean())
    if xs.size < 2:
        return (m, m)
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    if level in z_table:
        z = z_table[level]
    else:
        # Inverse of the standard normal CDF via erfinv.
        from math import sqrt

        try:
            from scipy.special import erfinv  # type: ignore

            z = float(sqrt(2.0) * erfinv(level))
        except Exception:  # pragma: no cover - scipy is installed in CI
            z = 1.96
    half = z * float(xs.std(ddof=1)) / math.sqrt(xs.size)
    return (m - half, m + half)


@dataclass(frozen=True)
class MeanCI:
    """A mean with its confidence interval, as one reportable row.

    ``lo``/``hi`` bound the mean at ``level`` confidence by ``method``
    (``"normal"`` or ``"bootstrap"``).  With one sample or zero variance
    the interval collapses to the mean.
    """

    mean: float
    lo: float
    hi: float
    n: int
    level: float
    method: str

    @property
    def half_width(self) -> float:
        """Half the interval width (0.0 for a collapsed interval)."""
        return (self.hi - self.lo) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def mean_ci(
    xs: Sequence[float],
    level: float = 0.95,
    method: str = "normal",
    n_boot: int = 1000,
    seed: int = 0,
) -> MeanCI:
    """Mean of ``xs`` with a confidence interval.

    ``method="normal"`` uses the normal approximation of
    :func:`confidence_interval`; ``method="bootstrap"`` draws ``n_boot``
    seeded resamples (percentile interval), reproducible via the
    :func:`repro.util.rng.spawn_rng` substream ``(seed,
    "stats/bootstrap")`` so results are independent of call order.  Either
    way a
    single sample or zero variance collapses the interval to the mean,
    and an empty sample raises ``ValueError``.
    """
    vals = [float(x) for x in xs]
    if not vals:
        raise ValueError("mean_ci needs at least one sample")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    arr = np.asarray(vals, dtype=float)
    m = float(arr.mean())
    n = int(arr.size)
    if n < 2 or float(arr.std(ddof=1)) == 0.0:
        return MeanCI(m, m, m, n, level, method)
    if method == "normal":
        lo, hi = confidence_interval(vals, level)
    elif method == "bootstrap":
        from repro.util.rng import spawn_rng

        rng = spawn_rng(seed, "stats/bootstrap")
        idx = rng.integers(0, n, size=(int(n_boot), n))
        means = arr[idx].mean(axis=1)
        tail = (1.0 - level) / 2.0
        lo = float(np.quantile(means, tail))
        hi = float(np.quantile(means, 1.0 - tail))
    else:
        raise ValueError(f"unknown mean_ci method {method!r}")
    return MeanCI(m, float(lo), float(hi), n, level, method)


def geometric_mean(xs: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    xs = np.asarray(list(xs), dtype=float)
    if xs.size == 0:
        raise ValueError("geometric_mean needs at least one sample")
    if np.any(xs <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.log(xs).mean()))


def mean_squared_error(pred: Sequence[float], actual: Sequence[float]) -> float:
    """MSE between two equal-length sequences."""
    p = np.asarray(list(pred), dtype=float)
    a = np.asarray(list(actual), dtype=float)
    if p.shape != a.shape:
        raise ValueError("prediction/actual length mismatch")
    if p.size == 0:
        raise ValueError("mean_squared_error needs at least one sample")
    return float(np.mean((p - a) ** 2))


def mean_absolute_error(pred: Sequence[float], actual: Sequence[float]) -> float:
    """MAE between two equal-length sequences."""
    p = np.asarray(list(pred), dtype=float)
    a = np.asarray(list(actual), dtype=float)
    if p.shape != a.shape:
        raise ValueError("prediction/actual length mismatch")
    if p.size == 0:
        raise ValueError("mean_absolute_error needs at least one sample")
    return float(np.mean(np.abs(p - a)))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample, used in benchmark reports."""

    count: int
    mean: float
    std: float
    min: float
    median: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.min:.4g} med={self.median:.4g} max={self.max:.4g}"
        )


def summarize(xs: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``xs``."""
    arr = np.asarray(list(xs), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize needs at least one sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        median=float(np.median(arr)),
        max=float(arr.max()),
    )

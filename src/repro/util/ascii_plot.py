"""ASCII charts for benchmark output.

The paper's Figures 5 and 6 are line charts; the benchmark harness prints
terminal renderings of the same series so the *shape* (who wins, where
the knee is) is visible without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["bar_chart", "line_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bars scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    if not labels:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values):
        raise ValueError("bar_chart expects non-negative values")
    peak = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{str(label):>{label_w}}  {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: str = "",
    logy: bool = False,
) -> str:
    """Plot one or more series against shared x on a character grid.

    Each series gets a marker (``*``, ``o``, ``+``, ``x`` in order);
    ``logy`` uses a log10 vertical axis — the natural scale for the
    Figure 6 paging collapse.
    """
    if not series:
        raise ValueError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length mismatch with x")
    if len(x) < 2:
        raise ValueError("need at least two x points")
    markers = "*o+x@%"
    values = [v for ys in series.values() for v in ys]
    if logy:
        if any(v <= 0 for v in values):
            raise ValueError("logy requires strictly positive values")
        transform = math.log10
    else:
        def transform(v: float) -> float:
            return v
    lo = min(transform(v) for v in values)
    hi = max(transform(v) for v in values)
    span = hi - lo or 1.0
    x_lo, x_hi = min(x), max(x)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for xv, yv in zip(x, ys):
            col = round((xv - x_lo) / x_span * (width - 1))
            row = round((transform(yv) - lo) / span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [title] if title else []
    top_label = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    bot_label = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    lines.append(f"{top_label:>8} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{bot_label:>8} ┤" + "".join(grid[-1]))
    lines.append(" " * 8 + " └" + "─" * width)
    lines.append(" " * 10 + f"{x_lo:<10.6g}{'':^{max(0, width - 20)}}{x_hi:>10.6g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)

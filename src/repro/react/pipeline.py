"""Event-driven execution of the 3D-REACT pipeline.

Three concurrent processes on the discrete-event engine: the LHSF producer,
the network shipper, and the Log-D/ASY consumer, coupled by bounded
queues.  "While the Delta (Paragon) is calculating the first subdomain,
the C90 can start calculating the second subdomain" (§2.3) — the engine
realises exactly that overlap, plus the stall ("Log-D computations will
stop while they wait for more LHSF data") and buffering costs the paper
describes, so the analytic model in :mod:`repro.react.model` can be
validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.react.tasks import ReactProblem, react_hat
from repro.sim.engine import Signal, Simulator
from repro.sim.topology import Topology
from repro.util.validation import check_positive

__all__ = ["PipelineResult", "simulate_pipeline", "simulate_single_site"]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of a simulated pipeline run.

    Attributes
    ----------
    makespan_s:
        Wall-clock seconds from start to the last subdomain's ASY.
    subdomains:
        Number of subdomains that flowed through.
    producer_busy_s / consumer_busy_s:
        Seconds each endpoint spent computing (not waiting).
    consumer_stall_s:
        Seconds the Log-D end sat idle waiting for LHSF data — the paper's
        "too small a pipeline size" failure mode, made measurable.
    """

    makespan_s: float
    subdomains: int
    producer_busy_s: float
    consumer_busy_s: float
    consumer_stall_s: float


class _BoundedQueue:
    """A bounded FIFO for engine processes (put/get as sub-generators)."""

    def __init__(self, sim: Simulator, capacity: int, name: str) -> None:
        check_positive("capacity", capacity)
        self.sim = sim
        self.capacity = int(capacity)
        self.items: list[object] = []
        self.not_full = Signal(f"{name}:not_full")
        self.not_empty = Signal(f"{name}:not_empty")

    def put(self, item: object):
        """Generator: block until space, then enqueue."""
        while len(self.items) >= self.capacity:
            yield self.not_full
        self.items.append(item)
        self.not_empty.fire()

    def get(self):
        """Generator: block until an item exists, then dequeue and return it."""
        while not self.items:
            yield self.not_empty
        item = self.items.pop(0)
        self.not_full.fire()
        return item


def _task_rates(topology: Topology, problem: ReactProblem, lhsf_host: str, logd_host: str):
    """Resolve per-host effective rates from the HAT's implementations."""
    hat = react_hat(problem)
    lhsf_task = hat.task("LHSF")
    logd_task = hat.task("LogD-ASY")
    producer = topology.host(lhsf_host)
    consumer = topology.host(logd_host)
    lhsf_eff = lhsf_task.efficiency_on(producer.arch)
    logd_eff = logd_task.efficiency_on(consumer.arch)
    if lhsf_eff <= 0.0:
        raise ValueError(f"no LHSF implementation for architecture {producer.arch!r}")
    if logd_eff <= 0.0:
        raise ValueError(f"no Log-D implementation for architecture {consumer.arch!r}")
    return producer, consumer, lhsf_eff, logd_eff


def simulate_pipeline(
    topology: Topology,
    problem: ReactProblem,
    lhsf_host: str,
    logd_host: str,
    pipeline_size: int,
    buffer_capacity: int = 2,
    t0: float = 0.0,
) -> PipelineResult:
    """Run the full pipelined computation on the engine.

    Parameters
    ----------
    topology:
        Metacomputer carrying both hosts and the link between them.
    problem:
        The 3D-REACT instance.
    lhsf_host / logd_host:
        Machine names for the two task placements.
    pipeline_size:
        Surface functions per subdomain (must lie in the problem's range).
    buffer_capacity:
        Subdomain slots in each inter-stage queue.
    t0:
        Simulated start time.
    """
    k = int(pipeline_size)
    lo, hi = problem.pipeline_range
    if not (lo <= k <= hi):
        raise ValueError(f"pipeline size {k} outside admissible range [{lo}, {hi}]")
    producer, consumer, lhsf_eff, logd_eff = _task_rates(
        topology, problem, lhsf_host, logd_host
    )
    convert = producer.arch != consumer.arch

    # Subdomain sizes: full subdomains of k SFs, one remainder if needed.
    sizes: list[int] = []
    remaining = problem.surface_functions
    while remaining > 0:
        take = min(k, remaining)
        sizes.append(take)
        remaining -= take

    sim = Simulator()
    sim.now = float(t0)
    outq = _BoundedQueue(sim, buffer_capacity, "lhsf-out")
    inq = _BoundedQueue(sim, buffer_capacity, "logd-in")

    stats = {"producer_busy": 0.0, "consumer_busy": 0.0, "consumer_stall": 0.0,
             "finish": 0.0}

    def producer_proc():
        for _pass in range(problem.passes):
            for size in sizes:
                work = size * problem.lhsf_mflop_per_sf / lhsf_eff
                dt = producer.time_to_compute(work, sim.now) + problem.subdomain_startup_lhsf_s
                stats["producer_busy"] += dt
                yield dt
                yield from outq.put(size)

    def shipper_proc():
        total = len(sizes) * problem.passes
        for _ in range(total):
            size = yield from outq.get()
            dt = topology.transfer_time(
                lhsf_host, logd_host, size * problem.bytes_per_sf, sim.now
            )
            if convert:
                dt *= 1.0 + problem.conversion_overhead
            yield dt
            yield from inq.put(size)

    def consumer_proc():
        total = len(sizes) * problem.passes
        for _ in range(total):
            wait_start = sim.now
            size = yield from inq.get()
            stats["consumer_stall"] += sim.now - wait_start
            work = size * (problem.logd_mflop_per_sf + problem.asy_mflop_per_sf) / logd_eff
            dt = (
                consumer.time_to_compute(work, sim.now)
                + problem.subdomain_startup_logd_s
                + problem.buffer_cost_s_per_sf_per_k * size * size
            )
            stats["consumer_busy"] += dt
            yield dt
        stats["finish"] = sim.now

    procs = [
        sim.process(producer_proc(), "lhsf"),
        sim.process(shipper_proc(), "ship"),
        sim.process(consumer_proc(), "logd"),
    ]
    sim.run_until_done(procs)

    return PipelineResult(
        makespan_s=stats["finish"] - t0,
        subdomains=len(sizes) * problem.passes,
        producer_busy_s=stats["producer_busy"],
        consumer_busy_s=stats["consumer_busy"],
        consumer_stall_s=stats["consumer_stall"],
    )


def simulate_single_site(
    topology: Topology, problem: ReactProblem, host: str, t0: float = 0.0
) -> float:
    """Wall-clock seconds to run both phases serially on one machine.

    The single-site reference for the §2.3 comparison: all LHSFs, then all
    Log-D/ASY, at the host's own implementation efficiencies, no transfer.
    """
    producer, consumer, lhsf_eff, logd_eff = _task_rates(topology, problem, host, host)
    t = float(t0)
    for _ in range(problem.passes):
        t += producer.time_to_compute(problem.total_lhsf_mflop / lhsf_eff, t)
        t += consumer.time_to_compute(problem.total_logd_mflop / logd_eff, t)
    return t - t0

"""The dual Log-D phase — §2.3's "another version of the application".

"More than one set of LogD derivations can be computed for one set of
surface functions.  Another version of the application directs the C90 to
calculate a second set of Log-D iterations instead of stopping after the
final test for convergence by ASY. ... This second phase in which both
the Cray and the Paragon are executing Log-D propagations would have no
interprocessor communication since after the last surface function is
calculated, both machines have a full set of LHSFs stored in their
respective memories."

This module implements that version: pass 1 is the ordinary pipeline;
every subsequent Log-D pass is *time-balanced across both machines* with
zero communication (each runs its own architecture's Log-D implementation
over its share of the energy set).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.planner import balance_divisible_work
from repro.react.pipeline import simulate_pipeline
from repro.react.tasks import ReactProblem, react_hat
from repro.sim.topology import Topology
from repro.util.tables import Table
from repro.util.validation import check_positive

__all__ = ["DualPhaseResult", "simulate_dual_phase", "compare_versions"]


@dataclass(frozen=True)
class DualPhaseResult:
    """Timing of the dual-phase version.

    Attributes
    ----------
    pipeline_s:
        Pass 1 (LHSF→Log-D pipeline) makespan.
    extra_phase_s:
        Per extra Log-D pass: both machines propagating concurrently with
        no communication.
    total_s:
        Pipeline + all extra passes.
    lhsf_share / logd_share:
        Fraction of each extra pass's Log-D work placed on the LHSF-side
        machine vs the Log-D-side machine.
    """

    pipeline_s: float
    extra_phase_s: float
    extra_passes: int
    total_s: float
    lhsf_share: float
    logd_share: float


def _logd_rate(topology: Topology, problem: ReactProblem, host: str) -> float:
    """Deliverable Log-D MFLOP/s of ``host`` for this problem."""
    hat = react_hat(problem)
    machine = topology.host(host)
    eff = hat.task("LogD-ASY").efficiency_on(machine.arch)
    if eff <= 0.0:
        raise ValueError(f"no Log-D implementation for architecture {machine.arch!r}")
    return machine.speed_mflops * eff


def simulate_dual_phase(
    topology: Topology,
    problem: ReactProblem,
    lhsf_host: str,
    logd_host: str,
    pipeline_size: int,
    extra_logd_passes: int = 1,
) -> DualPhaseResult:
    """Pipeline pass + ``extra_logd_passes`` communication-free Log-D passes.

    Each extra pass's Log-D work is time-balanced across both machines
    (both hold all LHSFs after pass 1), using each machine's own Log-D
    implementation efficiency — the C90's vector Log-D next to the
    Paragon's message-passing one.
    """
    check_positive("extra_logd_passes", extra_logd_passes)
    single_pass = ReactProblem(**{**problem.__dict__, "passes": 1})
    pipe = simulate_pipeline(
        topology, single_pass, lhsf_host, logd_host, pipeline_size
    )

    rate_a = _logd_rate(topology, single_pass, lhsf_host)
    rate_b = _logd_rate(topology, single_pass, logd_host)
    total_work = single_pass.total_logd_mflop
    balance = balance_divisible_work([rate_a, rate_b], [0.0, 0.0], total_work)
    assert balance is not None  # no capacities involved
    extra = balance.makespan

    return DualPhaseResult(
        pipeline_s=pipe.makespan_s,
        extra_phase_s=extra,
        extra_passes=int(extra_logd_passes),
        total_s=pipe.makespan_s + extra * extra_logd_passes,
        lhsf_share=balance.allocations[0] / total_work,
        logd_share=balance.allocations[1] / total_work,
    )


def compare_versions(
    topology: Topology,
    problem: ReactProblem,
    lhsf_host: str,
    logd_host: str,
    pipeline_size: int,
    extra_logd_passes: int = 1,
) -> Table:
    """The §2.3 comparison: repeat-the-pipeline vs the dual-phase version.

    The baseline for ``1 + k`` total Log-D sets is running the whole
    pipeline ``1 + k`` times (the original version re-derives the LHSFs);
    the dual-phase version derives them once and propagates concurrently.
    """
    total_passes = 1 + int(extra_logd_passes)
    repeated = ReactProblem(**{**problem.__dict__, "passes": total_passes})
    base = simulate_pipeline(topology, repeated, lhsf_host, logd_host, pipeline_size)
    dual = simulate_dual_phase(
        topology, problem, lhsf_host, logd_host, pipeline_size, extra_logd_passes
    )

    t = Table(
        ["version", "wall clock (h)", "notes"],
        title=(
            f"REACT-T3 — {total_passes} Log-D sets: repeated pipeline vs "
            "dual-phase (§2.3 'another version')"
        ),
    )
    t.add("repeat full pipeline", base.makespan_s / 3600,
          f"{base.subdomains} subdomains shipped")
    t.add("dual Log-D phase", dual.total_s / 3600,
          f"extra pass split {dual.lhsf_share:.0%}/{dual.logd_share:.0%}, no comm")
    return t

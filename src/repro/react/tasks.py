"""3D-REACT problem and task definitions.

The decomposition (§2.2): **LHSF** generates local hyperspherical surface
functions; **Log-D** propagates logarithmic derivatives using LHSF output;
**ASY** analyses the Log-D matrices and decides whether another full pass
is required.  ASY is "not computationally intensive" and is grouped with
Log-D, as in the paper's distributed implementation.

The key scheduling fact (§2.3): "the algorithm implemented by a task is
optimized for the machine to which it has been assigned" — the C90's
vectorised LHSF is far faster than anything the Paragon can do for that
task, and vice versa for the message-passing Log-D.  We encode this as
per-architecture efficiencies on nominal machine rates, calibrated so that
either machine alone needs ≥16 h while the pipelined pair finishes in
under 5 h, the paper's reported shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["ReactProblem", "react_hat", "LHSF_EFFICIENCY", "LOGD_EFFICIENCY"]

#: Per-architecture efficiency of the LHSF implementations.  The dense
#: sequential eigensolves vectorise superbly on the C90 but parallelise
#: terribly across Paragon nodes at subdomain granularity.
LHSF_EFFICIENCY: dict[str, float] = {"c90": 0.45, "paragon": 0.05}

#: Per-architecture efficiency of the Log-D implementations.  The paper
#: notes the C90 Log-D is "optimized for vector execution ... different
#: than the implementation that the Paragon uses" — both are good, the
#: Paragon's aggregate rate simply dwarfs one C90 CPU.
LOGD_EFFICIENCY: dict[str, float] = {"c90": 0.85, "paragon": 0.77}


@dataclass(frozen=True)
class ReactProblem:
    """One full 3D-REACT computation.

    Parameters
    ----------
    surface_functions:
        Total local hyperspherical surface functions to compute (the work
        units flowing through the pipeline).
    lhsf_mflop_per_sf:
        MFLOP per surface function for the LHSF stage.
    logd_mflop_per_sf:
        MFLOP per surface function for Log-D (dominant stage).
    asy_mflop_per_sf:
        MFLOP per surface function for ASY (small; runs with Log-D).
    bytes_per_sf:
        LHSF output bytes shipped per surface function.
    subdomain_startup_lhsf_s / subdomain_startup_logd_s:
        Fixed per-subdomain overheads (context setup, message assembly) —
        the cost that makes *tiny* pipeline sizes bad.
    buffer_cost_s_per_sf_per_k:
        Buffering cost coefficient γ: a subdomain of k surface functions
        costs an extra γ·k² on the Log-D end (working-set/copy pressure) —
        the cost that makes *huge* pipeline sizes bad (§2.3's tradeoff).
    conversion_overhead:
        Fractional transfer-time overhead for data-format conversion when
        producer and consumer architectures differ (Cray floating point →
        IEEE, §2.3).
    pipeline_range:
        Admissible pipeline sizes in surface functions — "5 to 20 surface
        functions per subdomain" (§2.3).
    passes:
        Full LHSF+LogD passes the ASY termination test demands (1 = the
        computation converges after the first sweep).
    """

    surface_functions: int = 960
    lhsf_mflop_per_sf: float = 7600.0
    logd_mflop_per_sf: float = 40600.0
    asy_mflop_per_sf: float = 150.0
    bytes_per_sf: float = 25e6
    subdomain_startup_lhsf_s: float = 5.0
    subdomain_startup_logd_s: float = 1.0
    buffer_cost_s_per_sf_per_k: float = 0.0625
    conversion_overhead: float = 0.30
    pipeline_range: tuple[int, int] = (5, 20)
    passes: int = 1

    def __post_init__(self) -> None:
        check_positive("surface_functions", self.surface_functions)
        check_positive("lhsf_mflop_per_sf", self.lhsf_mflop_per_sf)
        check_positive("logd_mflop_per_sf", self.logd_mflop_per_sf)
        check_nonnegative("asy_mflop_per_sf", self.asy_mflop_per_sf)
        check_nonnegative("bytes_per_sf", self.bytes_per_sf)
        check_nonnegative("subdomain_startup_lhsf_s", self.subdomain_startup_lhsf_s)
        check_nonnegative("subdomain_startup_logd_s", self.subdomain_startup_logd_s)
        check_nonnegative("buffer_cost_s_per_sf_per_k", self.buffer_cost_s_per_sf_per_k)
        check_nonnegative("conversion_overhead", self.conversion_overhead)
        lo, hi = self.pipeline_range
        if lo < 1 or hi < lo:
            raise ValueError(f"invalid pipeline_range {self.pipeline_range}")
        check_positive("passes", self.passes)

    @property
    def total_lhsf_mflop(self) -> float:
        """All LHSF work for one pass."""
        return self.surface_functions * self.lhsf_mflop_per_sf

    @property
    def total_logd_mflop(self) -> float:
        """All Log-D (+ASY) work for one pass."""
        return self.surface_functions * (self.logd_mflop_per_sf + self.asy_mflop_per_sf)

    def subdomain_count(self, pipeline_size: int) -> int:
        """Subdomains for a given pipeline size (last one may be short)."""
        if pipeline_size < 1:
            raise ValueError("pipeline_size must be >= 1")
        return -(-self.surface_functions // pipeline_size)


def react_hat(problem: ReactProblem) -> HeterogeneousApplicationTemplate:
    """Build the 3D-REACT Heterogeneous Application Template.

    Two placeable tasks (LHSF, LogD+ASY) with architecture-specific
    implementations, coupled by a pipeline whose admissible unit size is
    the HAT's pipeline-size range.
    """
    return HeterogeneousApplicationTemplate(
        name="3d-react",
        paradigm="pipeline",
        tasks=(
            TaskCharacteristics(
                name="LHSF",
                flop_per_unit=problem.lhsf_mflop_per_sf,
                bytes_per_unit=problem.bytes_per_sf,
                implementations=dict(LHSF_EFFICIENCY),
                divisible=False,
            ),
            TaskCharacteristics(
                name="LogD-ASY",
                flop_per_unit=problem.logd_mflop_per_sf + problem.asy_mflop_per_sf,
                bytes_per_unit=problem.bytes_per_sf,
                implementations=dict(LOGD_EFFICIENCY),
                divisible=False,
            ),
        ),
        communication=CommunicationCharacteristics(
            pattern="pipeline",
            pipeline_unit_bytes=problem.bytes_per_sf,
            pipeline_size_range=problem.pipeline_range,
            conversion_overhead=problem.conversion_overhead,
        ),
        structure=StructureInfo(
            total_units=float(problem.surface_functions),
            iterations=problem.passes,
            unifying_structure="subdomain-pipeline",
        ),
    )

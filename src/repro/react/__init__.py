"""3D-REACT: the paper's task-parallel metacomputer application (§2.2–2.3).

3D-REACT computes quantum-mechanical reaction dynamics for
H + D₂ → HD + D by solving a six-dimensional Schrödinger equation,
decomposed into three tasks: local hyperspherical surface functions
(LHSF), logarithmic-derivative propagation (Log-D), and asymptotic
analysis (ASY, grouped with Log-D).  The metacomputer implementation
pipelines subdomains of 5–20 surface functions from the SDSC C90 (whose
vector LHSF implementation is fast) to the CalTech Delta/Paragon (whose
parallel Log-D implementation is fast), overlapping computation and
communication.  The paper reports ≥16 h wall-clock on either machine
alone versus just under 5 h distributed.

Modules:

- :mod:`repro.react.tasks` — task and problem definitions with
  per-architecture implementations,
- :mod:`repro.react.model` — the analytic pipeline performance model the
  developers used to pick the pipeline size,
- :mod:`repro.react.pipeline` — event-driven pipeline execution on the
  simulator,
- :mod:`repro.react.apples` — the 3D-REACT AppLeS agent (machine-pair and
  pipeline-size selection).
"""

from repro.react.apples import ReactPlanner, make_react_agent
from repro.react.dual_phase import (
    DualPhaseResult,
    compare_versions,
    simulate_dual_phase,
)
from repro.react.model import PipelineEstimate, ReactPerformanceModel
from repro.react.pipeline import PipelineResult, simulate_pipeline, simulate_single_site
from repro.react.tasks import ReactProblem, react_hat

__all__ = [
    "DualPhaseResult",
    "simulate_dual_phase",
    "compare_versions",
    "ReactProblem",
    "react_hat",
    "ReactPerformanceModel",
    "PipelineEstimate",
    "simulate_pipeline",
    "simulate_single_site",
    "PipelineResult",
    "ReactPlanner",
    "make_react_agent",
]

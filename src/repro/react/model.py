"""Analytic performance model for the 3D-REACT pipeline.

"To capture this tradeoff, the developers derived a performance model that
calculated the correct pipeline size based on the speeds of the endpoint
machines and the intervening communication link" (§2.3).  This module *is*
that model: per-subdomain stage times for LHSF, transfer and Log-D, a
classic three-stage pipeline makespan, and the pipeline-size optimisation
over the admissible range.

For ``m`` subdomains with stage times ``t_L``, ``t_X``, ``t_D``:

    ``T(k) = t_L + t_X + t_D + (m - 1) * max(t_L, t_X, t_D)``

The tradeoff the paper describes appears as: small ``k`` multiplies the
per-subdomain startup overheads across many subdomains ("Log-D
computations will stop while they wait for more LHSF data"); large ``k``
pays the quadratic buffering cost on the Log-D end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.react.tasks import ReactProblem
from repro.util.validation import check_positive

__all__ = ["PipelineEstimate", "ReactPerformanceModel"]


@dataclass(frozen=True)
class PipelineEstimate:
    """Model output for one candidate configuration.

    Attributes
    ----------
    pipeline_size:
        Surface functions per subdomain.
    makespan_s:
        Predicted wall-clock seconds for all passes.
    stage_lhsf_s / stage_transfer_s / stage_logd_s:
        Per-subdomain stage times at this pipeline size.
    bottleneck:
        Name of the limiting stage.
    """

    pipeline_size: int
    makespan_s: float
    stage_lhsf_s: float
    stage_transfer_s: float
    stage_logd_s: float

    @property
    def bottleneck(self) -> str:
        stages = {
            "LHSF": self.stage_lhsf_s,
            "transfer": self.stage_transfer_s,
            "LogD": self.stage_logd_s,
        }
        return max(stages, key=stages.get)  # type: ignore[arg-type]


class ReactPerformanceModel:
    """The developers' analytic model, parameterised by endpoint rates.

    Parameters
    ----------
    problem:
        The 3D-REACT instance.
    lhsf_rate_mflops:
        Deliverable MFLOP/s of the LHSF machine *for LHSF* (nominal rate ×
        implementation efficiency × availability forecast).
    logd_rate_mflops:
        Deliverable MFLOP/s of the Log-D machine for Log-D (+ASY).
    link_bandwidth_Bps:
        Deliverable bytes/s of the intervening link.
    link_latency_s:
        One-way latency of the link.
    convert:
        Whether endpoint architectures differ (applies the conversion
        overhead to transfers).
    """

    def __init__(
        self,
        problem: ReactProblem,
        lhsf_rate_mflops: float,
        logd_rate_mflops: float,
        link_bandwidth_Bps: float,
        link_latency_s: float = 0.0,
        convert: bool = True,
    ) -> None:
        self.problem = problem
        self.lhsf_rate = check_positive("lhsf_rate_mflops", lhsf_rate_mflops)
        self.logd_rate = check_positive("logd_rate_mflops", logd_rate_mflops)
        self.link_bandwidth = check_positive("link_bandwidth_Bps", link_bandwidth_Bps)
        if link_latency_s < 0:
            raise ValueError("link_latency_s must be >= 0")
        self.link_latency = link_latency_s
        self.convert = convert

    # -- per-subdomain stage times ------------------------------------------
    def lhsf_stage(self, k: int) -> float:
        """Seconds for LHSF to produce one k-SF subdomain."""
        p = self.problem
        return p.subdomain_startup_lhsf_s + k * p.lhsf_mflop_per_sf / self.lhsf_rate

    def transfer_stage(self, k: int) -> float:
        """Seconds to ship one subdomain, including format conversion."""
        p = self.problem
        raw = self.link_latency + k * p.bytes_per_sf / self.link_bandwidth
        if self.convert:
            raw *= 1.0 + p.conversion_overhead
        return raw

    def logd_stage(self, k: int) -> float:
        """Seconds for Log-D/ASY to consume one subdomain (with buffering cost)."""
        p = self.problem
        compute = k * (p.logd_mflop_per_sf + p.asy_mflop_per_sf) / self.logd_rate
        buffering = p.buffer_cost_s_per_sf_per_k * k * k
        return p.subdomain_startup_logd_s + compute + buffering

    # -- makespan ------------------------------------------------------------
    def estimate(self, pipeline_size: int) -> PipelineEstimate:
        """Predicted makespan at one pipeline size (all passes)."""
        k = int(pipeline_size)
        lo, hi = self.problem.pipeline_range
        if not (lo <= k <= hi):
            raise ValueError(f"pipeline size {k} outside admissible range [{lo}, {hi}]")
        m = self.problem.subdomain_count(k)
        t_l = self.lhsf_stage(k)
        t_x = self.transfer_stage(k)
        t_d = self.logd_stage(k)
        per_pass = t_l + t_x + t_d + (m - 1) * max(t_l, t_x, t_d)
        return PipelineEstimate(
            pipeline_size=k,
            makespan_s=per_pass * self.problem.passes,
            stage_lhsf_s=t_l,
            stage_transfer_s=t_x,
            stage_logd_s=t_d,
        )

    def sweep(self) -> list[PipelineEstimate]:
        """Estimates for every admissible pipeline size."""
        lo, hi = self.problem.pipeline_range
        return [self.estimate(k) for k in range(lo, hi + 1)]

    def optimal(self) -> PipelineEstimate:
        """The pipeline size with the smallest predicted makespan."""
        return min(self.sweep(), key=lambda e: e.makespan_s)

    # -- single-site reference -------------------------------------------------
    @staticmethod
    def single_site_time(
        problem: ReactProblem, lhsf_rate_mflops: float, logd_rate_mflops: float
    ) -> float:
        """Wall-clock seconds to run both phases serially on one machine.

        No transfer, no conversion, no pipeline overheads — but both tasks
        run at the machine's own (asymmetric) efficiencies, which is what
        makes each single-site run slow.
        """
        check_positive("lhsf_rate_mflops", lhsf_rate_mflops)
        check_positive("logd_rate_mflops", logd_rate_mflops)
        return problem.passes * (
            problem.total_lhsf_mflop / lhsf_rate_mflops
            + problem.total_logd_mflop / logd_rate_mflops
        )

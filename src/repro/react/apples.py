"""The 3D-REACT AppLeS agent.

"An AppLeS agent for 3D-REACT would behave as follows: ... the Resource
Selector would determine viable pairs of resources for the application ...
For each viable resource pair, the Planner would identify a candidate
schedule using the selected model, parameterized by forecasts of network
and machine load from the Network Weather Service. ... the performance
model calculates the transfer unit size between LHSF and Log-D which
yields the necessary overlap" (§4.2).

:class:`ReactPlanner` implements exactly that: for a candidate resource
set it considers every placement of (LHSF, LogD) on an ordered pair of
members (including both on one machine — the single-site schedule),
parameterises the analytic model with forecast rates and link bandwidth,
optimises the pipeline size, and returns the best placement as a Schedule.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

from repro.core.coordinator import AppLeSAgent
from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.schedule import Allocation, Schedule
from repro.core.selector import ResourceSelector
from repro.core.userspec import UserSpecification
from repro.nws.service import NetworkWeatherService
from repro.react.model import ReactPerformanceModel
from repro.react.tasks import ReactProblem, react_hat
from repro.sim.testbeds import Testbed

__all__ = ["ReactPlanner", "make_react_agent"]


class ReactPlanner:
    """Plan 3D-REACT on a candidate resource set.

    Placements considered: every ordered pair (LHSF machine, LogD machine)
    of set members whose architectures have implementations of the
    respective tasks, plus every single machine running both phases
    serially.
    """

    def __init__(self, problem: ReactProblem) -> None:
        self.problem = problem

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        machines = list(resource_set)
        hat = info.hat
        lhsf_task = hat.task("LHSF")
        logd_task = hat.task("LogD-ASY")
        best: Schedule | None = None

        for lhsf_m, logd_m in product(machines, machines):
            lhsf_info = info.pool.machine_info(lhsf_m)
            logd_info = info.pool.machine_info(logd_m)
            lhsf_eff = lhsf_task.efficiency_on(lhsf_info.arch)
            logd_eff = logd_task.efficiency_on(logd_info.arch)
            if lhsf_eff <= 0.0 or logd_eff <= 0.0:
                continue
            lhsf_rate = info.pool.predicted_speed(lhsf_m) * lhsf_eff
            logd_rate = info.pool.predicted_speed(logd_m) * logd_eff
            if lhsf_rate <= 0.0 or logd_rate <= 0.0:
                continue
            candidate = (
                self._single_site(lhsf_m, lhsf_rate, logd_rate)
                if lhsf_m == logd_m
                else self._pipelined(info, lhsf_m, logd_m, lhsf_rate, logd_rate,
                                     lhsf_info.arch != logd_info.arch)
            )
            if candidate is None:
                continue
            if best is None or candidate.predicted_time < best.predicted_time:
                best = candidate
        return best

    def _single_site(self, machine: str, lhsf_rate: float, logd_rate: float) -> Schedule:
        predicted = ReactPerformanceModel.single_site_time(
            self.problem, lhsf_rate, logd_rate
        )
        n = float(self.problem.surface_functions)
        return Schedule(
            allocations=[
                Allocation(machine=machine, task="LHSF", work_units=n),
                Allocation(machine=machine, task="LogD-ASY", work_units=n),
            ],
            predicted_time=predicted,
            decomposition="single-site",
            metadata={"problem": self.problem, "lhsf_host": machine,
                      "logd_host": machine, "pipeline_size": None},
        )

    def _pipelined(
        self,
        info: InformationPool,
        lhsf_m: str,
        logd_m: str,
        lhsf_rate: float,
        logd_rate: float,
        convert: bool,
    ) -> Schedule | None:
        bandwidth = info.pool.predicted_bandwidth(lhsf_m, logd_m)
        if bandwidth <= 0.0 or bandwidth == float("inf"):
            return None
        latency = info.pool.topology.path_latency(lhsf_m, logd_m)
        model = ReactPerformanceModel(
            self.problem,
            lhsf_rate_mflops=lhsf_rate,
            logd_rate_mflops=logd_rate,
            link_bandwidth_Bps=bandwidth,
            link_latency_s=latency,
            convert=convert,
        )
        estimate = model.optimal()
        n = float(self.problem.surface_functions)
        per_step_bytes = estimate.pipeline_size * self.problem.bytes_per_sf
        return Schedule(
            allocations=[
                Allocation(machine=lhsf_m, task="LHSF", work_units=n,
                           comm_bytes={logd_m: per_step_bytes}),
                Allocation(machine=logd_m, task="LogD-ASY", work_units=n),
            ],
            predicted_time=estimate.makespan_s,
            decomposition="pipeline",
            metadata={
                "problem": self.problem,
                "lhsf_host": lhsf_m,
                "logd_host": logd_m,
                "pipeline_size": estimate.pipeline_size,
                "estimate": estimate,
            },
        )


def make_react_agent(
    testbed: Testbed,
    problem: ReactProblem,
    nws: NetworkWeatherService | None = None,
    userspec: UserSpecification | None = None,
) -> AppLeSAgent:
    """Assemble the 3D-REACT AppLeS agent for a testbed (CASA by default).

    The selector limit is small — viable resource sets for a two-task
    pipeline are pairs — so exhaustive enumeration is always used.
    """
    pool = ResourcePool(testbed.topology, nws)
    us = userspec if userspec is not None else UserSpecification(max_machines=2)
    info = InformationPool(pool=pool, hat=react_hat(problem), userspec=us)
    planner = ReactPlanner(problem)
    info.register_model("react-pipeline", ReactPerformanceModel)
    return AppLeSAgent(info, planner=planner, selector=ResourceSelector())

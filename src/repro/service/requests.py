"""Request/answer types for the batched scheduling service.

A :class:`DecisionRequest` is what one AppLeS agent would need to make a
decision — the application (problem), the user (specification), the memory
policy, and the instant the decision is taken.  A :class:`ServiceAnswer`
carries exactly the observable outcome of a solo
:meth:`~repro.core.coordinator.AppLeSAgent.schedule` call: the chosen
schedule, its objective, and the candidate-search statistics.  The service
contract is that every answer is **bit-identical** to what the request's
own agent would have decided alone at the same instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Hashable

from repro.core.coordinator import PruningStats, ScheduleDecision
from repro.core.schedule import Schedule
from repro.core.userspec import UserSpecification
from repro.jacobi.grid import JacobiProblem

__all__ = ["DecisionRequest", "ServiceAnswer"]


def _freeze(value: Any) -> Hashable:
    """A hashable, order-stable image of a User Specification field."""
    if isinstance(value, (frozenset, set)):
        return tuple(sorted(value))
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    if isinstance(value, list):
        return tuple(value)
    return value


@dataclass
class DecisionRequest:
    """One application's ask: "schedule me, at this instant".

    Attributes
    ----------
    problem:
        The Jacobi2D instance to schedule.
    userspec:
        The requesting user's specifications (filters, metric,
        decomposition preference).  Defaults to the permissive default.
    account_memory:
        Whether the agent models real-memory capacities (the paper's
        default).
    at:
        Simulated time of the decision.  The service advances the shared
        NWS monotonically; requests are answered grouped by instant.
    """

    problem: JacobiProblem
    userspec: UserSpecification = field(default_factory=UserSpecification)
    account_memory: bool = True
    at: float = 0.0

    def config_key(self) -> Hashable:
        """Agents are interchangeable across requests with equal keys.

        Two requests at the same instant with the same key would build
        value-identical agents, so the service answers them once.  The key
        covers every field the agent construction reads (``UserSpecification``
        is mutable, hence the frozen field-by-field image).
        """
        spec = tuple(
            (f.name, _freeze(getattr(self.userspec, f.name)))
            for f in fields(self.userspec)
        )
        return (self.problem, spec, self.account_memory)


@dataclass
class ServiceAnswer:
    """The service's reply for one request — a solo decision's observables.

    ``best``/``best_objective``/``metric``/``pruning`` mirror the fields of
    :class:`~repro.core.coordinator.ScheduleDecision`; the differential
    test harness compares them field-for-field (machines, strip rows,
    predicted times, and the evaluation count after pruning) against a
    sequential ``AppLeSAgent.schedule()`` run.
    """

    best: Schedule
    best_objective: float
    metric: str
    pruning: PruningStats
    at: float

    @classmethod
    def from_decision(cls, decision: ScheduleDecision, at: float) -> "ServiceAnswer":
        """Wrap a full Coordinator decision (the sequential/oracle path)."""
        return cls(
            best=decision.best,
            best_objective=decision.best_objective,
            metric=decision.metric,
            pruning=decision.pruning,
            at=at,
        )

    @property
    def machines(self) -> tuple[str, ...]:
        """The chosen schedule's machines, in strip order."""
        return self.best.resource_set

    @property
    def predicted_time(self) -> float:
        """The chosen schedule's risk-adjusted predicted time."""
        return self.best.predicted_time

    @property
    def strip_rows(self) -> tuple[int, ...]:
        """Grid rows per strip of the chosen partition (when strip-shaped)."""
        partition = self.best.metadata.get("partition")
        strips = getattr(partition, "strips", None)
        if strips is None:
            return ()
        return tuple(s.row_count for s in strips)

    @property
    def evaluations_planned(self) -> int:
        """Candidates actually planned (after lower-bound pruning)."""
        return self.pruning.planned

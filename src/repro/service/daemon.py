"""The always-on sharded scheduling daemon.

The batch :class:`~repro.service.core.SchedulingService` answers one
hand-assembled request list and returns; production decision traffic does
not arrive hand-assembled.  Modeled on the DSN Scheduling Engine's
"distributed system of servers", the :class:`SchedulingDaemon` is the
long-lived layer in between: callers :meth:`~SchedulingDaemon.submit`
individual :class:`~repro.service.requests.DecisionRequest`\\ s and get a
:class:`Ticket` back immediately; per-pool *shards* pull queued requests,
coalesce them into micro-batches, and answer them through one reusing
``SchedulingService`` each.

Three mechanisms carry the load story:

- **Admission control and backpressure.**  Every shard queue is bounded.
  A request that would overflow its queue is *shed* — the ticket resolves
  at once with :data:`DaemonReply.status` ``"shed"`` — rather than
  silently blocking the caller.  Requests behind the shard's simulated
  clock (the shared NWS cannot rewind) or submitted after shutdown are
  *rejected* with an explanatory reason.  Saturation is an explicit,
  observable answer, never a hang.

- **Adaptive micro-batching.**  Batch ≥ 32 is where the vectorised
  service core earns its ~5× decisions/sec, so the :class:`MicroBatcher`
  tries to keep batches full *without* inflating tail latency: a dispatch
  is delayed only while the observed arrival rate says the wait will
  actually buy batch-mates, and never longer than ``max_linger_s``.
  Under saturation the queue outruns the service and batches fill for
  free; at low rates the policy degenerates to dispatch-immediately.

- **Cross-request state reuse.**  Each shard's service runs with
  ``reuse=True``: the :class:`~repro.nws.snapshot.ForecastSnapshot`,
  per-configuration staging, :class:`~repro.core.infopool.DecisionCache`
  memos and whole answers persist across batches *keyed by pool state*,
  invalidated through :attr:`ForecastSnapshot.stale` the moment the
  shard's NWS advances — never rebuilt per call, never served stale.

Execution modes
---------------
``start()`` spawns one worker thread per shard (always-on mode): a slow
pool's backlog cannot stall another shard.  ``pump()`` processes every
queue to empty in the calling thread, in shard-name order — the
deterministic cooperative mode used by tests and ``python -m repro serve``.
With ``workers > 1`` and :class:`ShardSpec`-built shards, micro-batches
are dispatched through the :mod:`repro.runner` process-pool machinery
(:class:`~repro.runner.ParallelRunner` tasks over a picklable
``(spec, requests)`` trampoline with a per-process shard registry), so
independent pools scale across cores exactly like experiment trials do.

Bit-identity contract
---------------------
The daemon adds queueing, batching and reuse — never arithmetic.  Every
answered ticket carries precisely the :class:`ServiceAnswer` a one-shot
``SchedulingService.decide()`` (and therefore a solo
``AppLeSAgent.schedule()``) would produce for the same request at the
same instant, on either side of the :mod:`repro.util.perf` gate, no
matter how the traffic was split into batches.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.nws.service import NetworkWeatherService
from repro.obs.trace import get_tracer
from repro.runner import ParallelRunner, Task
from repro.service.core import SchedulingService
from repro.service.requests import DecisionRequest, ServiceAnswer
from repro.sim.testbeds import Testbed
from repro.util import perf
from repro.util.validation import check_positive

__all__ = [
    "ANSWERED",
    "BOOKED",
    "SHED",
    "REJECTED",
    "FAILED",
    "DaemonReply",
    "Ticket",
    "MicroBatcher",
    "ShardSpec",
    "SchedulingDaemon",
]

ANSWERED = "answered"
BOOKED = "booked"
SHED = "shed"
REJECTED = "rejected"
FAILED = "failed"


@dataclass(frozen=True)
class DaemonReply:
    """The daemon's terminal word on one ticket.

    ``status`` is one of :data:`ANSWERED` (``answer`` holds the
    service's decision), :data:`BOOKED` (a reservation-lane ticket:
    ``bookings`` holds the placed :class:`~repro.reserve.ledger.Booking`
    tuple, one per occurrence), :data:`SHED` (admission control refused a
    full queue — back off and retry), :data:`REJECTED` (the request can
    never be answered: behind the shard clock, unknown shard, no feasible
    placement, daemon shutting down — ``reason`` says why), or
    :data:`FAILED` (the shard errored while answering; ``reason`` carries
    the exception text).  ``latency_s`` is wall-clock submit→resolve;
    ``batch_size`` is the micro-batch the request rode in (0 when it
    never reached one).
    """

    status: str
    answer: ServiceAnswer | None = None
    reason: str | None = None
    latency_s: float = 0.0
    batch_size: int = 0
    shard: str = ""
    bookings: tuple = ()


class Ticket:
    """A claim check for one submitted request.

    ``result(timeout)`` blocks until the shard answers (or sheds /
    rejects) and returns the :class:`DaemonReply`; ``done`` polls.
    Tickets for shed and rejected requests are resolved before
    :meth:`SchedulingDaemon.submit` returns, so a caller under
    backpressure never waits to learn it.
    """

    __slots__ = ("request", "shard", "submitted_wall", "_event", "_reply")

    def __init__(self, request: DecisionRequest, shard: str) -> None:
        self.request = request
        self.shard = shard
        self.submitted_wall = time.perf_counter()
        self._event = threading.Event()
        self._reply: DaemonReply | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> DaemonReply:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"ticket for shard {self.shard!r} unanswered after {timeout}s"
            )
        assert self._reply is not None
        return self._reply

    def _resolve(
        self,
        status: str,
        answer: ServiceAnswer | None = None,
        reason: str | None = None,
        batch_size: int = 0,
        bookings: tuple = (),
    ) -> None:
        self._reply = DaemonReply(
            status=status,
            answer=answer,
            reason=reason,
            latency_s=time.perf_counter() - self.submitted_wall,
            batch_size=batch_size,
            shard=self.shard,
            bookings=bookings,
        )
        self._event.set()


class MicroBatcher:
    """Adaptive dispatch policy: fill batches only when waiting pays.

    Parameters
    ----------
    max_batch:
        Hard cap on requests per dispatch.
    target_batch:
        Batch size worth lingering for — the knee of the vectorised
        core's throughput curve (≥ 32 gives the ~5× regime).
    max_linger_s:
        Upper bound on how long the oldest queued request may wait for
        batch-mates.  This bounds the latency cost of batching directly.

    The policy keeps an exponentially-weighted estimate of the arrival
    gap and lingers only while ``queued < target_batch`` *and* the
    estimated time to fill the gap fits inside the remaining linger
    budget.  Under saturation (``queued ≥ target``) and under trickle
    load (arrivals too slow to fill the batch in time) it dispatches
    immediately — batching must never be the reason an idle system adds
    latency.
    """

    def __init__(
        self,
        max_batch: int = 64,
        target_batch: int = 32,
        max_linger_s: float = 0.005,
        ewma_alpha: float = 0.2,
    ) -> None:
        check_positive("max_batch", max_batch)
        check_positive("target_batch", target_batch)
        if target_batch > max_batch:
            raise ValueError(
                f"target_batch {target_batch} exceeds max_batch {max_batch}"
            )
        if max_linger_s < 0:
            raise ValueError("max_linger_s must be >= 0")
        if not (0.0 < ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.max_batch = int(max_batch)
        self.target_batch = int(target_batch)
        self.max_linger_s = float(max_linger_s)
        self._alpha = float(ewma_alpha)
        self._last_arrival: float | None = None
        self._gap_ewma: float | None = None

    def note_arrival(self, now: float) -> None:
        """Record one arrival (wall-clock seconds) to update the rate estimate."""
        last = self._last_arrival
        self._last_arrival = now
        if last is None:
            return
        gap = max(0.0, now - last)
        if self._gap_ewma is None:
            self._gap_ewma = gap
        else:
            self._gap_ewma += self._alpha * (gap - self._gap_ewma)

    def wait_budget(self, queued: int, oldest_wait_s: float) -> float:
        """Seconds worth waiting before dispatching ``queued`` requests.

        ``<= 0`` means dispatch now.  ``oldest_wait_s`` is how long the
        head of the queue has already waited.
        """
        if queued <= 0:
            return 0.0
        if queued >= self.target_batch:
            return 0.0
        remaining = self.max_linger_s - oldest_wait_s
        if remaining <= 0.0:
            return 0.0
        gap = self._gap_ewma
        if gap is None:
            return 0.0  # no rate estimate yet: don't gamble with latency
        eta = (self.target_batch - queued) * gap
        if eta > remaining:
            return 0.0  # the batch will not fill in time; go now
        return min(eta, remaining)


@dataclass(frozen=True)
class ShardSpec:
    """A picklable recipe for one shard's world (pool + NWS).

    The process-pool execution mode ships specs — not live worlds — to
    workers, which rebuild deterministically from the seeds (the same
    argument that makes :mod:`repro.sim.warmcache` reuse safe: a world
    advanced to ``t`` is bit-identical however it got there).

    Parameters
    ----------
    name:
        Shard (pool) name; requests are routed by it.
    builder:
        Module-level testbed factory accepting a ``seed`` keyword.
    seed / nws_seed:
        Load and measurement-noise seeds (``nws_seed`` defaults to
        ``seed + 1``, the convention of every experiment driver).
    warmup_s:
        Sensor warm-up before the shard answers its first request.
    builder_kwargs:
        Extra keyword arguments for ``builder`` as a sorted item tuple
        (kept hashable so the spec can key per-process registries).
    """

    name: str
    builder: Callable[..., Testbed]
    seed: int = 1996
    nws_seed: int | None = None
    warmup_s: float = 600.0
    builder_kwargs: tuple = ()

    def build(self) -> tuple[Testbed, NetworkWeatherService]:
        """A private warmed world (never shared with other daemon instances)."""
        testbed = self.builder(seed=self.seed, **dict(self.builder_kwargs))
        nws_seed = self.seed + 1 if self.nws_seed is None else self.nws_seed
        nws = NetworkWeatherService.for_testbed(testbed, seed=nws_seed)
        if self.warmup_s > 0:
            nws.warmup(self.warmup_s)
        return testbed, nws


# Per-process shard registry for the process-pool mode: each worker
# process rebuilds a shard's world on first use and keeps its reusing
# service (and monotonically advancing NWS) alive across batches.  Keyed
# by (spec, fastpath flag) because the service reads the gate at
# construction.
_PROCESS_SHARDS: dict[tuple, SchedulingService] = {}


def _shard_decide(
    spec: ShardSpec, requests: list[DecisionRequest], fast: bool
) -> list[ServiceAnswer]:
    """Process-pool trampoline: answer one micro-batch in a worker process.

    Deterministic regardless of which worker runs it: the world is a pure
    function of the spec's seeds, and advancing the per-process NWS to a
    batch's instants replays exactly the measurements any other replica
    would take (see :mod:`repro.sim.warmcache`).
    """
    key = (spec, bool(fast))
    service = _PROCESS_SHARDS.get(key)
    if service is None:
        with perf.fastpath(fast):
            testbed, nws = spec.build()
            service = SchedulingService(testbed, nws, reuse=fast)
        _PROCESS_SHARDS[key] = service
    with perf.fastpath(fast):
        return service.decide(requests)


class _Shard:
    """One pool's queue, clock, worker state and (lazily built) service."""

    def __init__(
        self,
        name: str,
        spec: ShardSpec | None,
        world: tuple[Testbed, NetworkWeatherService] | None,
        queue_capacity: int,
    ) -> None:
        self.name = name
        self.spec = spec
        self._world = world
        self.queue_capacity = queue_capacity
        self.queue: deque[tuple[Ticket, float]] = deque()  # (ticket, enqueue wall)
        # Reservation lane: a priority heap of (priority class, admission
        # seq, ticket) — lower class numbers plan first.
        self.reservations: list[tuple[int, int, Ticket]] = []
        self.reservation_seq = 0
        self.cond = threading.Condition()
        self.clock = 0.0  # latest admitted decision instant (sim time)
        self.in_flight = 0
        self.service: SchedulingService | None = None
        self.planner = None  # lazily built ReservationPlanner
        self.ledger = None  # the shard's ReservationLedger
        self.thread: threading.Thread | None = None
        self.stats = {
            "submitted": 0, "answered": 0, "shed": 0,
            "rejected": 0, "failed": 0, "batches": 0, "max_batch": 0,
            "reservations": 0, "booked": 0,
        }

    def ensure_service(self) -> SchedulingService:
        """The shard's in-parent reusing service (threaded / pump modes)."""
        if self.service is None:
            if self._world is None:
                assert self.spec is not None
                self._world = self.spec.build()
            testbed, nws = self._world
            self.service = SchedulingService(
                testbed, nws, reuse=perf.fastpath_enabled()
            )
        return self.service

    def ensure_reservation_lane(self):
        """The shard's planner + ledger (lazily built, spec shards only).

        The planner expands over a *private* spec-built world — planning
        at reservation instants must never advance the decision lane's
        shared NWS clock, and the spec's seed determinism makes the
        private replica bit-identical to the decision world anyway.
        Imported lazily: :mod:`repro.reserve` sits above this module.
        """
        if self.planner is None:
            assert self.spec is not None
            from repro.reserve.ledger import ReservationLedger
            from repro.reserve.repair import ReservationPlanner

            self.planner = ReservationPlanner(
                factory=self.spec.build, label=self.name
            )
            self.ledger = ReservationLedger()
        return self.planner, self.ledger


class SchedulingDaemon:
    """Long-lived sharded front end over :class:`SchedulingService`.

    Parameters
    ----------
    shards:
        Either a sequence of :class:`ShardSpec` (required for
        ``workers > 1``) or a mapping ``{name: (testbed, nws)}`` of live
        worlds.
    queue_capacity:
        Bound on each shard's request queue; overflow is shed.
    batcher:
        The :class:`MicroBatcher` policy (a fresh default if omitted).
        Each shard gets its own policy instance with the same parameters.
    workers:
        ``1`` (default) answers batches in the shard's own thread (or the
        pumping thread).  ``> 1`` dispatches batches through a persistent
        process pool via the :mod:`repro.runner` machinery — shards must
        then be spec-built so their worlds can be rebuilt in workers.
    reservation_capacity:
        Bound on each shard's reservation lane; overflow is shed.  The
        lane admits :class:`~repro.reserve.requests.ReservationRequest`\\ s
        via :meth:`submit_reservation`, plans them in priority-class
        order against the shard's ledger (incremental repair, never a
        from-scratch re-plan), and resolves tickets with
        :data:`BOOKED`.  Decision traffic always pre-empts the lane.
    """

    def __init__(
        self,
        shards: Sequence[ShardSpec] | Mapping[str, tuple[Testbed, NetworkWeatherService]],
        queue_capacity: int = 256,
        batcher: MicroBatcher | None = None,
        workers: int = 1,
        reservation_capacity: int = 64,
    ) -> None:
        check_positive("queue_capacity", queue_capacity)
        check_positive("reservation_capacity", reservation_capacity)
        self.reservation_capacity = int(reservation_capacity)
        proto = batcher if batcher is not None else MicroBatcher()
        self._batcher_args = (
            proto.max_batch, proto.target_batch, proto.max_linger_s, proto._alpha
        )
        self.shards: dict[str, _Shard] = {}
        if isinstance(shards, Mapping):
            for name, (testbed, nws) in shards.items():
                self.shards[name] = _Shard(name, None, (testbed, nws), queue_capacity)
        else:
            for spec in shards:
                if spec.name in self.shards:
                    raise ValueError(f"duplicate shard name {spec.name!r}")
                self.shards[spec.name] = _Shard(spec.name, spec, None, queue_capacity)
        if not self.shards:
            raise ValueError("a daemon needs at least one shard")
        self.workers = max(1, int(workers))
        if self.workers > 1 and any(s.spec is None for s in self.shards.values()):
            raise ValueError(
                "workers > 1 needs ShardSpec-built shards (live worlds "
                "cannot be shipped to worker processes)"
            )
        self._batchers = {
            name: MicroBatcher(*self._batcher_args) for name in self.shards
        }
        self._fast = perf.fastpath_enabled()
        self._runner: ParallelRunner | None = None  # persistent, created lazily
        self._started = False
        self._draining = False
        self._stopped = False
        self._lock = threading.Lock()

    # -- admission ---------------------------------------------------------
    def submit(self, shard: str, request: DecisionRequest) -> Ticket:
        """Queue one request; returns a ticket (possibly already resolved).

        Shed and rejection decisions are taken here, synchronously — the
        caller learns about backpressure immediately instead of waiting on
        a queue that cannot help.
        """
        try:
            sh = self.shards[shard]
        except KeyError:
            raise KeyError(
                f"unknown shard {shard!r} (have: {sorted(self.shards)})"
            ) from None
        ticket = Ticket(request, shard)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter("daemon.submitted").inc()
        with sh.cond:
            if self._stopped or self._draining:
                sh.stats["rejected"] += 1
                ticket._resolve(REJECTED, reason="shutdown")
            elif request.at < sh.clock:
                # The shared NWS is monotone; a decision instant behind the
                # shard clock could never be answered, so say so now.
                sh.stats["rejected"] += 1
                ticket._resolve(
                    REJECTED,
                    reason=f"stale-instant: at={request.at} < clock={sh.clock}",
                )
            elif len(sh.queue) >= sh.queue_capacity:
                sh.stats["shed"] += 1
                ticket._resolve(SHED, reason="queue-full")
            else:
                now = time.perf_counter()
                sh.clock = max(sh.clock, request.at)
                sh.stats["submitted"] += 1
                self._batchers[shard].note_arrival(now)
                sh.queue.append((ticket, now))
                sh.cond.notify_all()
        if tracer.enabled:
            reply = ticket._reply
            if reply is not None:
                tracer.metrics.counter(f"daemon.{reply.status}").inc()
            tracer.metrics.gauge(f"daemon.queue_depth.{shard}").set(len(sh.queue))
        return ticket

    def submit_many(
        self, shard: str, requests: Iterable[DecisionRequest]
    ) -> list[Ticket]:
        """Submit several requests to one shard, preserving order."""
        return [self.submit(shard, r) for r in requests]

    def submit_reservation(self, shard: str, request) -> Ticket:
        """Queue one :class:`ReservationRequest` on the shard's lane.

        Admission mirrors :meth:`submit`: shutdown rejects, a full lane
        sheds, both synchronously.  There is no stale-instant rejection —
        the lane plans over a private world it can rebuild at any
        instant, so the decision clock does not constrain reservations.
        Requires a :class:`ShardSpec`-built shard (``ValueError``
        otherwise: a live borrowed world cannot be rebuilt privately).
        """
        try:
            sh = self.shards[shard]
        except KeyError:
            raise KeyError(
                f"unknown shard {shard!r} (have: {sorted(self.shards)})"
            ) from None
        if sh.spec is None:
            raise ValueError(
                f"shard {shard!r} holds a live world; the reservation lane "
                f"needs ShardSpec-built shards (their worlds rebuild from "
                f"seeds for conflict-free planning)"
            )
        ticket = Ticket(request, shard)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter("daemon.reservations").inc()
        with sh.cond:
            if self._stopped or self._draining:
                sh.stats["rejected"] += 1
                ticket._resolve(REJECTED, reason="shutdown")
            elif len(sh.reservations) >= self.reservation_capacity:
                sh.stats["shed"] += 1
                ticket._resolve(SHED, reason="reservation-lane-full")
            else:
                sh.reservation_seq += 1
                sh.stats["reservations"] += 1
                heapq.heappush(
                    sh.reservations,
                    (request.priority, sh.reservation_seq, ticket),
                )
                sh.cond.notify_all()
        if tracer.enabled:
            reply = ticket._reply
            if reply is not None:
                tracer.metrics.counter(f"daemon.{reply.status}").inc()
            tracer.metrics.gauge(f"daemon.reservation_depth.{shard}").set(
                len(sh.reservations)
            )
        return ticket

    # -- always-on mode ----------------------------------------------------
    def start(self) -> None:
        """Spawn one worker thread per shard (idempotent)."""
        with self._lock:
            if self._stopped:
                raise RuntimeError("daemon already shut down")
            if self._started:
                return
            self._started = True
            if self.workers > 1:
                self._ensure_runner()
            for sh in self.shards.values():
                sh.thread = threading.Thread(
                    target=self._worker, args=(sh,),
                    name=f"shard-{sh.name}", daemon=True,
                )
                sh.thread.start()

    def shutdown(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the daemon.

        ``drain=True`` answers everything already queued first;
        ``drain=False`` rejects queued tickets with reason ``"shutdown"``.
        Either way, later submits are rejected.  Idempotent.
        """
        with self._lock:
            if self._stopped:
                return
            self._draining = drain
            self._stopped = True
        for sh in self.shards.values():
            with sh.cond:
                if not drain:
                    while sh.queue:
                        ticket, _ = sh.queue.popleft()
                        sh.stats["rejected"] += 1
                        ticket._resolve(REJECTED, reason="shutdown")
                    while sh.reservations:
                        _, _, ticket = heapq.heappop(sh.reservations)
                        sh.stats["rejected"] += 1
                        ticket._resolve(REJECTED, reason="shutdown")
                sh.cond.notify_all()
        if self._started:
            for sh in self.shards.values():
                if sh.thread is not None:
                    sh.thread.join(timeout)
        elif drain:
            self._pump_all()  # cooperative daemon: drain in this thread
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    def drain(self, timeout: float | None = 30.0) -> None:
        """Block until every queue is empty and no batch is in flight."""
        if not self._started:
            self._pump_all()
            return
        deadline = None if timeout is None else time.perf_counter() + timeout
        for sh in self.shards.values():
            with sh.cond:
                while sh.queue or sh.reservations or sh.in_flight:
                    remaining = (
                        None if deadline is None
                        else deadline - time.perf_counter()
                    )
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"shard {sh.name!r} still busy after {timeout}s"
                        )
                    sh.cond.wait(timeout=remaining)

    # -- cooperative mode --------------------------------------------------
    def pump(self) -> int:
        """Answer everything queued, in the calling thread; returns count.

        Shards are processed in name order and each queue drained to
        empty — the deterministic mode for tests and one-shot drivers.
        With ``workers > 1`` the per-shard batches still run through the
        process pool (one :class:`~repro.runner.Task` per micro-batch).
        """
        if self._started:
            raise RuntimeError("pump() is for daemons without start()ed workers")
        return self._pump_all()

    def _pump_all(self) -> int:
        answered = 0
        for name in sorted(self.shards):
            sh = self.shards[name]
            while True:
                batch = self._take_now(sh)
                if not batch:
                    break
                self._process(sh, batch)
                answered += len(batch)
            while True:
                ticket = self._take_reservation(sh)
                if ticket is None:
                    break
                self._process_reservation(sh, ticket)
                answered += 1
        return answered

    # -- internals ---------------------------------------------------------
    def _ensure_runner(self) -> ParallelRunner:
        """The persistent process-pool runner for ``workers > 1`` dispatch."""
        if self._runner is None:
            self._runner = ParallelRunner(workers=self.workers, persistent=True)
        return self._runner

    def _take_now(self, sh: _Shard) -> list[tuple[Ticket, float]]:
        """Pop up to ``max_batch`` queued entries without lingering."""
        with sh.cond:
            if not sh.queue:
                return []
            take = min(len(sh.queue), self._batchers[sh.name].max_batch)
            batch = [sh.queue.popleft() for _ in range(take)]
            sh.in_flight += len(batch)
            return batch

    def _take_reservation(self, sh: _Shard) -> Ticket | None:
        """Pop the strongest queued reservation, if any."""
        with sh.cond:
            if not sh.reservations:
                return None
            _, _, ticket = heapq.heappop(sh.reservations)
            sh.in_flight += 1
            return ticket

    def _take(self, sh: _Shard) -> tuple[str, Any] | None:
        """Worker-thread blocking take, honouring the micro-batch policy.

        Returns ``("batch", tickets)`` for decision work,
        ``("reservation", ticket)`` when only the reservation lane has
        work (decision traffic always pre-empts the lane), or ``None``
        when the daemon stopped and this shard's work is done.
        """
        batcher = self._batchers[sh.name]
        with sh.cond:
            while True:
                if sh.queue:
                    if self._stopped:
                        wait = 0.0  # draining: no linger, just finish
                    else:
                        oldest = time.perf_counter() - sh.queue[0][1]
                        wait = batcher.wait_budget(len(sh.queue), oldest)
                    if wait <= 0.0 or len(sh.queue) >= batcher.max_batch:
                        take = min(len(sh.queue), batcher.max_batch)
                        batch = [sh.queue.popleft() for _ in range(take)]
                        sh.in_flight += len(batch)
                        return ("batch", batch)
                    sh.cond.wait(timeout=wait)
                elif sh.reservations:
                    _, _, ticket = heapq.heappop(sh.reservations)
                    sh.in_flight += 1
                    return ("reservation", ticket)
                elif self._stopped:
                    return None
                else:
                    sh.cond.wait(timeout=0.1)

    def _worker(self, sh: _Shard) -> None:
        while True:
            work = self._take(sh)
            if work is None:
                return
            kind, payload = work
            if kind == "batch":
                self._process(sh, payload)
            else:
                self._process_reservation(sh, payload)

    def _process(self, sh: _Shard, batch: list[tuple[Ticket, float]]) -> None:
        """Answer one micro-batch and resolve its tickets."""
        tickets = [t for t, _ in batch]
        requests = [t.request for t in tickets]
        size = len(requests)
        tracer = get_tracer()
        try:
            pooled = self.workers > 1 and sh.spec is not None
            with tracer.span(
                "daemon.batch", layer="daemon",
                t=min(r.at for r in requests),
                shard=sh.name, requests=size,
                mode="pool" if pooled else "inline",
            ):
                if tracer.enabled:
                    tracer.metrics.counter("daemon.batches").inc()
                    tracer.metrics.histogram("daemon.batch_size").observe(size)
                if pooled:
                    answers = self._ensure_runner().submit(
                        Task(
                            _shard_decide,
                            {"spec": sh.spec, "requests": requests, "fast": self._fast},
                            key=(sh.name,),
                        )
                    ).result()
                else:
                    answers = sh.ensure_service().decide(requests)
        except Exception as exc:  # resolve, never hang the callers
            with sh.cond:
                sh.stats["failed"] += size
                sh.in_flight -= size
                for ticket in tickets:
                    ticket._resolve(FAILED, reason=f"{type(exc).__name__}: {exc}")
                sh.cond.notify_all()
            if tracer.enabled:
                tracer.metrics.counter("daemon.failed").inc(size)
            return
        with sh.cond:
            sh.stats["answered"] += size
            sh.stats["batches"] += 1
            sh.stats["max_batch"] = max(sh.stats["max_batch"], size)
            sh.in_flight -= size
            for ticket, answer in zip(tickets, answers):
                ticket._resolve(ANSWERED, answer=answer, batch_size=size)
            sh.cond.notify_all()
        if tracer.enabled:
            tracer.metrics.counter("daemon.answered").inc(size)
            for ticket in tickets:
                reply = ticket._reply
                if reply is not None:
                    tracer.metrics.histogram("daemon.latency_s").observe(
                        reply.latency_s
                    )
            tracer.metrics.gauge(f"daemon.queue_depth.{sh.name}").set(
                len(sh.queue)
            )

    def _process_reservation(self, sh: _Shard, ticket: Ticket) -> None:
        """Plan one reservation through the shard's repair engine.

        One request per pass: each arrival is an incremental
        ``repair(new_requests=[...])`` against the shard ledger, so
        earlier bookings are never re-planned — at most shifted, shrunk
        or bumped, exactly as the repair ladder allows.
        """
        request = ticket.request
        tracer = get_tracer()
        try:
            planner, ledger = sh.ensure_reservation_lane()
            with tracer.span(
                "daemon.reservation", layer="daemon",
                t=getattr(request, "earliest_start", None),
                shard=sh.name, request=request.request_id,
            ):
                outcome = planner.repair(ledger, new_requests=[request])
            booked = tuple(ledger.get(bid) for bid in outcome.booked)
        except Exception as exc:  # resolve, never hang the caller
            with sh.cond:
                sh.stats["failed"] += 1
                sh.in_flight -= 1
                ticket._resolve(FAILED, reason=f"{type(exc).__name__}: {exc}")
                sh.cond.notify_all()
            if tracer.enabled:
                tracer.metrics.counter("daemon.failed").inc()
            return
        with sh.cond:
            sh.in_flight -= 1
            if booked:
                sh.stats["booked"] += 1
                partial = len(booked) < request.repeat_count
                ticket._resolve(
                    BOOKED,
                    bookings=booked,
                    reason=(
                        f"partial: {len(booked)}/{request.repeat_count}"
                        if partial else None
                    ),
                )
            else:
                sh.stats["rejected"] += 1
                ticket._resolve(REJECTED, reason="no-feasible-candidate")
            sh.cond.notify_all()
        if tracer.enabled:
            reply = ticket._reply
            if reply is not None:
                tracer.metrics.counter(f"daemon.{reply.status}").inc()
                tracer.metrics.histogram("daemon.latency_s").observe(
                    reply.latency_s
                )
            tracer.metrics.gauge(f"daemon.reservation_depth.{sh.name}").set(
                len(sh.reservations)
            )

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-shard admission/answer counters (a snapshot copy)."""
        out = {}
        for name, sh in self.shards.items():
            with sh.cond:
                row = dict(sh.stats)
                row["queue_depth"] = len(sh.queue)
                row["reservation_depth"] = len(sh.reservations)
                row["clock"] = sh.clock
            out[name] = row
        return out

    def __enter__(self) -> "SchedulingDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=exc == (None, None, None))

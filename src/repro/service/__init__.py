"""Batched multi-decision scheduling service (see :mod:`repro.service.core`)
and its always-on daemon front end (:mod:`repro.service.daemon`), fed by the
synthetic user-population load generator (:mod:`repro.service.loadgen`).
"""

from repro.service.core import SchedulingService
from repro.service.daemon import (
    ANSWERED,
    BOOKED,
    FAILED,
    REJECTED,
    SHED,
    DaemonReply,
    MicroBatcher,
    SchedulingDaemon,
    ShardSpec,
    Ticket,
)
from repro.service.requests import DecisionRequest, ServiceAnswer

__all__ = [
    "SchedulingService",
    "DecisionRequest",
    "ServiceAnswer",
    "SchedulingDaemon",
    "ShardSpec",
    "MicroBatcher",
    "DaemonReply",
    "Ticket",
    "ANSWERED",
    "BOOKED",
    "SHED",
    "REJECTED",
    "FAILED",
]

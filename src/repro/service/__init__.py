"""Batched multi-decision scheduling service (see :mod:`repro.service.core`)."""

from repro.service.core import SchedulingService
from repro.service.requests import DecisionRequest, ServiceAnswer

__all__ = ["SchedulingService", "DecisionRequest", "ServiceAnswer"]

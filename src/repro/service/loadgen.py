"""Synthetic user-population load for the scheduling daemon.

The ROADMAP north-star is decision traffic from a large user population,
not a hand-assembled request list.  This module generates that traffic —
seeded and bit-reproducible — in the two canonical shapes of the load
literature:

- **Open loop** (:func:`open_loop_events` + :func:`run_open_loop`): users
  arrive by a Poisson process at a fixed offered rate, indifferent to how
  the daemon is coping.  This is the arrival model that exposes tail
  latency and shedding — the queue grows whenever the service falls
  behind, because arrivals do not wait for answers.

- **Closed loop** (:func:`run_closed_loop`): a fixed population of users,
  each submitting, waiting for the answer, thinking (exponentially
  distributed, per-user seeded), then submitting again.  Offered load is
  self-limited by the population size, so this shape measures sustainable
  throughput rather than overload behaviour.

Reproducibility contract: *what* is asked is always a pure function of
``(population seed, request index)`` — the request multiset never depends
on wall-clock timing or thread interleaving.  *When* requests are
submitted is wall-clock (that is the point of a load test), so latency
numbers vary run to run while answers do not.  Simulated decision
instants advance with the request index (``instant_every`` requests per
step), never with wall time, keeping each shard's instants monotone and
the answers deterministic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Sequence

from repro.jacobi.grid import JacobiProblem
from repro.service.daemon import SchedulingDaemon, Ticket
from repro.service.requests import DecisionRequest
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive

__all__ = [
    "LoadEvent",
    "SyntheticPopulation",
    "open_loop_events",
    "run_open_loop",
    "run_closed_loop",
]


@dataclass(frozen=True)
class LoadEvent:
    """One planned submission: send ``request`` to ``shard`` at ``offset_s``
    wall-clock seconds after the run starts."""

    offset_s: float
    shard: str
    request: DecisionRequest


class SyntheticPopulation:
    """A seeded population of users issuing :class:`DecisionRequest`\\ s.

    The ``k``-th request is a pure function of ``(seed, k)``: problem
    size, iteration count, user specification variant, memory policy and
    target shard are all drawn from a private stream keyed by ``k``, so
    any slice of the population can be regenerated independently (the
    bench regenerates sampled requests to verify answers offline).

    Parameters
    ----------
    shards:
        Shard names to spread users over (round-robin by request index,
        so each shard sees a deterministic subsequence).
    seed:
        Population master seed.
    base_at:
        Simulated instant of the first decision.
    step_s / instant_every:
        Every ``instant_every`` requests, the decision instant advances by
        ``step_s`` simulated seconds — index-driven, never wall-driven, so
        instants stay monotone per shard and answers reproducible.
        ``instant_every=0`` pins every request to ``base_at``.
    sizes / iterations:
        Candidate Jacobi problem sizes and iteration counts.
    """

    def __init__(
        self,
        shards: Sequence[str],
        seed: int = 2024,
        base_at: float = 420.0,
        step_s: float = 60.0,
        instant_every: int = 128,
        sizes: Sequence[int] = (600, 700, 800),
        iterations: Sequence[int] = (40, 50, 60),
    ) -> None:
        if not shards:
            raise ValueError("population needs at least one shard name")
        self.shards = list(shards)
        self.seed = int(seed)
        self.base_at = float(base_at)
        self.step_s = float(step_s)
        self.instant_every = int(instant_every)
        self.sizes = tuple(int(s) for s in sizes)
        self.iterations = tuple(int(i) for i in iterations)

    def request(self, k: int) -> tuple[str, DecisionRequest]:
        """The ``k``-th user's ask: ``(shard name, request)``."""
        from repro.core.userspec import UserSpecification

        rng = spawn_rng(self.seed, f"user:{k}")
        shard = self.shards[k % len(self.shards)]
        at = self.base_at
        if self.instant_every > 0:
            at += self.step_s * (k // self.instant_every)
        variant = int(rng.integers(0, 3))
        if variant == 1:
            spec = UserSpecification(max_machines=3)
        elif variant == 2:
            spec = UserSpecification(max_machines=2)
        else:
            spec = UserSpecification()
        request = DecisionRequest(
            problem=JacobiProblem(
                n=int(rng.choice(self.sizes)),
                iterations=int(rng.choice(self.iterations)),
            ),
            userspec=spec,
            account_memory=bool(rng.integers(0, 5) != 0),
            at=at,
        )
        return shard, request

    def requests(self, n: int) -> list[tuple[str, DecisionRequest]]:
        """The first ``n`` users' asks, in index order."""
        return [self.request(k) for k in range(int(n))]


def open_loop_events(
    population: SyntheticPopulation,
    rate_hz: float,
    n_requests: int,
    seed: int | None = None,
) -> list[LoadEvent]:
    """A seeded Poisson arrival plan at ``rate_hz`` offered requests/sec.

    Inter-arrival gaps are exponential draws from a stream independent of
    the population's request stream (same master seed by default), so the
    offered timeline and the asked work can be varied independently.
    """
    check_positive("rate_hz", rate_hz)
    check_positive("n_requests", n_requests)
    rng = spawn_rng(population.seed if seed is None else seed, "arrivals")
    gaps = rng.exponential(1.0 / float(rate_hz), size=int(n_requests))
    events, offset = [], 0.0
    for k, gap in enumerate(gaps):
        offset += float(gap)
        shard, request = population.request(k)
        events.append(LoadEvent(offset_s=offset, shard=shard, request=request))
    return events


def run_open_loop(
    daemon: SchedulingDaemon,
    events: Sequence[LoadEvent],
    speed: float = 1.0,
) -> list[Ticket]:
    """Replay an arrival plan against a started daemon; returns tickets.

    Arrivals never wait for answers (open loop): each event is submitted
    at its planned offset (divided by ``speed`` — ``speed=10`` compresses
    the plan tenfold) whether or not earlier tickets have resolved.
    Backpressure shows up as shed tickets, not as a slowed generator.
    """
    check_positive("speed", speed)
    start = time.perf_counter()
    tickets = []
    for event in sorted(events, key=lambda e: e.offset_s):
        delay = start + event.offset_s / speed - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        tickets.append(daemon.submit(event.shard, event.request))
    return tickets


def run_closed_loop(
    daemon: SchedulingDaemon,
    population: SyntheticPopulation,
    users: int,
    requests_per_user: int,
    think_s: float = 0.0,
    timeout_s: float = 60.0,
) -> list[Ticket]:
    """A closed-loop population: ``users`` threads submit → wait → think.

    User ``u`` plays population indices ``u, u + users, u + 2·users, …``
    so the submitted request multiset equals the open-loop plan's prefix
    regardless of interleaving.  Think times are exponential with mean
    ``think_s``, per-user seeded.  Tickets come back grouped by user,
    in submission order.

    Note: closed-loop interleaving is wall-clock, so the population
    should pin instants (``instant_every=0``) — otherwise a fast user
    could race a shard's clock ahead and legitimately get later requests
    rejected as stale.
    """
    check_positive("users", users)
    check_positive("requests_per_user", requests_per_user)
    tickets: list[list[Ticket]] = [[] for _ in range(users)]
    errors: list[BaseException] = []

    def _user(u: int) -> None:
        rng = spawn_rng(population.seed, f"think:{u}")
        try:
            for j in range(requests_per_user):
                shard, request = population.request(u + j * users)
                ticket = daemon.submit(shard, request)
                tickets[u].append(ticket)
                ticket.result(timeout_s)  # closed loop: wait for the answer
                if think_s > 0:
                    time.sleep(float(rng.exponential(think_s)))
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    threads = [
        threading.Thread(target=_user, args=(u,), name=f"user-{u}", daemon=True)
        for u in range(users)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return [t for per_user in tickets for t in per_user]

"""The batched multi-decision scheduling service.

Many AppLeS agents sharing one metacomputer make their decisions from the
same Network Weather Service at the same instants (§3: contention is
*experienced*, not negotiated).  Answering each agent separately repeats
the same forecast queries, cost models, and candidate evaluations; the
:class:`SchedulingService` accepts a batch of :class:`DecisionRequest`\\ s
and answers them through one vectorised evaluation core instead.

Bit-identity contract
---------------------
Every answer equals — float for float, count for count — what the
request's own agent would have decided alone:

- one :class:`~repro.nws.snapshot.ForecastSnapshot` per decision instant
  is shared across the batch (snapshots are pure caches, so shared and
  private snapshots yield the same values);
- all candidate sets of all requests are evaluated at once by
  :func:`~repro.jacobi.apples.evaluate_strip_batch`, whose kernels
  replicate the scalar planner's float semantics operation-for-operation
  and *surrender* (flag for scalar planning) any row they cannot certify;
- the Coordinator's prune-and-choose sweep is replayed per request with
  the precomputed objectives, reproducing the incumbent/pruning sequence
  and the winner's identity exactly;
- the winning schedule is materialised by the scalar planner, and its
  objective is checked against the batched prediction — a divergence
  raises instead of answering wrong.

With the fast path disabled (``REPRO_NO_FASTPATH=1``) the service
degenerates to a plain sequential loop of solo ``schedule()`` calls — the
oracle the differential test harness compares against.

Cross-call reuse (the always-on daemon's amortisation)
------------------------------------------------------
A service constructed with ``reuse=True`` keeps everything derived from
one *pool state* — the :class:`~repro.nws.snapshot.ForecastSnapshot`, the
per-configuration staging (candidate sets, membership matrices, pruning
bounds, batch inputs), the per-configuration
:class:`~repro.core.infopool.DecisionCache` memos, and whole answers —
alive across ``decide()`` calls, invalidating the lot the moment
:attr:`ForecastSnapshot.stale` turns true (the NWS advanced, so the pool
is in a new state).  Every cached value is a pure function of the
snapshot, so reuse is bit-identical by the same argument as the snapshot
itself; it only changes how often the same floats are recomputed.  Reuse
requires an attached NWS (staleness is keyed on the NWS clock/epoch) and
is inert on the reference path.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.coordinator import AppLeSAgent, record_pruning_stats
from repro.core.sweep import (
    BatchedObjective,
    materialise_winner,
    objective_bounds,
    replay_sweep,
    resolve_batch_planner,
)
from repro.obs.trace import get_tracer
from repro.core.resources import ResourcePool
from repro.core.selector import ResourceSelector
import numpy as np

from repro.jacobi.apples import (
    JacobiPlanner,
    evaluate_strip_batch,
    make_jacobi_agent,
    member_masks_over,
)
from repro.nws.service import NetworkWeatherService
from repro.service.requests import DecisionRequest, ServiceAnswer
from repro.sim.testbeds import Testbed
from repro.util import perf

__all__ = ["SchedulingService"]


class _Staged:
    """Per-configuration staging for one pool state (pure snapshot functions)."""

    __slots__ = ("agent", "planner", "csets", "bounds", "inputs", "perm_masks")

    def __init__(self, agent, planner, csets, bounds, inputs, perm_masks) -> None:
        self.agent = agent
        self.planner = planner
        self.csets = csets
        self.bounds = bounds
        self.inputs = inputs
        self.perm_masks = perm_masks


class _PoolState:
    """Everything the service derived from one pool state.

    Valid exactly while ``snapshot.stale`` is false; the service drops the
    whole object the moment the NWS advances.  ``answers`` memoises whole
    decisions per request configuration, ``staged`` the batch-evaluation
    inputs, and ``decisions`` the per-configuration
    :class:`~repro.core.infopool.DecisionCache` (planner/estimator memos).
    """

    __slots__ = ("snapshot", "staged", "answers", "decisions")

    def __init__(self, snapshot) -> None:
        self.snapshot = snapshot
        self.staged: dict = {}
        self.answers: dict = {}
        self.decisions: dict = {}


class SchedulingService:
    """Answer batches of scheduling requests over one testbed + NWS.

    Parameters
    ----------
    testbed:
        The shared metacomputer.
    nws:
        The shared Network Weather Service (``None`` = agents plan from
        nominal information, like solo agents built without an NWS).
    selector:
        Resource Selector shared by every request's agent (defaults to
        the exhaustive enumerator, matching solo agents).
    reuse:
        Keep snapshot, staging, decision memos and answers alive across
        ``decide()`` calls while the pool state is unchanged (see the
        module docstring).  Requires ``nws``; the always-on daemon turns
        this on, the one-shot batch API defaults to off.
    """

    def __init__(
        self,
        testbed: Testbed,
        nws: NetworkWeatherService | None = None,
        selector: ResourceSelector | None = None,
        reuse: bool = False,
    ) -> None:
        self.testbed = testbed
        self.nws = nws
        self.selector = selector
        # Read once at construction, like AppLeSAgent: a service answers
        # every batch on the path chosen when it was built.
        self._fast = perf.fastpath_enabled()
        if reuse and nws is None:
            raise ValueError(
                "SchedulingService(reuse=True) needs an NWS: cross-call "
                "reuse is invalidated by the NWS clock, and a pool without "
                "one has no staleness signal"
            )
        self._reuse = bool(reuse) and self._fast
        # Agents are pure functions of the request configuration (the
        # dynamic state flows in per decision through the snapshot), so
        # they may be kept across pool states.
        self._agents: dict = {}
        self._state: _PoolState | None = None

    # -- public API -------------------------------------------------------
    def decide(self, requests: Sequence[DecisionRequest]) -> list[ServiceAnswer]:
        """Answer every request, grouped by decision instant (ascending).

        The shared NWS is advanced monotonically to each distinct ``at``;
        requests at one instant share one forecast snapshot.  Returns
        answers in request order.
        """
        answers: list[ServiceAnswer | None] = [None] * len(requests)
        instants = sorted({r.at for r in requests})
        tracer = get_tracer()
        with tracer.span(
            "service.batch", layer="service",
            t=instants[0] if instants else None,
            requests=len(requests), instants=len(instants),
            mode="batched" if self._fast else "sequential",
        ) as span:
            if tracer.enabled:
                span.set_end(instants[-1] if instants else 0.0)
                tracer.metrics.counter("service.batches").inc()
                tracer.metrics.histogram("service.batch_size").observe(
                    len(requests)
                )
            for at in instants:
                group = [i for i, r in enumerate(requests) if r.at == at]
                self._advance(at)
                if self._fast:
                    self._decide_group(requests, group, at, answers)
                else:
                    for i in group:
                        agent = self._agent(requests[i])
                        decision = agent.schedule()
                        if tracer.enabled:
                            self._count_solo(tracer, decision.vectorised)
                        answers[i] = ServiceAnswer.from_decision(decision, at=at)
        return [a for a in answers if a is not None]

    @staticmethod
    def _count_solo(tracer, vectorised: bool) -> None:
        """Count one solo ``schedule()`` answer by the path that made it.

        ``service.solo_vectorised`` vs ``service.solo_scalar``: every
        decision the service answers through a single agent — the
        reference sequential loop and the scalar-config fallback — lands
        in one of the two, so the daemon's obs stream shows exactly how
        many decisions the one-shot tensor sweep served.
        """
        name = "service.solo_vectorised" if vectorised else "service.solo_scalar"
        tracer.metrics.counter(name).inc()

    # -- internals --------------------------------------------------------
    def _advance(self, at: float) -> None:
        if self.nws is None:
            return
        if at > self.nws.now:
            self.nws.advance_to(at)
        elif at < self.nws.now:
            raise ValueError(
                f"cannot decide at t={at}: the shared NWS is already at "
                f"t={self.nws.now}"
            )

    def _agent(self, request: DecisionRequest, key=None) -> AppLeSAgent:
        if self._reuse and key is not None:
            agent = self._agents.get(key)
            if agent is not None:
                return agent
        agent = make_jacobi_agent(
            self.testbed,
            request.problem,
            self.nws,
            userspec=request.userspec,
            selector=self.selector,
            account_memory=request.account_memory,
        )
        if self._reuse and key is not None:
            self._agents[key] = agent
        return agent

    def _pool_state(self) -> _PoolState:
        """The pool-state cache for the current NWS instant.

        With reuse on, the previous state survives while its snapshot is
        fresh; :attr:`ForecastSnapshot.stale` is the sole invalidation
        signal (the NWS epoch/clock), so a mutated pool can never serve a
        stale staged value or answer.  Without reuse, every call gets a
        private state — the pre-daemon one-snapshot-per-batch behaviour.
        """
        state = self._state
        if state is not None and not state.snapshot.stale:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.metrics.counter("service.reuse.snapshot_hits").inc()
            return state
        state = _PoolState(ResourcePool(self.testbed.topology, self.nws).snapshot())
        if self._reuse:
            self._state = state
        return state

    @staticmethod
    def _strip_planner(agent: AppLeSAgent) -> JacobiPlanner | None:
        """The single active strip planner, when the config is batchable.

        Resolved through the same ``batch_planner`` hook the Coordinator's
        vectorised solo path uses, so "which configurations vectorise" has
        exactly one answer across solo and batched entry points.
        """
        planner = resolve_batch_planner(agent.planner, agent.info)
        return planner if isinstance(planner, JacobiPlanner) else None

    def _decide_group(self, requests, group, at, answers) -> None:
        """Answer one instant's requests through the batched core."""
        # One snapshot for the whole instant: every agent's pool wraps the
        # same topology and NWS, so forecasts read through this snapshot
        # are the same floats each agent's private snapshot would return.
        # With reuse on, the snapshot — and everything staged from it —
        # survives from earlier calls at the same pool state.
        state = self._pool_state()
        snapshot = state.snapshot
        tracer = get_tracer()

        configs: dict = {}  # config_key -> [request indices]
        for i in group:
            configs.setdefault(requests[i].config_key(), []).append(i)

        # Phase A: per unique config, build the agent, enumerate candidate
        # sets (outside the decision, like schedule()), take bounds and
        # rank-space batch inputs inside a shared-snapshot decision scope.
        staged = []  # (indices, config key, _Staged)
        jobs = []
        for key, idxs in configs.items():
            answer = state.answers.get(key)
            if answer is not None:
                # This configuration was already decided at this pool
                # state — the decision is a pure function of (config,
                # snapshot), so the earlier answer *is* the answer.
                if tracer.enabled:
                    tracer.metrics.counter("service.reuse.answer_hits").inc()
                for i in idxs:
                    answers[i] = answer
                continue
            st = state.staged.get(key)
            if st is None:
                agent = self._agent(requests[idxs[0]], key)
                planner = self._strip_planner(agent)
                batchable = (
                    agent._fast
                    and planner is not None
                    and hasattr(agent.estimator, "objective_from_prediction")
                )
                if not batchable:
                    # Sequential answer under the shared snapshot — still
                    # one solo decision, bit-identical by snapshot purity.
                    # The agent's own vectorised path may still engage here
                    # (e.g. a service gate the solo gate doesn't share);
                    # count whichever path answered.
                    if tracer.enabled:
                        tracer.metrics.counter("service.scalar_configs").inc()
                    decision = agent.schedule(snapshot=snapshot)
                    if tracer.enabled:
                        self._count_solo(tracer, decision.vectorised)
                    answer = ServiceAnswer.from_decision(decision, at=at)
                    state.answers[key] = answer
                    for i in idxs:
                        answers[i] = answer
                    continue
                csets = agent.selector.candidate_sets(agent.info)
                if not csets:
                    raise RuntimeError(
                        "Resource Selector produced no candidate sets "
                        "(User Specification too restrictive?)"
                    )
                # One membership matrix per request, shared by the bounds
                # computation and the batched evaluator (pool-name order
                # here, permuted to locality-rank order below).
                names = agent.info.pool.machine_names()
                name_masks = member_masks_over(csets, names)
                with agent.info.decision_scope(
                    snapshot, reuse=state.decisions.get(key)
                ) as cache:
                    state.decisions[key] = cache
                    bounds = self._bounds(agent, planner, csets, name_masks)
                    inputs = planner.batch_inputs(agent.info)
                name_index = {m: k for k, m in enumerate(names)}
                perm = np.array([name_index[m] for m in inputs.rank_names])
                st = _Staged(
                    agent, planner, csets, bounds, inputs, name_masks[:, perm]
                )
                state.staged[key] = st
            elif tracer.enabled:
                tracer.metrics.counter("service.reuse.staged_hits").inc()
            staged.append((idxs, key, st))
            jobs.append((st.inputs, st.perm_masks))

        # Phase B: one vectorised evaluation over every candidate set of
        # every staged request, then per-request sweep replays.
        evaluations = evaluate_strip_batch(jobs)
        if tracer.enabled and evaluations:
            surrendered = sum(
                int(np.count_nonzero(ev.fallback)) for ev in evaluations
            )
            total_rows = sum(len(ev.fallback) for ev in evaluations)
            tracer.metrics.counter("service.batched_configs").inc(
                len(evaluations)
            )
            tracer.metrics.counter("service.rows_vectorised").inc(
                total_rows - surrendered
            )
            tracer.metrics.counter("service.rows_surrendered").inc(surrendered)
            tracer.event(
                "service.evaluate_batch", layer="service", t=at,
                configs=len(evaluations), rows=total_rows,
                surrendered=surrendered,
            )
        for (idxs, key, st), ev in zip(staged, evaluations):
            agent = st.agent
            with agent.info.decision_scope(
                snapshot, reuse=state.decisions.get(key)
            ) as cache:
                state.decisions[key] = cache
                begin = getattr(agent.planner, "begin_decision", None)
                end = getattr(agent.planner, "end_decision", None)
                if begin is not None:
                    begin(agent.info)
                try:
                    answer = self._sweep(
                        agent, st.csets, st.bounds, st.inputs, ev, at
                    )
                finally:
                    if end is not None:
                        end(agent.info)
            state.answers[key] = answer
            if tracer.enabled:
                # Each batched config is one solo decision answered by the
                # vectorised core — same instrument as the scalar branch.
                self._count_solo(tracer, True)
            for i in idxs:
                answers[i] = answer

    @staticmethod
    def _bounds(agent, planner, csets, name_masks) -> list[float] | None:
        """``AppLeSAgent._lower_bounds`` with the membership matrix reused.

        Delegates to the canonical :func:`repro.core.sweep.objective_bounds`
        — the same helper the Coordinator's vectorised solo path uses.
        """
        return objective_bounds(agent, planner, csets, member_mask=name_masks)

    def _sweep(self, agent, csets, bounds, inputs, ev, at) -> ServiceAnswer:
        """Replay the Coordinator's prune-and-choose loop on batched results.

        One call into the canonical sweep core
        (:mod:`repro.core.sweep`): a :class:`BatchedObjective` scores each
        candidate from the batched evaluation (planning surrendered rows
        with the scalar planner, inside the same decision scope),
        :func:`replay_sweep` reproduces the seed/incumbent/pruning
        sequence, and :func:`materialise_winner` plans and cross-checks
        the winner — the identical code path the vectorised solo
        ``schedule()`` runs, so solo and batched answers cannot drift.
        """
        objective = BatchedObjective(agent, csets, inputs, ev)
        result = replay_sweep(len(csets), bounds, objective)
        best = materialise_winner(agent, csets, result)
        stats = result.stats(bounds is not None)
        tracer = get_tracer()
        if tracer.enabled:
            # Batched decisions land in the same instruments as solo ones —
            # one pruning history regardless of which path answered.
            record_pruning_stats(tracer.metrics, stats)
            tracer.event(
                "service.decision", layer="service", t=at,
                candidates=stats.candidates, pruned=stats.pruned,
                best_objective=result.best_objective,
            )
        return ServiceAnswer(
            best=best,
            best_objective=result.best_objective,
            metric=agent.info.userspec.performance_metric,
            pruning=stats,
            at=at,
        )

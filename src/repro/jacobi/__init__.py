"""Jacobi2D: the paper's preliminary-results application (§5).

Jacobi2D solves the finite-difference approximation to Poisson's equation
on an N×N grid by iterating a five-point-stencil average.  "All data are
updated simultaneously and all processors operate concurrently, hence the
partitioning problem and the scheduling problem for Jacobi2D are the same."

Modules:

- :mod:`repro.jacobi.grid` — problem definition and HAT factory,
- :mod:`repro.jacobi.solver` — vectorised reference solver,
- :mod:`repro.jacobi.partition` — strip/blocked partition geometry,
- :mod:`repro.jacobi.cost` — the paper's ``T_i = A_i * P_i + C_i`` model,
- :mod:`repro.jacobi.apples` — the Jacobi2D AppLeS agent and the
  compile-time baseline planners it is compared against,
- :mod:`repro.jacobi.runtime` — KeLP-like execution: numeric sweeps over
  the partition plus simulated timing.
"""

from repro.jacobi.adaptive import (
    AdaptiveJacobiRunner,
    AdaptiveResult,
    RescheduleEvent,
    migration_cost_s,
)
from repro.jacobi.apples import (
    ApplesBlockedPlanner,
    BlockedPlanner,
    PreferencePlanner,
    JacobiPlanner,
    StaticStripPlanner,
    UniformStripPlanner,
    make_jacobi_agent,
)
from repro.jacobi.cost import StripCostModel, strip_comm_seconds
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.partition import (
    Block,
    generalized_block_partition,
    BlockPartition,
    Strip,
    StripPartition,
    apples_strip,
    blocked_partition,
    nonuniform_strip,
    uniform_strip,
)
from repro.jacobi.runtime import (
    assignments_from_schedule,
    execute_block_partition,
    execute_strip_partition,
    simulated_execution,
)
from repro.jacobi.solver import jacobi_reference, make_test_grid, residual_norm, solve_until

__all__ = [
    "AdaptiveJacobiRunner",
    "AdaptiveResult",
    "RescheduleEvent",
    "migration_cost_s",
    "JacobiProblem",
    "jacobi_hat",
    "jacobi_reference",
    "make_test_grid",
    "residual_norm",
    "solve_until",
    "Strip",
    "StripPartition",
    "Block",
    "BlockPartition",
    "uniform_strip",
    "nonuniform_strip",
    "apples_strip",
    "blocked_partition",
    "StripCostModel",
    "strip_comm_seconds",
    "JacobiPlanner",
    "StaticStripPlanner",
    "UniformStripPlanner",
    "BlockedPlanner",
    "ApplesBlockedPlanner",
    "PreferencePlanner",
    "generalized_block_partition",
    "make_jacobi_agent",
    "execute_strip_partition",
    "execute_block_partition",
    "assignments_from_schedule",
    "simulated_execution",
]

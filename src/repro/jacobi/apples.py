"""The Jacobi2D AppLeS agent and its compile-time rivals.

Four planners, matching the schedulers compared in Figures 3–6:

- :class:`JacobiPlanner` — the AppLeS strip planner: time-balanced areas
  from NWS forecasts, memory-capacity aware, locality-ordered strips.
  "AppLeS seeks to balance time directly using dynamic and more precise
  information about CPU speed, current and predicted machine and network
  loads ..., memory availability, etc." (§5)
- :class:`StaticStripPlanner` — the Figure 4 baseline: non-uniform strips
  from *nominal* CPU speed and bandwidth, fixed at compile time.
- :class:`UniformStripPlanner` — equal strips (the naive hand schedule).
- :class:`BlockedPlanner` — the HPF Uniform/Blocked baseline: equal 2-D
  tiles over all machines, no dynamic information, no memory model.

All planners emit :class:`~repro.core.schedule.Schedule` objects whose
metadata carries the concrete partition geometry, so the runtime can both
execute the numerics and charge simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.coordinator import AppLeSAgent
from repro.core.infopool import InformationPool
from repro.core.planner import (
    balance_divisible_work,
    balance_divisible_work_batched,
    balance_prefix_exact_batched,
)
from repro.core.resources import ResourcePool
from repro.core.schedule import Allocation, Schedule
from repro.core.selector import ResourceSelector
from repro.core.userspec import UserSpecification
from repro.jacobi.cost import StripCostModel, batched_neighbor_comm_costs
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.partition import (
    BlockPartition,
    StripPartition,
    apples_strip,
    batched_largest_remainder_rows,
    blocked_partition,
    generalized_block_partition,
    nonuniform_strip,
    uniform_strip,
)
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import Testbed

__all__ = [
    "locality_order",
    "batched_locality_orders",
    "member_masks_over",
    "ApplesBlockedPlanner",
    "PreferencePlanner",
    "JacobiPlanner",
    "StaticStripPlanner",
    "UniformStripPlanner",
    "BlockedPlanner",
    "StripBatchInputs",
    "StripBatchEvaluation",
    "evaluate_strip_batch",
    "make_jacobi_agent",
    "schedule_from_strip_partition",
]

# Planner-internal iteration bound (membership can change at most once per
# machine).
_MAX_REPLAN = 32


def locality_order(pool: ResourcePool, machines: Sequence[str]) -> list[str]:
    """Order machines so strip neighbours are network-close.

    Grouping by ``(site, arch, name)`` places machines sharing a segment
    next to each other in every canned testbed, minimising the number of
    borders that cross slow links — the strip-ordering half of the
    application-specific locality notion of §3.3.
    """
    return sorted(
        machines,
        key=lambda m: (
            pool.machine_info(m).site,
            pool.machine_info(m).arch,
            m,
        ),
    )


def batched_locality_orders(masks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Strip orders for many candidate sets at once.

    ``masks`` is a boolean ``(m, n)`` matrix over a machine universe
    *already sorted by locality rank* (``locality_order`` of the full
    pool).  Because the locality key is a strict total order, the strip
    order of any subset is simply its members in ascending rank — so one
    stable argsort that moves members ahead of non-members recovers, for
    every row at once, exactly what :func:`locality_order` returns for
    that row's member set.

    Returns ``(order_idx, counts)``: ``order_idx[i, j]`` is the rank-space
    machine index of row ``i``'s ``j``-th strip member (slots at and
    beyond ``counts[i]`` are padding, ascending over the non-members).
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError("masks must be (m, n)")
    order_idx = np.argsort(~masks, axis=1, kind="stable")
    counts = masks.sum(axis=1)
    return order_idx, counts


def _locality_ranked(info: InformationPool, machines: list[str]) -> list[str]:
    """``locality_order`` with a per-decision rank memo.

    The locality key is a *total* order over the pool, so sorting a subset
    by the full-pool rank yields exactly ``locality_order``'s result while
    avoiding two ``machine_info`` constructions per comparison.  Outside a
    decision (or for machines outside the pool) this falls back to the
    direct sort.
    """
    cache = info.decision_cache
    if cache is None:
        return locality_order(info.pool, machines)
    rank = cache.memo.get("locality-rank")
    if rank is None:
        rank = {
            m: i
            for i, m in enumerate(
                locality_order(info.pool, info.pool.machine_names())
            )
        }
        cache.memo["locality-rank"] = rank
    try:
        return sorted(machines, key=rank.__getitem__)
    except KeyError:
        return locality_order(info.pool, machines)


def _availability_risk(machines: Sequence[str], info: InformationPool) -> float:
    """Worst relative availability-forecast error across ``machines``.

    A barrier step is the max over members, so a set's volatility exposure
    is its worst member's ``error / availability``.  Reads the decision
    snapshot when one is active (identical values, no per-call NWS query).
    """
    cache = info.decision_cache
    snap = cache.snapshot if cache is not None else None
    worst = 0.0
    for m in machines:
        if snap is not None and m in snap.availability:
            avail = snap.availability[m]
            err = snap.availability_error[m]
        else:
            avail = info.pool.predicted_availability(m)
            err = info.pool.predicted_availability_error(m)
        if avail > 0:
            worst = max(worst, err / max(avail, 0.05))
    return worst


def _member_risks(names: Sequence[str], info: InformationPool) -> list[float]:
    """Per-machine relative availability-forecast error (vector form).

    The per-member terms of :func:`_availability_risk`: a set's risk is the
    max over its members, so the min over any superset's members is an
    admissible lower bound on the risk of whatever subset a planner keeps.
    """
    cache = info.decision_cache
    snap = cache.snapshot if cache is not None else None
    risks = []
    for m in names:
        if snap is not None and m in snap.availability:
            avail = snap.availability[m]
            err = snap.availability_error[m]
        else:
            avail = info.pool.predicted_availability(m)
            err = info.pool.predicted_availability_error(m)
        risks.append(err / max(avail, 0.05) if avail > 0 else 0.0)
    return risks


def schedule_from_strip_partition(
    partition: StripPartition,
    problem: JacobiProblem,
    model: StripCostModel,
    decomposition: str,
) -> Schedule:
    """Wrap a concrete strip partition as a Schedule (prediction from ``model``)."""
    exchange = problem.border_exchange_bytes()
    strips = partition.strips
    fast = getattr(model, "_fast", False)
    allocations = []
    for idx, strip in enumerate(strips):
        if fast:
            # Direct index arithmetic instead of partition.neighbors(),
            # whose name lookup is a linear scan (quadratic over the set).
            comm = {}
            if idx > 0:
                comm[strips[idx - 1].machine] = exchange
            if idx + 1 < len(strips):
                comm[strips[idx + 1].machine] = exchange
        else:
            comm = {nbr: exchange for nbr in partition.neighbors(strip.machine)}
        area = strip.row_count * partition.n
        allocations.append(
            Allocation(
                machine=strip.machine,
                task="sweep",
                work_units=float(area),
                footprint_mb=problem.footprint_mb(area),
                comm_bytes=comm,
            )
        )
    return Schedule(
        allocations=allocations,
        predicted_time=model.execution_time(partition),
        decomposition=decomposition,
        metadata={"partition": partition, "problem": problem},
    )


class JacobiPlanner:
    """The AppLeS Jacobi2D strip planner (§5 blueprint step 2).

    For a candidate resource set: order machines by locality, predict each
    machine's point rate (NWS availability × nominal speed) and border
    cost, then balance *time* across the set, honouring real-memory
    capacities.  Machines that the balance drops (their border cost
    exceeds the balanced step time) are removed and the plan re-derived —
    the planner performs fine-grained resource selection of its own, which
    is why AppLeS sometimes schedules on a strict subset of a candidate
    set.
    """

    def __init__(
        self,
        problem: JacobiProblem,
        account_memory: bool = True,
        conservatism_sigmas: float = 1.0,
        risk_aversion: float = 2.0,
    ) -> None:
        self.problem = problem
        self.account_memory = account_memory
        if conservatism_sigmas < 0 or risk_aversion < 0:
            raise ValueError("conservatism_sigmas and risk_aversion must be >= 0")
        # How many forecast-error sigmas to discount each machine's rate by
        # when sizing its share (robust allocation) ...
        self.conservatism_sigmas = conservatism_sigmas
        # ... and how strongly candidate schedules are penalised for using
        # volatile machines when *predicting* their time (robust selection).
        # A barrier step is the max over members, so a set's exposure is its
        # worst member's relative forecast error.
        self.risk_aversion = risk_aversion

    def _risk(self, machines: Sequence[str], info: InformationPool) -> float:
        return _availability_risk(machines, info)

    def _model(self, info: InformationPool) -> StripCostModel:
        """The cost model — memoised per decision, snapshot-backed.

        Outside a decision (reference path) a fresh model is built per
        call, matching the seed implementation exactly.
        """
        cache = info.decision_cache
        if cache is None:
            return StripCostModel(
                info.pool, self.problem, self.account_memory,
                conservatism_sigmas=self.conservatism_sigmas,
            )
        key = ("jacobi-model", id(self))
        model = cache.memo.get(key)
        if model is None:
            model = StripCostModel(
                info.pool, self.problem, self.account_memory,
                conservatism_sigmas=self.conservatism_sigmas,
                snapshot=cache.snapshot,
            )
            cache.memo[key] = model
        return model

    def lower_bounds(
        self,
        candidate_sets: Sequence[Sequence[str]],
        info: InformationPool,
        member_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Admissible predicted-time lower bound per candidate set.

        ``member_mask`` optionally supplies the ``(m, n)`` membership
        matrix over ``info.pool.machine_names()`` (unusable members are
        filtered here either way) — the scheduling service builds it once
        per request and shares it with the batched evaluator, skipping the
        per-set Python loop below.  Values are unchanged.

        The planner may keep any non-empty subset of a candidate set, so
        the bound is the minimum of two relaxations that together cover
        every kept subset:

        * **Singleton**: a kept set of size 1 pays ``U / rate + sync`` per
          iteration, times that machine's exact risk multiplier (memory
          slowdown ``>= 1`` is dropped).  Bound: min over members.
        * **Multi-machine**: a kept set of size >= 2 gives every member at
          least one strip neighbour *inside the candidate set*, so each
          member's fixed cost is at least ``sync`` plus its cheapest border
          exchange with any other member.  The uncapacitated water-fill
          with those floor costs is monotone under supersets and
          cost-lowering, so it never exceeds the kept subset's true
          balanced time; the risk multiplier is bounded below by the
          minimum member risk.

        Each relaxation only lowers the value, so the bound never exceeds
        the true predicted time and pruning on it cannot change the
        Coordinator's choice.
        """
        model = self._model(info)
        names = info.pool.machine_names()
        n = len(names)
        index = {nm: j for j, nm in enumerate(names)}
        rates = np.array([model.point_rate(nm) for nm in names])
        usable = rates > 0.0
        if member_mask is not None:
            mask = np.asarray(member_mask, dtype=bool) & usable[None, :]
        else:
            mask = np.zeros((len(candidate_sets), n), dtype=bool)
            for i, rset in enumerate(candidate_sets):
                for m in rset:
                    j = index.get(m)
                    if j is not None and usable[j]:
                        mask[i, j] = True
        safe_rates = np.where(usable, rates, 1.0)
        total = float(self.problem.total_points)
        iters = self.problem.iterations
        sync = model.sync_overhead_s
        risks = np.asarray(_member_risks(names, info))

        # Singleton relaxation (exact per-machine risk).
        with np.errstate(divide="ignore"):
            single = (total / np.where(usable, rates, np.inf) + sync) * iters
        single *= 1.0 + self.risk_aversion * risks
        single_lb = np.where(mask, single[None, :], np.inf).min(axis=1)

        # Multi-machine relaxation: per-set per-member border-cost floors.
        # The pairwise matrix is shared with batch_inputs via the model's
        # memo; only member columns are read below (mask excludes unusable
        # machines), so the diagonal is the single entry that differs from
        # a neighbour cost — a machine is never its own strip neighbour,
        # and an inf diagonal keeps singleton members on the singleton
        # relaxation exactly as the original per-pair loop did.
        pair = model.comm_cost_matrix(names).copy()
        np.fill_diagonal(pair, np.inf)
        # floors[i, m] = min border exchange from m to any other member of
        # set i (inf for singleton members — the singleton bound covers
        # them, and inf marks them unusable in the water-fill).
        floors = np.where(mask[:, None, :], pair[None, :, :], np.inf).min(axis=2)
        costs = sync + floors
        result = balance_divisible_work_batched(safe_rates, costs, total, mask)
        min_risk = np.where(mask, risks, np.inf).min(axis=1)
        min_risk = np.where(np.isfinite(min_risk), min_risk, 0.0)
        multi_lb = (
            result.makespans * iters * (1.0 + self.risk_aversion * min_risk)
        )
        return np.minimum(single_lb, multi_lb)

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        model = self._model(info)
        order = _locality_ranked(info, list(resource_set))
        order = [m for m in order if model.point_rate(m) > 0.0]
        if not order:
            return None
        total = float(self.problem.total_points)

        # Plan-continuation memo: from a given machine order onward, plan()
        # is a deterministic function of that order alone — many candidate
        # sets drop members and converge onto the same ordered subset, so
        # their continuations (and final schedules) are shared.  Only valid
        # while the pool is frozen, i.e. inside a decision.
        cache = info.decision_cache
        memo = cache.memo if cache is not None else None
        visited: list[tuple[str, ...]] = []

        def _finish(schedule: Schedule | None) -> Schedule | None:
            if memo is not None:
                for key_order in visited:
                    memo[("jacobi-plan", id(self), key_order)] = schedule
            return schedule

        for _ in range(_MAX_REPLAN):
            if memo is not None:
                key = ("jacobi-plan", id(self), tuple(order))
                if key in memo:
                    hit = memo[key]
                    if visited:  # propagate to the orders that led here
                        _finish(hit)
                    if hit is None:
                        return None
                    # Fresh object per evaluation (value-identical): rows in
                    # decision.evaluations must not alias one another.
                    return replace(hit)
                visited.append(tuple(order))
            rates = [model.point_rate(m) for m in order]
            costs = model.comm_costs(order)
            # A machine reachable only over a dead link shows an infinite
            # border cost; drop it and re-derive (its neighbours' costs
            # change) rather than letting the balance collapse.
            if any(c == float("inf") for c in costs):
                if len(order) == 1:
                    return _finish(None)
                worst = max(range(len(order)), key=lambda i: costs[i])
                order.pop(worst)
                continue
            caps = (
                [model.capacity_points(m) for m in order]
                if self.account_memory
                else None
            )
            result = balance_divisible_work(rates, costs, total, caps)
            if result is None:
                return _finish(None)
            kept = [m for m, a in zip(order, result.allocations) if a > 0.0]
            if not kept:
                return _finish(None)
            if kept == order:
                areas = result.allocations
                break
            order = kept  # membership changed; neighbour costs change too
        else:  # pragma: no cover - structurally bounded
            raise RuntimeError("Jacobi planner failed to converge")

        max_rows = (
            [int(model.capacity_points(m) // self.problem.n) for m in order]
            if self.account_memory
            else None
        )
        partition = apples_strip(self.problem.n, order, areas, max_rows)
        schedule = schedule_from_strip_partition(
            partition, self.problem, model, "apples-strip"
        )
        schedule.predicted_time *= 1.0 + self.risk_aversion * self._risk(
            partition.machines, info
        )
        _finish(schedule)
        return schedule

    def batch_planner(self, info: InformationPool) -> "JacobiPlanner":
        """Opt in to the one-shot batched sweep: the strip planner batches
        itself (see :func:`repro.core.sweep.resolve_batch_planner`)."""
        return self

    def batch_inputs(self, info: InformationPool) -> "StripBatchInputs":
        """Rank-space arrays for :func:`evaluate_strip_batch`.

        Captures everything :meth:`plan` reads per candidate — point
        rates, memory capacities, the pairwise border-transfer matrix,
        member risks — once per (planner, decision), in locality-rank
        order so batched candidate masks can be evaluated without any
        per-candidate queries.  Values come from the same decision-scoped
        model (and snapshot memo) the scalar path uses, so they are the
        *same floats*; inside a decision the whole bundle is memoised, so
        repeated stagings at one pool state (the daemon's reuse layer)
        rebuild nothing.
        """
        cache = info.decision_cache
        key = ("jacobi-batch-inputs", id(self))
        if cache is not None:
            memo = cache.memo.get(key)
            if memo is not None:
                return memo
        model = self._model(info)
        rank_names = locality_order(info.pool, info.pool.machine_names())
        rates = np.array([model.point_rate(m) for m in rank_names])
        caps = (
            np.array([model.capacity_points(m) for m in rank_names])
            if self.account_memory
            else None
        )
        avail_mb = np.array(
            [info.pool.machine_info(m).memory_available_mb for m in rank_names]
        )
        inputs = StripBatchInputs(
            planner=self,
            rank_names=tuple(rank_names),
            rates=rates,
            caps=caps,
            avail_mb=avail_mb,
            pair=model.comm_cost_matrix(rank_names),
            sync_overhead_s=model.sync_overhead_s,
            total_points=float(self.problem.total_points),
            grid_n=self.problem.n,
            bytes_per_point=float(self.problem.bytes_per_point),
            iterations=self.problem.iterations,
            risk_aversion=self.risk_aversion,
            risks=np.asarray(_member_risks(rank_names, info)),
            account_memory=self.account_memory,
        )
        if cache is not None:
            cache.memo[key] = inputs
        return inputs


@dataclass(frozen=True)
class StripBatchInputs:
    """One request's strip-planning ingredients in locality-rank space.

    Produced by :meth:`JacobiPlanner.batch_inputs`; consumed (possibly
    stacked with other requests') by :func:`evaluate_strip_batch`.
    """

    planner: "JacobiPlanner"
    rank_names: tuple[str, ...]
    rates: np.ndarray  # (n,) points/s per machine, 0 = unusable
    caps: np.ndarray | None  # (n,) capacity points, None when memory-blind
    avail_mb: np.ndarray  # (n,) real memory available per machine
    pair: np.ndarray  # (n, n) one-border transfer seconds
    sync_overhead_s: float
    total_points: float
    grid_n: int
    bytes_per_point: float
    iterations: int
    risk_aversion: float
    risks: np.ndarray  # (n,) member availability risks
    account_memory: bool

    def member_mask(self, resource_set: Sequence[str]) -> np.ndarray:
        """Rank-space member mask for one candidate set (usable members)."""
        return member_masks_over([resource_set], self.rank_names)[0]

    def member_masks(self, candidate_sets: Sequence[Sequence[str]]) -> np.ndarray:
        """Rank-space member masks for many candidate sets, ``(m, n)``."""
        return member_masks_over(candidate_sets, self.rank_names)


def member_masks_over(
    candidate_sets: Sequence[Sequence[str]], names: Sequence[str]
) -> np.ndarray:
    """``(m, n)`` membership matrix of ``candidate_sets`` over ``names``.

    One flat scatter instead of a per-set Python loop — with thousands of
    candidate sets the loop is a measurable slice of a whole batched
    decision.  Unknown machine names are simply absent from the mask,
    matching the per-set lookup the planners do themselves.
    """
    index = {m: j for j, m in enumerate(names)}
    m_sets = len(candidate_sets)
    masks = np.zeros((m_sets, len(names)), dtype=bool)
    lens = np.fromiter(
        (len(rset) for rset in candidate_sets), dtype=np.int64, count=m_sets
    )
    total = int(lens.sum())
    if total == 0:
        return masks
    rows = np.repeat(np.arange(m_sets), lens)
    cols = np.fromiter(
        (index.get(nm, -1) for rset in candidate_sets for nm in rset),
        dtype=np.int64,
        count=total,
    )
    known = cols >= 0
    masks[rows[known], cols[known]] = True
    return masks


@dataclass(frozen=True)
class StripBatchEvaluation:
    """Per-candidate outcomes of one job inside :func:`evaluate_strip_batch`.

    ``predicted`` is only meaningful where ``feasible & ~fallback``; rows
    flagged ``fallback`` must be answered by the scalar planner (the
    batched core refuses to approximate them), and infeasible rows mirror
    ``plan() is None``.
    """

    feasible: np.ndarray  # (m,) plan produces a schedule
    fallback: np.ndarray  # (m,) answer with the scalar planner
    predicted: np.ndarray  # (m,) risk-adjusted predicted time
    kept: np.ndarray  # (m, n) final member mask, rank space


# Structural bound on batched re-plan passes: membership shrinks by at
# least one machine per pass per row, matching the scalar _MAX_REPLAN.
_MAX_BATCH_PASSES = _MAX_REPLAN


def evaluate_strip_batch(
    jobs: Sequence[tuple[StripBatchInputs, np.ndarray]],
    chunk_rows: int = 32768,
) -> list[StripBatchEvaluation]:
    """Evaluate the candidate sets of many scheduling requests at once.

    ``jobs`` pairs each request's :class:`StripBatchInputs` with its
    ``(m_j, n)`` rank-space candidate masks.  All rows of all jobs are
    stacked into one index space and driven through NumPy replicas of the
    scalar plan pipeline — locality orders, neighbour comm costs, the
    drop/re-balance fixpoint, largest-remainder integerisation, and the
    risk-adjusted step-time prediction — in chunks of ``chunk_rows`` to
    bound peak memory.

    Bit-identity contract: every number produced for a row either equals
    the scalar ``JacobiPlanner.plan`` result for that candidate set
    exactly, or the row is flagged ``fallback`` and carries no number at
    all.  The vector code only takes arithmetic paths whose float
    semantics match the scalar code operation-for-operation (documented
    inline); every input class it cannot certify — reference water-fill
    fallbacks, binding capacities, paging slowdowns, apportionment
    overshoot — is surrendered to the scalar planner rather than
    approximated.
    """
    if not jobs:
        return []
    n = len(jobs[0][0].rank_names)
    for inputs, masks in jobs:
        if len(inputs.rank_names) != n or masks.shape[1] != n:
            raise ValueError("all jobs must share one machine universe size")

    if len(jobs) == 1:
        # Single-job lane (the Coordinator's vectorised solo decision):
        # no cross-job stacking — per-job arrays are viewed with a length-1
        # leading axis instead of copied through np.stack, and the row→job
        # map is all zeros.  Same arrays, same floats, less batching tax.
        inputs, masks = jobs[0]
        job_rates = inputs.rates[None]
        job_caps = (
            inputs.caps if inputs.caps is not None else np.full(n, np.inf)
        )[None]
        job_avail = inputs.avail_mb[None]
        job_pair = inputs.pair[None]
        job_risks = inputs.risks[None]
        job_sync = np.array([inputs.sync_overhead_s])
        job_total = np.array([inputs.total_points])
        job_grid = np.array([inputs.grid_n], dtype=np.int64)
        job_bytes = np.array([inputs.bytes_per_point])
        job_iters = np.array([float(inputs.iterations)])
        job_ra = np.array([inputs.risk_aversion])
        job_memory = np.array([inputs.account_memory])
        all_masks = np.asarray(masks, dtype=bool)
        job_of = np.zeros(len(all_masks), dtype=np.int64)
    else:
        job_rates = np.stack([inputs.rates for inputs, _ in jobs])
        job_caps = np.stack(
            [
                inputs.caps if inputs.caps is not None else np.full(n, np.inf)
                for inputs, _ in jobs
            ]
        )
        job_avail = np.stack([inputs.avail_mb for inputs, _ in jobs])
        job_pair = np.stack([inputs.pair for inputs, _ in jobs])
        job_risks = np.stack([inputs.risks for inputs, _ in jobs])
        job_sync = np.array([inputs.sync_overhead_s for inputs, _ in jobs])
        job_total = np.array([inputs.total_points for inputs, _ in jobs])
        job_grid = np.array([inputs.grid_n for inputs, _ in jobs], dtype=np.int64)
        job_bytes = np.array([inputs.bytes_per_point for inputs, _ in jobs])
        job_iters = np.array([float(inputs.iterations) for inputs, _ in jobs])
        job_ra = np.array([inputs.risk_aversion for inputs, _ in jobs])
        job_memory = np.array([inputs.account_memory for inputs, _ in jobs])

        all_masks = np.concatenate(
            [np.asarray(masks, dtype=bool) for _, masks in jobs]
        )
        job_of = np.concatenate(
            [
                np.full(len(masks), j, dtype=np.int64)
                for j, (_, masks) in enumerate(jobs)
            ]
        )

    total_rows = all_masks.shape[0]
    feasible = np.zeros(total_rows, dtype=bool)
    fallback = np.zeros(total_rows, dtype=bool)
    predicted = np.full(total_rows, np.inf)
    kept_out = np.zeros((total_rows, n), dtype=bool)

    for lo in range(0, total_rows, chunk_rows):
        hi = min(lo + chunk_rows, total_rows)
        _evaluate_chunk(
            all_masks[lo:hi],
            job_of[lo:hi],
            job_rates,
            job_caps,
            job_avail,
            job_pair,
            job_risks,
            job_sync,
            job_total,
            job_grid,
            job_bytes,
            job_iters,
            job_ra,
            job_memory,
            feasible[lo:hi],
            fallback[lo:hi],
            predicted[lo:hi],
            kept_out[lo:hi],
        )

    results = []
    start = 0
    for _, masks in jobs:
        stop = start + len(masks)
        results.append(
            StripBatchEvaluation(
                feasible=feasible[start:stop],
                fallback=fallback[start:stop],
                predicted=predicted[start:stop],
                kept=kept_out[start:stop],
            )
        )
        start = stop
    return results


def _evaluate_chunk(
    masks,
    job_of,
    job_rates,
    job_caps,
    job_avail,
    job_pair,
    job_risks,
    job_sync,
    job_total,
    job_grid,
    job_bytes,
    job_iters,
    job_ra,
    job_memory,
    feasible,
    fallback,
    predicted,
    kept_out,
):
    """One chunk of :func:`evaluate_strip_batch` (results written in place)."""
    m, n = masks.shape
    slots = np.arange(n)[None, :]
    rates_rows = job_rates[job_of]
    # The scalar plan first filters members predicted to deliver nothing.
    member = masks & (rates_rows > 0.0)

    pending = np.ones(m, dtype=bool)
    done = np.zeros(m, dtype=bool)
    areas_rank = np.zeros((m, n))

    for _ in range(_MAX_BATCH_PASSES):
        rows = np.nonzero(pending)[0]
        if rows.size == 0:
            break
        sub = member[rows]
        cnt = sub.sum(axis=1)
        sub_jobs = job_of[rows]

        # Rows whose member list emptied: plan() returns None.
        empty = cnt == 0
        if np.any(empty):
            pending[rows[empty]] = False

        order_idx, _ = batched_locality_orders(sub)
        valid = slots < cnt[:, None]
        costs_c = batched_neighbor_comm_costs(
            job_pair, order_idx, cnt, job_sync[sub_jobs], row_pair=sub_jobs
        )
        rate_c = np.where(
            valid, np.take_along_axis(job_rates[sub_jobs], order_idx, axis=1), 0.0
        )

        # Dead links: drop the single worst-cost member and re-derive, or
        # give up on a singleton — exactly the scalar branch.
        member_inf = np.isinf(costs_c) & valid
        has_inf = member_inf.any(axis=1) & ~empty
        if np.any(has_inf):
            single = has_inf & (cnt == 1)
            pending[rows[single]] = False  # plan() returns None
            multi = has_inf & ~single
            if np.any(multi):
                mrows = np.nonzero(multi)[0]
                # First occurrence of the maximum — Python's max() tie-break.
                worst = np.argmax(costs_c[mrows], axis=1)
                drop_rank = order_idx[mrows, worst]
                member[rows[mrows], drop_rank] = False
            # Dropping leaves the row pending for the next pass.

        bal = ~has_inf & ~empty
        if not np.any(bal):
            continue
        brows = np.nonzero(bal)[0]
        res = balance_prefix_exact_batched(
            rate_c[brows], costs_c[brows], job_total[sub_jobs[brows]]
        )
        needs_ref = res.needs_reference.copy()

        # Binding capacities send the scalar path to the reference loop.
        caps_c = np.take_along_axis(job_caps[sub_jobs[brows]], order_idx[brows], axis=1)
        mem_rows = job_memory[sub_jobs[brows]]
        over_cap = (
            res.active & (res.allocations > caps_c + 1e-9)
        ).any(axis=1) & mem_rows
        needs_ref |= over_cap

        gidx = rows[brows]
        fallback[gidx[needs_ref]] = True
        pending[gidx[needs_ref]] = False

        ok = ~needs_ref
        if not np.any(ok):
            continue
        orows = np.nonzero(ok)[0]
        alloc = res.allocations[orows]
        kept_c = res.active[orows] & (alloc > 0.0)
        kvalid = valid[brows][orows]
        none_kept = ~kept_c.any(axis=1)
        converged = ~(kvalid & ~kept_c).any(axis=1) & ~none_kept

        g2 = gidx[orows]
        pending[g2[none_kept]] = False  # plan() returns None

        # Non-converged rows shrink to their kept members and re-derive.
        shrink = ~converged & ~none_kept
        if np.any(shrink):
            srows = np.nonzero(shrink)[0]
            new_member = np.zeros((srows.size, n), dtype=bool)
            np.put_along_axis(
                new_member, order_idx[brows][orows][srows], kept_c[srows], axis=1
            )
            member[g2[srows]] = new_member

        if np.any(converged):
            crows = np.nonzero(converged)[0]
            scatter = np.zeros((crows.size, n))
            np.put_along_axis(
                scatter, order_idx[brows][orows][crows], alloc[crows], axis=1
            )
            areas_rank[g2[crows]] = scatter
            kept_scatter = np.zeros((crows.size, n), dtype=bool)
            np.put_along_axis(
                kept_scatter, order_idx[brows][orows][crows], kept_c[crows], axis=1
            )
            member[g2[crows]] = kept_scatter
            done[g2[crows]] = True
            pending[g2[crows]] = False
    else:
        # Rows still pending after the structural bound: let the scalar
        # planner raise (or converge) exactly as solo would.
        fallback[pending] = True
        pending[:] = False

    drows = np.nonzero(done)[0]
    if drows.size == 0:
        return
    _finalise_rows(
        drows,
        member,
        areas_rank,
        job_of,
        job_rates,
        job_caps,
        job_avail,
        job_pair,
        job_risks,
        job_sync,
        job_grid,
        job_bytes,
        job_iters,
        job_ra,
        job_memory,
        feasible,
        fallback,
        predicted,
        kept_out,
    )


def _finalise_rows(
    drows,
    member,
    areas_rank,
    job_of,
    job_rates,
    job_caps,
    job_avail,
    job_pair,
    job_risks,
    job_sync,
    job_grid,
    job_bytes,
    job_iters,
    job_ra,
    job_memory,
    feasible,
    fallback,
    predicted,
    kept_out,
):
    """Integerise converged rows and predict their risk-adjusted times."""
    n = member.shape[1]
    slots = np.arange(n)[None, :]
    sub = member[drows]
    jobs = job_of[drows]
    order_idx, cnt = batched_locality_orders(sub)
    valid = slots < cnt[:, None]
    areas_c = np.where(
        valid, np.take_along_axis(areas_rank[drows], order_idx, axis=1), 0.0
    )
    grid = job_grid[jobs]
    rows_int, exact = batched_largest_remainder_rows(grid, areas_c, cnt)

    bad = ~exact
    # Row caps (the integer image of memory capacity): the scalar path runs
    # an order-dependent overflow shift when a cap binds — surrender those.
    caps_c = np.take_along_axis(job_caps[jobs], order_idx, axis=1)
    mem = job_memory[jobs]
    with np.errstate(invalid="ignore"):  # inf caps on memory-blind rows
        max_rows = np.floor_divide(caps_c, grid[:, None].astype(float))
    bad |= mem & (valid & (rows_int > max_rows)).any(axis=1)

    area_pts = (rows_int * grid[:, None]).astype(float)
    # Paging: rows_int <= max_rows makes every strip fit in real memory, so
    # the scalar slowdown factor is exactly 1.0 — but certify the fits
    # check itself (footprint <= available) rather than assume it.
    foot_mb = area_pts * job_bytes[jobs][:, None] / 1e6
    avail_c = np.take_along_axis(job_avail[jobs], order_idx, axis=1)
    bad |= mem & (valid & (foot_mb > avail_c)).any(axis=1)

    rate_c = np.where(
        valid, np.take_along_axis(job_rates[jobs], order_idx, axis=1), np.inf
    )
    with np.errstate(divide="ignore"):
        p_c = 1.0 / rate_c

    # Neighbour comm per strip: predecessor added before successor, ends
    # adding exactly 0.0 — StripCostModel.step_time's fast loop verbatim.
    prev_idx = np.roll(order_idx, 1, axis=1)
    next_idx = np.roll(order_idx, -1, axis=1)
    rp = jobs[:, None]
    t_prev = job_pair[rp, order_idx, prev_idx]
    t_next = job_pair[rp, order_idx, next_idx]
    has_prev = slots > 0
    has_next = slots < (cnt[:, None] - 1)
    comm = np.where(valid & has_prev, t_prev, 0.0) + np.where(
        valid & has_next, t_next, 0.0
    )
    times = area_pts * p_c + comm + job_sync[jobs][:, None]
    step = np.where(valid, times, -np.inf).max(axis=1)
    pred = step * job_iters[jobs]
    risks_c = np.where(
        valid, np.take_along_axis(job_risks[jobs], order_idx, axis=1), 0.0
    )
    risk = risks_c.max(axis=1, initial=0.0)
    pred = pred * (1.0 + job_ra[jobs] * risk)

    good = ~bad
    gd = drows[good]
    feasible[gd] = True
    predicted[gd] = pred[good]
    kept_out[gd] = sub[good]
    fallback[drows[bad]] = True


class _NominalMixin:
    """Shared helper: a nominal (NWS-free) view of the same topology.

    The compile-time baselines must not see dynamic information even when
    the experiment's Information Pool carries an NWS; they re-wrap the
    topology without it.
    """

    @staticmethod
    def nominal_pool(info: InformationPool) -> ResourcePool:
        return ResourcePool(info.pool.topology, nws=None)


class StaticStripPlanner(_NominalMixin):
    """The Figure 4 baseline: non-uniform strips from nominal capability.

    Strip heights proportional to nominal MFLOP/s ("parameterized by
    (non-uniform) CPU speeds and bandwidth for the workstation network",
    §5); all machines of the resource set participate; computed once at
    compile time, blind to load, contention and memory.
    """

    def __init__(self, problem: JacobiProblem) -> None:
        self.problem = problem

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        nominal = self.nominal_pool(info)
        model = StripCostModel(nominal, self.problem, account_memory=False)
        order = locality_order(nominal, list(resource_set))
        if not order:
            return None
        weights = [nominal.machine_info(m).speed_mflops for m in order]
        partition = nonuniform_strip(self.problem.n, order, weights)
        return schedule_from_strip_partition(partition, self.problem, model, "static-strip")


class UniformStripPlanner(_NominalMixin):
    """Equal strips over all machines of the set — the naive hand schedule."""

    def __init__(self, problem: JacobiProblem) -> None:
        self.problem = problem

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        nominal = self.nominal_pool(info)
        model = StripCostModel(nominal, self.problem, account_memory=False)
        order = locality_order(nominal, list(resource_set))
        if not order:
            return None
        if len(order) > self.problem.n:
            return None
        partition = uniform_strip(self.problem.n, order)
        return schedule_from_strip_partition(partition, self.problem, model, "uniform-strip")


class BlockedPlanner(_NominalMixin):
    """The HPF Uniform/Blocked baseline (Figures 5 and 6).

    Equal 2-D tiles over every machine in the set; "a reasonable choice for
    the user who is trying to optimize the performance of Jacobi2D at
    compile time" — and exactly the schedule that spills memory in
    Figure 6, because HPF's distribution directives carry no memory model.
    """

    def __init__(self, problem: JacobiProblem) -> None:
        self.problem = problem

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        nominal = self.nominal_pool(info)
        order = locality_order(nominal, list(resource_set))
        if not order:
            return None
        if len(order) > self.problem.n:
            return None
        partition = blocked_partition(self.problem.n, order)
        predicted = self._predict(partition, nominal)
        allocations = self._allocations(partition)
        return Schedule(
            allocations=allocations,
            predicted_time=predicted,
            decomposition="hpf-blocked",
            metadata={"partition": partition, "problem": self.problem},
        )

    def _allocations(self, partition: BlockPartition) -> list[Allocation]:
        out = []
        per_point = self.problem.border_bytes_per_point
        for i in range(partition.pr):
            for j in range(partition.pc):
                blk = partition.block_at(i, j)
                comm: dict[str, float] = {}
                for nbr in partition.neighbors(i, j):
                    shared = (
                        blk.col_count
                        if nbr.row_start != blk.row_start
                        else blk.row_count
                    )
                    comm[nbr.machine] = comm.get(nbr.machine, 0.0) + 2.0 * shared * per_point
                out.append(
                    Allocation(
                        machine=blk.machine,
                        task="sweep",
                        work_units=float(blk.area),
                        footprint_mb=self.problem.footprint_mb(blk.area),
                        comm_bytes=comm,
                    )
                )
        return out

    def _predict(self, partition: BlockPartition, nominal: ResourcePool) -> float:
        """Nominal prediction: max over tiles of compute + border time."""
        per_point = self.problem.border_bytes_per_point
        worst = 0.0
        for i in range(partition.pr):
            for j in range(partition.pc):
                blk = partition.block_at(i, j)
                speed = nominal.machine_info(blk.machine).speed_mflops
                compute = (
                    blk.area * self.problem.flop_per_point / speed if speed > 0 else float("inf")
                )
                comm = 0.0
                for nbr in partition.neighbors(i, j):
                    shared = (
                        blk.col_count if nbr.row_start != blk.row_start else blk.row_count
                    )
                    comm += nominal.predicted_transfer_time(
                        blk.machine, nbr.machine, 2.0 * shared * per_point
                    )
                worst = max(worst, compute + comm + self.problem.sync_overhead_s)
        return worst * self.problem.iterations


class ApplesBlockedPlanner(BlockedPlanner):
    """AppLeS planning over *generalised* block decompositions.

    The paper's user "specified that only strip decompositions should be
    considered during the planning of the schedule" because non-strip
    predictions were considered too non-linear (§5).  This planner is the
    deferred alternative: a heterogeneous block distribution whose tile
    areas track NWS-forecast deliverable rates, predicted with the same
    per-tile ``area·P + C`` model.  The decomposition ablation compares it
    against the strip planner.
    """

    def __init__(
        self,
        problem: JacobiProblem,
        conservatism_sigmas: float = 1.0,
        risk_aversion: float = 2.0,
    ) -> None:
        super().__init__(problem)
        if conservatism_sigmas < 0 or risk_aversion < 0:
            raise ValueError("conservatism_sigmas and risk_aversion must be >= 0")
        self.conservatism_sigmas = conservatism_sigmas
        self.risk_aversion = risk_aversion

    def _conservative_speed(self, machine: str, info: InformationPool) -> float:
        cache = info.decision_cache
        if cache is not None:
            return cache.snapshot.conservative_speed(machine, self.conservatism_sigmas)
        return info.pool.predicted_speed_conservative(machine, self.conservatism_sigmas)

    def _transfer_time(self, a: str, b: str, nbytes: float, info: InformationPool) -> float:
        cache = info.decision_cache
        if cache is not None:
            return cache.snapshot.transfer_time(a, b, nbytes)
        return info.pool.predicted_transfer_time(a, b, nbytes)

    def lower_bounds(
        self, candidate_sets: Sequence[Sequence[str]], info: InformationPool
    ) -> np.ndarray:
        """Admissible predicted-time lower bound per candidate set.

        The generalised block partition covers the whole grid, so its worst
        tile time is at least the ideal fractional time balance with every
        per-tile cost relaxed down to the sync overhead; the risk
        multiplier is at least ``1 + risk_aversion × min member risk``.
        Same argument as the strip planner's.
        """
        names = info.pool.machine_names()
        index = {n: j for j, n in enumerate(names)}
        rates = np.array(
            [
                self._conservative_speed(n, info) / self.problem.flop_per_point
                for n in names
            ]
        )
        usable = rates > 0.0
        mask = np.zeros((len(candidate_sets), len(names)), dtype=bool)
        for i, rset in enumerate(candidate_sets):
            for m in rset:
                j = index.get(m)
                if j is not None and usable[j]:
                    mask[i, j] = True
        safe_rates = np.where(usable, rates, 1.0)
        sync = np.full(len(names), self.problem.sync_overhead_s)
        result = balance_divisible_work_batched(
            safe_rates, sync, float(self.problem.total_points), mask
        )
        risks = np.asarray(_member_risks(names, info))
        min_risk = np.where(mask, risks, np.inf).min(axis=1)
        min_risk = np.where(np.isfinite(min_risk), min_risk, 0.0)
        return (
            result.makespans
            * self.problem.iterations
            * (1.0 + self.risk_aversion * min_risk)
        )

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        machines = _locality_ranked(info, list(resource_set))
        rates = [
            self._conservative_speed(m, info) for m in machines
        ]
        usable = [(m, r) for m, r in zip(machines, rates) if r > 0.0]
        if not usable:
            return None
        machines = [m for m, _ in usable]
        rates = [r for _, r in usable]
        if len(machines) > self.problem.n:
            return None
        partition = generalized_block_partition(self.problem.n, machines, rates)
        predicted = self._predict_dynamic(partition, info)
        predicted *= 1.0 + self.risk_aversion * _availability_risk(machines, info)
        return Schedule(
            allocations=self._allocations(partition),
            predicted_time=predicted,
            decomposition="apples-blocked",
            metadata={"partition": partition, "problem": self.problem},
        )

    def _predict_dynamic(self, partition: BlockPartition, info: InformationPool) -> float:
        """Per-tile ``area·P_i + C_i`` with forecast rates and bandwidths."""
        per_point = self.problem.border_bytes_per_point
        worst = 0.0
        for i in range(partition.pr):
            for j in range(partition.pc):
                blk = partition.block_at(i, j)
                speed = self._conservative_speed(blk.machine, info)
                if speed <= 0:
                    return float("inf")
                compute = blk.area * self.problem.flop_per_point / speed
                comm = 0.0
                for nbr in partition.neighbors(i, j):
                    shared = (
                        blk.col_count if nbr.row_start != blk.row_start else blk.row_count
                    )
                    comm += self._transfer_time(
                        blk.machine, nbr.machine, 2.0 * shared * per_point, info
                    )
                worst = max(worst, compute + comm + self.problem.sync_overhead_s)
        return worst * self.problem.iterations


class PreferencePlanner:
    """Dispatch on the User Specification's decomposition preference.

    The paper's user "specified that only strip decompositions should be
    considered" (§5) — the preference lives in the User Specification and
    the Planner honours it.  With several admissible families, each is
    planned and the best-predicted schedule wins.
    """

    def __init__(self, planners: dict[str, "Planner"]) -> None:  # noqa: F821
        if not planners:
            raise ValueError("need at least one family planner")
        self.planners = dict(planners)

    def _active_planners(self, info: InformationPool) -> list["Planner"]:  # noqa: F821
        families = info.userspec.decomposition_preference or tuple(self.planners)
        return [
            self.planners[family] for family in families if family in self.planners
        ]

    def batch_planner(self, info: InformationPool) -> "Planner | None":  # noqa: F821
        """The single active family's batch planner, when there is one.

        With several active families the dispatcher's predicted time is a
        min across them, which the one-shot batched sweep cannot replay —
        so only a lone batch-capable family opts the configuration in.
        """
        active = self._active_planners(info)
        if len(active) != 1:
            return None
        hook = getattr(active[0], "batch_planner", None)
        return hook(info) if hook is not None else None

    def lower_bounds(
        self, candidate_sets: Sequence[Sequence[str]], info: InformationPool
    ) -> np.ndarray | None:
        """Element-wise minimum of the active families' bounds.

        The dispatcher's predicted time is the min over families, so the
        min of admissible per-family bounds is itself admissible.  If any
        active family lacks bounds, pruning is disabled entirely (None).
        """
        bounds: np.ndarray | None = None
        planners = self._active_planners(info)
        if not planners:
            return None
        for planner in planners:
            fn = getattr(planner, "lower_bounds", None)
            if fn is None:
                return None
            family_bounds = np.asarray(fn(candidate_sets, info), dtype=float)
            bounds = (
                family_bounds
                if bounds is None
                else np.minimum(bounds, family_bounds)
            )
        return bounds

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        best: Schedule | None = None
        for planner in self._active_planners(info):
            sched = planner.plan(resource_set, info)
            if sched is None:
                continue
            if best is None or sched.predicted_time < best.predicted_time:
                best = sched
        return best


def make_jacobi_agent(
    testbed: Testbed,
    problem: JacobiProblem,
    nws: NetworkWeatherService | None = None,
    userspec: UserSpecification | None = None,
    selector: ResourceSelector | None = None,
    account_memory: bool = True,
) -> AppLeSAgent:
    """Assemble the complete Jacobi2D AppLeS agent for a testbed.

    The User Specification's ``decomposition_preference`` selects the
    planning family: the default ``("strip",)`` reproduces the paper's
    §5 restriction; ``("strip", "blocked")`` lets the agent weigh the
    generalised-block planner as well.  With ``nws=None`` the agent plans
    from nominal information only — the information ablation of the
    benchmarks.
    """
    pool = ResourcePool(testbed.topology, nws)
    info = InformationPool(
        pool=pool,
        hat=jacobi_hat(problem),
        userspec=userspec if userspec is not None else UserSpecification(),
    )
    families = {
        "strip": JacobiPlanner(problem, account_memory=account_memory),
        "blocked": ApplesBlockedPlanner(problem),
    }
    unknown = [f for f in info.userspec.decomposition_preference
               if f not in families]
    if unknown:
        raise ValueError(
            f"unknown decomposition preference(s) {unknown}; "
            f"available: {sorted(families)}"
        )
    planner = PreferencePlanner(families)
    info.register_model("jacobi-strip-cost", StripCostModel(pool, problem, account_memory))
    return AppLeSAgent(info, planner=planner, selector=selector)

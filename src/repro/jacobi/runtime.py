"""KeLP-like runtime for partitioned Jacobi2D.

The paper actuated its schedules with KeLP, "an object-oriented run-time
facility for adaptive grid problems" (§5).  This module plays that role
twice over:

- **numerically** — :func:`execute_strip_partition` and
  :func:`execute_block_partition` run the sweep on per-machine subarrays
  with explicit ghost-cell exchange, and must reproduce the reference
  solver bit-for-bit (the integration tests assert this for every
  partitioner);
- **in simulated time** — :func:`assignments_from_schedule` and
  :func:`simulated_execution` charge the schedule's compute and
  communication against the metacomputer simulator, which is how the
  Figure 5/6 execution-time curves are produced.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import BlockPartition, StripPartition
from repro.sim.execution import IterationResult, WorkAssignment, simulate_iterations
from repro.sim.topology import Topology

__all__ = [
    "execute_strip_partition",
    "execute_block_partition",
    "assignments_from_schedule",
    "simulated_execution",
]


def execute_strip_partition(
    grid: np.ndarray, partition: StripPartition, iterations: int
) -> np.ndarray:
    """Run ``iterations`` sweeps over per-strip subarrays with ghost rows.

    Each strip holds its rows plus one ghost row per interior border; every
    iteration exchanges border rows, then updates locally.  Returns the
    reassembled global grid.
    """
    n = partition.n
    if grid.shape != (n, n):
        raise ValueError(f"grid shape {grid.shape} does not match partition n={n}")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")

    # locals[i] carries rows [lo_i, hi_i) of the global grid where lo/hi
    # include ghost rows when a neighbouring strip exists.
    locals_: list[np.ndarray] = []
    bounds: list[tuple[int, int]] = []
    for idx, strip in enumerate(partition.strips):
        lo = strip.row_start - (1 if idx > 0 else 0)
        hi = strip.row_end + (1 if idx < len(partition.strips) - 1 else 0)
        locals_.append(grid[lo:hi].copy())
        bounds.append((lo, hi))

    for _ in range(int(iterations)):
        # Ghost exchange: my first/last *owned* row goes to my neighbours.
        for idx, strip in enumerate(partition.strips):
            lo, _hi = bounds[idx]
            if idx > 0:
                # Receive the last owned row of strip idx-1 into my top ghost.
                up = partition.strips[idx - 1]
                up_lo, _ = bounds[idx - 1]
                locals_[idx][0] = locals_[idx - 1][up.row_end - 1 - up_lo]
            if idx < len(partition.strips) - 1:
                down = partition.strips[idx + 1]
                down_lo, _ = bounds[idx + 1]
                locals_[idx][-1] = locals_[idx + 1][down.row_start - down_lo]
        # Local update: owned rows that are interior rows of the global grid.
        for idx, strip in enumerate(partition.strips):
            lo, _hi = bounds[idx]
            local = locals_[idx]
            new = local.copy()
            r0 = max(strip.row_start, 1) - lo
            r1 = min(strip.row_end, n - 1) - lo
            if r1 > r0:
                new[r0:r1, 1:-1] = 0.25 * (
                    local[r0 - 1 : r1 - 1, 1:-1]
                    + local[r0 + 1 : r1 + 1, 1:-1]
                    + local[r0:r1, :-2]
                    + local[r0:r1, 2:]
                )
            locals_[idx] = new

    out = np.empty_like(grid)
    for idx, strip in enumerate(partition.strips):
        lo, _hi = bounds[idx]
        out[strip.row_start : strip.row_end] = locals_[idx][
            strip.row_start - lo : strip.row_end - lo
        ]
    return out


def execute_block_partition(
    grid: np.ndarray, partition: BlockPartition, iterations: int
) -> np.ndarray:
    """Run sweeps over 2-D tiles with four-sided ghost exchange.

    The five-point stencil needs edge ghosts only (no corners).  Returns
    the reassembled global grid.
    """
    n = partition.n
    if grid.shape != (n, n):
        raise ValueError(f"grid shape {grid.shape} does not match partition n={n}")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")

    # Per tile: the local array spans the tile plus 1-cell halo clipped to
    # the grid; (i, j) indexes the processor grid.
    tiles: dict[tuple[int, int], np.ndarray] = {}
    spans: dict[tuple[int, int], tuple[int, int, int, int]] = {}
    for i in range(partition.pr):
        for j in range(partition.pc):
            blk = partition.block_at(i, j)
            r_lo = max(blk.row_start - 1, 0)
            r_hi = min(blk.row_end + 1, n)
            c_lo = max(blk.col_start - 1, 0)
            c_hi = min(blk.col_end + 1, n)
            tiles[(i, j)] = grid[r_lo:r_hi, c_lo:c_hi].copy()
            spans[(i, j)] = (r_lo, r_hi, c_lo, c_hi)

    def owned_view(i: int, j: int, arr: np.ndarray) -> np.ndarray:
        blk = partition.block_at(i, j)
        r_lo, _, c_lo, _ = spans[(i, j)]
        return arr[
            blk.row_start - r_lo : blk.row_end - r_lo,
            blk.col_start - c_lo : blk.col_end - c_lo,
        ]

    for _ in range(int(iterations)):
        # Ghost exchange along the four directions.
        for i in range(partition.pr):
            for j in range(partition.pc):
                blk = partition.block_at(i, j)
                r_lo, _, c_lo, _ = spans[(i, j)]
                local = tiles[(i, j)]
                if i > 0:
                    src = owned_view(i - 1, j, tiles[(i - 1, j)])[-1]
                    local[blk.row_start - 1 - r_lo,
                          blk.col_start - c_lo : blk.col_end - c_lo] = src
                if i < partition.pr - 1:
                    src = owned_view(i + 1, j, tiles[(i + 1, j)])[0]
                    local[blk.row_end - r_lo,
                          blk.col_start - c_lo : blk.col_end - c_lo] = src
                if j > 0:
                    src = owned_view(i, j - 1, tiles[(i, j - 1)])[:, -1]
                    local[blk.row_start - r_lo : blk.row_end - r_lo,
                          blk.col_start - 1 - c_lo] = src
                if j < partition.pc - 1:
                    src = owned_view(i, j + 1, tiles[(i, j + 1)])[:, 0]
                    local[blk.row_start - r_lo : blk.row_end - r_lo,
                          blk.col_end - c_lo] = src
        # Local update.
        for i in range(partition.pr):
            for j in range(partition.pc):
                blk = partition.block_at(i, j)
                r_lo, _, c_lo, _ = spans[(i, j)]
                local = tiles[(i, j)]
                new = local.copy()
                ur0 = max(blk.row_start, 1) - r_lo
                ur1 = min(blk.row_end, n - 1) - r_lo
                uc0 = max(blk.col_start, 1) - c_lo
                uc1 = min(blk.col_end, n - 1) - c_lo
                if ur1 > ur0 and uc1 > uc0:
                    new[ur0:ur1, uc0:uc1] = 0.25 * (
                        local[ur0 - 1 : ur1 - 1, uc0:uc1]
                        + local[ur0 + 1 : ur1 + 1, uc0:uc1]
                        + local[ur0:ur1, uc0 - 1 : uc1 - 1]
                        + local[ur0:ur1, uc0 + 1 : uc1 + 1]
                    )
                tiles[(i, j)] = new

    out = np.empty_like(grid)
    for i in range(partition.pr):
        for j in range(partition.pc):
            blk = partition.block_at(i, j)
            out[blk.row_start : blk.row_end, blk.col_start : blk.col_end] = owned_view(
                i, j, tiles[(i, j)]
            )
    return out


def assignments_from_schedule(schedule: Schedule) -> list[WorkAssignment]:
    """Convert a Jacobi schedule into simulator work assignments.

    Requires the schedule metadata to carry its ``problem`` (all Jacobi
    planners set it).
    """
    problem = schedule.metadata.get("problem")
    if not isinstance(problem, JacobiProblem):
        raise ValueError("schedule metadata lacks a JacobiProblem under 'problem'")
    return [
        WorkAssignment(
            host=a.machine,
            work_mflop=problem.work_mflop(a.work_units),
            comm_bytes=dict(a.comm_bytes),
            footprint_mb=a.footprint_mb,
            overhead_s=problem.sync_overhead_s,
        )
        for a in schedule.allocations
    ]


def simulated_execution(
    topology: Topology, schedule: Schedule, t0: float = 0.0
) -> IterationResult:
    """Charge a Jacobi schedule against the simulator.

    Runs ``problem.iterations`` barrier steps starting at ``t0`` and
    returns the :class:`~repro.sim.execution.IterationResult` — the
    "measured" execution time of the Figure 5/6 experiments.  With fast
    paths on, ``simulate_iterations`` dispatches to the vectorised
    executor (:mod:`repro.sim.execution_fast`), bit-identical to the
    reference loop, so the figures are unchanged.
    """
    problem = schedule.metadata.get("problem")
    if not isinstance(problem, JacobiProblem):
        raise ValueError("schedule metadata lacks a JacobiProblem under 'problem'")
    return simulate_iterations(
        topology,
        assignments_from_schedule(schedule),
        iterations=problem.iterations,
        t0=t0,
    )

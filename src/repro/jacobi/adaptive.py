"""Adaptive rescheduling: work redistribution during execution.

§3.2: "dynamic and predictive information can be used to determine both a
potentially performance-efficient initial schedule, and *to make decisions
about redistribution of the application during execution*."  The HPDC'96
prototype scheduled once; this module implements the redistribution half
the paper sketches, as an extension.

The :class:`AdaptiveJacobiRunner` executes a schedule in chunks of
``check_every`` iterations.  After each chunk it advances the NWS to the
current simulated time, re-runs the full AppLeS blueprint, and compares:

- the predicted time to finish the *remaining* iterations on the current
  partition (re-costed with fresh forecasts), against
- the new schedule's predicted remaining time **plus** the cost of
  migrating grid rows between machines.

Redistribution happens only when the predicted gain exceeds the migration
cost by ``min_gain_fraction`` — the same predicted-performance yardstick
the rest of AppLeS uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resources import ResourcePool
from repro.core.schedule import Schedule
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.cost import StripCostModel
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import StripPartition
from repro.jacobi.runtime import assignments_from_schedule
from repro.nws.service import NetworkWeatherService
from repro.obs.trace import get_tracer
from repro.sim.execution import simulate_iterations
from repro.sim.testbeds import Testbed
from repro.util.validation import check_positive

__all__ = ["RescheduleEvent", "AdaptiveResult", "AdaptiveJacobiRunner",
           "migration_cost_s"]


@dataclass(frozen=True)
class RescheduleEvent:
    """One accepted redistribution.

    ``repaired`` records *how* the adopted candidate was found: ``True``
    when it came from the incremental repair sweep (a
    :class:`~repro.reserve.repair.RepairSweep` over the seeded-selector
    neighbourhood of the incumbent), ``False`` when it came from a full
    blueprint re-run.
    """

    time: float
    after_iteration: int
    old_machines: tuple[str, ...]
    new_machines: tuple[str, ...]
    migration_s: float
    predicted_gain_s: float
    repaired: bool = False


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive run."""

    total_time: float
    iterations: int
    reschedules: list[RescheduleEvent] = field(default_factory=list)
    chunks: int = 0

    @property
    def reschedule_count(self) -> int:
        """Number of accepted redistributions."""
        return len(self.reschedules)

    @property
    def repaired_count(self) -> int:
        """Accepted redistributions that came from the repair sweep."""
        return sum(1 for e in self.reschedules if e.repaired)

    @property
    def migration_time(self) -> float:
        """Total seconds spent migrating data."""
        return sum(e.migration_s for e in self.reschedules)


def migration_cost_s(
    pool: ResourcePool,
    old: StripPartition,
    new: StripPartition,
    bytes_per_point: float,
) -> float:
    """Predicted seconds to repartition from ``old`` to ``new``.

    Conservative model: every machine that loses area ships those points
    to the *nearest gaining* machine (by predicted transfer time), and the
    shipments are charged sequentially — an upper bound on a pipelined
    redistribution, which keeps the runner honest about migration cost.
    """
    old_areas = old.areas()
    new_areas = new.areas()
    machines = set(old_areas) | set(new_areas)
    donors = {
        m: old_areas.get(m, 0) - new_areas.get(m, 0)
        for m in machines
        if old_areas.get(m, 0) > new_areas.get(m, 0)
    }
    gainers = [m for m in machines if new_areas.get(m, 0) > old_areas.get(m, 0)]
    if not donors or not gainers:
        return 0.0
    total = 0.0
    for donor, points in donors.items():
        nbytes = points * bytes_per_point
        best = min(
            pool.predicted_transfer_time(donor, g, nbytes) for g in gainers
        )
        total += best
    return total


class AdaptiveJacobiRunner:
    """Execute Jacobi2D with periodic NWS-driven redistribution.

    Parameters
    ----------
    testbed:
        The metacomputer.
    problem:
        The Jacobi2D instance (its ``iterations`` is the total run length).
    nws:
        The Network Weather Service; advanced as simulated time passes.
    check_every:
        Iterations between rescheduling checks.
    min_gain_fraction:
        Accept a redistribution only if
        ``old_remaining - (new_remaining + migration) >
        min_gain_fraction * old_remaining``.
    repair:
        When ``True`` (the default), mid-run rescheduling checks use a
        :class:`~repro.reserve.repair.RepairSweep` — a seeded-selector
        sweep over the neighbourhood of the incumbent resource set —
        instead of re-running the full blueprint.  The initial schedule
        always comes from the full blueprint; only the *periodic checks*
        are repaired.  Accepted events carry ``repaired=True`` so
        accounting can tell the two paths apart.
    """

    def __init__(
        self,
        testbed: Testbed,
        problem: JacobiProblem,
        nws: NetworkWeatherService,
        check_every: int = 25,
        min_gain_fraction: float = 0.1,
        repair: bool = True,
        **agent_kwargs,
    ) -> None:
        check_positive("check_every", check_every)
        if not (0.0 <= min_gain_fraction < 1.0):
            raise ValueError("min_gain_fraction must be in [0, 1)")
        self.testbed = testbed
        self.problem = problem
        self.nws = nws
        self.check_every = int(check_every)
        self.min_gain_fraction = min_gain_fraction
        self.repair = bool(repair)
        self.agent = make_jacobi_agent(testbed, problem, nws, **agent_kwargs)
        self._sweep = None
        if self.repair:
            # Imported lazily: repro.reserve.repair itself imports
            # repro.jacobi.apples, so a module-level import here would be
            # circular through the package __init__s.
            from repro.reserve.repair import RepairSweep

            sweep_kwargs = {
                k: v
                for k, v in agent_kwargs.items()
                if k in ("userspec", "account_memory")
            }
            self._sweep = RepairSweep(testbed, problem, nws, **sweep_kwargs)

    def _remaining_prediction(self, schedule: Schedule, remaining: int) -> float:
        """Predicted seconds for ``remaining`` iterations of ``schedule``
        under *current* forecasts."""
        model = StripCostModel(self.agent.info.pool, self.problem)
        partition = schedule.metadata["partition"]
        return model.step_time(partition) * remaining

    def run(self, t0: float = 0.0) -> AdaptiveResult:
        """Run all iterations, rescheduling when prediction says it pays."""
        self.nws.advance_to(t0)
        schedule = self.agent.schedule().best
        if self._sweep is not None:
            # Seed the repair sweep's winner memory with the blueprint's
            # choice so its neighbourhood is centred on the incumbent.
            self._sweep.observe(schedule.resource_set)
        # Assignments are a pure function of the schedule, so build them once
        # per schedule rather than once per chunk; the executor re-derives
        # its tables per call, so successive chunks stay exact.
        assignments = assignments_from_schedule(schedule)
        t = float(t0)
        done = 0
        result = AdaptiveResult(total_time=0.0, iterations=self.problem.iterations)

        while done < self.problem.iterations:
            chunk = min(self.check_every, self.problem.iterations - done)
            res = simulate_iterations(
                self.testbed.topology,
                assignments,
                iterations=chunk,
                t0=t,
            )
            t += res.total_time
            done += chunk
            result.chunks += 1
            if done >= self.problem.iterations:
                break

            self.nws.advance_to(t)
            if self._sweep is not None:
                candidate = self._sweep.decide().best
            else:
                candidate = self.agent.schedule().best
            remaining = self.problem.iterations - done
            keep_pred = self._remaining_prediction(schedule, remaining)
            move_pred = self._remaining_prediction(candidate, remaining)
            migration = migration_cost_s(
                self.agent.info.pool,
                schedule.metadata["partition"],
                candidate.metadata["partition"],
                self.problem.bytes_per_point,
            )
            gain = keep_pred - (move_pred + migration)
            if gain > self.min_gain_fraction * keep_pred:
                result.reschedules.append(
                    RescheduleEvent(
                        time=t,
                        after_iteration=done,
                        old_machines=schedule.resource_set,
                        new_machines=candidate.resource_set,
                        migration_s=migration,
                        predicted_gain_s=gain,
                        repaired=self._sweep is not None,
                    )
                )
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "core.reschedule", layer="core", t=t,
                        after_iteration=done, migration_s=migration,
                        predicted_gain_s=gain,
                        old_machines=len(schedule.resource_set),
                        new_machines=len(candidate.resource_set),
                        repaired=self._sweep is not None,
                    )
                    tracer.metrics.counter("core.reschedules").inc()
                t += migration  # pay for the data movement
                schedule = candidate
                assignments = assignments_from_schedule(schedule)

        result.total_time = t - t0
        return result

"""Jacobi2D problem definition.

The computation: variable coefficients on an N×N grid, "updated at each
iteration as the average of a five point stencil" (§5).  A five-point
update costs 4 additions + 1 multiply = 5 flops per point; the working set
is two double-precision arrays (read and write copies), 16 bytes per point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.util.validation import check_positive

__all__ = ["JacobiProblem", "jacobi_hat"]

#: MFLOP per grid point per iteration (4 adds + 1 multiply).
FLOP_PER_POINT_MFLOP = 5.0e-6

#: Resident bytes per grid point (two float64 arrays).
BYTES_PER_POINT = 16.0

#: Bytes per point of a border row, each way (one float64 value).
BORDER_BYTES_PER_POINT = 8.0


@dataclass(frozen=True)
class JacobiProblem:
    """An N×N Jacobi2D problem instance.

    Parameters
    ----------
    n:
        Grid edge length.
    iterations:
        Sweeps to run.
    flop_per_point:
        MFLOP per point per sweep (default: the 5-flop stencil).
    bytes_per_point:
        Resident working-set bytes per point (default: 16, two arrays).
    border_bytes_per_point:
        Bytes exchanged per border point per direction per sweep.
    sync_overhead_s:
        Per-machine per-sweep runtime overhead (ghost-region setup and
        barrier arrival in the KeLP-like runtime).  Charged both by the
        cost model and by the simulated execution, so every scheduler pays
        it and marginal machines must earn their keep.
    """

    n: int
    iterations: int = 100
    flop_per_point: float = FLOP_PER_POINT_MFLOP
    bytes_per_point: float = BYTES_PER_POINT
    border_bytes_per_point: float = BORDER_BYTES_PER_POINT
    sync_overhead_s: float = 0.008

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        check_positive("iterations", self.iterations)
        check_positive("flop_per_point", self.flop_per_point)
        check_positive("bytes_per_point", self.bytes_per_point)
        check_positive("border_bytes_per_point", self.border_bytes_per_point)
        if self.sync_overhead_s < 0:
            raise ValueError("sync_overhead_s must be >= 0")

    @property
    def total_points(self) -> int:
        """N²."""
        return self.n * self.n

    def footprint_mb(self, points: float) -> float:
        """Resident megabytes for ``points`` grid points (MB = 10^6 B)."""
        if points < 0:
            raise ValueError(f"points must be >= 0, got {points}")
        return points * self.bytes_per_point / 1e6

    def work_mflop(self, points: float) -> float:
        """MFLOP per sweep for ``points`` grid points."""
        if points < 0:
            raise ValueError(f"points must be >= 0, got {points}")
        return points * self.flop_per_point

    def border_exchange_bytes(self) -> float:
        """Bytes exchanged between two adjacent strips per sweep.

        Each neighbour pair trades one full border row each way:
        ``2 * n * border_bytes_per_point``.
        """
        return 2.0 * self.n * self.border_bytes_per_point


def jacobi_hat(problem: JacobiProblem) -> HeterogeneousApplicationTemplate:
    """Build the Heterogeneous Application Template for a Jacobi2D instance.

    The sweep task is portable (empty implementation map → every
    architecture at efficiency 1.0), divisible, with a stencil
    communication pattern.
    """
    return HeterogeneousApplicationTemplate(
        name=f"jacobi2d-{problem.n}",
        paradigm="data-parallel",
        tasks=(
            TaskCharacteristics(
                name="sweep",
                flop_per_unit=problem.flop_per_point,
                bytes_per_unit=problem.bytes_per_point,
                divisible=True,
            ),
        ),
        communication=CommunicationCharacteristics(
            pattern="stencil",
            bytes_per_border_unit=problem.border_bytes_per_point,
            frequency_per_iteration=1,
        ),
        structure=StructureInfo(
            total_units=float(problem.total_points),
            iterations=problem.iterations,
            unifying_structure="2d-grid",
        ),
    )

"""Vectorised reference Jacobi solver.

The numerical ground truth for the partitioned runtime
(:mod:`repro.jacobi.runtime`): whatever decomposition a scheduler chooses,
the partitioned sweep must produce *bit-identical* grids to this solver —
that equivalence is what the integration tests assert.

The update is the classic five-point Jacobi relaxation for Poisson's
equation: interior points become the average of their four neighbours plus
a source term; boundary values are held fixed (Dirichlet).
"""

from __future__ import annotations

import numpy as np

__all__ = ["jacobi_step", "jacobi_reference", "make_test_grid", "residual_norm", "solve_until"]


def jacobi_step(grid: np.ndarray, source: np.ndarray | None = None) -> np.ndarray:
    """One Jacobi sweep; returns a new grid (boundary copied unchanged).

    ``grid`` must be 2-D with both dimensions >= 3 so an interior exists.
    """
    if grid.ndim != 2:
        raise ValueError(f"grid must be 2-D, got shape {grid.shape}")
    if min(grid.shape) < 3:
        raise ValueError(f"grid must be at least 3x3, got {grid.shape}")
    out = grid.copy()
    interior = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
    if source is not None:
        if source.shape != grid.shape:
            raise ValueError("source shape must match grid shape")
        interior = interior + source[1:-1, 1:-1]
    out[1:-1, 1:-1] = interior
    return out


def jacobi_reference(
    grid: np.ndarray, iterations: int, source: np.ndarray | None = None
) -> np.ndarray:
    """Run ``iterations`` sweeps from ``grid``; the input is not modified."""
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    current = grid.copy()
    for _ in range(int(iterations)):
        current = jacobi_step(current, source)
    return current


def make_test_grid(n: int, seed: int = 0, hot_edge: float = 100.0) -> np.ndarray:
    """A reproducible N×N test problem: random interior, one hot boundary.

    Models the heat-flow problems the paper cites as Jacobi2D's home turf.
    """
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    rng = np.random.default_rng(seed)
    grid = rng.uniform(0.0, 1.0, size=(n, n))
    grid[0, :] = hot_edge
    grid[-1, :] = 0.0
    grid[:, 0] = 0.0
    grid[:, -1] = 0.0
    return grid


def solve_until(
    grid: np.ndarray,
    tolerance: float = 1e-6,
    max_iterations: int = 100_000,
    source: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Relax until the per-sweep RMS update drops below ``tolerance``.

    The variable-iteration interface real Poisson users want (the
    fixed-iteration runs of the figures are a benchmarking convention).
    Returns ``(converged_grid, sweeps_taken)``; raises ``RuntimeError``
    if ``max_iterations`` sweeps do not converge.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    current = grid.copy()
    for sweep in range(1, int(max_iterations) + 1):
        nxt = jacobi_step(current, source)
        delta = nxt[1:-1, 1:-1] - current[1:-1, 1:-1]
        current = nxt
        if float(np.sqrt(np.mean(delta**2))) < tolerance:
            return current, sweep
    raise RuntimeError(
        f"Jacobi did not reach tolerance {tolerance:g} in {max_iterations} sweeps"
    )


def residual_norm(grid: np.ndarray) -> float:
    """RMS difference between a grid and one further sweep of it.

    Approaches 0 as the relaxation converges; used by convergence tests.
    """
    nxt = jacobi_step(grid)
    diff = nxt[1:-1, 1:-1] - grid[1:-1, 1:-1]
    return float(np.sqrt(np.mean(diff**2)))
